"""Schema inference: the paper's primary contribution (Section 5).

* :mod:`repro.inference.infer` — value typing, the Map phase (Fig. 4).
* :mod:`repro.inference.fusion` — type fusion, the Reduce phase (Figs. 5-6).
* :mod:`repro.inference.pipeline` — end-to-end, incremental and
  partition-isolated pipelines.
* :mod:`repro.inference.kernel` — the single-pass streaming kernel the
  pipelines run on: per-partition interning accumulator with memoized
  fusion, merged at the driver.
* :mod:`repro.inference.typestream` — the fast map lane: typing records
  *during* parsing (token walker and C-accelerated hook variants) with
  strict-parser fallback for diagnostics.
* :mod:`repro.inference.counting` — the statistics enrichment sketched as
  future work in Section 7.
* :mod:`repro.inference.statistics` — mergeable per-path statistics
  (counters, ranges, HyperLogLog / Bloom sketches) riding the summary
  monoid, JSONoid-style.
* :mod:`repro.inference.parametric` — equivalence-parameterised fusion
  (the precision/succinctness axis of Section 7's future work).
"""

from repro.inference.counting import (
    ArrayLengthStats,
    FieldPresence,
    StatisticsCollector,
    presence_report,
)
from repro.inference.fusion import (
    collapse,
    fuse,
    fuse_all,
    fuse_multiset,
    lfuse,
    simplify,
)
from repro.inference.infer import infer_type
from repro.inference.kernel import (
    FusionMemo,
    PartitionAccumulator,
    PartitionSummary,
    PhaseTimings,
    accumulate_ndjson_partition,
    accumulate_partition,
    merge_phase_timings,
    merge_summaries,
    merge_summaries_full,
)
from repro.inference.statistics import (
    STATS_MODES,
    BloomFilter,
    HyperLogLog,
    MergeableStatistic,
    StatsBundle,
    merge_stats,
    resolve_stats_mode,
    stats_if_complete,
)
from repro.inference.parametric import (
    ParametricFuser,
    fuse_labelled,
    infer_schema_labelled,
    label_equivalence,
)
from repro.inference.typestream import (
    PARSE_LANES,
    FastLaneMiss,
    HookTyper,
    TokenTyper,
    c_scanner_available,
    resolve_lane,
    type_from_tokens,
)

from repro.inference.pipeline import (
    InferenceRun,
    PartitionReport,
    PartitionedRun,
    SchemaInferencer,
    infer_partitioned,
    infer_schema,
    run_inference,
)

__all__ = [
    "infer_type", "fuse", "lfuse", "collapse", "fuse_all",
    "fuse_multiset", "simplify",
    "infer_schema", "run_inference", "InferenceRun",
    "SchemaInferencer", "infer_partitioned", "PartitionReport",
    "PartitionedRun",
    "PartitionAccumulator", "PartitionSummary", "FusionMemo",
    "PhaseTimings", "merge_phase_timings",
    "accumulate_partition", "accumulate_ndjson_partition",
    "merge_summaries", "merge_summaries_full",
    "PARSE_LANES", "FastLaneMiss", "TokenTyper", "HookTyper",
    "c_scanner_available", "resolve_lane", "type_from_tokens",
    "StatisticsCollector", "FieldPresence", "ArrayLengthStats",
    "presence_report",
    "STATS_MODES", "MergeableStatistic", "StatsBundle",
    "HyperLogLog", "BloomFilter", "merge_stats", "resolve_stats_mode",
    "stats_if_complete",
    "ParametricFuser", "label_equivalence", "fuse_labelled",
    "infer_schema_labelled",
]
