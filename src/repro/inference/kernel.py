"""Single-pass streaming inference kernel (the fast path of the pipeline).

The original pipeline materialises one type tree per record and then makes
three further passes over the cached collection (count, distinct, fuse).
This module collapses all of that into *one* pass per partition:

* :class:`PartitionAccumulator` consumes raw JSON values one at a time.
  Each value is typed **directly into interned form**: the Fig. 4 rules are
  applied bottom-up through a per-partition
  :class:`repro.core.interning.TypeInterner`, so structurally equal
  (sub)trees become the *same* object the moment they are inferred —
  there is never a second, un-pooled copy of the tree.
* Distinct-type counting falls out of interning for free: a top-level type
  is new exactly when its canonical object has not been seen before, an
  ``id()`` set membership test instead of a structural-hash ``set`` pass.
* Fusion is incremental and memoized through :class:`FusionMemo`: because
  operands are canonical, ``fuse(a, b)`` can be cached under the pointer
  pair ``(id(a), id(b))``.  On homogeneous or skewed data the running
  schema stabilises after a handful of records and every further record
  costs one dict lookup — near-zero fuse work.
* :meth:`PartitionAccumulator.summary` emits a tiny, picklable
  :class:`PartitionSummary` (schema + counts + distinct types), which is
  what crosses a process boundary when the scheduler runs with
  ``backend="process"``; :func:`merge_summaries` recombines the partials
  at the driver.  Any grouping of the merge yields the same schema — that
  is exactly the associativity theorem (Theorem 5.5), the same property
  that already licenses ``tree_reduce``.

Everything here is *exact*: the accumulator's schema, record count and
distinct-type count are identical (plain ``==``) to the naive
``fuse_all(infer_type(v) for v in values)`` path, which the property tests
check on arbitrary JSON values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.core.errors import InvalidValueError
from repro.core.interning import TypeInterner
from repro.core.types import (
    ArrayType,
    BOOL,
    EMPTY,
    Field,
    NULL,
    NUM,
    RecordType,
    STR,
    StarArrayType,
    Type,
    UnionType,
)
from repro.inference.fusion import (
    _addends_by_kind,
    f_match,
    f_unmatch,
    fuse,
    lfuse,
)
from repro.jsonio.errors import JsonError
from repro.jsonio.ndjson import BadRecord
from repro.jsonio.parser import loads

__all__ = [
    "FusionMemo",
    "MergedSummary",
    "PartitionAccumulator",
    "PartitionSummary",
    "accumulate_ndjson_partition",
    "accumulate_partition",
    "merge_summaries",
    "merge_summaries_full",
]


class FusionMemo:
    """Pointer-keyed memoizing re-implementation of ``Fuse`` (Fig. 6).

    Operands must be canonical instances of one interner (or the
    module-level singletons).  Two invariants make pointer keys sound:

    * every subtree of a canonical type is canonical (the interner builds
      bottom-up), so the *recursive* sub-fusions — matched record fields,
      array bodies, ``collapse`` of a positional array — can be memoized
      on ``(id(a), id(b))`` pairs too, not just the top-level call.  This
      is where the big win is: fusing a stable schema against a stream of
      record types repeats the same field-level sub-fusions over and over;
    * the interner's pool keeps every canonical type alive for the memo's
      lifetime, so an ``id()`` can never be reused by the allocator, and
      within one interner structural equality coincides with object
      identity — the ``t1 == t2`` fast path of :func:`fuse` becomes an
      ``is`` check.

    Results are interned through the same pool, so a schema that has
    converged keeps its identity and repeated fusions are O(1) dict hits.
    The output is identical (plain ``==``) to :func:`fuse`: the recursion
    mirrors ``Fuse``/``LFuse``/``collapse`` rule for rule, and memoization
    only short-circuits recomputation of a pure function.
    """

    def __init__(self, interner: TypeInterner) -> None:
        self._interner = interner
        self._memo: dict[tuple[int, int], Type] = {}
        self._collapse_memo: dict[int, Type] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        """Number of distinct operand pairs fused so far."""
        return len(self._memo)

    def fuse(self, a: Type, b: Type) -> Type:
        """Fuse two canonical types, serving repeats from the cache."""
        # Same object and no positional arrays: fuse is the identity
        # (the t1 == t2 fast path of fuse, by pointer; for canonical
        # operands of one interner the two tests are equivalent).
        if a is b and not a._has_positional:
            return a
        key = (id(a), id(b))
        found = self._memo.get(key)
        if found is not None:
            self.hits += 1
            return found
        self.misses += 1
        fused = self._interner.intern(self._fuse(a, b))
        self._memo[key] = fused
        return fused

    def _fuse(self, a: Type, b: Type) -> Type:
        """Fig. 6 line 1, recursing through the memo."""
        by_kind1 = _addends_by_kind(a)
        by_kind2 = _addends_by_kind(b)
        fused = [
            self._lfuse(u1, by_kind2[kind])
            for kind, u1 in by_kind1.items()
            if kind in by_kind2
        ]
        fused.extend(u for k, u in by_kind1.items() if k not in by_kind2)
        fused.extend(u for k, u in by_kind2.items() if k not in by_kind1)
        # make_union, unrolled: every entry is a non-union, non-empty
        # addend and kinds are unique by construction, so no flattening or
        # deduplication is needed.
        if not fused:
            return EMPTY
        if len(fused) == 1:
            return fused[0]
        return UnionType(fused)

    def _lfuse(self, t1: Type, t2: Type) -> Type:
        """Fig. 6 lines 2-7 for two non-union addends of equal kind."""
        if isinstance(t1, RecordType) and isinstance(t2, RecordType):
            field = self._interner.field
            fields = [
                field(f1.name, self.fuse(f1.type, f2.type),
                      f1.optional or f2.optional)
                for f1, f2 in f_match(t1, t2)
            ]
            fields.extend(f.with_optional(True) for f in f_unmatch(t1, t2))
            return RecordType(fields)
        if isinstance(t1, (ArrayType, StarArrayType)) and isinstance(
            t2, (ArrayType, StarArrayType)
        ):
            return StarArrayType(
                self.fuse(self._star_body(t1), self._star_body(t2))
            )
        return lfuse(t1, t2)  # identical basic types (line 2), and errors

    def _star_body(self, t: Type) -> Type:
        """The star body of an array type; ``collapse`` memoized per
        canonical positional array object (Fig. 6 lines 8-9)."""
        if isinstance(t, StarArrayType):
            return t.body
        key = id(t)
        found = self._collapse_memo.get(key)
        if found is not None:
            return found
        body: Type = EMPTY
        for element in t.elements:
            body = self.fuse(body, element)
        body = self._interner.intern(body)
        self._collapse_memo[key] = body
        return body

    @property
    def hit_rate(self) -> float:
        """Fraction of memoized fuse calls served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class PartitionSummary:
    """The tiny, picklable result of streaming one partition.

    ``distinct_types`` carries the partition's distinct top-level types so
    the driver can compute the *global* distinct count exactly (two
    partitions may share types); per the paper's measurements this set is
    orders of magnitude smaller than the record count.
    """

    schema: Type
    record_count: int
    distinct_types: tuple[Type, ...]
    #: Records quarantined during a permissive NDJSON partition pass
    #: (empty for already-parsed inputs).
    skipped: tuple[BadRecord, ...] = field(default=())

    @property
    def distinct_type_count(self) -> int:
        """Distinct top-level types within this partition."""
        return len(self.distinct_types)

    @property
    def skipped_count(self) -> int:
        """Number of quarantined records in this partition."""
        return len(self.skipped)


class PartitionAccumulator:
    """Streaming schema accumulator: one pass, no materialised type list.

    >>> from repro.core.printer import print_type
    >>> acc = PartitionAccumulator()
    >>> acc.add_many([{"a": 1}, {"a": "x", "b": True}, {"a": 1}])
    >>> print_type(acc.schema)
    '{a: (Num + Str), b: Bool?}'
    >>> acc.record_count, acc.distinct_type_count
    (3, 2)
    """

    def __init__(self) -> None:
        self.interner = TypeInterner()
        self.memo = FusionMemo(self.interner)
        self._schema: Type = EMPTY
        self._count = 0
        self._distinct_ids: set[int] = set()
        self._distinct: list[Type] = []
        # Construction pools: map tuples of canonical children straight to
        # the canonical node, skipping node construction (sort, hash, size)
        # for shapes seen before.  Keyed on the *unsorted* child tuple, so
        # two key orders of one record shape occupy two entries mapping to
        # the same canonical type — a deliberate trade of a little memory
        # for never re-sorting.
        self._record_pool: dict[tuple[Field, ...], Type] = {}
        self._array_pool: dict[tuple[Type, ...], Type] = {}

    @property
    def schema(self) -> Type:
        """The running fused schema (empty type before any record)."""
        return self._schema

    @property
    def record_count(self) -> int:
        """How many values have been streamed in."""
        return self._count

    @property
    def distinct_type_count(self) -> int:
        """Number of distinct top-level inferred types seen so far."""
        return len(self._distinct)

    def distinct_types(self) -> tuple[Type, ...]:
        """The distinct top-level types, in first-seen order."""
        return tuple(self._distinct)

    def add(self, value: Any) -> None:
        """Stream one JSON value: type, intern, count, fuse — one step."""
        t = self._infer_interned(value)
        self._count += 1
        key = id(t)  # canonical => identity test suffices
        if key not in self._distinct_ids:
            self._distinct_ids.add(key)
            self._distinct.append(t)
        self._schema = self.memo.fuse(self._schema, t)

    def add_many(self, values: Iterable[Any]) -> None:
        """Stream a batch of values."""
        for value in values:
            self.add(value)

    def add_type(self, t: Type, records: int = 1) -> None:
        """Fuse a pre-computed type (e.g. a partial schema) into the schema.

        Does not contribute to the distinct top-level *value* types — it is
        a schema, not a record observation.
        """
        self._schema = self.memo.fuse(self._schema, self.interner.intern(t))
        self._count += records

    def summary(self) -> PartitionSummary:
        """Snapshot the accumulator as a small, picklable summary."""
        return PartitionSummary(
            schema=self._schema,
            record_count=self._count,
            distinct_types=tuple(self._distinct),
        )

    # ------------------------------------------------------------------
    # interned value typing (Fig. 4 fused with hash-consing)

    def _infer_interned(self, value: Any) -> Type:
        try:
            return self._infer(value)
        except RecursionError:
            raise InvalidValueError(
                "value is nested too deeply to type (exceeds the recursion "
                "limit); flatten the value or raise sys.setrecursionlimit"
            ) from None

    def _infer(self, value: Any) -> Type:
        # Mirrors repro.inference.infer.infer_type rule for rule, but
        # builds each node from canonical children and pools it
        # immediately, so the tree is born interned.  Dispatches on the
        # exact type first — JSON parsing only ever yields the six builtin
        # types — and falls back to the isinstance chain for subclasses,
        # preserving infer_type's semantics (bool before int, etc.).
        tv = type(value)
        if tv is str:
            return STR
        if tv is int or tv is float:
            return NUM
        if tv is bool:
            return BOOL
        if value is None:
            return NULL
        if tv is dict:
            fields = []
            field = self.interner.field
            for key, sub in value.items():
                if type(key) is not str and not isinstance(key, str):
                    raise InvalidValueError(f"non-string record key: {key!r}")
                fields.append(field(key, self._infer(sub)))
            shape = tuple(fields)
            t = self._record_pool.get(shape)
            if t is None:
                t = self.interner.intern(RecordType(shape))
                self._record_pool[shape] = t
            return t
        if tv is list:
            elements = tuple(self._infer(v) for v in value)
            t = self._array_pool.get(elements)
            if t is None:
                t = self.interner.intern(ArrayType(elements))
                self._array_pool[elements] = t
            return t
        # Subclasses of the builtin types (IntEnum, OrderedDict, ...).
        if isinstance(value, bool):
            return BOOL
        if isinstance(value, (int, float)):
            return NUM
        if isinstance(value, str):
            return STR
        if isinstance(value, dict):
            return self._infer(dict(value))
        if isinstance(value, list):
            return self._infer(list(value))
        raise InvalidValueError(f"not a JSON value: {type(value).__name__}")


def accumulate_partition(values: Iterable[Any]) -> PartitionSummary:
    """Stream one partition through a fresh accumulator.

    A module-level function on purpose: it is picklable, so the scheduler's
    process backend can ship it (with the partition's raw values) to a
    worker process and get the tiny summary back.
    """
    acc = PartitionAccumulator()
    acc.add_many(values)
    return acc.summary()


def accumulate_ndjson_partition(
    numbered_lines: Iterable[tuple[int, str]],
    source: str | None = None,
    permissive: bool = False,
) -> PartitionSummary:
    """Parse and stream one partition of raw NDJSON lines in a single pass.

    ``numbered_lines`` pairs each record's text with its absolute file
    line number, so parsing *inside the partition* (in parallel, possibly
    in another process) still produces errors and quarantine entries that
    point at the right line of the right file.

    In strict mode (default) the first malformed line raises, failing the
    task; in permissive mode it is quarantined into the summary's
    ``skipped`` tuple and the pass continues.  Like
    :func:`accumulate_partition`, this is a module-level function over
    picklable data by design: it rides the scheduler's process backend.
    """
    acc = PartitionAccumulator()
    skipped: list[BadRecord] = []
    for line_number, line in numbered_lines:
        try:
            value = loads(line, source=source, first_line=line_number)
        except JsonError as exc:
            if not permissive:
                raise
            skipped.append(
                BadRecord(source or "<memory>", line_number, str(exc), line)
            )
            continue
        acc.add(value)
    summary = acc.summary()
    return PartitionSummary(
        schema=summary.schema,
        record_count=summary.record_count,
        distinct_types=summary.distinct_types,
        skipped=tuple(skipped),
    )


@dataclass(frozen=True)
class MergedSummary:
    """The driver-side combination of every partition summary."""

    schema: Type
    record_count: int
    distinct_type_count: int
    skipped: tuple[BadRecord, ...]

    @property
    def skipped_count(self) -> int:
        """Total quarantined records across partitions."""
        return len(self.skipped)


def merge_summaries_full(
    summaries: Iterable[PartitionSummary],
) -> MergedSummary:
    """Driver-side merge of per-partition summaries, in partition order.

    The schema fold is safe in any grouping by associativity (Theorem
    5.5); the distinct count deduplicates *across* partitions
    structurally, since canonical objects from different interners (or
    processes) are distinct objects but compare equal.  Quarantined
    records are concatenated in partition order (i.e. file order).
    """
    schema: Type = EMPTY
    count = 0
    distinct: set[Type] = set()
    skipped: list[BadRecord] = []
    for summary in summaries:
        schema = fuse(schema, summary.schema)
        count += summary.record_count
        distinct.update(summary.distinct_types)
        skipped.extend(summary.skipped)
    return MergedSummary(schema, count, len(distinct), tuple(skipped))


def merge_summaries(
    summaries: Iterable[PartitionSummary],
) -> tuple[Type, int, int]:
    """Backward-compatible merge returning only
    ``(schema, record_count, distinct_type_count)``.

    See :func:`merge_summaries_full` for the variant that also carries
    the quarantine information.
    """
    merged = merge_summaries_full(summaries)
    return merged.schema, merged.record_count, merged.distinct_type_count
