"""Single-pass streaming inference kernel (the fast path of the pipeline).

The original pipeline materialises one type tree per record and then makes
three further passes over the cached collection (count, distinct, fuse).
This module collapses all of that into *one* pass per partition:

* :class:`PartitionAccumulator` consumes raw JSON values one at a time.
  Each value is typed **directly into interned form**: the Fig. 4 rules are
  applied bottom-up through a per-partition
  :class:`repro.core.interning.TypeInterner`, so structurally equal
  (sub)trees become the *same* object the moment they are inferred —
  there is never a second, un-pooled copy of the tree.
* Distinct-type counting falls out of interning for free: a top-level type
  is new exactly when its canonical object has not been seen before, an
  ``id()`` set membership test instead of a structural-hash ``set`` pass.
* Fusion is incremental and memoized through :class:`FusionMemo`: because
  operands are canonical, ``fuse(a, b)`` can be cached under the pointer
  pair ``(id(a), id(b))``.  On homogeneous or skewed data the running
  schema stabilises after a handful of records and every further record
  costs one dict lookup — near-zero fuse work.
* :meth:`PartitionAccumulator.summary` emits a tiny, picklable
  :class:`PartitionSummary` (schema + counts + distinct types), which is
  what crosses a process boundary when the scheduler runs with
  ``backend="process"``; :func:`merge_summaries` recombines the partials
  at the driver.  Any grouping of the merge yields the same schema — that
  is exactly the associativity theorem (Theorem 5.5), the same property
  that already licenses ``tree_reduce``.

Everything here is *exact*: the accumulator's schema, record count and
distinct-type count are identical (plain ``==``) to the naive
``fuse_all(infer_type(v) for v in values)`` path, which the property tests
check on arbitrary JSON values.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Sequence

from repro.core.errors import InvalidValueError
from repro.core.interning import TypeInterner
from repro.core.types import (
    ArrayType,
    BasicType,
    BOOL,
    EMPTY,
    EmptyType,
    Field,
    NULL,
    NUM,
    RecordType,
    STR,
    StarArrayType,
    Type,
    UnionType,
)
from repro.inference.fusion import (
    _addends_by_kind,
    fuse,
    lfuse,
)
from repro.inference.statistics import (
    StatsBundle,
    create_stats_bundle,
    merge_stats,
)
from repro.inference.typestream import (
    BytesBatchTyper,
    FastLaneMiss,
    HookTyper,
    LineTypeCache,
    make_typer,
    resolve_lane,
)
from repro.jsonio.blockscan import SplitBlockScanner
from repro.jsonio.errors import JsonError, JsonSyntaxError
from repro.jsonio.keycache import KeyCache
from repro.jsonio.ndjson import BadRecord
from repro.jsonio.parser import loads
from repro.jsonio.splits import (
    FileSplit,
    SplitLineReader,
    count_lines_before,
    rebase_bad_records,
)

__all__ = [
    "FusionMemo",
    "MergedSummary",
    "PartitionAccumulator",
    "PartitionSummary",
    "PhaseTimings",
    "TREE_MERGE_THRESHOLD",
    "WARM_STATE_NODE_LIMIT",
    "WIRE_FORMAT_VERSION",
    "WarmState",
    "accumulate_ndjson_partition",
    "accumulate_ndjson_partition_batch",
    "accumulate_ndjson_split",
    "accumulate_ndjson_split_batch",
    "accumulate_partition",
    "as_wire_payload",
    "decode_summary",
    "encode_summary",
    "merge_phase_timings",
    "merge_summaries",
    "merge_summaries_full",
    "merge_summary_group",
    "tree_merge_rows",
    "warm_state_for",
]


class FusionMemo:
    """Pointer-keyed memoizing re-implementation of ``Fuse`` (Fig. 6).

    Operands must be canonical instances of one interner (or the
    module-level singletons).  Two invariants make pointer keys sound:

    * every subtree of a canonical type is canonical (the interner builds
      bottom-up), so the *recursive* sub-fusions — matched record fields,
      array bodies, ``collapse`` of a positional array — can be memoized
      on ``(id(a), id(b))`` pairs too, not just the top-level call.  This
      is where the big win is: fusing a stable schema against a stream of
      record types repeats the same field-level sub-fusions over and over;
    * the interner's pool keeps every canonical type alive for the memo's
      lifetime, so an ``id()`` can never be reused by the allocator, and
      within one interner structural equality coincides with object
      identity — the ``t1 == t2`` fast path of :func:`fuse` becomes an
      ``is`` check.

    Results are interned through the same pool, so a schema that has
    converged keeps its identity and repeated fusions are O(1) dict hits.
    The output is identical (plain ``==``) to :func:`fuse`: the recursion
    mirrors ``Fuse``/``LFuse``/``collapse`` rule for rule, and memoization
    only short-circuits recomputation of a pure function.
    """

    def __init__(self, interner: TypeInterner) -> None:
        self._interner = interner
        self._memo: dict[tuple[int, int], Type] = {}
        self._collapse_memo: dict[int, Type] = {}
        # Result pools, keyed on the children a miss is about to build a
        # node from: when two *new* operand pairs fuse to a shape fused
        # before (typically the converged schema itself), the canonical
        # result is returned without node construction (sort, size, hash)
        # or an interner round trip.
        self._record_pool: dict[tuple[Field, ...], Type] = {}
        self._union_pool: dict[tuple[Type, ...], Type] = {}
        self._star_pool: dict[Type, Type] = {}
        self._collapse_pool: dict[tuple[Type, ...], Type] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        """Number of distinct operand pairs fused so far."""
        return len(self._memo)

    def fuse(self, a: Type, b: Type) -> Type:
        """Fuse two canonical types, serving repeats from the cache."""
        # Same object and no positional arrays: fuse is the identity
        # (the t1 == t2 fast path of fuse, by pointer; for canonical
        # operands of one interner the two tests are equivalent).
        if a is b and not a._has_positional:
            return a
        key = (id(a), id(b))
        found = self._memo.get(key)
        if found is not None:
            self.hits += 1
            return found
        self.misses += 1
        # _fuse composes canonical children through the result pools, so
        # its output is already canonical — no interner round trip.
        fused = self._fuse(a, b)
        self._memo[key] = fused
        return fused

    def _fuse(self, a: Type, b: Type) -> Type:
        """Fig. 6 line 1, recursing through the memo."""
        # Non-union, non-empty operands (by far the common case: a record
        # schema against a record type) have exactly one addend each, so
        # the kind indexes below collapse to one comparison.
        ka, kb = a.kind, b.kind
        if ka is not None and kb is not None:
            if ka is kb:
                return self._lfuse(a, b)
            return self._union((a, b))
        if a is EMPTY:
            return b
        if b is EMPTY:
            return a
        by_kind1 = _addends_by_kind(a)
        by_kind2 = _addends_by_kind(b)
        fused = [
            self._lfuse(u1, by_kind2[kind])
            for kind, u1 in by_kind1.items()
            if kind in by_kind2
        ]
        fused.extend(u for k, u in by_kind1.items() if k not in by_kind2)
        fused.extend(u for k, u in by_kind2.items() if k not in by_kind1)
        # make_union, unrolled: every entry is a non-union, non-empty
        # addend and kinds are unique by construction, so no flattening or
        # deduplication is needed.
        if not fused:
            return EMPTY
        if len(fused) == 1:
            return fused[0]
        return self._union(tuple(fused))

    def _union(self, members: tuple[Type, ...]) -> Type:
        """The canonical union of non-union, non-empty members."""
        found = self._union_pool.get(members)
        if found is None:
            found = self._interner.intern_node(UnionType(members))
            self._union_pool[members] = found
        return found

    def _lfuse(self, t1: Type, t2: Type) -> Type:
        """Fig. 6 lines 2-7 for two non-union addends of equal kind."""
        if isinstance(t1, RecordType) and isinstance(t2, RecordType):
            # FMatch/FUnmatch inlined (RecordType sorts its fields, so
            # emission order is free): one walk over t1 resolving against
            # t2's name index, then t2's leftovers.
            field = self._interner.field
            fuse = self.fuse
            f2_of = t2.field
            fields = []
            matched = 0
            for f1 in t1.fields:
                f2 = f2_of(f1.name)
                if f2 is None:
                    # The optional-flipped field must come from the
                    # interner too: intern_node requires every child to
                    # be canonical for subtree sharing to hold.
                    fields.append(f1 if f1.optional
                                  else field(f1.name, f1.type, True))
                    continue
                matched += 1
                ft = fuse(f1.type, f2.type)
                opt = f1.optional or f2.optional
                # Reuse the schema's own field node when fusion changed
                # nothing (the common case once the schema converges).
                if ft is f1.type and opt == f1.optional:
                    fields.append(f1)
                else:
                    fields.append(field(f1.name, ft, opt))
            if matched != len(t2.fields):
                for f2 in t2.fields:
                    if f2.name not in t1:
                        fields.append(f2 if f2.optional
                                      else field(f2.name, f2.type, True))
            shape = tuple(fields)
            found = self._record_pool.get(shape)
            if found is None:
                found = self._interner.intern_node(RecordType(shape))
                self._record_pool[shape] = found
            return found
        if isinstance(t1, (ArrayType, StarArrayType)) and isinstance(
            t2, (ArrayType, StarArrayType)
        ):
            # Fold a positional side's elements straight into the other
            # side's star body: fuse(B, collapse(es)) equals folding fuse
            # over {B} ∪ es in any grouping (associativity/commutativity,
            # Theorem 5.5), and the direct fold skips materialising the
            # intermediate collapsed union.  Once the schema side has
            # gone star — after its first array fusion — every further
            # record costs one memoized fuse per element, nearly all hits.
            if isinstance(t1, StarArrayType):
                body = t1.body
                if isinstance(t2, StarArrayType):
                    body = self.fuse(body, t2.body)
                else:
                    for element in t2.elements:
                        body = self.fuse(body, element)
            elif isinstance(t2, StarArrayType):
                body = t2.body
                for element in t1.elements:
                    body = self.fuse(body, element)
            else:
                body = self._star_body(t1)
                for element in t2.elements:
                    body = self.fuse(body, element)
            found = self._star_pool.get(body)
            if found is None:
                found = self._interner.intern_node(StarArrayType(body))
                self._star_pool[body] = found
            return found
        return lfuse(t1, t2)  # identical basic types (line 2), and errors

    def _star_body(self, t: Type) -> Type:
        """The star body of an array type; ``collapse`` memoized per
        canonical positional array object (Fig. 6 lines 8-9)."""
        if isinstance(t, StarArrayType):
            return t.body
        key = id(t)
        found = self._collapse_memo.get(key)
        if found is not None:
            return found
        # The collapse fold computes the join of the elements, and fuse
        # is idempotent on types without positional content (the ``a is
        # b`` fast path above), so repeated non-positional elements
        # contribute nothing — drop them.  Positional duplicates must
        # stay: fusing a positional array with itself collapses it.  The
        # deduplicated signature then keys a pool shared across distinct
        # arrays ([Num, Str] and [Num, Num, Str] collapse once).
        seen: set[int] = set()
        sig = []
        for element in t.elements:
            i = id(element)
            if i not in seen:
                seen.add(i)
                sig.append(element)
            elif element._has_positional:
                sig.append(element)
        signature = tuple(sig)
        body = self._collapse_pool.get(signature)
        if body is None:
            body = EMPTY
            for element in signature:
                body = self.fuse(body, element)
            self._collapse_pool[signature] = body
        self._collapse_memo[key] = body
        return body

    @property
    def hit_rate(self) -> float:
        """Fraction of memoized fuse calls served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class PhaseTimings:
    """Wall-clock attribution of one partition's map phase, per stage.

    The map phase of an NDJSON partition decomposes into three measurable
    stages, accumulated across the partition's records:

    * ``parse_s`` — tokenize + parse.  The tokenizer is a generator the
      parser drains, so lexing and parsing are interleaved and timed as
      one stage.  On a fast lane the record is typed *during* parsing
      (that is the whole point), so ``parse_s`` covers parse + type there
      and ``type_s`` stays zero.
    * ``type_s`` — value tree to interned type (strict lane only).
    * ``fuse_s`` — distinct-type tracking plus the memoized incremental
      fusion of the record's type into the running schema.

    ``lane`` records which resolved lane produced the numbers (``strict``,
    ``tokens``, ``hooks``, ``bytes``; ``mixed`` after merging
    heterogeneous partitions), so a benchmark delta can be attributed to
    the right phase of the right implementation.  On the ``bytes`` lane
    the stages are batch-grained: ``parse_s`` covers the vectorized
    decode+type calls (cache probes included), ``fuse_s`` the observe
    loop.
    """

    lane: str = "strict"
    parse_s: float = 0.0
    type_s: float = 0.0
    fuse_s: float = 0.0
    records: int = 0

    @property
    def map_s(self) -> float:
        """Total attributed map time (sum of the per-stage buckets)."""
        return self.parse_s + self.type_s + self.fuse_s

    @property
    def records_per_s(self) -> float:
        """Throughput over the attributed map time (0.0 when untimed)."""
        total = self.map_s
        return self.records / total if total else 0.0

    def describe(self) -> str:
        """One human-readable line for CLI reports.

        >>> PhaseTimings("strict", 1.0, 0.5, 0.5, 10000).describe()
        '[strict lane] parse 1.000s · type 0.500s · fuse 0.500s · 5,000 records/s'
        """
        if self.lane == "strict":
            stages = (f"parse {self.parse_s:.3f}s · type {self.type_s:.3f}s"
                      f" · fuse {self.fuse_s:.3f}s")
        else:
            stages = (f"parse+type {self.parse_s:.3f}s"
                      f" · fuse {self.fuse_s:.3f}s")
        return (f"[{self.lane} lane] {stages}"
                f" · {self.records_per_s:,.0f} records/s")


def merge_phase_timings(
    timings: Iterable["PhaseTimings | None"],
) -> "PhaseTimings | None":
    """Sum per-partition phase timings; ``None`` when none were recorded.

    Stage buckets add across partitions (total CPU-seconds attributed to
    each stage, regardless of overlap under a parallel backend).  The lane
    is preserved when every timed partition used the same one and reported
    as ``"mixed"`` otherwise.
    """
    rows = [t for t in timings if t is not None]
    if not rows:
        return None
    lanes = {t.lane for t in rows}
    return PhaseTimings(
        lane=lanes.pop() if len(lanes) == 1 else "mixed",
        parse_s=sum(t.parse_s for t in rows),
        type_s=sum(t.type_s for t in rows),
        fuse_s=sum(t.fuse_s for t in rows),
        records=sum(t.records for t in rows),
    )


@dataclass(frozen=True)
class PartitionSummary:
    """The tiny, picklable result of streaming one partition.

    ``distinct_types`` carries the partition's distinct top-level types so
    the driver can compute the *global* distinct count exactly (two
    partitions may share types); per the paper's measurements this set is
    orders of magnitude smaller than the record count.
    """

    schema: Type
    record_count: int
    distinct_types: tuple[Type, ...]
    #: Records quarantined during a permissive NDJSON partition pass
    #: (empty for already-parsed inputs).
    skipped: tuple[BadRecord, ...] = field(default=())
    #: Per-phase map timings (NDJSON partitions with
    #: ``collect_timings=True`` only; ``None`` when timing was off or for
    #: already-parsed inputs, whose parse phase happened elsewhere).
    timings: PhaseTimings | None = field(default=None)
    #: Physical lines owned by this partition's byte-range split (blank
    #: lines included), the quantity the driver prefix-sums to turn
    #: split-local line numbers into absolute ones.  Zero for partitions
    #: that were not read from a byte split.
    line_count: int = 0
    #: Bytes this partition read from its source file (byte-split
    #: partitions only) — the worker-side half of the engine's
    #: bytes-shipped vs bytes-read accounting.
    bytes_read: int = 0
    #: Telemetry: which worker produced this summary
    #: (``pid<N>/<thread-name>``) and whether it found warm per-worker
    #: kernel state waiting (``None`` when warm state was not in play).
    #: Excluded from equality — two runs of the same partition are the
    #: same result regardless of which worker computed it.
    worker: str = field(default="", compare=False, repr=False)
    warm_reused: "bool | None" = field(default=None, compare=False,
                                       repr=False)
    #: Telemetry of the bytes lane's duplicate-line type cache: lines
    #: whose raw bytes hit a cached type (no parse at all), lines that
    #: had to be parsed, and the raw bytes the hits avoided decoding.
    #: Zero on every other lane.  Excluded from equality like ``worker``
    #: — cache luck is not part of the result.
    dedup_hits: int = field(default=0, compare=False, repr=False)
    dedup_misses: int = field(default=0, compare=False, repr=False)
    dedup_bytes_avoided: int = field(default=0, compare=False, repr=False)
    #: Optional mergeable per-path statistics
    #: (:class:`repro.inference.statistics.StatsBundle`).  ``None`` when
    #: the run had ``stats="off"`` — the default, which keeps the hot
    #: path statistics-free.  Part of the result (compared), and rides
    #: the wire format (v3) and checkpoints like every other component.
    stats: "StatsBundle | None" = field(default=None)

    @property
    def distinct_type_count(self) -> int:
        """Distinct top-level types within this partition."""
        return len(self.distinct_types)

    @property
    def skipped_count(self) -> int:
        """Number of quarantined records in this partition."""
        return len(self.skipped)


#: A warm worker state whose interner has pooled more distinct type nodes
#: than this is retired and rebuilt on the worker's next task.  Interners
#: only grow (every distinct subtree stays alive for pointer-keyed
#: memoization), so a long-lived worker crossing many heterogeneous
#: datasets needs *some* bound; real schemas stay orders of magnitude
#: below it, so the cap never fires on a well-behaved feed.
WARM_STATE_NODE_LIMIT = 2_000_000


class WarmState:
    """Per-worker kernel state kept warm across partition tasks.

    The expensive part of a partition task is not the accumulator's
    counters — it is re-discovering the dataset's type universe: interning
    every distinct subtree, re-memoizing every fuse pair, re-deduplicating
    every field name.  Workers in a persistent pool process many
    partitions of the *same* dataset (and, across jobs, of similar ones),
    so that discovery work is shared here: one
    :class:`~repro.core.interning.TypeInterner`, one :class:`FusionMemo`,
    the construction pools, and one :class:`~repro.jsonio.keycache.KeyCache`
    per worker, handed to every accumulator the worker builds.

    Purely an optimization: canonicality is per-interner, and per-task
    *results* (schema, counts, distinct sets) live in the accumulator,
    which stays fresh per task — so summaries are identical with warm
    state on or off, which the equivalence tests check.

    ``generation`` tags the state with the scheduler generation it was
    built for; :func:`warm_state_for` rebuilds on a mismatch, which is
    how driver-side invalidation reaches workers without a round-trip.
    """

    __slots__ = ("generation", "interner", "memo", "record_pool",
                 "array_pool", "key_cache", "line_cache", "tasks_served",
                 "reused")

    def __init__(self, generation: int) -> None:
        self.generation = generation
        self.interner = TypeInterner()
        self.memo = FusionMemo(self.interner)
        self.record_pool: dict[tuple[Field, ...], Type] = {}
        self.array_pool: dict[tuple[Type, ...], Type] = {}
        self.key_cache = KeyCache()
        # The bytes lane's duplicate-line type cache.  Deliberately *in*
        # the warm state, next to the interner its values are canonical
        # in: a cached type is only sound to reuse while that interner is
        # alive, so the cache rides the same generation tag and is
        # dropped with the rest of the state on driver-side invalidation.
        self.line_cache = LineTypeCache()
        #: Tasks this state has served (including the one that built it).
        self.tasks_served = 0
        #: Whether the *current* task found this state already built —
        #: the flag each summary reports as ``warm_reused``.
        self.reused = False


# One warm state per worker *thread*: process-pool workers are
# single-threaded so this is per-process there, thread-pool workers each
# get their own (sharing one interner across concurrent tasks would race),
# and inline/re-entrant execution on the driver thread warms the driver's
# own slot harmlessly.
_WARM_STATES = threading.local()


def warm_state_for(
    generation: "int | None",
    node_limit: int = WARM_STATE_NODE_LIMIT,
) -> "WarmState | None":
    """This worker's warm state for ``generation``; ``None`` disables.

    Returns the thread-local :class:`WarmState`, rebuilding it when the
    generation tag differs (driver-side invalidation, or a scheduler
    restart) or the interner has outgrown ``node_limit``.  A fresh worker
    — including one forked after a pool crash — simply builds on first
    use, which is what keeps crash recovery oblivious to warming.
    """
    if generation is None:
        return None
    state: WarmState | None = getattr(_WARM_STATES, "state", None)
    if (state is None or state.generation != generation
            or len(state.interner) > node_limit):
        state = WarmState(generation)
        _WARM_STATES.state = state
    else:
        state.reused = True
    state.tasks_served += 1
    return state


class PartitionAccumulator:
    """Streaming schema accumulator: one pass, no materialised type list.

    >>> from repro.core.printer import print_type
    >>> acc = PartitionAccumulator()
    >>> acc.add_many([{"a": 1}, {"a": "x", "b": True}, {"a": 1}])
    >>> print_type(acc.schema)
    '{a: (Num + Str), b: Bool?}'
    >>> acc.record_count, acc.distinct_type_count
    (3, 2)

    With a :class:`WarmState`, the interner, fusion memo and construction
    pools come from (and keep feeding) the worker's warm caches, while the
    per-task results — schema, record count, distinct set — always start
    fresh; results are identical either way.
    """

    def __init__(
        self,
        warm: "WarmState | None" = None,
        stats_mode: str = "off",
    ) -> None:
        if warm is None:
            self.interner = TypeInterner()
            self.memo = FusionMemo(self.interner)
            # Construction pools: map tuples of canonical children straight
            # to the canonical node, skipping node construction (sort,
            # hash, size) for shapes seen before.  Keyed on the *unsorted*
            # child tuple, so two key orders of one record shape occupy two
            # entries mapping to the same canonical type — a deliberate
            # trade of a little memory for never re-sorting.
            self._record_pool: dict[tuple[Field, ...], Type] = {}
            self._array_pool: dict[tuple[Type, ...], Type] = {}
        else:
            self.interner = warm.interner
            self.memo = warm.memo
            self._record_pool = warm.record_pool
            self._array_pool = warm.array_pool
        self._schema: Type = EMPTY
        self._count = 0
        self._distinct_ids: set[int] = set()
        self._distinct: list[Type] = []
        #: Per-path statistics bundle, or ``None`` when stats are off.
        #: Always accumulator-private (never borrowed from warm state):
        #: statistics are per-task results, not shared caches.
        self.stats: "StatsBundle | None" = create_stats_bundle(stats_mode)

    @property
    def schema(self) -> Type:
        """The running fused schema (empty type before any record)."""
        return self._schema

    @property
    def record_count(self) -> int:
        """How many values have been streamed in."""
        return self._count

    @property
    def distinct_type_count(self) -> int:
        """Number of distinct top-level inferred types seen so far."""
        return len(self._distinct)

    def distinct_types(self) -> tuple[Type, ...]:
        """The distinct top-level types, in first-seen order."""
        return tuple(self._distinct)

    def add(self, value: Any) -> None:
        """Stream one JSON value: type, intern, count, fuse — one step."""
        # Stats ride behind one attribute load + None test — the whole
        # cost of the feature when it is off.  Observation happens after
        # typing, so an invalid value raises before touching the bundle.
        stats = self.stats
        if stats is None:
            self.observe(self._infer_interned(value))
            return
        t = self._infer_interned(value)
        stats.observe(value, t.size)
        self.observe(t)

    def type_value(self, value: Any) -> Type:
        """Type one JSON value into this accumulator's interned form.

        Does *not* count or fuse it — pair with :meth:`observe`, which
        together make up :meth:`add`.  Exposed separately so callers can
        time (or interleave) the typing and fusion stages independently.
        """
        return self._infer_interned(value)

    def observe(self, t: Type) -> None:
        """Count and fuse one *canonical* type from this accumulator.

        ``t`` must be interned here — produced by :meth:`type_value`, the
        pool helpers, or a fast-lane typer bound to this accumulator —
        so the distinct test can be a pointer test.
        """
        self._count += 1
        key = id(t)  # canonical => identity test suffices
        if key not in self._distinct_ids:
            self._distinct_ids.add(key)
            self._distinct.append(t)
        self._schema = self.memo.fuse(self._schema, t)

    def add_many(self, values: Iterable[Any]) -> None:
        """Stream a batch of values."""
        for value in values:
            self.add(value)

    def add_type(self, t: Type, records: int = 1) -> None:
        """Fuse a pre-computed type (e.g. a partial schema) into the schema.

        Does not contribute to the distinct top-level *value* types — it is
        a schema, not a record observation.
        """
        self._schema = self.memo.fuse(self._schema, self.interner.intern(t))
        self._count += records

    def add_summary(self, summary: PartitionSummary) -> None:
        """Fold a :class:`PartitionSummary` into this accumulator.

        The incremental-update primitive: a loaded checkpoint (or any
        other partial summary) merges into live state exactly as
        :func:`merge_summary_group` would merge it at the driver — the
        schema fuses in, the record counts add, and the summary's
        distinct top-level types join this accumulator's distinct set
        *structurally* (foreign types are interned here first, so the
        usual pointer-equality distinct test stays sound afterwards).
        """
        intern = self.interner.intern
        for t in summary.distinct_types:
            canonical = intern(t)
            key = id(canonical)
            if key not in self._distinct_ids:
                self._distinct_ids.add(key)
                self._distinct.append(canonical)
        self._schema = self.memo.fuse(self._schema, intern(summary.schema))
        self._count += summary.record_count
        # Statistics merge only when this accumulator collects them: a
        # stats-off accumulator produces stats-less summaries, and
        # adopting a foreign bundle here would alias state that
        # :meth:`add` later mutates.  merge() returns a fresh bundle.
        foreign = getattr(summary, "stats", None)
        if self.stats is not None and foreign is not None:
            self.stats = self.stats.merge(foreign)

    def summary(self) -> PartitionSummary:
        """Snapshot the accumulator as a small, picklable summary."""
        return PartitionSummary(
            schema=self._schema,
            record_count=self._count,
            distinct_types=tuple(self._distinct),
            stats=self.stats,
        )

    def record_type(self, shape: tuple[Field, ...]) -> Type:
        """The canonical record type for a tuple of canonical fields.

        The construction-pool lookup of :meth:`_infer`, exposed for the
        fast-lane typers (:mod:`repro.inference.typestream`), which build
        field tuples straight from JSON text.  ``shape`` keeps document
        key order; the pool maps it to the canonical (sorted) node.
        """
        t = self._record_pool.get(shape)
        if t is None:
            t = self.interner.intern_node(RecordType(shape))
            self._record_pool[shape] = t
        return t

    def array_type(self, elements: tuple[Type, ...]) -> Type:
        """The canonical array type for a tuple of canonical elements."""
        t = self._array_pool.get(elements)
        if t is None:
            t = self.interner.intern_node(ArrayType(elements))
            self._array_pool[elements] = t
        return t

    # ------------------------------------------------------------------
    # interned value typing (Fig. 4 fused with hash-consing)

    def _infer_interned(self, value: Any) -> Type:
        try:
            return self._infer(value)
        except RecursionError:
            raise InvalidValueError(
                "value is nested too deeply to type (exceeds the recursion "
                "limit); flatten the value or raise sys.setrecursionlimit"
            ) from None

    def _infer(self, value: Any) -> Type:
        # Mirrors repro.inference.infer.infer_type rule for rule, but
        # builds each node from canonical children and pools it
        # immediately, so the tree is born interned.  Dispatches on the
        # exact type first — JSON parsing only ever yields the six builtin
        # types — and falls back to the isinstance chain for subclasses,
        # preserving infer_type's semantics (bool before int, etc.).
        tv = type(value)
        if tv is str:
            return STR
        if tv is int or tv is float:
            return NUM
        if tv is bool:
            return BOOL
        if value is None:
            return NULL
        if tv is dict:
            fields = []
            field = self.interner.field
            for key, sub in value.items():
                if type(key) is not str and not isinstance(key, str):
                    raise InvalidValueError(f"non-string record key: {key!r}")
                fields.append(field(key, self._infer(sub)))
            shape = tuple(fields)
            t = self._record_pool.get(shape)
            if t is None:
                t = self.interner.intern_node(RecordType(shape))
                self._record_pool[shape] = t
            return t
        if tv is list:
            elements = tuple(self._infer(v) for v in value)
            t = self._array_pool.get(elements)
            if t is None:
                t = self.interner.intern_node(ArrayType(elements))
                self._array_pool[elements] = t
            return t
        # Subclasses of the builtin types (IntEnum, OrderedDict, ...).
        if isinstance(value, bool):
            return BOOL
        if isinstance(value, (int, float)):
            return NUM
        if isinstance(value, str):
            return STR
        if isinstance(value, dict):
            return self._infer(dict(value))
        if isinstance(value, list):
            return self._infer(list(value))
        raise InvalidValueError(f"not a JSON value: {type(value).__name__}")


# ---------------------------------------------------------------------------
# Compact summary wire format (the task return path of the process backend)
#
# Pickling a PartitionSummary serialises the schema and every distinct
# type as an object graph: one __reduce__ frame per node, class
# references and per-node constructor tuples included — and the
# driver-side unpickle rebuilds each tree only for add_summary to
# re-intern it structurally, node by node.  The wire format flattens
# instead: every distinct type node becomes a few small integers in one
# postorder op-stream (children precede parents, references are table
# indices), field names live once in a deduplicated string table, and
# shared subtrees — the whole point of interning — are stored exactly
# once.  IPC cost therefore scales with the number of distinct nodes,
# not with the summed size of the trees, and the driver decodes
# *directly into* an accumulator's interner, so adoption is canonical
# from the start instead of a second structural interning pass.

#: Version tag leading every encoded payload; bump on layout changes.
#: v2 appended the bytes lane's dedup-cache telemetry counters; v3
#: appended the optional statistics block (``None`` when stats are off).
WIRE_FORMAT_VERSION = 3

#: Older versions the decoders still read (missing fields default).  v2
#: payloads — pre-stats journals and cached summaries — decode with
#: ``stats=None``, so old run journals stay resumable across the bump.
_WIRE_READ_VERSIONS = frozenset({2, WIRE_FORMAT_VERSION})

#: Node-table indices 0-4 are pre-seeded with the leaf singletons — they
#: never occupy ops in the payload.
_WIRE_BASE = (NULL, BOOL, NUM, STR, EMPTY)
_WIRE_BASIC_INDEX = {int(t.kind): i for i, t in enumerate(_WIRE_BASE[:4])}
_WIRE_EMPTY_INDEX = 4

# Op tags, one per composite node constructor.
_WIRE_RECORD = 0
_WIRE_ARRAY = 1
_WIRE_STAR = 2
_WIRE_UNION = 3


class _WireEncoder:
    """Flattens canonical type DAGs into the op-stream + key table."""

    __slots__ = ("ops", "keys", "_key_index", "_node_index", "_next")

    def __init__(self) -> None:
        #: The flat op-stream: ``RECORD n mask (key child)*n`` /
        #: ``ARRAY n child*n`` / ``STAR body`` / ``UNION n member*n``.
        #: One homogeneous list of small ints pickles far more compactly
        #: than per-node tuples.
        self.ops: list[int] = []
        self.keys: list[str] = []
        self._key_index: dict[str, int] = {}
        self._node_index: dict[int, int] = {}
        self._next = len(_WIRE_BASE)

    def _key(self, name: str) -> int:
        found = self._key_index.get(name)
        if found is None:
            found = self._key_index[name] = len(self.keys)
            self.keys.append(name)
        return found

    def encode(self, t: Type) -> int:
        """Emit ``t``'s unseen nodes (postorder); returns its table index.

        Memoized by ``id()``: within one summary the types are canonical
        in one interner, so shared subtrees are emitted once.
        Structurally equal nodes from *different* interners would get
        separate ops — harmless, and never produced by the kernel.
        """
        node_index = self._node_index
        key = id(t)
        found = node_index.get(key)
        if found is not None:
            return found
        if isinstance(t, BasicType):
            i = _WIRE_BASIC_INDEX[int(t.kind)]
        elif isinstance(t, EmptyType):
            i = _WIRE_EMPTY_INDEX
        elif isinstance(t, RecordType):
            fields = t.fields
            mask = 0
            pairs = []
            for bit, f in enumerate(fields):
                if f.optional:
                    mask |= 1 << bit
                pairs.append((self._key(f.name), self.encode(f.type)))
            ops = self.ops
            ops.append(_WIRE_RECORD)
            ops.append(len(fields))
            ops.append(mask)
            for key_i, child_i in pairs:
                ops.append(key_i)
                ops.append(child_i)
            i = self._next
            self._next += 1
        elif isinstance(t, StarArrayType):
            body = self.encode(t.body)
            self.ops.extend((_WIRE_STAR, body))
            i = self._next
            self._next += 1
        elif isinstance(t, ArrayType):
            children = [self.encode(e) for e in t.elements]
            self.ops.extend((_WIRE_ARRAY, len(children)))
            self.ops.extend(children)
            i = self._next
            self._next += 1
        elif isinstance(t, UnionType):
            members = [self.encode(m) for m in t.members]
            self.ops.extend((_WIRE_UNION, len(members)))
            self.ops.extend(members)
            i = self._next
            self._next += 1
        else:
            raise TypeError(
                f"cannot wire-encode type node {type(t).__name__}"
            )
        node_index[key] = i
        return i


def encode_summary(summary: PartitionSummary) -> bytes:
    """Encode a summary as the compact flat-table wire payload.

    The schema and every distinct type share one node table; everything
    else (counts, quarantined records, timings, telemetry) rides along
    as plain data.  :func:`decode_summary` inverts this exactly —
    ``decode_summary(encode_summary(s)) == s``.
    """
    enc = _WireEncoder()
    schema_i = enc.encode(summary.schema)
    distinct_i = [enc.encode(t) for t in summary.distinct_types]
    payload = (
        WIRE_FORMAT_VERSION,
        tuple(enc.keys),
        enc.ops,
        schema_i,
        distinct_i,
        summary.record_count,
        summary.skipped,
        summary.timings,
        summary.line_count,
        summary.bytes_read,
        summary.worker,
        summary.warm_reused,
        summary.dedup_hits,
        summary.dedup_misses,
        summary.dedup_bytes_avoided,
        None if summary.stats is None else summary.stats.to_wire(),
    )
    return pickle.dumps(payload, pickle.HIGHEST_PROTOCOL)


def _decode_types(
    keys: Sequence[str],
    ops: Sequence[int],
    acc: "PartitionAccumulator | None",
) -> list:
    """Replay the op-stream; entry ``i`` of the result is node ``i``.

    With an accumulator the nodes are built *canonical in its interner*
    (fields through the field cache, records/arrays through the
    construction pools), so the driver's adoption needs no structural
    re-interning afterwards.  Without one, plain constructors rebuild
    structurally equal trees.
    """
    types: list[Type] = list(_WIRE_BASE)
    append = types.append
    pos = 0
    end = len(ops)
    if acc is not None:
        make_field = acc.interner.field
        intern_node = acc.interner.intern_node
        record_type = acc.record_type
        array_type = acc.array_type
        while pos < end:
            tag = ops[pos]
            if tag == _WIRE_RECORD:
                n = ops[pos + 1]
                mask = ops[pos + 2]
                pos += 3
                shape = []
                for bit in range(n):
                    shape.append(make_field(
                        keys[ops[pos]], types[ops[pos + 1]],
                        bool(mask >> bit & 1),
                    ))
                    pos += 2
                append(record_type(tuple(shape)))
            elif tag == _WIRE_ARRAY:
                n = ops[pos + 1]
                pos += 2
                append(array_type(
                    tuple(types[ops[pos + j]] for j in range(n))
                ))
                pos += n
            elif tag == _WIRE_STAR:
                append(intern_node(StarArrayType(types[ops[pos + 1]])))
                pos += 2
            elif tag == _WIRE_UNION:
                n = ops[pos + 1]
                pos += 2
                append(intern_node(UnionType(
                    tuple(types[ops[pos + j]] for j in range(n))
                )))
                pos += n
            else:
                raise ValueError(f"unknown wire op tag {tag!r}")
        return types
    while pos < end:
        tag = ops[pos]
        if tag == _WIRE_RECORD:
            n = ops[pos + 1]
            mask = ops[pos + 2]
            pos += 3
            fields = []
            for bit in range(n):
                fields.append(Field(
                    keys[ops[pos]], types[ops[pos + 1]],
                    bool(mask >> bit & 1),
                ))
                pos += 2
            append(RecordType(fields))
        elif tag == _WIRE_ARRAY:
            n = ops[pos + 1]
            pos += 2
            append(ArrayType(types[ops[pos + j]] for j in range(n)))
            pos += n
        elif tag == _WIRE_STAR:
            append(StarArrayType(types[ops[pos + 1]]))
            pos += 2
        elif tag == _WIRE_UNION:
            n = ops[pos + 1]
            pos += 2
            append(UnionType(
                tuple(types[ops[pos + j]] for j in range(n))
            ))
            pos += n
        else:
            raise ValueError(f"unknown wire op tag {tag!r}")
    return types


def _unpack_wire_payload(payload: bytes) -> tuple:
    """Shared unpickle + version gate + field unpack of both decoders.

    Returns the v3 field tuple (stats block last, already decoded into a
    :class:`StatsBundle` or ``None``); v2 payloads — pre-stats journals
    and cached summaries — unpack with ``stats=None``.  Foreign versions
    raise the "unsupported … version" ValueError, anything structurally
    broken the "malformed" one.
    """
    try:
        decoded = pickle.loads(payload)
        if len(decoded) == 15:
            # v2 frame: no stats block.
            (version, keys, ops, schema_i, distinct_i, record_count,
             skipped, timings, line_count, bytes_read, worker,
             warm_reused, dedup_hits, dedup_misses,
             dedup_bytes_avoided) = decoded
            stats_wire = None
        else:
            (version, keys, ops, schema_i, distinct_i, record_count,
             skipped, timings, line_count, bytes_read, worker,
             warm_reused, dedup_hits, dedup_misses, dedup_bytes_avoided,
             stats_wire) = decoded
    except Exception as exc:
        raise ValueError(f"malformed summary wire payload: {exc}") from exc
    if version not in _WIRE_READ_VERSIONS:
        raise ValueError(
            f"unsupported summary wire format version {version!r} "
            f"(expected {WIRE_FORMAT_VERSION})"
        )
    try:
        if version == 2 and stats_wire is not None:
            raise ValueError("v2 frames carry no stats block")
        stats = (None if stats_wire is None
                 else StatsBundle.from_wire(stats_wire))
    except Exception as exc:
        raise ValueError(f"malformed summary wire payload: {exc}") from exc
    return (keys, ops, schema_i, distinct_i, record_count, skipped,
            timings, line_count, bytes_read, worker, warm_reused,
            dedup_hits, dedup_misses, dedup_bytes_avoided, stats)


def decode_summary(
    payload: bytes, acc: "PartitionAccumulator | None" = None
) -> PartitionSummary:
    """Decode a wire payload back into a :class:`PartitionSummary`.

    Pass the driver's adoption accumulator as ``acc`` to build the types
    canonical in *its* interner — summaries decoded through one
    accumulator share subtrees across partitions, so the driver-side
    merge deduplicates by pointer from the start.
    """
    (keys, ops, schema_i, distinct_i, record_count, skipped, timings,
     line_count, bytes_read, worker, warm_reused, dedup_hits,
     dedup_misses, dedup_bytes_avoided, stats) = _unpack_wire_payload(payload)
    types = _decode_types(keys, ops, acc)
    return PartitionSummary(
        schema=types[schema_i],
        record_count=record_count,
        distinct_types=tuple(types[i] for i in distinct_i),
        skipped=skipped,
        timings=timings,
        line_count=line_count,
        bytes_read=bytes_read,
        worker=worker,
        warm_reused=warm_reused,
        dedup_hits=dedup_hits,
        dedup_misses=dedup_misses,
        dedup_bytes_avoided=dedup_bytes_avoided,
        stats=stats,
    )


def as_wire_payload(result: "PartitionSummary | bytes") -> bytes:
    """Wire-format bytes for one map-task result, whatever its shape.

    The accumulate tasks return either a :class:`PartitionSummary`
    object (thread backend, wire format off) or an
    :func:`encode_summary` payload (process backend / journaled runs).
    The cross-run summary cache stores every entry in wire form so a hit
    replays through the same adoption decode regardless of which shape
    produced it; this is the store-side seam that normalises both.
    """
    if isinstance(result, (bytes, bytearray)):
        return bytes(result)
    return encode_summary(result)


# ---------------------------------------------------------------------------
# Light decode: digests instead of materialised distinct types.
#
# A cache-hit partition that only feeds a plain inference run needs its
# counts, its quarantined records and its (small, already fused) schema —
# but of the distinct-type *set*, only the cross-partition union size.
# Rebuilding tens of thousands of interned type trees just to count them
# dominates warm-replay time on heterogeneous data, so the light path
# replaces each distinct type with a canonical 32-byte structural digest
# computed straight off the op-stream: no constructors, no sorting, no
# interning.  Digest equality coincides with :class:`Type` equality (the
# recursion mirrors each ``__eq__`` exactly, keyed by per-class tags), so
# ``len(set(digests))`` equals the structural distinct count.

def type_digest(t: Type, _memo: "dict[int, bytes] | None" = None) -> bytes:
    """Canonical sha-256 of a type node: equal types, equal digests.

    Memoized by ``id()`` across one call tree, so interned DAGs hash each
    shared subtree once.  The per-class tag bytes mirror the wire op tags;
    field names are length-prefixed so no name/flag concatenation can
    collide with another shape.
    """
    if _memo is None:
        _memo = {}
    found = _memo.get(id(t))
    if found is not None:
        return found
    sha = hashlib.sha256
    if isinstance(t, BasicType):
        digest = sha(b"B%d" % int(t.kind)).digest()
    elif isinstance(t, EmptyType):
        digest = sha(b"E").digest()
    elif isinstance(t, RecordType):
        h = sha(b"R")
        for f in t.fields:
            name = f.name.encode("utf-8")
            h.update(len(name).to_bytes(4, "big"))
            h.update(name)
            h.update(b"\x01" if f.optional else b"\x00")
            h.update(type_digest(f.type, _memo))
        digest = h.digest()
    elif isinstance(t, StarArrayType):
        digest = sha(b"S" + type_digest(t.body, _memo)).digest()
    elif isinstance(t, ArrayType):
        h = sha(b"A")
        for e in t.elements:
            h.update(type_digest(e, _memo))
        digest = h.digest()
    elif isinstance(t, UnionType):
        h = sha(b"U")
        for m in t.members:
            h.update(type_digest(m, _memo))
        digest = h.digest()
    else:
        raise TypeError(f"cannot digest type node {type(t).__name__}")
    _memo[id(t)] = digest
    return digest


_WIRE_BASE_DIGESTS: "tuple[bytes, ...] | None" = None


def _wire_base_digests() -> "tuple[bytes, ...]":
    global _WIRE_BASE_DIGESTS
    if _WIRE_BASE_DIGESTS is None:
        memo: dict[int, bytes] = {}
        _WIRE_BASE_DIGESTS = tuple(type_digest(t, memo) for t in _WIRE_BASE)
    return _WIRE_BASE_DIGESTS


def _walk_wire_digests(
    keys: Sequence[str], ops: Sequence[int]
) -> "tuple[list[bytes], list[int]]":
    """One pass over the op-stream: a digest per node, no objects built.

    Returns ``(digests, node_pos)`` where ``digests[i]`` is node ``i``'s
    canonical digest (indexed like the decode table, base leaves first)
    and ``node_pos[j]`` is the op offset of composite node
    ``len(_WIRE_BASE) + j`` — enough for a later selective materialise of
    just the schema subtree.
    """
    digests = list(_wire_base_digests())
    node_pos: list[int] = []
    key_bytes = [k.encode("utf-8") for k in keys]
    key_len = [len(kb).to_bytes(4, "big") for kb in key_bytes]
    sha = hashlib.sha256
    pos = 0
    end = len(ops)
    while pos < end:
        node_pos.append(pos)
        tag = ops[pos]
        if tag == _WIRE_RECORD:
            n = ops[pos + 1]
            mask = ops[pos + 2]
            pos += 3
            h = sha(b"R")
            for bit in range(n):
                ki = ops[pos]
                h.update(key_len[ki])
                h.update(key_bytes[ki])
                h.update(b"\x01" if mask >> bit & 1 else b"\x00")
                h.update(digests[ops[pos + 1]])
                pos += 2
            digests.append(h.digest())
        elif tag == _WIRE_ARRAY:
            n = ops[pos + 1]
            pos += 2
            h = sha(b"A")
            for j in range(n):
                h.update(digests[ops[pos + j]])
            pos += n
            digests.append(h.digest())
        elif tag == _WIRE_STAR:
            digests.append(sha(b"S" + digests[ops[pos + 1]]).digest())
            pos += 2
        elif tag == _WIRE_UNION:
            n = ops[pos + 1]
            pos += 2
            h = sha(b"U")
            for j in range(n):
                h.update(digests[ops[pos + j]])
            pos += n
            digests.append(h.digest())
        else:
            raise ValueError(f"unknown wire op tag {tag!r}")
    return digests, node_pos


def _materialize_wire_node(
    i: int,
    keys: Sequence[str],
    ops: Sequence[int],
    node_pos: Sequence[int],
    _cache: "dict[int, Type] | None" = None,
) -> Type:
    """Build only node ``i``'s subtree from the op-stream (plain
    constructors, memoized per call tree) — the schema of a fused
    partition is a few dozen nodes even when the distinct set holds
    tens of thousands."""
    if i < len(_WIRE_BASE):
        return _WIRE_BASE[i]
    if _cache is None:
        _cache = {}
    found = _cache.get(i)
    if found is not None:
        return found
    pos = node_pos[i - len(_WIRE_BASE)]
    tag = ops[pos]
    node: Type
    if tag == _WIRE_RECORD:
        n = ops[pos + 1]
        mask = ops[pos + 2]
        pos += 3
        fields = []
        for bit in range(n):
            fields.append(Field(
                keys[ops[pos]],
                _materialize_wire_node(
                    ops[pos + 1], keys, ops, node_pos, _cache
                ),
                bool(mask >> bit & 1),
            ))
            pos += 2
        node = RecordType(fields)
    elif tag == _WIRE_ARRAY:
        n = ops[pos + 1]
        pos += 2
        node = ArrayType(
            _materialize_wire_node(ops[pos + j], keys, ops, node_pos, _cache)
            for j in range(n)
        )
    elif tag == _WIRE_STAR:
        node = StarArrayType(_materialize_wire_node(
            ops[pos + 1], keys, ops, node_pos, _cache
        ))
    else:
        n = ops[pos + 1]
        pos += 2
        node = UnionType(tuple(
            _materialize_wire_node(ops[pos + j], keys, ops, node_pos, _cache)
            for j in range(n)
        ))
    _cache[i] = node
    return node


def decode_summary_light(
    payload: bytes,
) -> "tuple[PartitionSummary, tuple[bytes, ...]]":
    """Decode a wire payload without materialising its distinct types.

    Returns ``(summary, digests)``: the summary carries every plain-data
    field plus the materialised *schema* subtree but an empty
    ``distinct_types``; ``digests`` holds one canonical
    :func:`type_digest` per stored distinct type, suitable for exact
    cross-partition distinct counting by set union.  Raises
    :class:`ValueError` on anything malformed, exactly like
    :func:`decode_summary`.
    """
    (keys, ops, schema_i, distinct_i, record_count, skipped, timings,
     line_count, bytes_read, worker, warm_reused, dedup_hits,
     dedup_misses, dedup_bytes_avoided, stats) = _unpack_wire_payload(payload)
    digests, node_pos = _walk_wire_digests(keys, ops)
    summary = PartitionSummary(
        schema=_materialize_wire_node(schema_i, keys, ops, node_pos),
        record_count=record_count,
        distinct_types=(),
        skipped=skipped,
        timings=timings,
        line_count=line_count,
        bytes_read=bytes_read,
        worker=worker,
        warm_reused=warm_reused,
        dedup_hits=dedup_hits,
        dedup_misses=dedup_misses,
        dedup_bytes_avoided=dedup_bytes_avoided,
        stats=stats,
    )
    return summary, tuple(digests[i] for i in distinct_i)


def _worker_name() -> str:
    """Telemetry identity of the executing worker (pid + thread name)."""
    return f"pid{os.getpid()}/{threading.current_thread().name}"


def accumulate_partition(
    values: Iterable[Any],
    warm_generation: "int | None" = None,
    wire: bool = False,
    stats_mode: str = "off",
) -> "PartitionSummary | bytes":
    """Stream one partition through an accumulator.

    A module-level function on purpose: it is picklable, so the scheduler's
    process backend can ship it (with the partition's raw values) to a
    worker process and get the tiny summary back.  ``warm_generation``
    (from :attr:`repro.engine.scheduler.Scheduler.warm_generation`)
    enables the worker's warm kernel state; ``wire=True`` returns the
    summary wire-encoded (see :func:`encode_summary`); ``stats_mode``
    (``off``/``basic``/``sketches``) opts the summary into per-path
    statistics.
    """
    warm = warm_state_for(warm_generation)
    acc = PartitionAccumulator(warm, stats_mode=stats_mode)
    acc.add_many(values)
    summary = replace(
        acc.summary(),
        worker=_worker_name(),
        warm_reused=warm.reused if warm is not None else None,
    )
    return encode_summary(summary) if wire else summary


#: Batch granularity of the bytes lane (raw bytes per block-scanner batch
#: and characters per line-mode batch): one vectorized decode call per
#: roughly this much input.
_BYTES_BATCH_CHARS = 1 << 20


def accumulate_ndjson_partition(
    numbered_lines: Iterable[tuple[int, str]],
    source: str | None = None,
    permissive: bool = False,
    parse_lane: str = "auto",
    collect_timings: bool = False,
    warm_generation: "int | None" = None,
    wire: bool = False,
    stats_mode: str = "off",
    _warm: "WarmState | None" = None,
) -> "PartitionSummary | bytes":
    """Parse and stream one partition of raw NDJSON lines in a single pass.

    ``numbered_lines`` pairs each record's text with its absolute file
    line number, so parsing *inside the partition* (in parallel, possibly
    in another process) still produces errors and quarantine entries that
    point at the right line of the right file.

    ``parse_lane`` selects the map-phase implementation (see
    :func:`repro.inference.typestream.resolve_lane`): on a fast lane each
    record is typed *during* parsing with no intermediate value tree, and
    any record the fast lane cannot handle — malformed text, duplicate
    keys — is re-parsed by the strict :func:`repro.jsonio.parser.loads`
    lane, so error diagnostics and quarantine entries (absolute file line
    numbers included) are byte-identical across lanes.

    In strict mode (default) the first malformed line raises, failing the
    task; in permissive mode it is quarantined into the summary's
    ``skipped`` tuple and the pass continues.  Like
    :func:`accumulate_partition`, this is a module-level function over
    picklable data by design: it rides the scheduler's process backend.

    With ``collect_timings=True`` the summary carries per-stage
    :class:`PhaseTimings` for the partition, at the cost of two to three
    clock reads per record; the default leaves the hot loop untimed and
    the summary's ``timings`` as ``None``.

    ``warm_generation`` enables the worker's warm kernel state (see
    :class:`WarmState`); ``wire=True`` returns the wire-encoded summary.
    ``_warm`` is internal: batch/split wrappers that already claimed the
    warm state for this task pass it through so the claim (and its
    telemetry) happens exactly once.

    ``stats_mode`` other than ``off`` collects per-path statistics,
    which need materialised values — the lane is forced to ``strict``.
    Every lane produces the identical schema, so a stats-on run's
    schema equals the stats-off run's on any lane.
    """
    lane = resolve_lane(parse_lane)
    if stats_mode != "off":
        lane = "strict"
    warm = _warm if _warm is not None else warm_state_for(warm_generation)
    acc = PartitionAccumulator(warm, stats_mode=stats_mode)
    skipped: list[BadRecord] = []
    parse_s = type_s = fuse_s = 0.0
    dedup_hits = dedup_misses = dedup_bytes_avoided = 0

    def quarantine(line_number: int, line: str, exc: JsonError) -> None:
        skipped.append(
            BadRecord(source or "<memory>", line_number, str(exc), line)
        )

    if lane == "bytes":
        # Vectorized lane over already-decoded text: batch the lines,
        # type each batch in one C decode through the batch typer, and
        # arbitrate any batch it rejects per line — hook typer first,
        # strict re-parse for the final verdict — so errors, quarantine
        # entries and the schema are identical to every other lane.
        typer = BytesBatchTyper(
            acc,
            key_cache=warm.key_cache if warm is not None else None,
            line_cache=warm.line_cache if warm is not None else None,
        )
        observe = acc.observe
        fallback: "HookTyper | None" = None
        perf = time.perf_counter if collect_timings else None
        numbers: list[int] = []
        lines: list[str] = []
        pending = 0

        def flush() -> None:
            nonlocal parse_s, fuse_s, fallback
            t0 = perf() if perf is not None else 0.0
            try:
                types = typer.type_text_lines(lines)
            except FastLaneMiss:
                # Per-line arbitration, identical to the fast lane's.
                if fallback is None:
                    fallback = HookTyper(
                        acc,
                        key_cache=(warm.key_cache if warm is not None
                                   else None),
                    )
                type_document = fallback.type_document
                types = []
                append = types.append
                for line_number, line in zip(numbers, lines):
                    try:
                        t = type_document(line)
                    except (FastLaneMiss, JsonError):
                        try:
                            value = loads(line, source=source,
                                          first_line=line_number)
                        except JsonError as exc:
                            if not permissive:
                                raise
                            quarantine(line_number, line, exc)
                            continue
                        t = acc.type_value(value)
                    append(t)
            t1 = perf() if perf is not None else 0.0
            for t in types:
                observe(t)
            if perf is not None:
                parse_s += t1 - t0
                fuse_s += perf() - t1

        for line_number, line in numbered_lines:
            numbers.append(line_number)
            lines.append(line)
            pending += len(line)
            if pending >= _BYTES_BATCH_CHARS:
                flush()
                numbers.clear()
                lines.clear()
                pending = 0
        if lines:
            flush()
        dedup_hits = typer.hits
        dedup_misses = typer.misses
        dedup_bytes_avoided = typer.bytes_avoided
    elif lane == "strict":
        if collect_timings:
            perf = time.perf_counter
            for line_number, line in numbered_lines:
                t0 = perf()
                try:
                    value = loads(line, source=source,
                                  first_line=line_number)
                except JsonError as exc:
                    parse_s += perf() - t0
                    if not permissive:
                        raise
                    quarantine(line_number, line, exc)
                    continue
                t1 = perf()
                t = acc.type_value(value)
                t2 = perf()
                acc.observe(t)
                t3 = perf()
                parse_s += t1 - t0
                type_s += t2 - t1
                fuse_s += t3 - t2
                # Outside the three timed stages on purpose: statistics
                # are a fourth concern and must not skew the parse /
                # type / fuse attribution the timings report.
                if acc.stats is not None:
                    acc.stats.observe(value, t.size)
        else:
            add = acc.add
            for line_number, line in numbered_lines:
                try:
                    value = loads(line, source=source,
                                  first_line=line_number)
                except JsonError as exc:
                    if not permissive:
                        raise
                    quarantine(line_number, line, exc)
                    continue
                add(value)
    else:
        typer = make_typer(
            lane, acc,
            key_cache=warm.key_cache if warm is not None else None,
        )
        type_document = typer.type_document
        observe = acc.observe
        if collect_timings:
            perf = time.perf_counter
            for line_number, line in numbered_lines:
                t0 = perf()
                try:
                    t = type_document(line)
                except (FastLaneMiss, JsonError):
                    # Diagnostics lane: re-parse strictly so the error (or
                    # quarantine entry) is byte-identical to a strict run.
                    # Costs a double parse on malformed records only.
                    try:
                        value = loads(line, source=source,
                                      first_line=line_number)
                    except JsonError as exc:
                        parse_s += perf() - t0
                        if not permissive:
                            raise
                        quarantine(line_number, line, exc)
                        continue
                    # The lanes disagreed on acceptance: defer to strict.
                    t = acc.type_value(value)
                t1 = perf()
                observe(t)
                t2 = perf()
                parse_s += t1 - t0
                fuse_s += t2 - t1
        else:
            for line_number, line in numbered_lines:
                try:
                    t = type_document(line)
                except (FastLaneMiss, JsonError):
                    # Same strict-arbitration fallback as above, untimed.
                    try:
                        value = loads(line, source=source,
                                      first_line=line_number)
                    except JsonError as exc:
                        if not permissive:
                            raise
                        quarantine(line_number, line, exc)
                        continue
                    t = acc.type_value(value)
                observe(t)

    summary = acc.summary()
    timings = None
    if collect_timings:
        timings = PhaseTimings(
            lane=lane,
            parse_s=parse_s,
            type_s=type_s,
            fuse_s=fuse_s,
            records=summary.record_count,
        )
    summary = PartitionSummary(
        schema=summary.schema,
        record_count=summary.record_count,
        distinct_types=summary.distinct_types,
        skipped=tuple(skipped),
        timings=timings,
        worker=_worker_name(),
        warm_reused=warm.reused if warm is not None else None,
        dedup_hits=dedup_hits,
        dedup_misses=dedup_misses,
        dedup_bytes_avoided=dedup_bytes_avoided,
        stats=acc.stats,
    )
    return encode_summary(summary) if wire else summary


def _accumulate_split(
    split: FileSplit,
    permissive: bool,
    parse_lane: str,
    collect_timings: bool,
    warm: "WarmState | None",
    stats_mode: str = "off",
) -> PartitionSummary:
    """One split's summary (plain, never wire-encoded), with an already
    claimed warm state; shared by the single-split and batch tasks."""
    # Statistics need materialised values, so a stats-on split always
    # takes the line-reader path (the lane is forced to strict below).
    if resolve_lane(parse_lane) == "bytes" and stats_mode == "off":
        return _accumulate_split_bytes(
            split, permissive, collect_timings, warm
        )
    reader = SplitLineReader(split)
    try:
        summary = accumulate_ndjson_partition(
            reader,
            source=split.path,
            permissive=permissive,
            parse_lane=parse_lane,
            collect_timings=collect_timings,
            stats_mode=stats_mode,
            _warm=warm,
        )
    except JsonSyntaxError as exc:
        if split.offset == 0:
            raise
        base = count_lines_before(split.path, split.offset)
        raise exc.relocate(split.path, exc.line + base) from None
    return replace(
        summary, line_count=reader.line_count, bytes_read=reader.bytes_read
    )


def _accumulate_split_bytes(
    split: FileSplit,
    permissive: bool,
    collect_timings: bool,
    warm: "WarmState | None",
) -> PartitionSummary:
    """The bytes lane's split task: mmap scan, batch type, zero decode.

    The zero-copy hot path of the lane: the block scanner hands out raw
    line slices of the mapped file, the batch typer feeds whole batches
    through one C ``json`` decode (probing the warm duplicate-line cache
    first), and only batches the fast path rejects — malformed records,
    whitespace-padded or non-UTF-8 lines, surrogate escapes — fall back
    to the per-line text path: decode + strip + hook typer + strict
    re-parse, byte-identical errors, quarantine entries (split-local
    line numbers, as ever) and schema included.
    """
    acc = PartitionAccumulator(warm)
    typer = BytesBatchTyper(
        acc,
        key_cache=warm.key_cache if warm is not None else None,
        line_cache=warm.line_cache if warm is not None else None,
    )
    skipped: list[BadRecord] = []
    observe = acc.observe
    fallback: "HookTyper | None" = None
    parse_s = fuse_s = 0.0
    perf = time.perf_counter if collect_timings else None
    scanner = SplitBlockScanner(split, _BYTES_BATCH_CHARS)
    source = split.path
    try:
        for first, batch in scanner:
            t0 = perf() if perf is not None else 0.0
            try:
                types = typer.type_lines(batch)
            except FastLaneMiss:
                # Per-line arbitration over the whole batch, mirroring
                # the text lane line for line: decode, strip, drop
                # blanks, hook typer, strict re-parse as the verdict.
                if fallback is None:
                    fallback = HookTyper(
                        acc,
                        key_cache=(warm.key_cache if warm is not None
                                   else None),
                    )
                type_document = fallback.type_document
                types = []
                append = types.append
                for i, piece in enumerate(batch):
                    text = str(piece, "utf-8").strip() if piece else ""
                    if not text:
                        continue
                    line_number = first + i
                    try:
                        t = type_document(text)
                    except (FastLaneMiss, JsonError):
                        try:
                            value = loads(text, source=source,
                                          first_line=line_number)
                        except JsonError as exc:
                            if not permissive:
                                raise
                            skipped.append(BadRecord(
                                source, line_number, str(exc), text
                            ))
                            continue
                        t = acc.type_value(value)
                    append(t)
            t1 = perf() if perf is not None else 0.0
            for t in types:
                if t is not None:
                    observe(t)
            if perf is not None:
                parse_s += t1 - t0
                fuse_s += perf() - t1
    except JsonSyntaxError as exc:
        if split.offset == 0:
            raise
        base = count_lines_before(split.path, split.offset)
        raise exc.relocate(split.path, exc.line + base) from None
    summary = acc.summary()
    timings = None
    if collect_timings:
        timings = PhaseTimings(
            lane="bytes",
            parse_s=parse_s,
            type_s=0.0,
            fuse_s=fuse_s,
            records=summary.record_count,
        )
    return PartitionSummary(
        schema=summary.schema,
        record_count=summary.record_count,
        distinct_types=summary.distinct_types,
        skipped=tuple(skipped),
        timings=timings,
        line_count=scanner.line_count,
        bytes_read=scanner.bytes_read,
        worker=_worker_name(),
        warm_reused=warm.reused if warm is not None else None,
        dedup_hits=typer.hits,
        dedup_misses=typer.misses,
        dedup_bytes_avoided=typer.bytes_avoided,
    )


def accumulate_ndjson_split(
    split: FileSplit,
    permissive: bool = False,
    parse_lane: str = "auto",
    collect_timings: bool = False,
    warm_generation: "int | None" = None,
    wire: bool = False,
    stats_mode: str = "off",
) -> "PartitionSummary | bytes":
    """Read one byte-range split worker-side and stream it in a single pass.

    The zero-copy counterpart of :func:`accumulate_ndjson_partition`: the
    driver ships only the :class:`~repro.jsonio.splits.FileSplit`
    descriptor; this task opens the file itself, seeks to the split's
    offset and parses exactly the lines the split owns (see
    :mod:`repro.jsonio.splits` for the boundary rules).  The summary's
    ``line_count`` and ``bytes_read`` report what was read; quarantined
    records carry *split-local* line numbers for the driver to re-base.

    In strict mode a malformed record fails the task with the error
    re-anchored to its absolute file line: the worker counts the lines
    preceding the split's offset (one extra prefix read, on the error
    path only) so the message is identical to a line-oriented run's.

    ``warm_generation`` / ``wire`` / ``stats_mode`` as in
    :func:`accumulate_ndjson_partition`.
    """
    warm = warm_state_for(warm_generation)
    summary = _accumulate_split(
        split, permissive, parse_lane, collect_timings, warm,
        stats_mode=stats_mode,
    )
    return encode_summary(summary) if wire else summary


def accumulate_ndjson_split_batch(
    splits: Sequence[FileSplit],
    permissive: bool = False,
    parse_lane: str = "auto",
    collect_timings: bool = False,
    warm_generation: "int | None" = None,
    wire: bool = False,
    stats_mode: str = "off",
) -> "PartitionSummary | bytes":
    """Stream a contiguous batch of byte-range splits as *one* task.

    Batched dispatch: at high partition counts, per-task overhead
    (dispatch, a summary per split, a driver-side merge per split)
    dominates small splits.  This task folds its batch locally — every
    split streams through the worker's (shared, possibly warm)
    accumulator state and the partial summaries merge on the worker —
    so the driver sees one summary per *batch*.

    Quarantine stays exact: each split reports split-local line numbers,
    which are re-based here against the running line count of the
    *batch* (an intra-batch prefix sum); the merged summary's
    ``line_count`` is the batch total, so the driver's usual cross-task
    prefix sum then anchors them absolutely.  In strict mode the first
    malformed record raises with its absolute file line, exactly as the
    unbatched task would.  The local merge is
    :func:`merge_summary_group` — the same associative merge the driver
    (or the tree reduce) would have applied, so results are identical
    to unbatched dispatch in every grouping (Theorem 5.5).
    """
    warm = warm_state_for(warm_generation)
    partials: list[PartitionSummary] = []
    base = 0
    for split in splits:
        summary = _accumulate_split(
            split, permissive, parse_lane, collect_timings, warm,
            stats_mode=stats_mode,
        )
        if summary.skipped and base:
            summary = replace(
                summary,
                skipped=rebase_bad_records(summary.skipped, base),
            )
        base += summary.line_count
        partials.append(summary)
    merged = replace(
        merge_summary_group(partials),
        worker=_worker_name(),
        warm_reused=warm.reused if warm is not None else None,
    )
    return encode_summary(merged) if wire else merged


def accumulate_ndjson_partition_batch(
    parts: Sequence[Iterable[tuple[int, str]]],
    source: str | None = None,
    permissive: bool = False,
    parse_lane: str = "auto",
    collect_timings: bool = False,
    warm_generation: "int | None" = None,
    wire: bool = False,
    stats_mode: str = "off",
) -> "PartitionSummary | bytes":
    """Line-mode twin of :func:`accumulate_ndjson_split_batch`.

    ``parts`` is a sequence of numbered-line partitions; their line
    numbers are already absolute (the driver numbered the whole file),
    so no re-basing is needed — the partials simply merge locally and
    one summary returns per batch.
    """
    warm = warm_state_for(warm_generation)
    partials = [
        accumulate_ndjson_partition(
            part,
            source=source,
            permissive=permissive,
            parse_lane=parse_lane,
            collect_timings=collect_timings,
            stats_mode=stats_mode,
            _warm=warm,
        )
        for part in parts
    ]
    merged = replace(
        merge_summary_group(partials),
        worker=_worker_name(),
        warm_reused=warm.reused if warm is not None else None,
    )
    return encode_summary(merged) if wire else merged


@dataclass(frozen=True)
class MergedSummary:
    """The driver-side combination of every partition summary.

    Carries the merged distinct top-level types themselves (not only the
    count) so the result can be persisted as a checkpoint
    (:mod:`repro.store`) and later merged onward without information
    loss.
    """

    schema: Type
    record_count: int
    distinct_types: tuple[Type, ...]
    skipped: tuple[BadRecord, ...]
    #: Summed per-phase map timings (``None`` when no partition was timed).
    timings: PhaseTimings | None = None
    #: Merged per-path statistics (``None`` when no partition carried
    #: any).  May cover fewer records than ``record_count`` if stats-on
    #: and stats-off summaries were merged — gate with
    #: :func:`repro.inference.statistics.stats_if_complete` before
    #: presenting the bundle as covering the run.
    stats: "StatsBundle | None" = None

    @property
    def distinct_type_count(self) -> int:
        """Distinct top-level types across every merged partition."""
        return len(self.distinct_types)

    @property
    def skipped_count(self) -> int:
        """Total quarantined records across partitions."""
        return len(self.skipped)


#: Partition counts up to this fold sequentially at the driver; above it,
#: :func:`merge_summaries_full` tree-merges pairs on the scheduler when one
#: is provided.  Sized so small jobs never pay task-dispatch overhead for
#: a reduce that is already trivial.
TREE_MERGE_THRESHOLD = 16


def merge_summary_group(
    summaries: "Sequence[PartitionSummary]",
) -> PartitionSummary:
    """Combine adjacent partition summaries into one partial summary.

    The unit task of the tree reduce: a module-level function over
    picklable data, so the scheduler can run it on either backend.
    Distinct types deduplicate structurally in first-seen order,
    quarantined records concatenate in partition order, and ``line_count``
    / ``bytes_read`` add — every component is associative, so any
    grouping of the tree yields the same final merge (Theorem 5.5).
    """
    schema: Type = EMPTY
    count = 0
    distinct: dict[Type, None] = {}
    skipped: list[BadRecord] = []
    timings: list[PhaseTimings | None] = []
    line_count = 0
    bytes_read = 0
    dedup_hits = dedup_misses = dedup_bytes_avoided = 0
    stats: "StatsBundle | None" = None
    for summary in summaries:
        schema = fuse(schema, summary.schema)
        count += summary.record_count
        for t in summary.distinct_types:
            distinct.setdefault(t)
        skipped.extend(summary.skipped)
        timings.append(summary.timings)
        line_count += summary.line_count
        bytes_read += summary.bytes_read
        dedup_hits += summary.dedup_hits
        dedup_misses += summary.dedup_misses
        dedup_bytes_avoided += summary.dedup_bytes_avoided
        stats = merge_stats(stats, summary.stats)
    return PartitionSummary(
        schema=schema,
        record_count=count,
        distinct_types=tuple(distinct),
        skipped=tuple(skipped),
        timings=merge_phase_timings(timings),
        line_count=line_count,
        bytes_read=bytes_read,
        dedup_hits=dedup_hits,
        dedup_misses=dedup_misses,
        dedup_bytes_avoided=dedup_bytes_avoided,
        stats=stats,
    )


def tree_merge_rows(
    scheduler: "Any | None",
    rows: "Iterable[PartitionSummary]",
    tree_threshold: int = TREE_MERGE_THRESHOLD,
) -> PartitionSummary:
    """Reduce summaries to one by scheduler-parallel pairwise rounds.

    The shared driver-side reduce: row lists longer than
    ``tree_threshold`` are first shrunk by rounds of pairwise
    :func:`merge_summary_group` tasks on the ``scheduler`` (any object
    with the :meth:`repro.engine.scheduler.Scheduler.run` signature) — a
    balanced tree whose result is identical to the sequential fold by
    associativity (Theorem 5.5) but whose depth is logarithmic in the
    row count.  With no scheduler, or once at/under the threshold, the
    remaining rows fold sequentially.  Used by both the run-time reduce
    (:func:`merge_summaries_full`) and the checkpoint-shard union
    (:func:`repro.store.checkpoint.merge_checkpoints`).
    """
    rows = list(rows)
    if scheduler is not None:
        while len(rows) > tree_threshold:
            pairs = [rows[i:i + 2] for i in range(0, len(rows), 2)]
            rows = scheduler.run(merge_summary_group, pairs)
    return merge_summary_group(rows)


def merge_summaries_full(
    summaries: Iterable[PartitionSummary],
    scheduler: "Any | None" = None,
    tree_threshold: int = TREE_MERGE_THRESHOLD,
) -> MergedSummary:
    """Merge per-partition summaries, in partition order.

    The schema fold is safe in any grouping by associativity (Theorem
    5.5); the distinct count deduplicates *across* partitions
    structurally, since canonical objects from different interners (or
    processes) are distinct objects but compare equal.  Quarantined
    records are concatenated in partition order (i.e. file order).

    By default the fold is sequential at the driver; with a
    ``scheduler``, long lists reduce through the parallel
    :func:`tree_merge_rows` tree first.
    """
    merged = tree_merge_rows(scheduler, summaries, tree_threshold)
    return MergedSummary(
        merged.schema,
        merged.record_count,
        merged.distinct_types,
        merged.skipped,
        merged.timings,
        merged.stats,
    )


def merge_summaries(
    summaries: Iterable[PartitionSummary],
) -> tuple[Type, int, int]:
    """Backward-compatible merge returning only
    ``(schema, record_count, distinct_type_count)``.

    See :func:`merge_summaries_full` for the variant that also carries
    the quarantine information.
    """
    merged = merge_summaries_full(summaries)
    return merged.schema, merged.record_count, merged.distinct_type_count
