"""Single-pass streaming inference kernel (the fast path of the pipeline).

The original pipeline materialises one type tree per record and then makes
three further passes over the cached collection (count, distinct, fuse).
This module collapses all of that into *one* pass per partition:

* :class:`PartitionAccumulator` consumes raw JSON values one at a time.
  Each value is typed **directly into interned form**: the Fig. 4 rules are
  applied bottom-up through a per-partition
  :class:`repro.core.interning.TypeInterner`, so structurally equal
  (sub)trees become the *same* object the moment they are inferred —
  there is never a second, un-pooled copy of the tree.
* Distinct-type counting falls out of interning for free: a top-level type
  is new exactly when its canonical object has not been seen before, an
  ``id()`` set membership test instead of a structural-hash ``set`` pass.
* Fusion is incremental and memoized through :class:`FusionMemo`: because
  operands are canonical, ``fuse(a, b)`` can be cached under the pointer
  pair ``(id(a), id(b))``.  On homogeneous or skewed data the running
  schema stabilises after a handful of records and every further record
  costs one dict lookup — near-zero fuse work.
* :meth:`PartitionAccumulator.summary` emits a tiny, picklable
  :class:`PartitionSummary` (schema + counts + distinct types), which is
  what crosses a process boundary when the scheduler runs with
  ``backend="process"``; :func:`merge_summaries` recombines the partials
  at the driver.  Any grouping of the merge yields the same schema — that
  is exactly the associativity theorem (Theorem 5.5), the same property
  that already licenses ``tree_reduce``.

Everything here is *exact*: the accumulator's schema, record count and
distinct-type count are identical (plain ``==``) to the naive
``fuse_all(infer_type(v) for v in values)`` path, which the property tests
check on arbitrary JSON values.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Sequence

from repro.core.errors import InvalidValueError
from repro.core.interning import TypeInterner
from repro.core.types import (
    ArrayType,
    BOOL,
    EMPTY,
    Field,
    NULL,
    NUM,
    RecordType,
    STR,
    StarArrayType,
    Type,
    UnionType,
)
from repro.inference.fusion import (
    _addends_by_kind,
    fuse,
    lfuse,
)
from repro.inference.typestream import FastLaneMiss, make_typer, resolve_lane
from repro.jsonio.errors import JsonError, JsonSyntaxError
from repro.jsonio.ndjson import BadRecord
from repro.jsonio.parser import loads
from repro.jsonio.splits import FileSplit, SplitLineReader, count_lines_before

__all__ = [
    "FusionMemo",
    "MergedSummary",
    "PartitionAccumulator",
    "PartitionSummary",
    "PhaseTimings",
    "TREE_MERGE_THRESHOLD",
    "accumulate_ndjson_partition",
    "accumulate_ndjson_split",
    "accumulate_partition",
    "merge_phase_timings",
    "merge_summaries",
    "merge_summaries_full",
    "merge_summary_group",
]


class FusionMemo:
    """Pointer-keyed memoizing re-implementation of ``Fuse`` (Fig. 6).

    Operands must be canonical instances of one interner (or the
    module-level singletons).  Two invariants make pointer keys sound:

    * every subtree of a canonical type is canonical (the interner builds
      bottom-up), so the *recursive* sub-fusions — matched record fields,
      array bodies, ``collapse`` of a positional array — can be memoized
      on ``(id(a), id(b))`` pairs too, not just the top-level call.  This
      is where the big win is: fusing a stable schema against a stream of
      record types repeats the same field-level sub-fusions over and over;
    * the interner's pool keeps every canonical type alive for the memo's
      lifetime, so an ``id()`` can never be reused by the allocator, and
      within one interner structural equality coincides with object
      identity — the ``t1 == t2`` fast path of :func:`fuse` becomes an
      ``is`` check.

    Results are interned through the same pool, so a schema that has
    converged keeps its identity and repeated fusions are O(1) dict hits.
    The output is identical (plain ``==``) to :func:`fuse`: the recursion
    mirrors ``Fuse``/``LFuse``/``collapse`` rule for rule, and memoization
    only short-circuits recomputation of a pure function.
    """

    def __init__(self, interner: TypeInterner) -> None:
        self._interner = interner
        self._memo: dict[tuple[int, int], Type] = {}
        self._collapse_memo: dict[int, Type] = {}
        # Result pools, keyed on the children a miss is about to build a
        # node from: when two *new* operand pairs fuse to a shape fused
        # before (typically the converged schema itself), the canonical
        # result is returned without node construction (sort, size, hash)
        # or an interner round trip.
        self._record_pool: dict[tuple[Field, ...], Type] = {}
        self._union_pool: dict[tuple[Type, ...], Type] = {}
        self._star_pool: dict[Type, Type] = {}
        self._collapse_pool: dict[tuple[Type, ...], Type] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        """Number of distinct operand pairs fused so far."""
        return len(self._memo)

    def fuse(self, a: Type, b: Type) -> Type:
        """Fuse two canonical types, serving repeats from the cache."""
        # Same object and no positional arrays: fuse is the identity
        # (the t1 == t2 fast path of fuse, by pointer; for canonical
        # operands of one interner the two tests are equivalent).
        if a is b and not a._has_positional:
            return a
        key = (id(a), id(b))
        found = self._memo.get(key)
        if found is not None:
            self.hits += 1
            return found
        self.misses += 1
        # _fuse composes canonical children through the result pools, so
        # its output is already canonical — no interner round trip.
        fused = self._fuse(a, b)
        self._memo[key] = fused
        return fused

    def _fuse(self, a: Type, b: Type) -> Type:
        """Fig. 6 line 1, recursing through the memo."""
        # Non-union, non-empty operands (by far the common case: a record
        # schema against a record type) have exactly one addend each, so
        # the kind indexes below collapse to one comparison.
        ka, kb = a.kind, b.kind
        if ka is not None and kb is not None:
            if ka is kb:
                return self._lfuse(a, b)
            return self._union((a, b))
        if a is EMPTY:
            return b
        if b is EMPTY:
            return a
        by_kind1 = _addends_by_kind(a)
        by_kind2 = _addends_by_kind(b)
        fused = [
            self._lfuse(u1, by_kind2[kind])
            for kind, u1 in by_kind1.items()
            if kind in by_kind2
        ]
        fused.extend(u for k, u in by_kind1.items() if k not in by_kind2)
        fused.extend(u for k, u in by_kind2.items() if k not in by_kind1)
        # make_union, unrolled: every entry is a non-union, non-empty
        # addend and kinds are unique by construction, so no flattening or
        # deduplication is needed.
        if not fused:
            return EMPTY
        if len(fused) == 1:
            return fused[0]
        return self._union(tuple(fused))

    def _union(self, members: tuple[Type, ...]) -> Type:
        """The canonical union of non-union, non-empty members."""
        found = self._union_pool.get(members)
        if found is None:
            found = self._interner.intern_node(UnionType(members))
            self._union_pool[members] = found
        return found

    def _lfuse(self, t1: Type, t2: Type) -> Type:
        """Fig. 6 lines 2-7 for two non-union addends of equal kind."""
        if isinstance(t1, RecordType) and isinstance(t2, RecordType):
            # FMatch/FUnmatch inlined (RecordType sorts its fields, so
            # emission order is free): one walk over t1 resolving against
            # t2's name index, then t2's leftovers.
            field = self._interner.field
            fuse = self.fuse
            f2_of = t2.field
            fields = []
            matched = 0
            for f1 in t1.fields:
                f2 = f2_of(f1.name)
                if f2 is None:
                    # The optional-flipped field must come from the
                    # interner too: intern_node requires every child to
                    # be canonical for subtree sharing to hold.
                    fields.append(f1 if f1.optional
                                  else field(f1.name, f1.type, True))
                    continue
                matched += 1
                ft = fuse(f1.type, f2.type)
                opt = f1.optional or f2.optional
                # Reuse the schema's own field node when fusion changed
                # nothing (the common case once the schema converges).
                if ft is f1.type and opt == f1.optional:
                    fields.append(f1)
                else:
                    fields.append(field(f1.name, ft, opt))
            if matched != len(t2.fields):
                for f2 in t2.fields:
                    if f2.name not in t1:
                        fields.append(f2 if f2.optional
                                      else field(f2.name, f2.type, True))
            shape = tuple(fields)
            found = self._record_pool.get(shape)
            if found is None:
                found = self._interner.intern_node(RecordType(shape))
                self._record_pool[shape] = found
            return found
        if isinstance(t1, (ArrayType, StarArrayType)) and isinstance(
            t2, (ArrayType, StarArrayType)
        ):
            # Fold a positional side's elements straight into the other
            # side's star body: fuse(B, collapse(es)) equals folding fuse
            # over {B} ∪ es in any grouping (associativity/commutativity,
            # Theorem 5.5), and the direct fold skips materialising the
            # intermediate collapsed union.  Once the schema side has
            # gone star — after its first array fusion — every further
            # record costs one memoized fuse per element, nearly all hits.
            if isinstance(t1, StarArrayType):
                body = t1.body
                if isinstance(t2, StarArrayType):
                    body = self.fuse(body, t2.body)
                else:
                    for element in t2.elements:
                        body = self.fuse(body, element)
            elif isinstance(t2, StarArrayType):
                body = t2.body
                for element in t1.elements:
                    body = self.fuse(body, element)
            else:
                body = self._star_body(t1)
                for element in t2.elements:
                    body = self.fuse(body, element)
            found = self._star_pool.get(body)
            if found is None:
                found = self._interner.intern_node(StarArrayType(body))
                self._star_pool[body] = found
            return found
        return lfuse(t1, t2)  # identical basic types (line 2), and errors

    def _star_body(self, t: Type) -> Type:
        """The star body of an array type; ``collapse`` memoized per
        canonical positional array object (Fig. 6 lines 8-9)."""
        if isinstance(t, StarArrayType):
            return t.body
        key = id(t)
        found = self._collapse_memo.get(key)
        if found is not None:
            return found
        # The collapse fold computes the join of the elements, and fuse
        # is idempotent on types without positional content (the ``a is
        # b`` fast path above), so repeated non-positional elements
        # contribute nothing — drop them.  Positional duplicates must
        # stay: fusing a positional array with itself collapses it.  The
        # deduplicated signature then keys a pool shared across distinct
        # arrays ([Num, Str] and [Num, Num, Str] collapse once).
        seen: set[int] = set()
        sig = []
        for element in t.elements:
            i = id(element)
            if i not in seen:
                seen.add(i)
                sig.append(element)
            elif element._has_positional:
                sig.append(element)
        signature = tuple(sig)
        body = self._collapse_pool.get(signature)
        if body is None:
            body = EMPTY
            for element in signature:
                body = self.fuse(body, element)
            self._collapse_pool[signature] = body
        self._collapse_memo[key] = body
        return body

    @property
    def hit_rate(self) -> float:
        """Fraction of memoized fuse calls served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class PhaseTimings:
    """Wall-clock attribution of one partition's map phase, per stage.

    The map phase of an NDJSON partition decomposes into three measurable
    stages, accumulated across the partition's records:

    * ``parse_s`` — tokenize + parse.  The tokenizer is a generator the
      parser drains, so lexing and parsing are interleaved and timed as
      one stage.  On a fast lane the record is typed *during* parsing
      (that is the whole point), so ``parse_s`` covers parse + type there
      and ``type_s`` stays zero.
    * ``type_s`` — value tree to interned type (strict lane only).
    * ``fuse_s`` — distinct-type tracking plus the memoized incremental
      fusion of the record's type into the running schema.

    ``lane`` records which resolved lane produced the numbers (``strict``,
    ``tokens``, ``hooks``; ``mixed`` after merging heterogeneous
    partitions), so a benchmark delta can be attributed to the right
    phase of the right implementation.
    """

    lane: str = "strict"
    parse_s: float = 0.0
    type_s: float = 0.0
    fuse_s: float = 0.0
    records: int = 0

    @property
    def map_s(self) -> float:
        """Total attributed map time (sum of the per-stage buckets)."""
        return self.parse_s + self.type_s + self.fuse_s

    @property
    def records_per_s(self) -> float:
        """Throughput over the attributed map time (0.0 when untimed)."""
        total = self.map_s
        return self.records / total if total else 0.0

    def describe(self) -> str:
        """One human-readable line for CLI reports.

        >>> PhaseTimings("strict", 1.0, 0.5, 0.5, 10000).describe()
        '[strict lane] parse 1.000s · type 0.500s · fuse 0.500s · 5,000 records/s'
        """
        if self.lane == "strict":
            stages = (f"parse {self.parse_s:.3f}s · type {self.type_s:.3f}s"
                      f" · fuse {self.fuse_s:.3f}s")
        else:
            stages = (f"parse+type {self.parse_s:.3f}s"
                      f" · fuse {self.fuse_s:.3f}s")
        return (f"[{self.lane} lane] {stages}"
                f" · {self.records_per_s:,.0f} records/s")


def merge_phase_timings(
    timings: Iterable["PhaseTimings | None"],
) -> "PhaseTimings | None":
    """Sum per-partition phase timings; ``None`` when none were recorded.

    Stage buckets add across partitions (total CPU-seconds attributed to
    each stage, regardless of overlap under a parallel backend).  The lane
    is preserved when every timed partition used the same one and reported
    as ``"mixed"`` otherwise.
    """
    rows = [t for t in timings if t is not None]
    if not rows:
        return None
    lanes = {t.lane for t in rows}
    return PhaseTimings(
        lane=lanes.pop() if len(lanes) == 1 else "mixed",
        parse_s=sum(t.parse_s for t in rows),
        type_s=sum(t.type_s for t in rows),
        fuse_s=sum(t.fuse_s for t in rows),
        records=sum(t.records for t in rows),
    )


@dataclass(frozen=True)
class PartitionSummary:
    """The tiny, picklable result of streaming one partition.

    ``distinct_types`` carries the partition's distinct top-level types so
    the driver can compute the *global* distinct count exactly (two
    partitions may share types); per the paper's measurements this set is
    orders of magnitude smaller than the record count.
    """

    schema: Type
    record_count: int
    distinct_types: tuple[Type, ...]
    #: Records quarantined during a permissive NDJSON partition pass
    #: (empty for already-parsed inputs).
    skipped: tuple[BadRecord, ...] = field(default=())
    #: Per-phase map timings (NDJSON partitions with
    #: ``collect_timings=True`` only; ``None`` when timing was off or for
    #: already-parsed inputs, whose parse phase happened elsewhere).
    timings: PhaseTimings | None = field(default=None)
    #: Physical lines owned by this partition's byte-range split (blank
    #: lines included), the quantity the driver prefix-sums to turn
    #: split-local line numbers into absolute ones.  Zero for partitions
    #: that were not read from a byte split.
    line_count: int = 0
    #: Bytes this partition read from its source file (byte-split
    #: partitions only) — the worker-side half of the engine's
    #: bytes-shipped vs bytes-read accounting.
    bytes_read: int = 0

    @property
    def distinct_type_count(self) -> int:
        """Distinct top-level types within this partition."""
        return len(self.distinct_types)

    @property
    def skipped_count(self) -> int:
        """Number of quarantined records in this partition."""
        return len(self.skipped)


class PartitionAccumulator:
    """Streaming schema accumulator: one pass, no materialised type list.

    >>> from repro.core.printer import print_type
    >>> acc = PartitionAccumulator()
    >>> acc.add_many([{"a": 1}, {"a": "x", "b": True}, {"a": 1}])
    >>> print_type(acc.schema)
    '{a: (Num + Str), b: Bool?}'
    >>> acc.record_count, acc.distinct_type_count
    (3, 2)
    """

    def __init__(self) -> None:
        self.interner = TypeInterner()
        self.memo = FusionMemo(self.interner)
        self._schema: Type = EMPTY
        self._count = 0
        self._distinct_ids: set[int] = set()
        self._distinct: list[Type] = []
        # Construction pools: map tuples of canonical children straight to
        # the canonical node, skipping node construction (sort, hash, size)
        # for shapes seen before.  Keyed on the *unsorted* child tuple, so
        # two key orders of one record shape occupy two entries mapping to
        # the same canonical type — a deliberate trade of a little memory
        # for never re-sorting.
        self._record_pool: dict[tuple[Field, ...], Type] = {}
        self._array_pool: dict[tuple[Type, ...], Type] = {}

    @property
    def schema(self) -> Type:
        """The running fused schema (empty type before any record)."""
        return self._schema

    @property
    def record_count(self) -> int:
        """How many values have been streamed in."""
        return self._count

    @property
    def distinct_type_count(self) -> int:
        """Number of distinct top-level inferred types seen so far."""
        return len(self._distinct)

    def distinct_types(self) -> tuple[Type, ...]:
        """The distinct top-level types, in first-seen order."""
        return tuple(self._distinct)

    def add(self, value: Any) -> None:
        """Stream one JSON value: type, intern, count, fuse — one step."""
        self.observe(self._infer_interned(value))

    def type_value(self, value: Any) -> Type:
        """Type one JSON value into this accumulator's interned form.

        Does *not* count or fuse it — pair with :meth:`observe`, which
        together make up :meth:`add`.  Exposed separately so callers can
        time (or interleave) the typing and fusion stages independently.
        """
        return self._infer_interned(value)

    def observe(self, t: Type) -> None:
        """Count and fuse one *canonical* type from this accumulator.

        ``t`` must be interned here — produced by :meth:`type_value`, the
        pool helpers, or a fast-lane typer bound to this accumulator —
        so the distinct test can be a pointer test.
        """
        self._count += 1
        key = id(t)  # canonical => identity test suffices
        if key not in self._distinct_ids:
            self._distinct_ids.add(key)
            self._distinct.append(t)
        self._schema = self.memo.fuse(self._schema, t)

    def add_many(self, values: Iterable[Any]) -> None:
        """Stream a batch of values."""
        for value in values:
            self.add(value)

    def add_type(self, t: Type, records: int = 1) -> None:
        """Fuse a pre-computed type (e.g. a partial schema) into the schema.

        Does not contribute to the distinct top-level *value* types — it is
        a schema, not a record observation.
        """
        self._schema = self.memo.fuse(self._schema, self.interner.intern(t))
        self._count += records

    def add_summary(self, summary: PartitionSummary) -> None:
        """Fold a :class:`PartitionSummary` into this accumulator.

        The incremental-update primitive: a loaded checkpoint (or any
        other partial summary) merges into live state exactly as
        :func:`merge_summary_group` would merge it at the driver — the
        schema fuses in, the record counts add, and the summary's
        distinct top-level types join this accumulator's distinct set
        *structurally* (foreign types are interned here first, so the
        usual pointer-equality distinct test stays sound afterwards).
        """
        intern = self.interner.intern
        for t in summary.distinct_types:
            canonical = intern(t)
            key = id(canonical)
            if key not in self._distinct_ids:
                self._distinct_ids.add(key)
                self._distinct.append(canonical)
        self._schema = self.memo.fuse(self._schema, intern(summary.schema))
        self._count += summary.record_count

    def summary(self) -> PartitionSummary:
        """Snapshot the accumulator as a small, picklable summary."""
        return PartitionSummary(
            schema=self._schema,
            record_count=self._count,
            distinct_types=tuple(self._distinct),
        )

    def record_type(self, shape: tuple[Field, ...]) -> Type:
        """The canonical record type for a tuple of canonical fields.

        The construction-pool lookup of :meth:`_infer`, exposed for the
        fast-lane typers (:mod:`repro.inference.typestream`), which build
        field tuples straight from JSON text.  ``shape`` keeps document
        key order; the pool maps it to the canonical (sorted) node.
        """
        t = self._record_pool.get(shape)
        if t is None:
            t = self.interner.intern_node(RecordType(shape))
            self._record_pool[shape] = t
        return t

    def array_type(self, elements: tuple[Type, ...]) -> Type:
        """The canonical array type for a tuple of canonical elements."""
        t = self._array_pool.get(elements)
        if t is None:
            t = self.interner.intern_node(ArrayType(elements))
            self._array_pool[elements] = t
        return t

    # ------------------------------------------------------------------
    # interned value typing (Fig. 4 fused with hash-consing)

    def _infer_interned(self, value: Any) -> Type:
        try:
            return self._infer(value)
        except RecursionError:
            raise InvalidValueError(
                "value is nested too deeply to type (exceeds the recursion "
                "limit); flatten the value or raise sys.setrecursionlimit"
            ) from None

    def _infer(self, value: Any) -> Type:
        # Mirrors repro.inference.infer.infer_type rule for rule, but
        # builds each node from canonical children and pools it
        # immediately, so the tree is born interned.  Dispatches on the
        # exact type first — JSON parsing only ever yields the six builtin
        # types — and falls back to the isinstance chain for subclasses,
        # preserving infer_type's semantics (bool before int, etc.).
        tv = type(value)
        if tv is str:
            return STR
        if tv is int or tv is float:
            return NUM
        if tv is bool:
            return BOOL
        if value is None:
            return NULL
        if tv is dict:
            fields = []
            field = self.interner.field
            for key, sub in value.items():
                if type(key) is not str and not isinstance(key, str):
                    raise InvalidValueError(f"non-string record key: {key!r}")
                fields.append(field(key, self._infer(sub)))
            shape = tuple(fields)
            t = self._record_pool.get(shape)
            if t is None:
                t = self.interner.intern_node(RecordType(shape))
                self._record_pool[shape] = t
            return t
        if tv is list:
            elements = tuple(self._infer(v) for v in value)
            t = self._array_pool.get(elements)
            if t is None:
                t = self.interner.intern_node(ArrayType(elements))
                self._array_pool[elements] = t
            return t
        # Subclasses of the builtin types (IntEnum, OrderedDict, ...).
        if isinstance(value, bool):
            return BOOL
        if isinstance(value, (int, float)):
            return NUM
        if isinstance(value, str):
            return STR
        if isinstance(value, dict):
            return self._infer(dict(value))
        if isinstance(value, list):
            return self._infer(list(value))
        raise InvalidValueError(f"not a JSON value: {type(value).__name__}")


def accumulate_partition(values: Iterable[Any]) -> PartitionSummary:
    """Stream one partition through a fresh accumulator.

    A module-level function on purpose: it is picklable, so the scheduler's
    process backend can ship it (with the partition's raw values) to a
    worker process and get the tiny summary back.
    """
    acc = PartitionAccumulator()
    acc.add_many(values)
    return acc.summary()


def accumulate_ndjson_partition(
    numbered_lines: Iterable[tuple[int, str]],
    source: str | None = None,
    permissive: bool = False,
    parse_lane: str = "auto",
    collect_timings: bool = False,
) -> PartitionSummary:
    """Parse and stream one partition of raw NDJSON lines in a single pass.

    ``numbered_lines`` pairs each record's text with its absolute file
    line number, so parsing *inside the partition* (in parallel, possibly
    in another process) still produces errors and quarantine entries that
    point at the right line of the right file.

    ``parse_lane`` selects the map-phase implementation (see
    :func:`repro.inference.typestream.resolve_lane`): on a fast lane each
    record is typed *during* parsing with no intermediate value tree, and
    any record the fast lane cannot handle — malformed text, duplicate
    keys — is re-parsed by the strict :func:`repro.jsonio.parser.loads`
    lane, so error diagnostics and quarantine entries (absolute file line
    numbers included) are byte-identical across lanes.

    In strict mode (default) the first malformed line raises, failing the
    task; in permissive mode it is quarantined into the summary's
    ``skipped`` tuple and the pass continues.  Like
    :func:`accumulate_partition`, this is a module-level function over
    picklable data by design: it rides the scheduler's process backend.

    With ``collect_timings=True`` the summary carries per-stage
    :class:`PhaseTimings` for the partition, at the cost of two to three
    clock reads per record; the default leaves the hot loop untimed and
    the summary's ``timings`` as ``None``.
    """
    lane = resolve_lane(parse_lane)
    acc = PartitionAccumulator()
    skipped: list[BadRecord] = []
    parse_s = type_s = fuse_s = 0.0

    def quarantine(line_number: int, line: str, exc: JsonError) -> None:
        skipped.append(
            BadRecord(source or "<memory>", line_number, str(exc), line)
        )

    if lane == "strict":
        if collect_timings:
            perf = time.perf_counter
            for line_number, line in numbered_lines:
                t0 = perf()
                try:
                    value = loads(line, source=source,
                                  first_line=line_number)
                except JsonError as exc:
                    parse_s += perf() - t0
                    if not permissive:
                        raise
                    quarantine(line_number, line, exc)
                    continue
                t1 = perf()
                t = acc.type_value(value)
                t2 = perf()
                acc.observe(t)
                t3 = perf()
                parse_s += t1 - t0
                type_s += t2 - t1
                fuse_s += t3 - t2
        else:
            add = acc.add
            for line_number, line in numbered_lines:
                try:
                    value = loads(line, source=source,
                                  first_line=line_number)
                except JsonError as exc:
                    if not permissive:
                        raise
                    quarantine(line_number, line, exc)
                    continue
                add(value)
    else:
        typer = make_typer(lane, acc)
        type_document = typer.type_document
        observe = acc.observe
        if collect_timings:
            perf = time.perf_counter
            for line_number, line in numbered_lines:
                t0 = perf()
                try:
                    t = type_document(line)
                except (FastLaneMiss, JsonError):
                    # Diagnostics lane: re-parse strictly so the error (or
                    # quarantine entry) is byte-identical to a strict run.
                    # Costs a double parse on malformed records only.
                    try:
                        value = loads(line, source=source,
                                      first_line=line_number)
                    except JsonError as exc:
                        parse_s += perf() - t0
                        if not permissive:
                            raise
                        quarantine(line_number, line, exc)
                        continue
                    # The lanes disagreed on acceptance: defer to strict.
                    t = acc.type_value(value)
                t1 = perf()
                observe(t)
                t2 = perf()
                parse_s += t1 - t0
                fuse_s += t2 - t1
        else:
            for line_number, line in numbered_lines:
                try:
                    t = type_document(line)
                except (FastLaneMiss, JsonError):
                    # Same strict-arbitration fallback as above, untimed.
                    try:
                        value = loads(line, source=source,
                                      first_line=line_number)
                    except JsonError as exc:
                        if not permissive:
                            raise
                        quarantine(line_number, line, exc)
                        continue
                    t = acc.type_value(value)
                observe(t)

    summary = acc.summary()
    timings = None
    if collect_timings:
        timings = PhaseTimings(
            lane=lane,
            parse_s=parse_s,
            type_s=type_s,
            fuse_s=fuse_s,
            records=summary.record_count,
        )
    return PartitionSummary(
        schema=summary.schema,
        record_count=summary.record_count,
        distinct_types=summary.distinct_types,
        skipped=tuple(skipped),
        timings=timings,
    )


def accumulate_ndjson_split(
    split: FileSplit,
    permissive: bool = False,
    parse_lane: str = "auto",
    collect_timings: bool = False,
) -> PartitionSummary:
    """Read one byte-range split worker-side and stream it in a single pass.

    The zero-copy counterpart of :func:`accumulate_ndjson_partition`: the
    driver ships only the :class:`~repro.jsonio.splits.FileSplit`
    descriptor; this task opens the file itself, seeks to the split's
    offset and parses exactly the lines the split owns (see
    :mod:`repro.jsonio.splits` for the boundary rules).  The summary's
    ``line_count`` and ``bytes_read`` report what was read; quarantined
    records carry *split-local* line numbers for the driver to re-base.

    In strict mode a malformed record fails the task with the error
    re-anchored to its absolute file line: the worker counts the lines
    preceding the split's offset (one extra prefix read, on the error
    path only) so the message is identical to a line-oriented run's.
    """
    reader = SplitLineReader(split)
    try:
        summary = accumulate_ndjson_partition(
            reader,
            source=split.path,
            permissive=permissive,
            parse_lane=parse_lane,
            collect_timings=collect_timings,
        )
    except JsonSyntaxError as exc:
        if split.offset == 0:
            raise
        base = count_lines_before(split.path, split.offset)
        raise exc.relocate(split.path, exc.line + base) from None
    return replace(
        summary, line_count=reader.line_count, bytes_read=reader.bytes_read
    )


@dataclass(frozen=True)
class MergedSummary:
    """The driver-side combination of every partition summary.

    Carries the merged distinct top-level types themselves (not only the
    count) so the result can be persisted as a checkpoint
    (:mod:`repro.store`) and later merged onward without information
    loss.
    """

    schema: Type
    record_count: int
    distinct_types: tuple[Type, ...]
    skipped: tuple[BadRecord, ...]
    #: Summed per-phase map timings (``None`` when no partition was timed).
    timings: PhaseTimings | None = None

    @property
    def distinct_type_count(self) -> int:
        """Distinct top-level types across every merged partition."""
        return len(self.distinct_types)

    @property
    def skipped_count(self) -> int:
        """Total quarantined records across partitions."""
        return len(self.skipped)


#: Partition counts up to this fold sequentially at the driver; above it,
#: :func:`merge_summaries_full` tree-merges pairs on the scheduler when one
#: is provided.  Sized so small jobs never pay task-dispatch overhead for
#: a reduce that is already trivial.
TREE_MERGE_THRESHOLD = 16


def merge_summary_group(
    summaries: "Sequence[PartitionSummary]",
) -> PartitionSummary:
    """Combine adjacent partition summaries into one partial summary.

    The unit task of the tree reduce: a module-level function over
    picklable data, so the scheduler can run it on either backend.
    Distinct types deduplicate structurally in first-seen order,
    quarantined records concatenate in partition order, and ``line_count``
    / ``bytes_read`` add — every component is associative, so any
    grouping of the tree yields the same final merge (Theorem 5.5).
    """
    schema: Type = EMPTY
    count = 0
    distinct: dict[Type, None] = {}
    skipped: list[BadRecord] = []
    timings: list[PhaseTimings | None] = []
    line_count = 0
    bytes_read = 0
    for summary in summaries:
        schema = fuse(schema, summary.schema)
        count += summary.record_count
        for t in summary.distinct_types:
            distinct.setdefault(t)
        skipped.extend(summary.skipped)
        timings.append(summary.timings)
        line_count += summary.line_count
        bytes_read += summary.bytes_read
    return PartitionSummary(
        schema=schema,
        record_count=count,
        distinct_types=tuple(distinct),
        skipped=tuple(skipped),
        timings=merge_phase_timings(timings),
        line_count=line_count,
        bytes_read=bytes_read,
    )


def merge_summaries_full(
    summaries: Iterable[PartitionSummary],
    scheduler: "Any | None" = None,
    tree_threshold: int = TREE_MERGE_THRESHOLD,
) -> MergedSummary:
    """Merge per-partition summaries, in partition order.

    The schema fold is safe in any grouping by associativity (Theorem
    5.5); the distinct count deduplicates *across* partitions
    structurally, since canonical objects from different interners (or
    processes) are distinct objects but compare equal.  Quarantined
    records are concatenated in partition order (i.e. file order).

    By default the fold is sequential at the driver.  With a
    ``scheduler`` (any object with the
    :meth:`repro.engine.scheduler.Scheduler.run` signature), summary
    lists longer than ``tree_threshold`` are first reduced by rounds of
    pairwise :func:`merge_summary_group` tasks — a balanced tree whose
    result is identical to the sequential fold by the associativity
    theorem, but whose depth is logarithmic in the partition count, so
    the driver-side reduce stops being the bottleneck on many-partition
    jobs.
    """
    rows = list(summaries)
    if scheduler is not None:
        while len(rows) > tree_threshold:
            pairs = [rows[i:i + 2] for i in range(0, len(rows), 2)]
            rows = scheduler.run(merge_summary_group, pairs)
    merged = merge_summary_group(rows)
    return MergedSummary(
        merged.schema,
        merged.record_count,
        merged.distinct_types,
        merged.skipped,
        merged.timings,
    )


def merge_summaries(
    summaries: Iterable[PartitionSummary],
) -> tuple[Type, int, int]:
    """Backward-compatible merge returning only
    ``(schema, record_count, distinct_type_count)``.

    See :func:`merge_summaries_full` for the variant that also carries
    the quarantine information.
    """
    merged = merge_summaries_full(summaries)
    return merged.schema, merged.record_count, merged.distinct_type_count
