"""Value typing — the Map phase of the paper (Fig. 4, Section 5.1).

Each JSON value is mapped to a type *isomorphic* to the value: atoms to the
corresponding basic type, records to record types with all fields mandatory,
arrays to positional array types with one element type per element.  Union
types, optionality and star types never appear at this stage; they are
introduced by fusion.

Lemma 5.1 (soundness of value typing) — ``v in [[infer_type(v)]]`` for every
value ``v`` — is checked property-based in the test suite.
"""

from __future__ import annotations

from typing import Any

from repro.core.errors import InvalidValueError
from repro.core.types import (
    ArrayType,
    BOOL,
    Field,
    NULL,
    NUM,
    RecordType,
    STR,
    Type,
)

__all__ = ["infer_type"]


def infer_type(value: Any) -> Type:
    """Infer the structural type of a single JSON value (Fig. 4).

    >>> from repro.core.printer import print_type
    >>> print_type(infer_type({"a": 1, "b": ["x", None]}))
    '{a: Num, b: [Str, Null]}'

    Raises :class:`InvalidValueError` for objects outside the JSON data
    model (the rules of Fig. 4 are deterministic and exhaustive over valid
    values, so nothing else can fail) — including values nested too deeply
    to type within Python's recursion limit, which would otherwise surface
    as an opaque ``RecursionError`` from the middle of the descent.
    """
    try:
        return _infer(value)
    except RecursionError:
        raise InvalidValueError(
            "value is nested too deeply to type (exceeds the recursion "
            "limit); flatten the value or raise sys.setrecursionlimit"
        ) from None


def _infer(value: Any) -> Type:
    if value is None:
        return NULL
    # bool must precede the number test: bool is a subclass of int in Python.
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, (int, float)):
        return NUM
    if isinstance(value, str):
        return STR
    if isinstance(value, dict):
        fields = []
        for key, sub in value.items():
            if not isinstance(key, str):
                raise InvalidValueError(f"non-string record key: {key!r}")
            fields.append(Field(key, _infer(sub)))
        # Key uniqueness (the premise of the record rule) is guaranteed by
        # dict; the JSON text parser rejects duplicate keys before this point.
        return RecordType(fields)
    if isinstance(value, list):
        return ArrayType(_infer(v) for v in value)
    raise InvalidValueError(f"not a JSON value: {type(value).__name__}")
