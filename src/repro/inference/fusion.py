"""Type fusion — the Reduce phase of the paper (Figs. 5-6, Section 5.2).

The entry point is :func:`fuse`, the binary operator the paper proves
correct (Theorem 5.2: the result is a supertype of both inputs),
commutative (Theorem 5.4) and associative (Theorem 5.5).  Associativity is
the property that lets a distributed engine reduce a collection of types in
any grouping — and lets schemas be maintained incrementally.

Structure of the algorithm, mirroring Fig. 6 line by line:

* :func:`fuse` (line 1) splits both inputs into non-union addends
  (``o(T)``), pairs addends of equal kind (``KMatch``), fuses each pair with
  :func:`lfuse`, copies unmatched addends through (``KUnmatch``) and
  rebuilds a union (``(+)``).
* :func:`lfuse` handles two non-union types of the same kind:

  - line 2: identical basic types fuse to themselves;
  - line 3: records fuse key-wise — matched keys (``FMatch``) recurse and
    take the *minimum* cardinality (``? < 1``), unmatched keys
    (``FUnmatch``) become optional;
  - lines 4-7: arrays are simplified with :func:`collapse` where needed and
    fuse into ``[Fuse(body1, body2)*]``.

* :func:`collapse` (lines 8-9) folds ``fuse`` over the element types of a
  positional array type, producing the star body; the empty array collapses
  to the empty type (footnote 1: ``[] simplifies to [eps*]``).

One deliberate deviation from the letter of the paper: Fig. 6 line 3 writes
``LFuse(T1, T2)`` for matched field types, but field types are routinely
*union* types (the paper's own worked example fuses field types ``Num`` and
``Bool`` into ``Num + Bool``, which ``LFuse`` cannot produce since it
requires equal kinds).  Following the worked examples and the statement of
Theorem 5.2, matched field types are fused with :func:`fuse`.
"""

from __future__ import annotations

from collections import Counter
from functools import reduce
from typing import Iterable

from repro.core.errors import NormalizationError
from repro.core.kinds import Kind
from repro.core.types import (
    ArrayType,
    BasicType,
    EMPTY,
    Field,
    RecordType,
    StarArrayType,
    Type,
    UnionType,
    make_union,
)

__all__ = [
    "fuse",
    "lfuse",
    "collapse",
    "fuse_all",
    "fuse_multiset",
    "simplify",
    "k_match",
    "k_unmatch",
    "f_match",
    "f_unmatch",
]


def _addends_by_kind(t: Type) -> dict[Kind, Type]:
    """Index the non-union addends of a normal type by kind.

    Raises :class:`NormalizationError` if a kind repeats — i.e. the input
    violates the normal-type invariant fusion relies on.
    """
    by_kind: dict[Kind, Type] = {}
    for addend in t.addends():
        kind = addend.kind
        if kind in by_kind:
            raise NormalizationError(
                f"kind {kind.name} occurs twice in union: {t!s}"
            )
        by_kind[kind] = addend
    return by_kind


def k_match(t1: Type, t2: Type) -> list[tuple[Type, Type]]:
    """``KMatch``: pairs of addends of ``t1``/``t2`` sharing a kind (Fig. 5)."""
    by_kind1 = _addends_by_kind(t1)
    by_kind2 = _addends_by_kind(t2)
    return [(by_kind1[k], by_kind2[k]) for k in by_kind1 if k in by_kind2]


def k_unmatch(t1: Type, t2: Type) -> list[Type]:
    """``KUnmatch``: addends whose kind appears on one side only (Fig. 5)."""
    by_kind1 = _addends_by_kind(t1)
    by_kind2 = _addends_by_kind(t2)
    out = [u for k, u in by_kind1.items() if k not in by_kind2]
    out.extend(u for k, u in by_kind2.items() if k not in by_kind1)
    return out


def f_match(r1: RecordType, r2: RecordType) -> list[tuple[Field, Field]]:
    """``FMatch``: pairs of fields of ``r1``/``r2`` with equal keys (Fig. 5)."""
    return [
        (f1, f2)
        for f1 in r1.fields
        if (f2 := r2.field(f1.name)) is not None
    ]


def f_unmatch(r1: RecordType, r2: RecordType) -> list[Field]:
    """``FUnmatch``: fields whose key appears on one side only (Fig. 5)."""
    out = [f for f in r1.fields if f.name not in r2]
    out.extend(f for f in r2.fields if f.name not in r1)
    return out


def fuse(t1: Type, t2: Type) -> Type:
    """``Fuse`` (Fig. 6 line 1): fuse two normal types into a supertype.

    >>> from repro.core.type_parser import parse_type as p
    >>> from repro.core.printer import print_type
    >>> print_type(fuse(p("{A: Str, B: Num}"), p("{B: Bool, C: Str}")))
    '{A: Str?, B: (Bool + Num), C: Str?}'

    The empty type is the neutral element: ``fuse(t, EMPTY) == t``.
    """
    # Fast path: fusing a type with itself is the identity — by far the
    # most common case on homogeneous datasets.  Only valid for types
    # without positional arrays: per Fig. 6 line 4, fusing two equal
    # positional array types still collapses them into a star type, so
    # skipping that would break associativity.
    if t1 == t2 and not t1.has_positional_array:
        return t1
    fused = [lfuse(u1, u2) for u1, u2 in k_match(t1, t2)]
    fused.extend(k_unmatch(t1, t2))
    return make_union(fused)


def lfuse(t1: Type, t2: Type) -> Type:
    """``LFuse`` (Fig. 6 lines 2-7): fuse two non-union types of equal kind."""
    if isinstance(t1, BasicType) and isinstance(t2, BasicType):
        if t1.kind != t2.kind:
            raise ValueError(f"lfuse on different kinds: {t1!s} vs {t2!s}")
        return t1  # line 2
    if isinstance(t1, RecordType) and isinstance(t2, RecordType):
        return _lfuse_records(t1, t2)  # line 3
    if isinstance(t1, (ArrayType, StarArrayType)) and isinstance(
        t2, (ArrayType, StarArrayType)
    ):
        return _lfuse_arrays(t1, t2)  # lines 4-7
    raise ValueError(f"lfuse on different kinds: {t1!s} vs {t2!s}")


def _lfuse_records(r1: RecordType, r2: RecordType) -> RecordType:
    """Fig. 6 line 3: key-wise record fusion.

    Matched keys recurse with the minimum cardinality (a field stays
    mandatory only if mandatory on both sides); unmatched keys come through
    as optional.
    """
    fields = [
        Field(f1.name, fuse(f1.type, f2.type),
              optional=f1.optional or f2.optional)
        for f1, f2 in f_match(r1, r2)
    ]
    fields.extend(f.with_optional(True) for f in f_unmatch(r1, r2))
    return RecordType(fields)


def _star_body(t: ArrayType | StarArrayType) -> Type:
    """The star body of an array type, collapsing positional types first."""
    if isinstance(t, StarArrayType):
        return t.body
    return collapse(t)


def _lfuse_arrays(t1: ArrayType | StarArrayType,
                  t2: ArrayType | StarArrayType) -> StarArrayType:
    """Fig. 6 lines 4-7: all four array combinations reduce to one rule.

    Both inputs are turned into star bodies (via ``collapse`` for positional
    types) and the bodies fused: ``[Fuse(body1, body2)*]``.
    """
    return StarArrayType(fuse(_star_body(t1), _star_body(t2)))


def collapse(t: ArrayType) -> Type:
    """``collapse`` (Fig. 6 lines 8-9): fold fusion over array elements.

    ``collapse([]) = eps`` and ``collapse([T | rest]) = Fuse(T,
    collapse(rest))``; by commutativity/associativity of ``fuse`` a plain
    left fold gives the same result as the paper's right fold.

    >>> from repro.core.type_parser import parse_type as p
    >>> from repro.core.printer import print_type
    >>> print_type(collapse(p("[Num, Bool, Num]")))
    'Bool + Num'
    """
    return reduce(fuse, t.elements, EMPTY)


def simplify(t: Type) -> Type:
    """Collapse every positional array type in ``t`` into a star type.

    Fusion itself only simplifies an array when it meets another array
    (Fig. 6 lines 4-7), so a fused schema can still contain positional
    array types for fields seen in a single record shape.  This utility
    applies the same ``collapse`` everywhere, producing a uniformly
    star-shaped schema — the form most readable to users and the one the
    ablation benchmark contrasts with keeping positional arrays.

    The result is a supertype of ``t`` (collapse only widens), which the
    property tests check.
    """
    if isinstance(t, RecordType):
        return RecordType(
            Field(f.name, simplify(f.type), f.optional) for f in t.fields
        )
    if isinstance(t, ArrayType):
        return StarArrayType(simplify(collapse(t)))
    if isinstance(t, StarArrayType):
        return StarArrayType(simplify(t.body))
    if isinstance(t, UnionType):
        return make_union(simplify(m) for m in t.members)
    return t


def fuse_all(types: Iterable[Type]) -> Type:
    """Fuse an entire collection of types (a sequential Reduce).

    Returns :data:`repro.core.types.EMPTY` for an empty collection — the
    schema of a dataset with no records admits no value.
    """
    return reduce(fuse, types, EMPTY)


def fuse_multiset(types: Iterable[Type]) -> Type:
    """Fuse a collection after deduplicating — efficiently but *exactly*.

    The paper's Map phase "yields a set of distinct types to be fused"
    (Section 2).  Naive deduplication would change the result, because
    fusion is not idempotent on positional arrays (``fuse([Num], [Num])``
    is ``[Num*]``, not ``[Num]``); instead each type occurring more than
    once is self-fused once, which by the absorption law
    ``fuse(fuse(T, T), T) == fuse(T, T)`` (hypothesis-checked in the test
    suite) makes the result equal to fusing the full multiset — while
    doing one fusion per *distinct* type, the property that makes
    homogeneous datasets cheap.
    """
    counts = Counter(types)
    return fuse_all(
        fuse(t, t) if count > 1 and t.has_positional_array else t
        for t, count in counts.items()
    )
