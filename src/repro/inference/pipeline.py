"""End-to-end schema inference pipelines (Section 5 wired to Section 6).

Three ways to run the paper's two-phase algorithm:

* :func:`infer_schema` — the one-liner: values in, fused schema out.
* :func:`run_inference` — the instrumented version the benchmarks use: runs
  the Map phase (value typing) and the Reduce phase (fusion) separately,
  reports wall-clock per phase, the number of *distinct* inferred types
  (the quantity Tables 2-5 report) and the fused schema.  Optionally
  executes on a :class:`repro.engine.Context` instead of in-line.
* :class:`SchemaInferencer` — the incremental API motivated in the
  introduction: fold new records into an existing schema one at a time or
  merge two inferencers, both safe by commutativity/associativity
  (Theorems 5.4-5.5).

Plus :func:`infer_partitioned`, the partition-isolated strategy of
Section 6.2 (Table 8): each partition is processed independently, yielding
a per-partition report and a tiny partial schema; the partials are fused at
the end.

By default every pipeline runs on the single-pass streaming kernel
(:mod:`repro.inference.kernel`): each partition is consumed value by value
through an interning accumulator with memoized fusion, and only tiny
partial summaries travel to the driver.  The original
materialise-then-multi-pass implementation is kept, byte for byte, behind
``kernel=False`` — it is the reference the equivalence tests and the
``bench_kernel_streaming`` benchmark compare against.
"""

from __future__ import annotations

import hashlib
import pickle
import time
from dataclasses import dataclass, field, replace
from functools import partial
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.core.types import EMPTY, Type
from repro.engine.accumulators import MapAccumulator
from repro.engine.context import Context, split_evenly
from repro.engine.scheduler import JobCancelled
from repro.inference.fusion import fuse, fuse_all, fuse_multiset
from repro.inference.infer import infer_type
from repro.inference.kernel import (
    PartitionAccumulator,
    PartitionSummary,
    PhaseTimings,
    accumulate_ndjson_partition,
    accumulate_ndjson_partition_batch,
    accumulate_ndjson_split,
    accumulate_ndjson_split_batch,
    accumulate_partition,
    as_wire_payload,
    decode_summary,
    decode_summary_light,
    encode_summary,
    merge_summaries,
    merge_summaries_full,
    type_digest,
)
from repro.inference.statistics import (
    merge_stats,
    resolve_stats_mode,
    stats_if_complete,
)
from repro.inference.typestream import resolve_lane
from repro.jsonio.errors import ErrorRateExceeded
from repro.jsonio.ndjson import (
    BadRecord,
    iter_numbered_lines,
    write_bad_records,
)
from repro.jsonio.splits import (
    DEFAULT_MIN_SPLIT_BYTES,
    plan_splits,
    rebase_bad_records,
)

__all__ = [
    "infer_schema",
    "infer_ndjson_file",
    "resolve_split_mode",
    "resolve_wire_format",
    "run_inference",
    "InferenceRun",
    "ResumableInterrupt",
    "SchemaInferencer",
    "infer_partitioned",
    "PartitionReport",
    "PartitionedRun",
    "CACHE_MODES",
    "SPLIT_MODES",
    "WIRE_FORMAT_MODES",
]


class ResumableInterrupt(Exception):
    """A journaled run was drained early and can be resumed.

    Raised instead of :exc:`~repro.engine.scheduler.JobCancelled` when a
    ``stop_event`` drains a run that has a journal: every completed
    task's summary is durable in the journal, so re-running the same
    invocation with ``resume=True`` (CLI: ``--resume``) finishes only
    the remaining work and produces the identical schema.  The CLI maps
    this to its distinct resumable exit code.
    """

    def __init__(self, journal_path: str, completed: int, total: int) -> None:
        super().__init__(
            f"run interrupted after {completed}/{total} tasks; progress is "
            f"durable in {journal_path!r} — rerun with --resume to finish"
        )
        self.journal_path = str(journal_path)
        self.completed = completed
        self.total = total

    def __reduce__(self):
        return (self.__class__, (self.journal_path, self.completed,
                                 self.total))


def infer_schema(values: Iterable[Any], context: Context | None = None,
                 num_partitions: int | None = None) -> Type:
    """Infer the fused schema of a collection of JSON values.

    >>> from repro.core.printer import print_type
    >>> print_type(infer_schema([{"a": 1}, {"a": "x", "b": True}]))
    '{a: (Num + Str), b: Bool?}'

    With a ``context``, each partition is streamed through the kernel's
    accumulator in parallel (a single pass) and the partial schemas are
    fused at the driver; without one, in-line in the calling thread via the
    naive fold — deliberately kept as the executable *reference semantics*
    the kernel is property-tested against.  An empty collection yields the
    empty type.
    """
    if context is None:
        return fuse_all(infer_type(v) for v in values)
    parts = split_evenly(_as_sequence(values),
                         num_partitions or context.default_parallelism)
    summaries = context.scheduler.run(_warm_task(context), parts)
    _note_summary_telemetry(context.scheduler.stats, summaries)
    schema, _, _ = merge_summaries(summaries)
    return schema


def _warm_task(context: Context, stats_mode: str = "off"):
    """:func:`accumulate_partition`, warm-enabled when the context is.

    A warm context stamps its scheduler's generation tag into the task,
    so each worker keeps (and reuses) per-worker kernel state across
    tasks and jobs; ``warm=False`` contexts ship the plain function.
    ``stats_mode`` rides along only when statistics are on, keeping the
    shipped task identical to previous releases otherwise.
    """
    kwargs: dict[str, Any] = {}
    if context.warm:
        kwargs["warm_generation"] = context.scheduler.warm_generation
    if stats_mode != "off":
        kwargs["stats_mode"] = stats_mode
    if kwargs:
        return partial(accumulate_partition, **kwargs)
    return accumulate_partition


def _note_summary_telemetry(stats, summaries) -> None:
    """Fold the summaries' worker telemetry into the scheduler stats.

    Workers cannot mutate driver-side stats across a process boundary,
    so each summary carries its executing worker's identity and whether
    it reused warm state; the driver aggregates here, pre-merge.
    """
    if stats is None:
        return
    per_worker = stats.tasks_per_worker
    for summary in summaries:
        if summary.worker:
            per_worker[summary.worker] = (
                per_worker.get(summary.worker, 0) + 1
            )
        if summary.warm_reused is True:
            stats.warm_state_reuses += 1
        elif summary.warm_reused is False:
            stats.warm_state_builds += 1
        stats.dedup_line_hits += summary.dedup_hits
        stats.dedup_line_misses += summary.dedup_misses
        stats.dedup_bytes_avoided += summary.dedup_bytes_avoided
        if summary.stats is not None:
            stats.stats_bundles_merged += 1


def _as_sequence(values: Iterable[Any]) -> Sequence[Any]:
    """``values`` itself when it already supports len+slicing, else a list.

    :func:`split_evenly` partitions by index without copying, so a list
    (or any other sequence) can be split as-is — materialising is only
    for one-shot iterables.  Strings/bytes are sequences *of characters*,
    never a collection of records; exclude them so a mistaken call fails
    loudly downstream instead of silently typing characters.
    """
    if isinstance(values, Sequence) and not isinstance(values, (str, bytes)):
        return values
    return list(values)


@dataclass
class InferenceRun:
    """Everything a Tables 2-6 row needs, from one pass over the data.

    For permissive NDJSON runs the quarantine outcome rides along:
    ``skipped_count`` / ``bad_records`` say how many lines were dropped
    and exactly where, and ``skipped_per_partition`` attributes them to
    the partition that skipped them.
    """

    schema: Type
    record_count: int
    distinct_type_count: int
    map_seconds: float
    reduce_seconds: float
    skipped_count: int = 0
    bad_records: tuple[BadRecord, ...] = ()
    skipped_per_partition: dict[int, int] = field(default_factory=dict)
    #: Per-stage attribution of the map phase summed over partitions
    #: (NDJSON runs only; ``None`` when the input was already parsed).
    #: Under a parallel backend the stage buckets are CPU-seconds, so
    #: they can legitimately exceed the wall-clock ``map_seconds``.
    phase_timings: PhaseTimings | None = None
    #: Records contributed by the ``update_from`` checkpoint (already
    #: part of ``record_count``); zero for non-incremental runs.
    checkpoint_record_count: int = 0
    #: The checkpoint written by ``checkpoint_to``, if any.
    checkpoint: "Any | None" = None
    #: Merged per-path statistics
    #: (:class:`repro.inference.statistics.StatsBundle`).  ``None`` when
    #: the run had ``stats="off"`` or when the bundle would cover only
    #: part of ``record_count`` (e.g. an update on top of a pre-stats
    #: checkpoint) — a present bundle always covers the whole run.
    stats: "Any | None" = None

    @property
    def total_seconds(self) -> float:
        """Map plus Reduce wall-clock."""
        return self.map_seconds + self.reduce_seconds

    @property
    def skip_rate(self) -> float:
        """Fraction of input records that were quarantined (0..1).

        Measured over the records *this* run actually read — records
        reused from an ``update_from`` checkpoint are excluded, so an
        update over a small dirty batch cannot hide behind a large
        clean history.
        """
        new_records = self.record_count - self.checkpoint_record_count
        total = new_records + self.skipped_count
        return self.skipped_count / total if total else 0.0

    def skip_summary(self) -> str:
        """Human-readable quarantine line for the run summary.

        >>> InferenceRun(EMPTY, 992, 1, 0.0, 0.0, skipped_count=8).skip_summary()
        '8 records skipped (0.8%)'
        """
        return (
            f"{self.skipped_count} records skipped ({self.skip_rate:.1%})"
        )


def _distinct(types: Sequence[Type]) -> list[Type]:
    """Deduplicate types preserving first-seen order."""
    seen: set[Type] = set()
    out: list[Type] = []
    for t in types:
        if t not in seen:
            seen.add(t)
            out.append(t)
    return out


def _run_inference_streaming(
    values: Iterable[Any],
    context: Context | None,
    num_partitions: int | None,
    stats_mode: str = "off",
) -> InferenceRun:
    """Single-pass streaming inference (see :mod:`repro.inference.kernel`).

    Typing, interning, distinct counting and memoized fusion happen in one
    traversal per partition, so ``map_seconds`` covers the whole streaming
    pass and ``reduce_seconds`` only the (tiny) driver-side merge of the
    partial summaries.
    """
    if context is None:
        start = time.perf_counter()
        acc = PartitionAccumulator(stats_mode=stats_mode)
        acc.add_many(values)
        map_seconds = time.perf_counter() - start
        return InferenceRun(
            schema=acc.schema,
            record_count=acc.record_count,
            distinct_type_count=acc.distinct_type_count,
            map_seconds=map_seconds,
            reduce_seconds=0.0,
            stats=acc.stats,
        )

    parts = split_evenly(_as_sequence(values),
                         num_partitions or context.default_parallelism)
    start = time.perf_counter()
    # One task per partition over the *raw* values.  Shipped as a plain
    # module-level function (or a partial of one, for the warm
    # generation tag) so the process backend can serialize it.
    summaries = context.scheduler.run(
        _warm_task(context, stats_mode), parts
    )
    map_seconds = time.perf_counter() - start
    _note_summary_telemetry(context.scheduler.stats, summaries)

    start = time.perf_counter()
    merged = merge_summaries_full(summaries)
    reduce_seconds = time.perf_counter() - start
    return InferenceRun(
        schema=merged.schema,
        record_count=merged.record_count,
        distinct_type_count=merged.distinct_type_count,
        map_seconds=map_seconds,
        reduce_seconds=reduce_seconds,
        stats=stats_if_complete(merged.stats, merged.record_count),
    )


def run_inference(
    values: Iterable[Any],
    context: Context | None = None,
    num_partitions: int | None = None,
    dedupe: bool = True,
    kernel: bool = True,
    stats_mode: str = "off",
) -> InferenceRun:
    """Instrumented inference.

    ``kernel=True`` (the default) runs the single-pass streaming kernel:
    one traversal per partition doing typing, interning, distinct counting
    and memoized incremental fusion, with only tiny partial summaries
    merged at the driver.  ``kernel=False`` runs the original
    materialise-then-multi-pass implementation; both produce identical
    results (schema, record count, distinct count), which the test suite
    checks property-based — the flag trades only time.

    ``dedupe`` applies to the legacy path only: it fuses over the
    deduplicated inferred types — the paper's Map phase "yields a set of
    distinct types to be fused" (Section 2).
    :func:`repro.inference.fusion.fuse_multiset` makes this an *exact*
    optimisation (same schema as fusing the raw sequence), so the flag
    only trades time, never results; it is kept as an ablation knob for
    the benchmarks.

    ``stats_mode`` (``off``/``basic``/``sketches``) opts into the
    mergeable per-path statistics of
    :mod:`repro.inference.statistics`, exposed as the run's ``stats``
    attribute.  Statistics require the kernel path.
    """
    stats_mode = resolve_stats_mode(stats_mode)
    if stats_mode != "off" and not kernel:
        raise ValueError("stats_mode requires kernel=True")
    if kernel:
        return _run_inference_streaming(
            values, context, num_partitions, stats_mode
        )
    if context is None:
        start = time.perf_counter()
        types = [infer_type(v) for v in values]
        map_seconds = time.perf_counter() - start

        distinct_count = len(set(types))
        start = time.perf_counter()
        schema = fuse_multiset(types) if dedupe else fuse_all(types)
        reduce_seconds = time.perf_counter() - start
        return InferenceRun(
            schema=schema,
            record_count=len(types),
            distinct_type_count=distinct_count,
            map_seconds=map_seconds,
            reduce_seconds=reduce_seconds,
        )

    source = context.parallelize(values, num_partitions)
    start = time.perf_counter()
    typed = source.map(infer_type).cache()
    record_count = typed.count()  # forces the Map phase to run
    map_seconds = time.perf_counter() - start

    start = time.perf_counter()
    distinct_count = len(set(typed.map_partitions(_distinct).collect()))
    if dedupe:
        # Dedup-fuse each partition, then fold the partial schemas.
        per_part = typed.map_partitions(lambda part: [fuse_multiset(part)])
        schema = per_part.fold(EMPTY, fuse)
    else:
        schema = typed.fold(EMPTY, fuse)
    reduce_seconds = time.perf_counter() - start
    return InferenceRun(
        schema=schema,
        record_count=record_count,
        distinct_type_count=distinct_count,
        map_seconds=map_seconds,
        reduce_seconds=reduce_seconds,
    )


#: Public values of ``infer_ndjson_file``'s ``split_mode``.
SPLIT_MODES = ("auto", "bytes", "lines")

#: Public values of ``infer_ndjson_file``'s ``wire_format``.
WIRE_FORMAT_MODES = ("auto", "on", "off")


def resolve_wire_format(wire_format: str, context: Context | None) -> bool:
    """Resolve a ``wire_format`` mode to a concrete on/off decision.

    ``"auto"`` turns the compact summary wire format on exactly where it
    pays: the process backend, whose task results otherwise cross the
    IPC boundary as pickled type-object graphs.  On the thread backend
    (and in-line) summaries are shared by reference, so encoding would
    be pure overhead.  ``"on"``/``"off"`` force the decision — ``"on"``
    is how the equivalence tests exercise the codec on every backend.
    """
    if wire_format not in WIRE_FORMAT_MODES:
        raise ValueError(
            f"unknown wire_format {wire_format!r}; expected one of "
            f"{WIRE_FORMAT_MODES}"
        )
    if wire_format == "auto":
        return context is not None and context.backend == "process"
    return wire_format == "on"


#: Public values of ``infer_ndjson_file``'s ``cache_mode``.
CACHE_MODES = ("off", "read", "readwrite")


def _resolve_cache(summary_cache, cache_mode: str):
    """Resolve the cache kwargs to ``(cache, read, write)``.

    ``summary_cache`` may be a directory path or an already-constructed
    :class:`~repro.store.summarycache.SummaryCache`.  ``cache_mode``
    gates the two sides independently: ``"read"`` probes but never
    stores (useful for a shared read-only cache), ``"readwrite"`` (the
    default when a cache is given) does both, ``"off"`` disables the
    cache entirely — byte-identical to not passing one.
    """
    if cache_mode not in CACHE_MODES:
        raise ValueError(
            f"unknown cache_mode {cache_mode!r}; expected one of "
            f"{CACHE_MODES}"
        )
    if summary_cache is None or cache_mode == "off":
        return None, False, False
    from repro.store.summarycache import SummaryCache

    cache = (
        summary_cache if isinstance(summary_cache, SummaryCache)
        else SummaryCache(summary_cache)
    )
    return cache, True, cache_mode == "readwrite"


def _digest_numbered_lines(part) -> str:
    """Content digest of one lines-mode partition.

    Lines-mode summaries bake *absolute* line numbers into their
    quarantine records, so the digest covers each line's number as well
    as its text — two partitions with identical texts at different file
    positions must never share a cache entry.
    """
    digest = hashlib.sha256()
    for number, text in part:
        digest.update(str(number).encode("ascii"))
        digest.update(b":")
        digest.update(text.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def _scrub_replayed_telemetry(summary: PartitionSummary) -> PartitionSummary:
    """Zero the run-local telemetry a cached summary carries.

    A cache hit replays the summary *content* (schema, counts,
    quarantine) of the run that produced it, but its worker identity,
    warm-state flag and dedup counters describe that old run — left in
    place they would corrupt this run's accounting.
    """
    return replace(
        summary, worker="", warm_reused=None,
        dedup_hits=0, dedup_misses=0, dedup_bytes_avoided=0,
    )


#: Version of the run-level (whole-plan) cache entry payload.
_RUN_ENTRY_VERSION = 1

#: Signature suffix that separates run-level entries from per-partition
#: entries in the same cache directory (it shows up in entry file names,
#: so the two populations are distinguishable on disk).
_RUN_SIGNATURE_SUFFIX = "-run"


def _run_level_key(digests: Sequence[str]) -> str:
    """Content key of the *whole plan*: a digest over the ordered
    per-partition digests.  Any content change, any boundary change and
    any partition-count change alters at least one member, so a run-level
    hit certifies that every partition — and their arrangement — is
    byte-identical to the run that stored the entry."""
    return hashlib.sha256("\n".join(digests).encode("ascii")).hexdigest()


def _encode_run_entry(
    merged,
    distinct_count: int,
    skipped_per_partition: "dict[int, int]",
    bytes_read: int,
) -> bytes:
    """Run-level entry: the merged result minus its distinct-type *set*.

    A plain inference run only ever observes the distinct *count*; the
    set itself (which dwarfs the schema — decoding it dominates warm
    replay on heterogeneous data) is only needed by checkpoint writes
    and incremental updates, which bypass run-level replay entirely.
    ``skipped_per_partition`` rides along because the merged result no
    longer attributes quarantined rows to partitions, and ``bytes_read``
    (summed over partitions) feeds the replay's bytes-skipped telemetry.
    """
    slim = PartitionSummary(
        schema=merged.schema,
        record_count=merged.record_count,
        distinct_types=(),
        skipped=merged.skipped,
        timings=merged.timings,
        bytes_read=bytes_read,
        stats=merged.stats,
    )
    return pickle.dumps(
        (
            _RUN_ENTRY_VERSION,
            encode_summary(slim),
            distinct_count,
            dict(skipped_per_partition),
        ),
        pickle.HIGHEST_PROTOCOL,
    )


def _decode_run_entry(payload: bytes):
    """Inverse of :func:`_encode_run_entry`; ``None`` for anything
    malformed or version-skewed (the caller recomputes)."""
    try:
        version, wire_bytes, distinct_count, per_partition = (
            pickle.loads(payload)
        )
        if version != _RUN_ENTRY_VERSION:
            return None
        summary = decode_summary(wire_bytes)
    except Exception:
        return None
    return summary, distinct_count, per_partition


def _replay_run_entry(
    cache, run_key: str, signature: str, stats, n_partitions: int,
    bad_records_path, max_error_rate, start: float,
) -> "InferenceRun | None":
    """Whole-run replay: if the run-level entry for this exact plan is
    present and intact, rebuild the :class:`InferenceRun` without
    dispatching, decoding or merging anything — the map *and* reduce
    phases are both pure functions of the plan's content."""
    payload = cache.get(run_key, signature + _RUN_SIGNATURE_SUFFIX)
    if payload is None:
        return None
    decoded = _decode_run_entry(payload)
    if decoded is None:
        return None
    summary, distinct_count, per_partition = decoded
    summary = _scrub_replayed_telemetry(summary)
    if stats is not None:
        stats.cache_hits += n_partitions
        stats.cache_bytes_skipped += summary.bytes_read
    map_seconds = time.perf_counter() - start
    if bad_records_path is not None and summary.skipped:
        write_bad_records(bad_records_path, summary.skipped)
    if max_error_rate is not None:
        total = summary.record_count + summary.skipped_count
        if total and summary.skipped_count / total > max_error_rate:
            raise ErrorRateExceeded(
                summary.skipped_count, total, max_error_rate
            )
    return InferenceRun(
        schema=summary.schema,
        record_count=summary.record_count,
        distinct_type_count=distinct_count,
        map_seconds=map_seconds,
        reduce_seconds=0.0,
        skipped_count=summary.skipped_count,
        bad_records=summary.skipped,
        skipped_per_partition=dict(per_partition),
        phase_timings=summary.timings,
        stats=stats_if_complete(summary.stats, summary.record_count),
    )


def _plan_batches(items: list, parallelism: int,
                  batch_size: int | None) -> "list[list] | None":
    """Group per-partition work items into per-task batches, or ``None``.

    ``None`` (returned for ``batch_size`` ≤ 1, or under the auto policy
    when the item count is at most ``2 × parallelism``) means "dispatch
    unbatched" — one task per item, the historical behaviour.  The auto
    policy kicks in only when there are *many more* items than workers:
    it sizes batches so roughly ``2 × parallelism`` tasks remain, which
    keeps the tail balanced while folding the per-task overhead (dispatch,
    result shipping, driver-side merge) of all the small partitions into
    worker-local merges.  Batches are contiguous runs, so downstream
    line-number accounting stays a prefix sum.
    """
    n = len(items)
    if batch_size is None:
        if n <= 2 * parallelism:
            return None
        batch_size = -(-n // (2 * parallelism))  # ceil division
    if batch_size <= 1:
        return None
    return [items[i:i + batch_size] for i in range(0, n, batch_size)]


def _decode_wire_summaries(payloads, stats) -> list[PartitionSummary]:
    """Decode wire payloads through one shared adoption accumulator.

    One accumulator means one interner: structurally equal subtrees from
    *different* partitions decode to pointer-identical nodes, so the
    driver-side merge deduplicates by identity from the start.  The
    byte counters feed ``--timings``; encoded and decoded totals are
    tallied from the same payloads (every result the driver sees was
    encoded exactly once, worker-side).

    Entries that are already :class:`PartitionSummary` objects pass
    through untouched — a resumed run's entry list mixes journal-replayed
    wire payloads with fresh thread-backend summary objects.
    """
    adopt = PartitionAccumulator()
    summaries = []
    for payload in payloads:
        if not isinstance(payload, (bytes, bytearray)):
            summaries.append(payload)
            continue
        payload = bytes(payload)
        if stats is not None:
            stats.summary_wire_bytes_encoded += len(payload)
            stats.summary_wire_bytes_decoded += len(payload)
        summaries.append(decode_summary(payload, adopt))
    return summaries


def _materialize_partition_results(
    entries, hit_payloads, stats, wire_active: bool, light: bool,
) -> "tuple[list[PartitionSummary], set[bytes] | None]":
    """Turn per-partition results (wire payloads and/or summary objects)
    into summaries, choosing the cheapest faithful decode.

    When ``light`` is allowed and cache hits are present, hit payloads
    decode through :func:`decode_summary_light`: counts, quarantine and
    the small fused schema materialise, but each distinct type becomes a
    canonical digest instead of a rebuilt tree — on heterogeneous data
    rebuilding the distinct set dominates warm partial replays.  Fresh
    miss summaries contribute :func:`type_digest` of their (in-memory,
    interned) distinct types, so the returned digest set counts distincts
    across hits and misses exactly as a structural merge would.  The
    second element is that set, or ``None`` when the full decode ran and
    the caller should count off the merged distinct types as usual.
    """
    if light and hit_payloads:
        digests: "set[bytes]" = set()
        summaries: "list[PartitionSummary]" = []
        for entry in entries:
            if isinstance(entry, (bytes, bytearray)):
                payload = bytes(entry)
                if stats is not None:
                    stats.summary_wire_bytes_encoded += len(payload)
                    stats.summary_wire_bytes_decoded += len(payload)
                summary, entry_digests = decode_summary_light(payload)
                digests.update(entry_digests)
            else:
                memo: "dict[int, bytes]" = {}
                digests.update(
                    type_digest(t, memo) for t in entry.distinct_types
                )
                summary = replace(entry, distinct_types=())
            summaries.append(summary)
        return summaries, digests
    if wire_active or hit_payloads:
        return _decode_wire_summaries(entries, stats), None
    return list(entries), None


def _journal_header(plan_desc: dict, signature: str, total: int) -> dict:
    """The run-journal header frame for this task plan.

    Everything a resume needs to *validate* (did the flags or the file
    change?) and everything fsck needs to *report*, without re-planning.
    """
    return {
        "task_count": total,
        "plan_sha256": signature,
        "source": plan_desc.get("source"),
        "split_mode": plan_desc.get("split_mode"),
        "parse_lane": plan_desc.get("parse_lane"),
        "permissive": plan_desc.get("permissive"),
        # Absent for stats-off runs, so pre-stats journals (no key at
        # all) validate against them unchanged.
        "stats": plan_desc.get("stats"),
        "tasks": plan_desc.get("tasks"),
    }


def _validate_resume(state, plan_desc: dict, signature: str,
                     total: int) -> None:
    """Refuse to replay a journal that describes a different run.

    Replaying summaries of other data (or of another split plan) would
    silently fuse the wrong partitions into the schema; a mismatch is
    therefore a hard error, with the first observed difference named so
    the operator knows whether the file changed or the flags did.
    """
    from repro.store.journal import JournalMismatchError

    header = state.header
    if header.get("plan_sha256") == signature:
        return
    path = state.path
    theirs, ours = header.get("source"), plan_desc.get("source")
    if theirs != ours:
        raise JournalMismatchError(
            f"journal {path!r} was written for source {theirs!r}, but the "
            f"current run reads {ours!r} — the input file changed (or a "
            f"different file was named); delete the journal to start over"
        )
    for key in ("split_mode", "parse_lane", "permissive", "stats"):
        if header.get(key) != plan_desc.get(key):
            raise JournalMismatchError(
                f"journal {path!r} recorded {key}={header.get(key)!r}, "
                f"but the current run resolved {key}="
                f"{plan_desc.get(key)!r}; rerun with the original flags "
                f"(or delete the journal to start over)"
            )
    if header.get("task_count") != total:
        raise JournalMismatchError(
            f"journal {path!r} planned {header.get('task_count')} tasks, "
            f"but the current run planned {total} — partitioning flags "
            f"(--partitions/--workers/--batch-size/--min-split-mb) must "
            f"match the original run"
        )
    raise JournalMismatchError(
        f"journal {path!r} was written for a different task plan "
        f"(plan digest {str(header.get('plan_sha256'))[:12]} != "
        f"{signature[:12]}); rerun with the original flags or delete the "
        f"journal to start over"
    )


def _run_journaled_tasks(
    task,
    work_items: list,
    plan_desc: dict,
    scheduler,
    journal_path,
    resume: bool,
    stop_event,
):
    """Dispatch ``work_items``, journaling each completion; returns
    ``(entries, journal)``.

    ``entries`` is indexed by task: journal-replayed tasks hold their
    recorded wire payload (bytes), freshly executed tasks hold whatever
    the task returned (wire bytes or a summary object).  The returned
    journal is still open — the caller appends the commit frame after
    the merge and closes it; on every error path here the journal is
    closed before the exception propagates.

    Without a ``journal_path`` this degrades to a plain dispatch (and
    ``resume`` is rejected — there is nothing to resume from).
    """
    journal = None
    replayed: dict[int, bytes] = {}
    total = len(work_items)
    if journal_path is not None:
        from repro.store.journal import RunJournal, plan_signature

        signature = plan_signature(plan_desc)
        if resume:
            journal, state = RunJournal.open_resume(journal_path)
            try:
                _validate_resume(state, plan_desc, signature, total)
            except BaseException:
                journal.close()
                raise
            replayed = {
                i: payload for i, payload in state.completed.items()
                if 0 <= i < total
            }
        else:
            journal = RunJournal.create(
                journal_path, _journal_header(plan_desc, signature, total)
            )
    elif resume:
        raise ValueError(
            "resume=True requires journal_path (nothing to resume from)"
        )

    remaining = [i for i in range(total) if i not in replayed]
    entries: list = [None] * total
    for i, payload in replayed.items():
        entries[i] = payload

    on_result = None
    if journal is not None:
        def on_result(local_index: int, result) -> None:
            payload = (
                bytes(result) if isinstance(result, (bytes, bytearray))
                else encode_summary(result)
            )
            journal.append_task(remaining[local_index], payload)

    try:
        if scheduler is None:
            fresh = []
            for local, index in enumerate(remaining):
                if stop_event is not None and stop_event.is_set():
                    raise JobCancelled(local, len(remaining))
                result = task(work_items[index])
                if on_result is not None:
                    on_result(local, result)
                fresh.append(result)
        else:
            fresh = scheduler.run(
                task,
                [work_items[i] for i in remaining],
                on_result=on_result,
                stop_event=stop_event,
            )
    except JobCancelled as exc:
        if journal is not None:
            journal.close()
            raise ResumableInterrupt(
                str(journal_path), len(replayed) + exc.completed, total
            ) from exc
        raise
    except BaseException:
        if journal is not None:
            journal.close()
        raise

    for local, index in enumerate(remaining):
        entries[index] = fresh[local]
    return entries, journal


def resolve_split_mode(split_mode: str, context: Context | None) -> str:
    """Resolve an ingestion ``split_mode`` to ``"bytes"`` or ``"lines"``.

    ``"auto"`` picks byte-range splits whenever a :class:`Context` is
    available — the workers read their own byte ranges, so the driver
    never materialises the file and ships only descriptors — and the
    streaming line reader otherwise (the sequential path is already
    zero-copy: it feeds the accumulator straight off the file iterator).
    """
    if split_mode not in SPLIT_MODES:
        raise ValueError(
            f"unknown split_mode {split_mode!r}; expected one of "
            f"{SPLIT_MODES}"
        )
    if split_mode == "auto":
        return "bytes" if context is not None else "lines"
    return split_mode


def infer_ndjson_file(
    path: str | Path,
    context: Context | None = None,
    num_partitions: int | None = None,
    permissive: bool = False,
    bad_records_path: str | Path | None = None,
    max_error_rate: float | None = None,
    parse_lane: str = "auto",
    collect_timings: bool = False,
    split_mode: str = "auto",
    min_split_bytes: int = DEFAULT_MIN_SPLIT_BYTES,
    update_from: str | Path | None = None,
    checkpoint_to: str | Path | None = None,
    batch_size: int | None = None,
    wire_format: str = "auto",
    journal_path: str | Path | None = None,
    resume: bool = False,
    stop_event=None,
    summary_cache: "str | Path | Any | None" = None,
    cache_mode: str = "readwrite",
    stats_mode: str = "off",
) -> InferenceRun:
    """Instrumented schema inference straight from an NDJSON file.

    Incremental maintenance (see :mod:`repro.store` and
    docs/INCREMENTAL.md): ``update_from`` names a checkpoint directory
    whose stored summary is fused with the freshly mapped partitions —
    only the new file is parsed, and the stored summary enters the
    reduce as one more partial (participating in the scheduler's
    tree-merge like any partition summary).  ``checkpoint_to`` persists
    the merged result (schema, record count, distinct types, source
    fingerprints) after the run; pass the same directory for both to
    maintain a long-lived schema over an arriving feed.  By
    associativity (Theorem 5.5) the update result is *identical* to
    recomputing over all the data from scratch.

    ``split_mode`` picks the ingestion model (see
    :func:`resolve_split_mode` for how ``"auto"`` chooses):

    * ``"bytes"`` — the driver plans
      :class:`~repro.jsonio.splits.FileSplit` byte ranges from the file
      size alone and ships only those descriptors; each worker opens the
      file itself and parses exactly the lines its range owns.  Driver
      memory stays O(1) in the dataset and nothing but summaries crosses
      the process boundary back.  ``min_split_bytes`` floors the split
      size so tiny files do not shatter into per-task overhead.
    * ``"lines"`` — the original model: the driver reads the file,
      numbers every line, and distributes the line lists.  Kept as the
      executable reference the byte-split differential tests compare
      against (and the only model for already-open streams).

    Both modes produce identical results — schema, counts, error
    diagnostics and quarantine sidecars, absolute line numbers included;
    byte-split workers report split-local line numbers that the driver
    re-bases with a prefix sum over the splits' line counts.

    ``parse_lane`` picks the map-phase implementation per
    :func:`repro.inference.typestream.resolve_lane`: ``"auto"`` (default)
    and ``"fast"`` type each record *during* parsing with no intermediate
    value tree — C-accelerated via stdlib ``json`` hooks when available —
    and fall back to the strict parser per record on any error, so
    results, error diagnostics and quarantine behaviour are identical to
    ``"strict"`` on every input; only the wall-clock differs.
    ``"bytes"`` (opt-in) is the vectorized lane: byte-split workers mmap
    their range and type whole batches of raw, never-decoded line bytes
    through one C ``json`` call, with a warm-state duplicate-line type
    cache that skips parsing repeated lines outright; any batch the fast
    path rejects is re-run through the same per-line fallback chain, so
    its results are byte-identical too (the dedup counters land in
    :class:`~repro.engine.scheduler.SchedulerStats`).  With
    ``collect_timings=True`` (the CLI's ``--timings``) the run's
    ``phase_timings`` attribute the map time to parse/type/fuse stages;
    the default skips the per-record clock reads and leaves
    ``phase_timings`` as ``None``.

    Dispatch shape and the task return path:

    * ``batch_size`` — how many partitions (splits or line chunks) each
      scheduler task folds worker-locally before its one summary returns
      to the driver.  ``None`` (default) auto-batches only when there
      are more than ``2 ×`` the scheduler's parallelism items, sizing
      batches to leave about two tasks per worker; ``1`` forces the
      historical one-task-per-partition dispatch.  Any grouping yields
      identical results (fusion associativity, Theorem 5.5), and
      quarantined line numbers stay absolute: batch tasks re-base
      intra-batch, the driver re-bases across tasks.
    * ``wire_format`` — ``"auto"`` (default) encodes task-result
      summaries in the compact flat-table wire format whenever the
      context runs the process backend, where results otherwise cross
      the IPC boundary as pickled type-object graphs; ``"on"``/``"off"``
      force it.  See :func:`repro.inference.kernel.encode_summary`;
      results are bit-identical either way.

    With a warm context (``Context(warm=True)``, the default) every
    partition task also carries the scheduler's warm-state generation
    tag, letting workers reuse their interner/memo/key-cache across
    tasks and jobs — see :class:`repro.engine.context.Context`.

    Dirty-data handling:

    * strict mode (default) — the first malformed line fails the job with
      a :class:`~repro.jsonio.errors.JsonSyntaxError` carrying the source
      path and absolute line number;
    * ``permissive=True`` — malformed lines are quarantined instead:
      counted per partition (see ``InferenceRun.skipped_per_partition``),
      optionally spilled to the ``bad_records_path`` NDJSON sidecar, and
      reported via ``InferenceRun.skip_summary()``;
    * ``max_error_rate`` — even in permissive mode, abort with
      :class:`~repro.jsonio.errors.ErrorRateExceeded` when the quarantined
      fraction exceeds this threshold, so silent garbage cannot
      masquerade as success.  The sidecar (if requested) is still written
      before the abort, for post-mortems.

    Durability (see docs/FAULT_TOLERANCE.md, "Durability and resume"):

    * ``journal_path`` — write-ahead run journal.  The task plan is
      recorded up front; each completed task's encoded summary is
      fsync'd to the journal *before* the run proceeds, so a crash —
      process kill, power loss, OOM — loses at most the tasks still in
      flight.  A commit frame is appended after the merge (and
      checkpoint, if any) succeeds.
    * ``resume=True`` — replay the journal's completed summaries through
      the fusion algebra and execute only the remaining tasks.  By
      commutativity/associativity (Theorems 5.4-5.5) the resumed result
      is byte-identical to an uninterrupted run.  The journal must match
      the current plan (same source, flags and task count); a mismatch
      raises :class:`~repro.store.journal.JournalMismatchError`.
    * ``stop_event`` — a ``threading.Event``; when set, queued tasks are
      cancelled, in-flight tasks drain (and are journaled), and the run
      raises :class:`ResumableInterrupt` (with a journal) or
      :class:`~repro.engine.scheduler.JobCancelled` (without).

    Cross-run caching (see docs/PERFORMANCE.md, "Cross-run caching"):

    * ``summary_cache`` — a directory (or
      :class:`~repro.store.summarycache.SummaryCache`) holding
      content-addressed partition summaries across runs.  Before
      dispatch, every planned partition's content digest is probed
      against the cache; hits decode straight into the driver's adoption
      accumulator — byte-identical schema and quarantine line numbers —
      and only changed or new partitions ship to workers.  A re-run over
      unchanged data skips the map phase entirely; an append-mostly
      re-run does map work proportional to the delta (byte splits are
      planned with stable, quantized boundaries when a cache is active,
      so an append leaves the unchanged prefix's digests intact).
      Batching is disabled while a cache is active: entries are
      per-partition, so each partition's summary must return
      individually.  The cache is strictly best-effort and strictly
      transparent — corrupt or evicted entries recompute, and results
      are byte-identical to an uncached run on every backend and split
      mode.
    * ``cache_mode`` — ``"readwrite"`` (default) probes and stores,
      ``"read"`` only probes, ``"off"`` ignores ``summary_cache``
      entirely.

    ``stats_mode`` — ``"off"`` (default), ``"basic"`` or ``"sketches"``
    — enriches every partition summary with mergeable per-path
    statistics (see :mod:`repro.inference.statistics`).  Statistics ride
    the same commutative/associative merge path as the schema, so
    journals, caches, tree-merge and incremental updates keep working;
    the inferred schema is byte-identical in every mode.  Stats need
    materialised values, so any enabled mode runs the ``"strict"`` parse
    lane; ``"off"`` pays nothing.
    """
    source = str(path)
    # Resolve once at the driver (raising early on an unknown lane or
    # mode) so every partition — local or on a worker process — runs the
    # same implementation and reports a stable lane name in its timings.
    lane = resolve_lane(parse_lane)
    stats_mode = resolve_stats_mode(stats_mode)
    if stats_mode != "off":
        # Statistics observe concrete values, which only the strict lane
        # materialises.  Lane choice never changes the schema, so this
        # downgrade is invisible in the result.
        lane = "strict"
    mode = resolve_split_mode(split_mode, context)
    cache, cache_read, cache_write = _resolve_cache(summary_cache, cache_mode)
    if cache is not None and split_mode == "auto" and context is None:
        # The sequential default is the streaming line path, which has no
        # per-partition unit to key; byte splits give the cache one, at
        # identical results (the split-equivalence guarantee).
        mode = "bytes"
    cache_signature = None
    if cache is not None:
        if mode == "lines" and context is None:
            # Explicit lines mode without a context streams the file as
            # one journal task; there is nothing partition-shaped to
            # cache, so the run is simply uncached.
            cache = None
        else:
            from repro.store.summarycache import config_signature

            cache_signature = config_signature(
                parse_lane=lane, permissive=permissive,
                collect_timings=collect_timings, split_mode=mode,
                stats=stats_mode,
            )
    wire = resolve_wire_format(wire_format, context)
    stats = context.scheduler.stats if context is not None else None
    scheduler = context.scheduler if context is not None else None
    parallelism = scheduler.parallelism if scheduler is not None else 1
    warm_generation = (
        scheduler.warm_generation
        if scheduler is not None and scheduler.warm else None
    )

    loaded = None
    if update_from is not None or checkpoint_to is not None:
        # Imported lazily: the store sits above the kernel, and most
        # runs never touch it.
        from repro.store.checkpoint import load_checkpoint, save_checkpoint
    if update_from is not None:
        loaded = load_checkpoint(update_from, stats=stats)
    if resume and journal_path is None:
        raise ValueError(
            "resume=True requires journal_path (nothing to resume from)"
        )

    def _plan_desc(tasks: list) -> dict:
        """The canonical plan descriptor the journal header signs."""
        if journal_path is None:
            return {}
        from repro.store.checkpoint import fingerprint_source

        desc = {
            "source": fingerprint_source(source).to_dict(),
            "split_mode": mode,
            "parse_lane": lane,
            "permissive": bool(permissive),
            "update": str(update_from) if update_from is not None else None,
            "tasks": tasks,
        }
        if stats_mode != "off":
            # Only when enabled, so stats-off plans hash identically to
            # pre-stats journals and remain resumable by them.
            desc["stats"] = stats_mode
        return desc

    start = time.perf_counter()
    journal = None
    #: Partition index -> cached wire payload, for this run's plan.
    hit_payloads: dict[int, bytes] = {}
    #: Whole-plan cache key (run-level entry), when a cache is active.
    run_key: "str | None" = None
    # Run-level replay and store are sound only when the result is a pure
    # function of this plan's content: incremental updates fold in
    # checkpointed history, checkpoint writes need the distinct-type set
    # the slim entry drops, and journaled runs owe the caller a journal.
    run_replay_ok = (
        update_from is None and checkpoint_to is None
        and journal_path is None
    )
    if mode == "bytes":
        splits = plan_splits(
            source,
            num_partitions
            or (context.default_parallelism if context is not None else 1),
            min_split_bytes,
            stable=cache is not None,
        )
        split_digests: "list[str] | None" = None
        if cache is not None and splits:
            # Probe the plan before dispatch: one hash pass over the
            # file (memory bandwidth, no typing) keys every split.
            from repro.jsonio.blockscan import digest_splits

            split_digests = digest_splits(source, splits)
            run_key = _run_level_key(split_digests)
            if cache_read and run_replay_ok:
                replayed = _replay_run_entry(
                    cache, run_key, cache_signature, stats, len(splits),
                    bad_records_path, max_error_rate, start,
                )
                if replayed is not None:
                    return replayed
            if cache_read:
                for index, digest in enumerate(split_digests):
                    payload = cache.get(digest, cache_signature)
                    if payload is not None:
                        hit_payloads[index] = payload
        miss_indices = [
            i for i in range(len(splits)) if i not in hit_payloads
        ]
        miss_splits = [splits[i] for i in miss_indices]
        if stats is not None:
            # The entire driver-to-worker input payload: the pickled
            # descriptors (cache hits never ship).  Compare with
            # input_bytes_read below.
            stats.input_bytes_shipped += len(pickle.dumps(miss_splits))
        # Batching folds several splits into one returned summary; cache
        # entries are per-split, so a cache-active run dispatches
        # unbatched (results are identical either way — Theorem 5.5).
        batches = (
            _plan_batches(miss_splits, parallelism, batch_size)
            if context is not None and cache is None else None
        )
        if batches is not None:
            task = partial(
                accumulate_ndjson_split_batch, permissive=permissive,
                parse_lane=lane, collect_timings=collect_timings,
                warm_generation=warm_generation, wire=wire,
                stats_mode=stats_mode,
            )
            work_items = batches
            descriptors = [
                [[s.offset, s.length] for s in batch] for batch in batches
            ]
        else:
            task = partial(
                accumulate_ndjson_split, permissive=permissive,
                parse_lane=lane, collect_timings=collect_timings,
                warm_generation=warm_generation, wire=wire,
                stats_mode=stats_mode,
            )
            work_items = miss_splits
            descriptors = [[[s.offset, s.length]] for s in miss_splits]
        miss_results, journal = _run_journaled_tasks(
            task, work_items, _plan_desc(descriptors), scheduler,
            journal_path, resume, stop_event,
        )
        if cache_write and split_digests is not None:
            stored = 0
            for local, index in enumerate(miss_indices):
                if cache.put(
                    split_digests[index], cache_signature,
                    as_wire_payload(miss_results[local]),
                ):
                    stored += 1
            if stats is not None:
                stats.cache_stores += stored
        if hit_payloads:
            summaries: list = [None] * len(splits)
            for index, payload in hit_payloads.items():
                summaries[index] = payload
            for local, index in enumerate(miss_indices):
                summaries[index] = miss_results[local]
        else:
            summaries = miss_results
        # Partial replay decodes "light" when nothing downstream needs
        # the distinct-type *set* (no checkpoint write, no incremental
        # fold, no journal) — see _materialize_partition_results.
        summaries, light_digests = _materialize_partition_results(
            summaries, hit_payloads, stats,
            wire_active=wire or journal_path is not None,
            light=run_replay_ok,
        )
        if hit_payloads:
            summaries = [
                _scrub_replayed_telemetry(summary)
                if index in hit_payloads else summary
                for index, summary in enumerate(summaries)
            ]
        if stats is not None:
            if cache is not None:
                stats.cache_hits += len(hit_payloads)
                stats.cache_misses += len(miss_indices)
                stats.cache_bytes_skipped += sum(
                    summaries[index].bytes_read for index in hit_payloads
                )
            stats.input_bytes_read += sum(
                summary.bytes_read
                for index, summary in enumerate(summaries)
                if index not in hit_payloads
            )
        # Workers only know split-local line numbers; a prefix sum over
        # the split line counts re-anchors quarantined records to their
        # absolute file lines before anything downstream sees them.
        # Cache entries store split-local numbers too, so hits and
        # misses rebase uniformly.
        rebased = []
        base = 0
        for summary in summaries:
            if summary.skipped:
                summary = replace(
                    summary,
                    skipped=rebase_bad_records(summary.skipped, base),
                )
            base += summary.line_count
            rebased.append(summary)
        summaries = rebased
    else:
        task = partial(
            accumulate_ndjson_partition, source=source,
            permissive=permissive, parse_lane=lane,
            collect_timings=collect_timings,
            warm_generation=warm_generation, wire=wire,
            stats_mode=stats_mode,
        )
        if context is None:
            # Feed the accumulator straight off the file iterator: the
            # sequential path never materialises the line list, keeping
            # memory constant however massive the input.  As a single
            # journal task: either it completed before the crash (and
            # resume replays it without re-reading the file) or it runs
            # from the start.
            summaries, journal = _run_journaled_tasks(
                lambda _item: task(iter_numbered_lines(path)),
                [None], _plan_desc([["stream"]]), None,
                journal_path, resume, stop_event,
            )
        else:
            lines = list(iter_numbered_lines(path))
            parts = split_evenly(
                lines, num_partitions or context.default_parallelism
            )
            part_digests: "list[str] | None" = None
            if cache is not None and parts:
                part_digests = [
                    _digest_numbered_lines(part) for part in parts
                ]
                run_key = _run_level_key(part_digests)
                if cache_read and run_replay_ok:
                    replayed = _replay_run_entry(
                        cache, run_key, cache_signature, stats,
                        len(parts), bad_records_path, max_error_rate,
                        start,
                    )
                    if replayed is not None:
                        return replayed
                if cache_read:
                    for index, digest in enumerate(part_digests):
                        payload = cache.get(digest, cache_signature)
                        if payload is not None:
                            hit_payloads[index] = payload
            miss_indices = [
                i for i in range(len(parts)) if i not in hit_payloads
            ]
            miss_parts = [parts[i] for i in miss_indices]
            if stats is not None:
                # Approximate payload the driver hands to the partition
                # tasks: the text of every dispatched record (cache hits
                # never ship).
                stats.input_bytes_shipped += sum(
                    len(text) for part in miss_parts for _, text in part
                )
            # Per-partition cache entries require unbatched dispatch,
            # exactly as on the bytes path.
            batches = (
                _plan_batches(miss_parts, parallelism, batch_size)
                if cache is None else None
            )

            def _part_desc(part: list) -> list[int]:
                return [part[0][0] if part else -1, len(part)]

            if batches is not None:
                task = partial(
                    accumulate_ndjson_partition_batch, source=source,
                    permissive=permissive, parse_lane=lane,
                    collect_timings=collect_timings,
                    warm_generation=warm_generation, wire=wire,
                    stats_mode=stats_mode,
                )
                work_items = batches
                descriptors = [
                    [_part_desc(part) for part in batch] for batch in batches
                ]
            else:
                work_items = miss_parts
                descriptors = [[_part_desc(part)] for part in miss_parts]
            miss_results, journal = _run_journaled_tasks(
                task, work_items, _plan_desc(descriptors), scheduler,
                journal_path, resume, stop_event,
            )
            if cache_write and part_digests is not None:
                stored = 0
                for local, index in enumerate(miss_indices):
                    if cache.put(
                        part_digests[index], cache_signature,
                        as_wire_payload(miss_results[local]),
                    ):
                        stored += 1
                if stats is not None:
                    stats.cache_stores += stored
            if hit_payloads:
                summaries = [None] * len(parts)
                for index, payload in hit_payloads.items():
                    summaries[index] = payload
                for local, index in enumerate(miss_indices):
                    summaries[index] = miss_results[local]
            else:
                summaries = miss_results
            if stats is not None and cache is not None:
                stats.cache_hits += len(hit_payloads)
                stats.cache_misses += len(miss_indices)
                stats.cache_bytes_skipped += sum(
                    len(text)
                    for index in hit_payloads
                    for _, text in parts[index]
                )
        # Partial replay decodes "light" when nothing downstream needs
        # the distinct-type *set* (no checkpoint write, no incremental
        # fold, no journal) — see _materialize_partition_results.
        summaries, light_digests = _materialize_partition_results(
            summaries, hit_payloads, stats,
            wire_active=wire or journal_path is not None,
            light=run_replay_ok,
        )
        if hit_payloads:
            summaries = [
                _scrub_replayed_telemetry(summary)
                if index in hit_payloads else summary
                for index, summary in enumerate(summaries)
            ]
    map_seconds = time.perf_counter() - start
    _note_summary_telemetry(stats, summaries)

    try:
        start = time.perf_counter()
        # Attribute quarantined rows to their partitions through the
        # engine's accumulator machinery (summaries carry the counts
        # across process boundaries; the accumulator merges them
        # driver-side).
        per_partition = MapAccumulator()
        for index, summary in enumerate(summaries):
            if summary.skipped_count:
                per_partition.add_count(index, summary.skipped_count)
        if loaded is not None:
            # The stored summary is just one more partial: it enters the
            # same (possibly tree-shaped) reduce as the fresh partitions.
            summaries = list(summaries) + [loaded.summary]
        merged = merge_summaries_full(summaries, scheduler=scheduler)
        # Light replays carry digests instead of materialised distinct
        # types; the set union *is* the structural distinct count.
        distinct_count = (
            len(light_digests) if light_digests is not None
            else merged.distinct_type_count
        )
        reduce_seconds = time.perf_counter() - start

        if run_key is not None and cache_write and update_from is None:
            # Merged results are pure for non-incremental runs, so the
            # whole reduce is cacheable too: the next identical-content
            # run replays this entry and skips map *and* reduce.
            if cache.put(
                run_key, cache_signature + _RUN_SIGNATURE_SUFFIX,
                _encode_run_entry(
                    merged, distinct_count, per_partition.value,
                    sum(s.bytes_read for s in summaries),
                ),
            ) and stats is not None:
                stats.cache_stores += 1

        if bad_records_path is not None and merged.skipped:
            write_bad_records(bad_records_path, merged.skipped)
        checkpoint_records = loaded.record_count if loaded is not None else 0
        if max_error_rate is not None:
            # Judge the error rate over the records this run actually
            # read; checkpointed history must not dilute a dirty new
            # batch.
            new_records = merged.record_count - checkpoint_records
            total = new_records + merged.skipped_count
            if total and merged.skipped_count / total > max_error_rate:
                raise ErrorRateExceeded(
                    merged.skipped_count, total, max_error_rate
                )

        checkpoint = None
        if checkpoint_to is not None:
            previous_sources = (
                loaded.manifest.sources if loaded is not None else ()
            )
            previous_skipped = (
                loaded.manifest.skipped_count if loaded is not None else 0
            )
            checkpoint = save_checkpoint(
                checkpoint_to,
                PartitionSummary(
                    schema=merged.schema,
                    record_count=merged.record_count,
                    distinct_types=merged.distinct_types,
                    # Persist only full-coverage bundles: an update atop
                    # a pre-stats checkpoint yields stats covering just
                    # the fresh records, which would misreport history.
                    stats=stats_if_complete(
                        merged.stats, merged.record_count
                    ),
                ),
                sources=list(previous_sources) + [source],
                skipped_count=previous_skipped + merged.skipped_count,
                stats=stats,
            )

        if journal is not None:
            # The run is complete (merge done, checkpoint — if any —
            # durable): seal the journal.  A resume of a committed
            # journal short-circuits instead of re-merging.
            from repro.core.printer import print_type

            journal.append_commit({
                "record_count": merged.record_count,
                "schema_sha256": hashlib.sha256(
                    print_type(merged.schema).encode("utf-8")
                ).hexdigest(),
            })
    finally:
        if journal is not None:
            journal.close()

    return InferenceRun(
        schema=merged.schema,
        record_count=merged.record_count,
        distinct_type_count=distinct_count,
        map_seconds=map_seconds,
        reduce_seconds=reduce_seconds,
        skipped_count=merged.skipped_count,
        bad_records=merged.skipped,
        skipped_per_partition=per_partition.value,
        phase_timings=merged.timings,
        checkpoint_record_count=checkpoint_records,
        checkpoint=checkpoint,
        stats=stats_if_complete(merged.stats, merged.record_count),
    )


class SchemaInferencer:
    """Incremental schema inference (introduction, "incremental evolution").

    Maintains a running fused schema; each :meth:`add` fuses one more
    record's type in.  Two inferencers over disjoint slices of a dataset can
    be :meth:`merge`-d, and the result equals what a single pass would have
    produced — that equality *is* the associativity theorem, and the test
    suite checks it property-based.

    Internally backed by the streaming kernel's
    :class:`repro.inference.kernel.PartitionAccumulator`, so a long-lived
    inferencer gets interning and memoized fusion: folding a stream of
    homogeneous records costs one dict lookup each after the schema
    stabilises.

    >>> inf = SchemaInferencer()
    >>> inf.add({"a": 1})
    >>> inf.add({"b": "x"})
    >>> from repro.core.printer import print_type
    >>> print_type(inf.schema)
    '{a: Num?, b: Str?}'
    """

    def __init__(self, stats_mode: str = "off") -> None:
        self._acc = PartitionAccumulator(
            stats_mode=resolve_stats_mode(stats_mode)
        )

    @property
    def stats(self) -> "Any | None":
        """The live statistics bundle, or ``None`` when stats are off."""
        return self._acc.stats

    @property
    def schema(self) -> Type:
        """The schema of everything added so far (empty type if nothing)."""
        return self._acc.schema

    @property
    def record_count(self) -> int:
        """How many records have been folded in."""
        return self._acc.record_count

    def add(self, value: Any) -> None:
        """Fuse one more JSON value into the schema."""
        self._acc.add(value)

    def add_type(self, t: Type, records: int = 1) -> None:
        """Fuse a pre-computed type (e.g. a partial schema) into the schema."""
        self._acc.add_type(t, records)

    def add_many(self, values: Iterable[Any]) -> None:
        """Fuse a batch of values."""
        self._acc.add_many(values)

    def merge(self, other: "SchemaInferencer") -> "SchemaInferencer":
        """Combine two inferencers into a new one (neither input changes)."""
        merged = SchemaInferencer()
        merged._acc.add_type(self.schema, self.record_count)
        merged._acc.add_type(other.schema, other.record_count)
        if self._acc.stats is not None and other._acc.stats is not None:
            # Stats merge only when both sides carry them; a one-sided
            # bundle would silently under-count the merged history.
            merged._acc.stats = merge_stats(self._acc.stats,
                                            other._acc.stats)
        return merged

    def __or__(self, other: "SchemaInferencer") -> "SchemaInferencer":
        return self.merge(other)

    @classmethod
    def from_checkpoint(cls, directory: str | Path) -> "SchemaInferencer":
        """Resume a long-lived inferencer from a saved checkpoint.

        The loaded summary folds in through the kernel's
        :meth:`~repro.inference.kernel.PartitionAccumulator.add_summary`,
        so the resumed inferencer's schema, record count and distinct
        set all continue exactly where the checkpointed run stopped.
        """
        from repro.store.checkpoint import load_checkpoint

        inferencer = cls()
        inferencer._acc.add_summary(load_checkpoint(directory).summary)
        return inferencer

    def save_checkpoint(self, directory: str | Path,
                        sources: Iterable[Any] = ()) -> "Any":
        """Persist the current state as a checkpoint; returns it.

        See :func:`repro.store.save_checkpoint`; ``sources`` may name
        input files to fingerprint into the manifest.
        """
        from repro.store.checkpoint import save_checkpoint

        return save_checkpoint(directory, self._acc.summary(),
                               sources=sources)


@dataclass
class PartitionReport:
    """One row of the paper's Table 8: a partition processed in isolation."""

    index: int
    record_count: int
    distinct_type_count: int
    seconds: float
    schema: Type


@dataclass
class PartitionedRun:
    """Result of the partition-isolated strategy (Section 6.2)."""

    schema: Type
    partitions: list[PartitionReport] = field(default_factory=list)
    final_fuse_seconds: float = 0.0

    @property
    def record_count(self) -> int:
        """Total records across partitions."""
        return sum(p.record_count for p in self.partitions)


def infer_partitioned(partitions: Iterable[Iterable[Any]],
                      dedupe: bool = True,
                      kernel: bool = True) -> PartitionedRun:
    """Process each partition in isolation, then fuse the partial schemas.

    This is the manual strategy of Section 6.2: no shuffle, no
    synchronisation during partition processing, and a final fusion of the
    per-partition schemas that "is a fast operation as each schema to fuse
    has a very small size" — the benchmarks confirm by reporting
    ``final_fuse_seconds`` separately.  Each partition streams through the
    kernel accumulator unless ``kernel=False`` selects the legacy path.
    """
    reports: list[PartitionReport] = []
    for index, partition in enumerate(partitions):
        start = time.perf_counter()
        run = run_inference(list(partition), dedupe=dedupe, kernel=kernel)
        elapsed = time.perf_counter() - start
        reports.append(PartitionReport(
            index=index,
            record_count=run.record_count,
            distinct_type_count=run.distinct_type_count,
            seconds=elapsed,
            schema=run.schema,
        ))

    start = time.perf_counter()
    schema = fuse_all(report.schema for report in reports)
    final_fuse_seconds = time.perf_counter() - start
    return PartitionedRun(
        schema=schema,
        partitions=reports,
        final_fuse_seconds=final_fuse_seconds,
    )
