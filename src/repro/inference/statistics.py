"""Mergeable per-path statistics that ride the partition-summary monoid.

The paper's fusion algebra works because partition summaries merge
commutatively and associatively (Theorems 5.4-5.5).  JSONoid (Mior,
2023) observes that the same monoid structure can carry rich per-node
statistics — presence counts, value ranges, distinct-value sketches —
as long as every statistic is itself a commutative monoid under
``merge``.  This module supplies that layer:

- :class:`KindCounter` — per-path counts of each JSON kind (presence /
  absence falls out of comparing a child path's total against the
  parent record count).
- :class:`NumericRange` — numeric min/max.  Deliberately *no* sum or
  mean: float addition is not associative, and a non-associative
  statistic would break split-invariance.  Totals are kept only for
  integer-valued quantities (lengths, sizes), where addition is exact.
- :class:`RangeStat` — count/min/max/total over non-negative integers
  (string lengths, array lengths, type sizes).
- :class:`HyperLogLog` — pure-python distinct-value sketch
  (register-wise ``max`` merge).
- :class:`BloomFilter` — membership sketch for low-cardinality values
  (bitwise ``or`` merge, no false negatives).
- :class:`PathStats` / :class:`StatsBundle` — the per-path composite
  and the per-summary bundle that the kernel threads through
  ``PartitionSummary``, the wire format, and checkpoints.

Every statistic implements the :class:`MergeableStatistic` protocol
(``update``/``merge``/``to_wire``/``from_wire``), ``merge`` never
mutates its operands, and the identity element is a freshly
constructed (empty) instance.  ``StatsBundle.to_bytes`` is canonical
(sorted keys, fixed separators) so persisted statistics are
byte-deterministic under any partitioning of the same records.

Determinism notes baked into the encodings:

- numeric bounds are normalised to ``float`` where exact (``-0.0``
  collapses to ``0.0``) so that ``min``/``max`` ties between ``0``,
  ``0.0`` and ``-0.0`` cannot leak partition order into the bytes;
- ints too large for ``float`` are kept exact as ints;
- NaN never updates a range (JSON cannot produce one; in-memory
  callers passing NaN get a count but no bound).
"""

from __future__ import annotations

import base64
import json
import math
from hashlib import blake2b
from typing import Any, Iterable, Protocol, runtime_checkable

from repro.core.kinds import Kind

__all__ = [
    "STATS_MODES",
    "MergeableStatistic",
    "KindCounter",
    "NumericRange",
    "RangeStat",
    "HyperLogLog",
    "BloomFilter",
    "ValueSketches",
    "PathStats",
    "StatsBundle",
    "resolve_stats_mode",
    "merge_stats",
    "stats_if_complete",
]

#: Recognised values for the ``stats`` mode switch.  ``off`` keeps the
#: hot path statistics-free, ``basic`` collects counters and ranges,
#: ``sketches`` adds the HyperLogLog + Bloom value sketches.
STATS_MODES = ("off", "basic", "sketches")

#: Version tag carried inside ``StatsBundle.to_wire`` tuples.
STATS_WIRE_VERSION = 1

#: Version tag carried inside ``StatsBundle.to_bytes`` documents.
STATS_BYTES_VERSION = 1


def resolve_stats_mode(mode: str) -> str:
    """Validate a ``stats`` mode string and return it.

    Raises ``ValueError`` for anything outside :data:`STATS_MODES`.
    """
    if mode not in STATS_MODES:
        raise ValueError(
            f"unknown stats mode {mode!r} (expected one of {', '.join(STATS_MODES)})"
        )
    return mode


@runtime_checkable
class MergeableStatistic(Protocol):
    """A statistic that forms a commutative monoid under ``merge``.

    ``update`` folds one observation in-place; ``merge`` combines two
    instances into a *new* one without mutating either operand; a
    freshly constructed instance is the identity element.  ``to_wire``
    must be a pure function of the observed multiset of values — never
    of observation or merge order — so that any partitioning of the
    same records serialises identically.
    """

    def update(self, value: Any) -> None: ...

    def merge(self, other: "MergeableStatistic") -> "MergeableStatistic": ...

    def to_wire(self) -> Any: ...


# ---------------------------------------------------------------------------
# value canonicalisation + hashing


def _value_key(value: Any) -> bytes:
    """Type-tagged canonical bytes for a scalar JSON value.

    Equal JSON values must map to equal keys regardless of which
    partition observed them, so sketches agree under any split.
    Numbers compare across int/float in JSON (``1 == 1.0``), so
    integral floats in the exact range collapse to the int encoding.
    """
    if value is None:
        return b"z"
    if value is True:
        return b"t"
    if value is False:
        return b"f"
    if isinstance(value, str):
        return b"s" + value.encode("utf-8", "surrogatepass")
    if isinstance(value, int):
        return b"i" + str(value).encode("ascii")
    if isinstance(value, float):
        if value.is_integer() and abs(value) <= 2**53:
            return b"i" + str(int(value)).encode("ascii")
        return b"n" + repr(value).encode("ascii")
    raise TypeError(f"not a scalar JSON value: {type(value).__name__}")


def _hash64(key: bytes) -> int:
    """Deterministic 64-bit hash (stable across processes and runs)."""
    return int.from_bytes(blake2b(key, digest_size=8).digest(), "big")


def _canonical_bound(value: Any) -> Any:
    """Normalise a numeric bound for deterministic min/max storage.

    Returns a float when the value is exactly representable (with
    ``-0.0`` collapsed to ``0.0``), the original int when it is too
    large for a float, and ``None`` for NaN (excluded from ranges).
    """
    if isinstance(value, float) and value != value:  # NaN
        return None
    try:
        f = float(value)
    except OverflowError:
        return value  # huge int: keep exact
    if isinstance(value, int) and f != value:
        return value  # float would round: keep exact
    if f == 0.0:
        return 0.0  # collapse -0.0
    return f


def _bound_min(a: Any, b: Any) -> Any:
    # ``min`` keeps the first operand on ties; both operands are
    # canonical so ties are identical objects-by-value and order is moot.
    return a if b is None else b if a is None else min(a, b)


def _bound_max(a: Any, b: Any) -> Any:
    return a if b is None else b if a is None else max(a, b)


# ---------------------------------------------------------------------------
# counters and ranges


class KindCounter:
    """Counts observations of each JSON kind at one path."""

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}

    def update(self, value: Kind) -> None:
        name = value.name
        self.counts[name] = self.counts.get(name, 0) + 1

    def get(self, kind: Kind) -> int:
        return self.counts.get(kind.name, 0)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def merge(self, other: "KindCounter") -> "KindCounter":
        out = KindCounter()
        out.counts = dict(self.counts)
        for name, n in other.counts.items():
            out.counts[name] = out.counts.get(name, 0) + n
        return out

    def copy(self) -> "KindCounter":
        out = KindCounter()
        out.counts = dict(self.counts)
        return out

    def to_wire(self) -> Any:
        return tuple(sorted(self.counts.items()))

    @classmethod
    def from_wire(cls, wire: Any) -> "KindCounter":
        out = cls()
        out.counts = {str(name): int(n) for name, n in wire}
        return out

    def __eq__(self, other: object) -> bool:
        return isinstance(other, KindCounter) and self.counts == other.counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KindCounter({self.counts!r})"


class NumericRange:
    """Min/max over numeric values.

    No sum or mean: float addition is not associative, so a float total
    would make the merge order observable and break split-invariance.
    """

    __slots__ = ("count", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.minimum: Any = None
        self.maximum: Any = None

    def update(self, value: Any) -> None:
        self.count += 1
        bound = _canonical_bound(value)
        if bound is None:
            return
        self.minimum = _bound_min(self.minimum, bound)
        self.maximum = _bound_max(self.maximum, bound)

    def merge(self, other: "NumericRange") -> "NumericRange":
        out = NumericRange()
        out.count = self.count + other.count
        out.minimum = _bound_min(self.minimum, other.minimum)
        out.maximum = _bound_max(self.maximum, other.maximum)
        return out

    def copy(self) -> "NumericRange":
        out = NumericRange()
        out.count = self.count
        out.minimum = self.minimum
        out.maximum = self.maximum
        return out

    def to_wire(self) -> Any:
        return (self.count, self.minimum, self.maximum)

    @classmethod
    def from_wire(cls, wire: Any) -> "NumericRange":
        out = cls()
        out.count, out.minimum, out.maximum = wire
        out.count = int(out.count)
        return out

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, NumericRange)
            and self.count == other.count
            and self.minimum == other.minimum
            and self.maximum == other.maximum
            # 0 == 0.0 but their JSON spellings differ; require type
            # agreement so equality implies byte equality.
            and type(self.minimum) is type(other.minimum)
            and type(self.maximum) is type(other.maximum)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NumericRange(count={self.count}, min={self.minimum}, max={self.maximum})"


class RangeStat:
    """count/min/max/total over non-negative integers.

    Used for string lengths, array lengths and type sizes, where the
    total is an exact int sum and the mean (``total / count``) is a
    derived value computed only at presentation time.
    """

    __slots__ = ("count", "minimum", "maximum", "total")

    def __init__(self) -> None:
        self.count = 0
        self.minimum = 0
        self.maximum = 0
        self.total = 0

    def update(self, value: int) -> None:
        if self.count == 0:
            self.minimum = value
            self.maximum = value
        else:
            if value < self.minimum:
                self.minimum = value
            if value > self.maximum:
                self.maximum = value
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "RangeStat") -> "RangeStat":
        if not other.count:
            return self.copy()
        if not self.count:
            return other.copy()
        out = RangeStat()
        out.count = self.count + other.count
        out.minimum = min(self.minimum, other.minimum)
        out.maximum = max(self.maximum, other.maximum)
        out.total = self.total + other.total
        return out

    def copy(self) -> "RangeStat":
        out = RangeStat()
        out.count = self.count
        out.minimum = self.minimum
        out.maximum = self.maximum
        out.total = self.total
        return out

    def to_wire(self) -> Any:
        return (self.count, self.minimum, self.maximum, self.total)

    @classmethod
    def from_wire(cls, wire: Any) -> "RangeStat":
        out = cls()
        out.count, out.minimum, out.maximum, out.total = (int(v) for v in wire)
        return out

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RangeStat)
            and self.count == other.count
            and self.minimum == other.minimum
            and self.maximum == other.maximum
            and self.total == other.total
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RangeStat(count={self.count}, min={self.minimum}, "
            f"max={self.maximum}, total={self.total})"
        )


# ---------------------------------------------------------------------------
# sketches


#: HyperLogLog precision: m = 2**p registers.  p=12 gives a typical
#: relative error of 1.04 / sqrt(4096) ≈ 1.6%, comfortably inside the
#: 5% bound the accuracy tests assert.
HLL_PRECISION = 12


class HyperLogLog:
    """Pure-python HyperLogLog distinct-value sketch.

    Flajolet et al. 2007 with the small-range linear-counting
    correction.  The hash is a keyed-nothing blake2b, so estimates are
    identical across processes, platforms and runs; merge is a
    register-wise ``max``, which is commutative, associative and
    idempotent.
    """

    __slots__ = ("p", "registers")

    def __init__(self, p: int = HLL_PRECISION) -> None:
        self.p = p
        self.registers = bytearray(1 << p)

    def update(self, value: Any) -> None:
        self.add_hash(_hash64(_value_key(value)))

    def add_hash(self, h: int) -> None:
        idx = h >> (64 - self.p)
        tail = h & ((1 << (64 - self.p)) - 1)
        rank = (64 - self.p) - tail.bit_length() + 1
        if rank > self.registers[idx]:
            self.registers[idx] = rank

    def estimate(self) -> float:
        m = 1 << self.p
        alpha = 0.7213 / (1.0 + 1.079 / m)
        total = 0.0
        for r in self.registers:
            total += 2.0 ** -r
        estimate = alpha * m * m / total
        if estimate <= 2.5 * m:
            zeros = self.registers.count(0)
            if zeros:
                estimate = m * math.log(m / zeros)
        return estimate

    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        if self.p != other.p:
            raise ValueError(
                f"cannot merge HyperLogLog sketches of precision {self.p} and {other.p}"
            )
        out = HyperLogLog(self.p)
        out.registers = bytearray(
            a if a >= b else b for a, b in zip(self.registers, other.registers)
        )
        return out

    def copy(self) -> "HyperLogLog":
        out = HyperLogLog(self.p)
        out.registers = bytearray(self.registers)
        return out

    def to_wire(self) -> Any:
        return (self.p, bytes(self.registers))

    @classmethod
    def from_wire(cls, wire: Any) -> "HyperLogLog":
        p, registers = wire
        out = cls(int(p))
        registers = bytes(registers)
        if len(registers) != 1 << out.p:
            raise ValueError("HyperLogLog register block has the wrong length")
        out.registers = bytearray(registers)
        return out

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, HyperLogLog)
            and self.p == other.p
            and self.registers == other.registers
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HyperLogLog(p={self.p}, ~{self.estimate():.0f} distinct)"


#: Bloom filter geometry: 8192 bits / 4 hashes keeps the false-positive
#: rate under ~2% up to roughly 1k distinct values — the
#: "low-cardinality membership" regime the sketch is for.
BLOOM_BITS = 8192
BLOOM_HASHES = 4


class BloomFilter:
    """Bloom filter over scalar values (bitwise ``or`` merge).

    No false negatives ever; false positives bounded by the geometry
    (see :data:`BLOOM_BITS`).  Uses double hashing (Kirsch-Mitzenmacher)
    from a single 16-byte blake2b digest, so membership bits are a pure
    function of the value.
    """

    __slots__ = ("m_bits", "k", "bits")

    def __init__(self, m_bits: int = BLOOM_BITS, k: int = BLOOM_HASHES) -> None:
        self.m_bits = m_bits
        self.k = k
        self.bits = bytearray(m_bits // 8)

    def _positions(self, key: bytes) -> Iterable[int]:
        digest = blake2b(key, digest_size=16).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:], "big") | 1
        m = self.m_bits
        return ((h1 + i * h2) % m for i in range(self.k))

    def update(self, value: Any) -> None:
        bits = self.bits
        for pos in self._positions(_value_key(value)):
            bits[pos >> 3] |= 1 << (pos & 7)

    def might_contain(self, value: Any) -> bool:
        bits = self.bits
        return all(
            bits[pos >> 3] & (1 << (pos & 7))
            for pos in self._positions(_value_key(value))
        )

    def merge(self, other: "BloomFilter") -> "BloomFilter":
        if self.m_bits != other.m_bits or self.k != other.k:
            raise ValueError("cannot merge Bloom filters with different geometry")
        out = BloomFilter(self.m_bits, self.k)
        out.bits = bytearray(a | b for a, b in zip(self.bits, other.bits))
        return out

    def copy(self) -> "BloomFilter":
        out = BloomFilter(self.m_bits, self.k)
        out.bits = bytearray(self.bits)
        return out

    def to_wire(self) -> Any:
        return (self.m_bits, self.k, bytes(self.bits))

    @classmethod
    def from_wire(cls, wire: Any) -> "BloomFilter":
        m_bits, k, bits = wire
        out = cls(int(m_bits), int(k))
        bits = bytes(bits)
        if len(bits) != out.m_bits // 8:
            raise ValueError("Bloom filter bit block has the wrong length")
        out.bits = bytearray(bits)
        return out

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BloomFilter)
            and self.m_bits == other.m_bits
            and self.k == other.k
            and self.bits == other.bits
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        set_bits = sum(bin(b).count("1") for b in self.bits)
        return f"BloomFilter(m={self.m_bits}, k={self.k}, set={set_bits})"


class ValueSketches:
    """HyperLogLog + Bloom pair over the scalar values at one path."""

    __slots__ = ("hll", "bloom")

    def __init__(self) -> None:
        self.hll = HyperLogLog()
        self.bloom = BloomFilter()

    def update(self, value: Any) -> None:
        key = _value_key(value)
        self.hll.add_hash(_hash64(key))
        bits = self.bloom.bits
        for pos in self.bloom._positions(key):
            bits[pos >> 3] |= 1 << (pos & 7)

    def merge(self, other: "ValueSketches") -> "ValueSketches":
        out = ValueSketches()
        out.hll = self.hll.merge(other.hll)
        out.bloom = self.bloom.merge(other.bloom)
        return out

    def copy(self) -> "ValueSketches":
        out = ValueSketches()
        out.hll = self.hll.copy()
        out.bloom = self.bloom.copy()
        return out

    def to_wire(self) -> Any:
        return (self.hll.to_wire(), self.bloom.to_wire())

    @classmethod
    def from_wire(cls, wire: Any) -> "ValueSketches":
        hll_wire, bloom_wire = wire
        out = cls()
        out.hll = HyperLogLog.from_wire(hll_wire)
        out.bloom = BloomFilter.from_wire(bloom_wire)
        return out

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ValueSketches)
            and self.hll == other.hll
            and self.bloom == other.bloom
        )


# ---------------------------------------------------------------------------
# per-path composite and the bundle


class PathStats:
    """All statistics tracked at one document path."""

    __slots__ = ("kinds", "numbers", "strings", "arrays", "values")

    def __init__(self, sketches: bool) -> None:
        self.kinds = KindCounter()
        self.numbers = NumericRange()
        self.strings = RangeStat()
        self.arrays = RangeStat()
        self.values: ValueSketches | None = ValueSketches() if sketches else None

    def observe(self, value: Any, kind: Kind) -> None:
        self.kinds.update(kind)
        if kind is Kind.NUM:
            self.numbers.update(value)
        elif kind is Kind.STR:
            self.strings.update(len(value))
        elif kind is Kind.ARRAY:
            self.arrays.update(len(value))
        if self.values is not None and kind.is_basic:
            self.values.update(value)

    def merge(self, other: "PathStats", sketches: bool) -> "PathStats":
        out = PathStats(False)
        out.kinds = self.kinds.merge(other.kinds)
        out.numbers = self.numbers.merge(other.numbers)
        out.strings = self.strings.merge(other.strings)
        out.arrays = self.arrays.merge(other.arrays)
        if sketches and self.values is not None and other.values is not None:
            out.values = self.values.merge(other.values)
        return out

    def copy(self, sketches: bool) -> "PathStats":
        out = PathStats(False)
        out.kinds = self.kinds.copy()
        out.numbers = self.numbers.copy()
        out.strings = self.strings.copy()
        out.arrays = self.arrays.copy()
        if sketches and self.values is not None:
            out.values = self.values.copy()
        return out

    def to_wire(self) -> Any:
        return (
            self.kinds.to_wire(),
            self.numbers.to_wire(),
            self.strings.to_wire(),
            self.arrays.to_wire(),
            None if self.values is None else self.values.to_wire(),
        )

    @classmethod
    def from_wire(cls, wire: Any) -> "PathStats":
        kinds, numbers, strings, arrays, values = wire
        out = cls(False)
        out.kinds = KindCounter.from_wire(kinds)
        out.numbers = NumericRange.from_wire(numbers)
        out.strings = RangeStat.from_wire(strings)
        out.arrays = RangeStat.from_wire(arrays)
        if values is not None:
            out.values = ValueSketches.from_wire(values)
        return out

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PathStats)
            and self.kinds == other.kinds
            and self.numbers == other.numbers
            and self.strings == other.strings
            and self.arrays == other.arrays
            and self.values == other.values
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PathStats(kinds={self.kinds.counts!r})"


def _kind_of(value: Any) -> Kind:
    # bool is an int subclass: test it first, mirroring the kernel.
    if value is None:
        return Kind.NULL
    if isinstance(value, bool):
        return Kind.BOOL
    if isinstance(value, (int, float)):
        return Kind.NUM
    if isinstance(value, str):
        return Kind.STR
    if isinstance(value, dict):
        return Kind.RECORD
    if isinstance(value, list):
        return Kind.ARRAY
    raise TypeError(f"cannot compute statistics for {type(value).__name__}")


class StatsBundle:
    """Per-summary statistics: one :class:`PathStats` per document path.

    Paths use the same addressing as the presence reports: the root
    value is ``$``, record members are ``parent.key`` and array
    elements are ``parent[*]``.  ``observe`` walks one record;
    ``merge`` combines two bundles without mutating either; the empty
    bundle of the same mode is the identity element.  Merging a
    ``basic`` bundle with a ``sketches`` bundle degrades to ``basic``
    (sketches over a partial record set would silently under-count) —
    the degradation is itself associative, so merge order still cannot
    be observed.
    """

    __slots__ = ("mode", "record_count", "type_sizes", "paths")

    def __init__(self, mode: str = "basic") -> None:
        if mode not in STATS_MODES or mode == "off":
            raise ValueError(f"StatsBundle mode must be 'basic' or 'sketches', got {mode!r}")
        self.mode = mode
        self.record_count = 0
        #: Range over ``Type.size`` of every observed record — exact
        #: int totals, so succinctness tables no longer need the values.
        self.type_sizes = RangeStat()
        self.paths: dict[str, PathStats] = {}

    @property
    def sketches(self) -> bool:
        return self.mode == "sketches"

    @property
    def path_count(self) -> int:
        return len(self.paths)

    # -- observation --------------------------------------------------

    def observe(self, value: Any, type_size: int) -> None:
        self.record_count += 1
        self.type_sizes.update(type_size)
        self._walk(value, "$")

    def _walk(self, value: Any, path: str) -> None:
        node = self.paths.get(path)
        if node is None:
            node = self.paths[path] = PathStats(self.mode == "sketches")
        kind = _kind_of(value)
        node.observe(value, kind)
        if kind is Kind.RECORD:
            for key, sub in value.items():
                self._walk(sub, f"{path}.{key}")
        elif kind is Kind.ARRAY:
            sub_path = f"{path}[*]"
            for sub in value:
                self._walk(sub, sub_path)

    # -- monoid -------------------------------------------------------

    def merge(self, other: "StatsBundle") -> "StatsBundle":
        mode = self.mode if self.mode == other.mode else "basic"
        sketches = mode == "sketches"
        out = StatsBundle(mode)
        out.record_count = self.record_count + other.record_count
        out.type_sizes = self.type_sizes.merge(other.type_sizes)
        paths = out.paths
        for path, node in self.paths.items():
            other_node = other.paths.get(path)
            if other_node is None:
                paths[path] = node.copy(sketches)
            else:
                paths[path] = node.merge(other_node, sketches)
        for path, node in other.paths.items():
            if path not in self.paths:
                paths[path] = node.copy(sketches)
        return out

    def copy(self) -> "StatsBundle":
        out = StatsBundle(self.mode)
        out.record_count = self.record_count
        out.type_sizes = self.type_sizes.copy()
        sketches = self.sketches
        out.paths = {path: node.copy(sketches) for path, node in self.paths.items()}
        return out

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, StatsBundle)
            and self.mode == other.mode
            and self.record_count == other.record_count
            and self.type_sizes == other.type_sizes
            and self.paths == other.paths
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StatsBundle(mode={self.mode!r}, records={self.record_count}, "
            f"paths={len(self.paths)})"
        )

    # -- wire (pickle-friendly tuples for summary payloads) ----------

    def to_wire(self) -> Any:
        return (
            STATS_WIRE_VERSION,
            self.mode,
            self.record_count,
            self.type_sizes.to_wire(),
            tuple((path, self.paths[path].to_wire()) for path in sorted(self.paths)),
        )

    @classmethod
    def from_wire(cls, wire: Any) -> "StatsBundle":
        version, mode, record_count, type_sizes, paths = wire
        if version != STATS_WIRE_VERSION:
            raise ValueError(f"unsupported stats wire version {version!r}")
        out = cls(mode)
        out.record_count = int(record_count)
        out.type_sizes = RangeStat.from_wire(type_sizes)
        out.paths = {str(path): PathStats.from_wire(node) for path, node in paths}
        return out

    # -- bytes (canonical JSON for checkpoint persistence) -----------

    def to_bytes(self) -> bytes:
        """Canonical JSON encoding — identical bytes for identical stats."""
        doc = {
            "format_version": STATS_BYTES_VERSION,
            "mode": self.mode,
            "record_count": self.record_count,
            "type_sizes": self.type_sizes.to_wire(),
            "paths": {path: _path_to_json(node) for path, node in self.paths.items()},
        }
        return (json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n").encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "StatsBundle":
        try:
            doc = json.loads(data.decode("utf-8"))
            if doc["format_version"] != STATS_BYTES_VERSION:
                raise ValueError(
                    f"unsupported statistics format version {doc['format_version']!r}"
                )
            out = cls(doc["mode"])
            out.record_count = int(doc["record_count"])
            out.type_sizes = RangeStat.from_wire(doc["type_sizes"])
            out.paths = {
                path: _path_from_json(node) for path, node in doc["paths"].items()
            }
        except ValueError:
            raise
        except Exception as exc:
            raise ValueError(f"malformed statistics document: {exc}") from exc
        return out

    # -- presentation helpers ----------------------------------------

    def as_collector_view(self) -> "_CollectorView":
        """A :class:`repro.inference.counting.StatisticsCollector`-shaped
        view (``record_count``/``path_counts``/``kind_counts``/
        ``array_lengths``) so presence reports run off a bundle — and
        therefore off a checkpoint — without re-walking any values."""
        return _CollectorView(self)


def _path_to_json(node: PathStats) -> dict[str, Any]:
    doc: dict[str, Any] = {
        "kinds": dict(sorted(node.kinds.counts.items())),
        "numbers": list(node.numbers.to_wire()),
        "strings": list(node.strings.to_wire()),
        "arrays": list(node.arrays.to_wire()),
    }
    if node.values is not None:
        doc["hll"] = {
            "p": node.values.hll.p,
            "registers": base64.b64encode(bytes(node.values.hll.registers)).decode("ascii"),
        }
        doc["bloom"] = {
            "m": node.values.bloom.m_bits,
            "k": node.values.bloom.k,
            "bits": base64.b64encode(bytes(node.values.bloom.bits)).decode("ascii"),
        }
    return doc


def _path_from_json(doc: dict[str, Any]) -> PathStats:
    node = PathStats(False)
    node.kinds = KindCounter.from_wire(tuple(doc["kinds"].items()))
    node.numbers = NumericRange.from_wire(tuple(doc["numbers"]))
    node.strings = RangeStat.from_wire(tuple(doc["strings"]))
    node.arrays = RangeStat.from_wire(tuple(doc["arrays"]))
    if "hll" in doc:
        values = ValueSketches()
        values.hll = HyperLogLog.from_wire(
            (doc["hll"]["p"], base64.b64decode(doc["hll"]["registers"]))
        )
        values.bloom = BloomFilter.from_wire(
            (doc["bloom"]["m"], doc["bloom"]["k"], base64.b64decode(doc["bloom"]["bits"]))
        )
        node.values = values
    return node


class _CollectorView:
    """Read-only StatisticsCollector facade over a :class:`StatsBundle`."""

    __slots__ = ("record_count", "path_counts", "kind_counts", "array_lengths")

    def __init__(self, bundle: StatsBundle) -> None:
        from repro.inference.counting import ArrayLengthStats

        self.record_count = bundle.record_count
        self.path_counts: dict[str, int] = {}
        self.kind_counts: dict[tuple[str, Kind], int] = {}
        self.array_lengths: dict[str, ArrayLengthStats] = {}
        for path, node in bundle.paths.items():
            self.path_counts[path] = node.kinds.total
            for name, n in node.kinds.counts.items():
                self.kind_counts[(path, Kind[name])] = n
            arrays = node.arrays
            if arrays.count:
                self.array_lengths[path] = ArrayLengthStats(
                    count=arrays.count,
                    min_length=arrays.minimum,
                    max_length=arrays.maximum,
                    total_elements=arrays.total,
                )


# ---------------------------------------------------------------------------
# module helpers used by the kernel / pipeline / store


def create_stats_bundle(mode: str) -> StatsBundle | None:
    """Return a fresh bundle for ``mode``, or ``None`` when ``off``."""
    resolve_stats_mode(mode)
    return None if mode == "off" else StatsBundle(mode)


def merge_stats(a: StatsBundle | None, b: StatsBundle | None) -> StatsBundle | None:
    """None-aware bundle merge: ``None`` (stats absent) is absorbing
    only in the sense of carrying nothing — the other operand's bundle
    passes through unchanged (copied, never aliased)."""
    if a is None:
        return None if b is None else b.copy()
    if b is None:
        return a.copy()
    return a.merge(b)


def stats_if_complete(stats: StatsBundle | None, record_count: int) -> StatsBundle | None:
    """Drop a bundle that does not cover every merged record.

    Merging a stats-carrying summary with a stats-less one (e.g.
    ``infer --update`` on top of a pre-stats checkpoint) yields a
    bundle whose ``record_count`` trails the summary's; persisting it
    would present partial statistics as complete.  Callers use this
    guard before exposing or saving a merged bundle.
    """
    if stats is not None and stats.record_count == record_count:
        return stats
    return None
