"""Parametric fusion: trading succinctness back for precision.

The paper's conclusion plans to "study the relationship between precision
and efficiency"; its authors later did exactly that (parametric schema
inference, VLDB J. 2019) by making the *record equivalence* driving fusion
a parameter.  This module implements that axis:

* **K-equivalence** (kind equivalence) — all record types are merged
  together.  This is the EDBT 2017 algorithm reproduced in
  :mod:`repro.inference.fusion`; :class:`ParametricFuser` with
  ``record_equivalence=None`` is exactly equivalent (tested).
* **L-equivalence** (label equivalence, :func:`label_equivalence`) —
  record types are merged only when they have the *same key set*.  Records
  with different shapes stay separate union members, so fusing Twitter's
  delete notices with tweets yields ``{delete: ..., ...} + {text: ...,
  ...}`` instead of one blurry record where every field is optional.

The cost is size (the Twitter schema grows by one record alternative per
shape) and the gain is precision: under L-equivalence no spurious optional
fields are introduced at the top level, so sampled values respect the
original field correlations far more often.  The
``bench_ablation_parametric`` benchmark quantifies both sides.

The fused types generalise the paper's *normal form*: a union may now hold
several record members, pairwise inequivalent under the chosen relation
(and kept in a canonical order so equality stays structural).  All other
kinds still occur at most once.  Commutativity and associativity carry
over — the property tests check them for L-equivalence too.
"""

from __future__ import annotations

from collections import Counter
from functools import reduce
from typing import Any, Callable, Hashable, Iterable

from repro.core.types import (
    ArrayType,
    BasicType,
    EMPTY,
    Field,
    RecordType,
    StarArrayType,
    Type,
    UnionType,
)
from repro.inference.infer import infer_type

__all__ = [
    "label_equivalence",
    "ParametricFuser",
    "fuse_labelled",
    "infer_schema_labelled",
]

#: An equivalence is a function from record types to a hashable class key.
RecordEquivalence = Callable[[RecordType], Hashable]


def label_equivalence(rt: RecordType) -> Hashable:
    """L-equivalence: two record types merge iff their key sets coincide."""
    return rt.keys()


class ParametricFuser:
    """Fusion parameterised by a record-equivalence relation.

    ``record_equivalence=None`` reproduces the paper's kind-based fusion
    exactly; :func:`label_equivalence` gives the precision-preserving
    variant.  A custom callable may implement any other equivalence, as
    long as it is stable under merging (the merge of two equivalent
    records must stay in their class — true for label equivalence since
    merging equal key sets preserves the key set).
    """

    def __init__(self,
                 record_equivalence: RecordEquivalence | None = None) -> None:
        self.record_equivalence = record_equivalence

    # -- the union level ---------------------------------------------------

    def fuse(self, t1: Type, t2: Type) -> Type:
        """Fuse two types, merging same-kind addends per the equivalence."""
        # Same fast path as the kind-based fuse, with the same caveat:
        # equal positional arrays must still go the long way to be starred.
        if t1 == t2 and not t1.has_positional_array:
            return t1
        addends = list(t1.addends()) + list(t2.addends())

        basics: dict[Hashable, Type] = {}
        arrays: list[ArrayType | StarArrayType] = []
        records: list[RecordType] = []
        for addend in addends:
            if isinstance(addend, RecordType):
                records.append(addend)
            elif isinstance(addend, (ArrayType, StarArrayType)):
                arrays.append(addend)
            else:
                basics[addend.kind] = addend

        out: list[Type] = list(basics.values())
        out.extend(self._merge_records(records))
        if arrays:
            out.append(self._merge_arrays(arrays))
        return _make_union_sorted(out)

    def _merge_records(self, records: list[RecordType]) -> list[RecordType]:
        if self.record_equivalence is None:
            if not records:
                return []
            return [reduce(self._lfuse_records, records)]
        classes: dict[Hashable, RecordType] = {}
        for record in records:
            key = self.record_equivalence(record)
            if key in classes:
                classes[key] = self._lfuse_records(classes[key], record)
            else:
                classes[key] = record
        # Canonical order: sort by key tuple so equality is structural.
        return [classes[key] for key in sorted(classes, key=repr)]

    def _lfuse_records(self, r1: RecordType, r2: RecordType) -> RecordType:
        fields = []
        for field1 in r1.fields:
            field2 = r2.field(field1.name)
            if field2 is None:
                fields.append(field1.with_optional(True))
            else:
                fields.append(Field(
                    field1.name,
                    self.fuse(field1.type, field2.type),
                    optional=field1.optional or field2.optional,
                ))
        fields.extend(
            f.with_optional(True) for f in r2.fields if f.name not in r1
        )
        return RecordType(fields)

    def _merge_arrays(
        self, arrays: list[ArrayType | StarArrayType]
    ) -> StarArrayType | ArrayType:
        if len(arrays) == 1:
            # An array stays untouched (even positional) until it actually
            # meets another array — same behaviour as Fig. 6.
            return arrays[0]
        bodies = [self._star_body(a) for a in arrays]
        return StarArrayType(reduce(self.fuse, bodies))

    def _star_body(self, t: ArrayType | StarArrayType) -> Type:
        if isinstance(t, StarArrayType):
            return t.body
        return self.collapse(t)

    def collapse(self, t: ArrayType) -> Type:
        """Parametric counterpart of Fig. 6's ``collapse``."""
        return reduce(self.fuse, t.elements, EMPTY)

    # -- collection level ----------------------------------------------------

    def fuse_all(self, types: Iterable[Type]) -> Type:
        """Fuse a whole collection (deduplicated, exactly — see
        :func:`repro.inference.fusion.fuse_multiset` for the rationale)."""
        counts = Counter(types)
        return reduce(
            self.fuse,
            (
                self.fuse(t, t) if c > 1 and t.has_positional_array else t
                for t, c in counts.items()
            ),
            EMPTY,
        )

    def infer_schema(self, values: Iterable[Any]) -> Type:
        """End-to-end: type every value, fuse parametrically."""
        return self.fuse_all(infer_type(v) for v in values)


def _make_union_sorted(members: list[Type]) -> Type:
    """Build a union from canonical-ordered members.

    ``UnionType`` sorts stably by kind, so the pre-sorted record members
    keep their canonical relative order and structural equality holds.
    """
    if not members:
        return EMPTY
    if len(members) == 1:
        return members[0]
    return UnionType(members)


def fuse_labelled(t1: Type, t2: Type) -> Type:
    """L-equivalence fusion of two types (convenience wrapper)."""
    return ParametricFuser(label_equivalence).fuse(t1, t2)


def infer_schema_labelled(values: Iterable[Any]) -> Type:
    """Infer a schema under L-equivalence: records merge only when their
    key sets coincide.

    >>> from repro.core.printer import print_type
    >>> print_type(infer_schema_labelled([{"a": 1}, {"b": "x"}]))
    '{a: Num} + {b: Str}'
    >>> from repro.inference import infer_schema
    >>> print_type(infer_schema([{"a": 1}, {"b": "x"}]))
    '{a: Num?, b: Str?}'
    """
    return ParametricFuser(label_equivalence).infer_schema(values)
