"""Statistics-enriched inference — the paper's stated future work.

Section 7: "In the near future we plan to enrich schemas with statistical
and provenance information about the input data."  This module implements
that enrichment as a mergeable side-structure that rides along the same
Map/Reduce shape as fusion:

* :class:`StatisticsCollector` observes values and counts, per path, how
  often the path occurs and with which kinds; two collectors over disjoint
  data merge associatively, exactly like schemas.
* :func:`presence_report` joins the counts back onto a fused schema,
  reporting for every record field how often it was present — turning the
  schema's qualitative ``?`` into a quantitative presence ratio.

Paths use the same JSONPath-flavoured notation as
:func:`repro.core.values.iter_paths`: ``$.user.name``, ``$.tags[*]``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Iterable

from repro.core.kinds import Kind
from repro.core.types import RecordType, StarArrayType, Type, UnionType

__all__ = ["StatisticsCollector", "FieldPresence", "ArrayLengthStats",
           "presence_report"]


@dataclass
class ArrayLengthStats:
    """Length statistics for the arrays observed at one path.

    The paper's star type ``[T*]`` deliberately forgets lengths; these
    counts restore that information as an annotation (Section 7's planned
    statistical enrichment, and a step toward "improv[ing] the precision of
    the inference process for arrays").
    """

    count: int = 0
    min_length: int = 0
    max_length: int = 0
    total_elements: int = 0

    def observe(self, length: int) -> None:
        if self.count == 0:
            self.min_length = self.max_length = length
        else:
            self.min_length = min(self.min_length, length)
            self.max_length = max(self.max_length, length)
        self.count += 1
        self.total_elements += length

    @property
    def mean_length(self) -> float:
        """Average array length at this path."""
        return self.total_elements / self.count if self.count else 0.0

    def merged(self, other: "ArrayLengthStats") -> "ArrayLengthStats":
        if self.count == 0:
            return ArrayLengthStats(**vars(other))
        if other.count == 0:
            return ArrayLengthStats(**vars(self))
        return ArrayLengthStats(
            count=self.count + other.count,
            min_length=min(self.min_length, other.min_length),
            max_length=max(self.max_length, other.max_length),
            total_elements=self.total_elements + other.total_elements,
        )


def _kind_of_value(value: Any) -> Kind:
    if value is None:
        return Kind.NULL
    if isinstance(value, bool):
        return Kind.BOOL
    if isinstance(value, (int, float)):
        return Kind.NUM
    if isinstance(value, str):
        return Kind.STR
    if isinstance(value, dict):
        return Kind.RECORD
    if isinstance(value, list):
        return Kind.ARRAY
    raise TypeError(f"not a JSON value: {type(value).__name__}")


class StatisticsCollector:
    """Counts path occurrences and per-path kind frequencies.

    >>> stats = StatisticsCollector()
    >>> stats.observe({"a": 1}); stats.observe({"a": "x", "b": None})
    >>> stats.path_counts["$.a"]
    2
    >>> stats.kind_counts[("$.a", Kind.NUM)]
    1
    """

    def __init__(self) -> None:
        self.record_count = 0
        self.path_counts: Counter[str] = Counter()
        self.kind_counts: Counter[tuple[str, Kind]] = Counter()
        self.array_lengths: dict[str, ArrayLengthStats] = {}

    def observe(self, value: Any) -> None:
        """Fold one JSON value into the statistics."""
        self.record_count += 1
        self._walk(value, "$")

    def observe_many(self, values: Iterable[Any]) -> None:
        """Fold a batch of values."""
        for value in values:
            self.observe(value)

    def _walk(self, value: Any, path: str) -> None:
        self.path_counts[path] += 1
        self.kind_counts[(path, _kind_of_value(value))] += 1
        if isinstance(value, dict):
            for key, sub in value.items():
                self._walk(sub, f"{path}.{key}")
        elif isinstance(value, list):
            stats = self.array_lengths.get(path)
            if stats is None:
                stats = self.array_lengths[path] = ArrayLengthStats()
            stats.observe(len(value))
            for sub in value:
                self._walk(sub, f"{path}[*]")

    def merge(self, other: "StatisticsCollector") -> "StatisticsCollector":
        """Associatively combine two collectors (neither input changes)."""
        merged = StatisticsCollector()
        merged.record_count = self.record_count + other.record_count
        merged.path_counts = self.path_counts + other.path_counts
        merged.kind_counts = self.kind_counts + other.kind_counts
        merged.array_lengths = dict(self.array_lengths)
        for path, stats in other.array_lengths.items():
            mine = merged.array_lengths.get(path, ArrayLengthStats())
            merged.array_lengths[path] = mine.merged(stats)
        return merged

    def presence_ratio(self, path: str) -> float:
        """Fraction of records in which ``path`` occurred at least... times.

        Note: for array item paths this is occurrences relative to records,
        so it can exceed 1.0 (several items per record).
        """
        if self.record_count == 0:
            return 0.0
        return self.path_counts[path] / self.record_count


@dataclass(frozen=True)
class FieldPresence:
    """Presence statistics for one schema field."""

    path: str
    optional: bool
    occurrences: int
    parent_occurrences: int

    @property
    def ratio(self) -> float:
        """Occurrences relative to the number of enclosing records."""
        if self.parent_occurrences == 0:
            return 0.0
        return self.occurrences / self.parent_occurrences


def presence_report(schema: Type, stats: StatisticsCollector) -> list[FieldPresence]:
    """Join statistics onto a fused schema, one entry per record field.

    The report confirms the schema's optionality annotations numerically:
    a mandatory field should show ratio 1.0, an optional one less.
    """
    out: list[FieldPresence] = []
    _report(schema, "$", stats, out)
    return out


def _report(t: Type, path: str, stats: StatisticsCollector,
            out: list[FieldPresence]) -> None:
    if isinstance(t, UnionType):
        for member in t.members:
            _report(member, path, stats, out)
    elif isinstance(t, RecordType):
        # A field can only be present when the parent value is a record,
        # so ratios are taken relative to the record-kind count at ``path``.
        parent = stats.kind_counts.get((path, Kind.RECORD), 0)
        for fld in t.fields:
            sub_path = f"{path}.{fld.name}"
            out.append(FieldPresence(
                path=sub_path,
                optional=fld.optional,
                occurrences=stats.path_counts.get(sub_path, 0),
                parent_occurrences=parent,
            ))
            _report(fld.type, sub_path, stats, out)
    elif isinstance(t, StarArrayType):
        _report(t.body, f"{path}[*]", stats, out)
    # Positional arrays never survive fusion; basic/empty have no fields.
