"""The map-phase fast lane: type JSON text without materialising values.

The strict pipeline runs three pure-Python stages per record — tokenize,
parse into Python objects, then type those objects (Fig. 4) — and the
intermediate value tree exists only to be typed and thrown away.  This
module removes it, in two flavours selected by :func:`resolve_lane`:

* :class:`TokenTyper` (lane ``"tokens"``) — a recursive-descent walker
  over :func:`repro.jsonio.tokenizer.tokenize` events that emits types
  *during* parsing: every atom token maps straight to a basic-type
  singleton, every object/array closes into an interned
  ``RecordType``/``ArrayType`` through the accumulator's construction
  pools.  One pass, no value tree, same grammar and duplicate-key
  rejection as the strict parser.
* :class:`HookTyper` (lane ``"hooks"``) — the C-accelerated variant: a
  single prebuilt :class:`json.JSONDecoder` whose ``object_pairs_hook`` /
  ``parse_int`` / ``parse_float`` / ``parse_constant`` hooks build
  interned type nodes directly while the stdlib C scanner does the
  lexing.  Numbers are never converted (both hooks return the ``Num``
  singleton unconditionally), objects never become dicts, and only
  strings are materialised (the C scanner decodes them natively).

Both lanes are *optimistic*: they handle well-formed records at full
speed and bail out on anything else — a syntax error, a non-standard
``NaN``/``Infinity`` constant, a duplicate object key, a ``\\u``
surrogate escape (which the stdlib scanner tolerates unpaired but the
strict grammar rejects).  The bailout
contract is :exc:`FastLaneMiss` (or any
:class:`~repro.jsonio.errors.JsonError`): the caller re-parses the
offending record with the strict :func:`repro.jsonio.parser.loads` lane,
whose rich ``source``/line/column diagnostics and
:class:`~repro.jsonio.errors.DuplicateKeyError` semantics are therefore
byte-identical to a strict-only run.  Malformed records pay a double
parse; well-formed ones never do.

Equivalence is the hard bar: for every input the fast lanes either
produce the *same interned type object* the strict lane's
``infer_type(loads(text))`` would (pointer equality within one
accumulator), or defer to the strict lane entirely.  The differential
fuzz tests check both properties on arbitrary JSON.
"""

from __future__ import annotations

import json
import re
from typing import Iterator

from repro.core.errors import InvalidTypeError
from repro.core.types import BOOL, NULL, NUM, RecordType, STR, Type
from repro.jsonio.errors import DuplicateKeyError, JsonSyntaxError
from repro.jsonio.keycache import KeyCache
from repro.jsonio.tokenizer import Token, TokenType, tokenize

__all__ = [
    "PARSE_LANES",
    "BytesBatchTyper",
    "FastLaneMiss",
    "HookTyper",
    "LineTypeCache",
    "TokenTyper",
    "c_scanner_available",
    "make_typer",
    "resolve_lane",
    "type_from_tokens",
]

#: The public values of the ``parse_lane`` knob.  ``auto`` lets the
#: library choose (currently: the fastest lane available), ``fast``
#: requests the no-value-tree lane explicitly, ``bytes`` the vectorized
#: bytes-native batch lane, ``strict`` forces the original
#: tokenize -> parse -> type pipeline.
PARSE_LANES = ("auto", "fast", "bytes", "strict")

#: Resolved (internal) lane names; "hooks" and "tokens" may also be passed
#: to :func:`resolve_lane` directly to pin one implementation (used by the
#: benchmarks and tests).
RESOLVED_LANES = ("hooks", "tokens", "bytes", "strict")


class FastLaneMiss(ValueError):
    """A record the fast lane declines to type.

    Raised (or re-raised) by the typers for any input they cannot handle
    at full speed: malformed JSON, duplicate object keys, non-standard
    constants.  The caller must re-parse the record with the strict lane,
    which either produces the value (and the record is typed from it) or
    fails with the exact diagnostic a strict-only run would have raised.

    Subclasses :class:`ValueError` so the stdlib decoder hooks can raise
    it through the C scanner uniformly with ``json.JSONDecodeError``.
    """


def c_scanner_available() -> bool:
    """Whether the stdlib ``json`` C scanner (``_json``) is importable.

    The hook lane is only worth selecting when the C scanner does the
    lexing; with the pure-Python fallback scanner the token walker is the
    better fast lane.
    """
    try:
        from json import scanner
    except ImportError:  # pragma: no cover - stdlib always has it
        return False
    return getattr(scanner, "c_make_scanner", None) is not None


def resolve_lane(parse_lane: str) -> str:
    """Map the public ``parse_lane`` knob to a concrete implementation.

    ``strict`` stays strict.  ``fast`` and ``auto`` both resolve to the
    C-accelerated ``"hooks"`` lane when the stdlib C scanner is available
    and to the pure-Python ``"tokens"`` walker otherwise — ``auto`` is the
    pipelines' default and is kept distinct from ``fast`` so future
    heuristics (e.g. preferring strict for diagnostics-heavy permissive
    runs) can change its choice without an API break.  The resolved names
    ``"hooks"`` and ``"tokens"`` pass through, letting benchmarks pin one
    implementation.

    ``bytes`` resolves to itself: the vectorized bytes-native lane
    (:class:`BytesBatchTyper` fed by the
    :class:`~repro.jsonio.blockscan.SplitBlockScanner`) is opt-in for
    now — it shares the strict-fallback equivalence contract with the
    per-line fast lanes but batches records through one decoder call.

    >>> resolve_lane("strict")
    'strict'
    >>> resolve_lane("auto") in ("hooks", "tokens")
    True
    >>> resolve_lane("bytes")
    'bytes'
    """
    if parse_lane == "strict":
        return "strict"
    if parse_lane in ("auto", "fast"):
        return "hooks" if c_scanner_available() else "tokens"
    if parse_lane in ("bytes", "hooks", "tokens"):
        return parse_lane
    raise ValueError(
        f"unknown parse_lane {parse_lane!r}; expected one of "
        f"{PARSE_LANES} (or a resolved lane in {RESOLVED_LANES})"
    )


# ---------------------------------------------------------------------------
# Lane "tokens": type directly from tokenizer events

#: Atom tokens map straight onto the basic-type singletons (Fig. 4's four
#: base rules, fused into the lexer's classification).
_ATOM_TYPES = {
    TokenType.STRING: STR,
    TokenType.NUMBER: NUM,
    TokenType.TRUE: BOOL,
    TokenType.FALSE: BOOL,
    TokenType.NULL: NULL,
}


class TokenTyper:
    """Types one JSON document per call, straight off the token stream.

    Bound to a :class:`~repro.inference.kernel.PartitionAccumulator`: all
    emitted nodes go through the accumulator's interner and construction
    pools, so the result is the *canonical* type object — pointer-equal to
    what ``interner.intern(infer_type(loads(text)))`` would return.

    Grammar and positions mirror :mod:`repro.jsonio.parser` rule for rule
    (same tokenizer, same expectation points), including duplicate-key
    rejection at the offending key token.  Callers treat any raised
    :class:`~repro.jsonio.errors.JsonError` as a fast-lane miss and
    re-parse strictly for relocated (source, absolute-line) diagnostics.
    """

    __slots__ = ("_field", "_record", "_array", "_key")

    def __init__(self, acc, key_cache: KeyCache | None = None) -> None:
        self._field = acc.interner.field
        self._record = acc.record_type
        self._array = acc.array_type
        # Bounded key dedup: repeated field names share one string without
        # sys.intern's process-global, immortal pinning.  Per-typer (i.e.
        # per-partition) by default; a warm worker passes its own cache so
        # the sharing survives across that worker's partitions.
        self._key = (key_cache or KeyCache()).share

    def type_document(self, text: str) -> Type:
        """The interned type of ``text``; raises ``JsonSyntaxError``."""
        tokens = tokenize(text)
        t, token = self._value(next(tokens), tokens)
        if token.type != TokenType.EOF:
            raise JsonSyntaxError(
                f"expected 'eof', found {token.type!r}",
                token.line, token.column,
            )
        return t

    def _value(
        self, token: Token, tokens: Iterator[Token]
    ) -> tuple[Type, Token]:
        """Type one value starting at ``token``; returns the next token."""
        atom = _ATOM_TYPES.get(token.type)
        if atom is not None:
            return atom, next(tokens)
        if token.type == TokenType.LBRACE:
            return self._object(tokens)
        if token.type == TokenType.LBRACKET:
            return self._array_value(tokens)
        raise JsonSyntaxError(
            f"unexpected token {token.type!r}", token.line, token.column
        )

    def _object(self, tokens: Iterator[Token]) -> tuple[Type, Token]:
        token = next(tokens)
        if token.type == TokenType.RBRACE:
            return self._record(()), next(tokens)
        fields = []
        seen: set[str] = set()
        field = self._field
        share_key = self._key
        while True:
            if token.type != TokenType.STRING:
                raise JsonSyntaxError(
                    f"expected 'string', found {token.type!r}",
                    token.line, token.column,
                )
            key = share_key(token.value)
            if key in seen:
                raise DuplicateKeyError(key, token.line, token.column)
            seen.add(key)
            token = next(tokens)
            if token.type != TokenType.COLON:
                raise JsonSyntaxError(
                    f"expected ':', found {token.type!r}",
                    token.line, token.column,
                )
            t, token = self._value(next(tokens), tokens)
            fields.append(field(key, t))
            if token.type == TokenType.COMMA:
                token = next(tokens)
                continue
            if token.type != TokenType.RBRACE:
                raise JsonSyntaxError(
                    f"expected '}}', found {token.type!r}",
                    token.line, token.column,
                )
            return self._record(tuple(fields)), next(tokens)

    def _array_value(self, tokens: Iterator[Token]) -> tuple[Type, Token]:
        token = next(tokens)
        if token.type == TokenType.RBRACKET:
            return self._array(()), next(tokens)
        elements = []
        while True:
            t, token = self._value(token, tokens)
            elements.append(t)
            if token.type == TokenType.COMMA:
                token = next(tokens)
                continue
            if token.type != TokenType.RBRACKET:
                raise JsonSyntaxError(
                    f"expected ']', found {token.type!r}",
                    token.line, token.column,
                )
            return self._array(tuple(elements)), next(tokens)


# ---------------------------------------------------------------------------
# Lane "hooks": drive the stdlib C scanner, build types in the hooks


def _number_hook(_literal: str) -> Type:
    """Both number hooks: classify without converting the literal."""
    return NUM


def _constant_hook(literal: str) -> Type:
    """Reject the stdlib's non-standard NaN/Infinity leniency.

    The strict grammar (RFC 8259) has no such constants; bailing out here
    hands the record to the strict lane, which raises the same
    ``invalid literal`` diagnostic it always has.
    """
    raise FastLaneMiss(f"non-standard JSON constant {literal!r}")


#: A ``\u`` escape naming a code point in U+D800-U+DFFF (the second hex
#: digit of every surrogate is D and the third is 8-F).  The stdlib C
#: scanner decodes these permissively — a lone ``\ud800`` passes through
#: as an unpaired surrogate — while the strict tokenizer pairs them per
#: RFC 8259 section 7 and rejects lone ones, so any record containing
#: such an escape must take the strict lane to keep acceptance,
#: diagnostics and quarantine byte-identical.  Deliberately conservative:
#: a validly *paired* escape (``\\ud83d\\ude00``) also misses, and the
#: strict re-parse then accepts it with the identical type — only the
#: rare escape-bearing record pays, and the check stays one C-speed scan
#: of the raw text.  (An escaped backslash like ``\\ud800`` false-matches
#: too; same harmless deferral.)  Raw unescaped surrogate *characters*
#: need no handling: both lanes pass them through unchanged.
_SURROGATE_ESCAPE = re.compile(r"\\u[dD][89a-fA-F]")


class HookTyper:
    """C-accelerated typed parsing via stdlib ``json`` decoder hooks.

    One :class:`json.JSONDecoder` is built per typer (``json.loads`` with
    keyword hooks constructs a fresh decoder *per call* — a hidden cost
    this class avoids) and reused for every record of the partition.

    What flows out of the scanner is a hybrid: numbers are already the
    ``Num`` singleton (the parse hooks never build ``int``/``float``),
    objects are already interned ``RecordType`` nodes, while strings,
    booleans, ``null`` and arrays arrive as native Python values and are
    classified by :meth:`_type_of`.  Duplicate object keys surface as
    :class:`~repro.core.errors.InvalidTypeError` from ``RecordType``'s own
    well-formedness check and become a :class:`FastLaneMiss`; the strict
    re-parse then reports the exact offending position.  Records carrying
    ``\\u`` surrogate escapes are deferred wholesale before decoding (see
    ``_SURROGATE_ESCAPE``): the C scanner tolerates lone surrogates the
    strict grammar rejects, so strict must arbitrate those.
    """

    __slots__ = ("_field", "_record", "_array", "_decode", "_key")

    def __init__(self, acc, key_cache: KeyCache | None = None) -> None:
        self._field = acc.interner.field
        self._record = acc.record_type
        self._array = acc.array_type
        # Bounded key dedup: repeated field names share one string without
        # sys.intern's process-global, immortal pinning.  Per-typer (i.e.
        # per-partition) by default; a warm worker passes its own cache so
        # the sharing survives across that worker's partitions.
        self._key = (key_cache or KeyCache()).share
        self._decode = json.JSONDecoder(
            object_pairs_hook=self._record_hook,
            parse_float=_number_hook,
            parse_int=_number_hook,
            parse_constant=_constant_hook,
        ).decode

    def type_document(self, text: str) -> Type:
        """The interned type of ``text``; raises :class:`FastLaneMiss`."""
        if "\\u" in text and _SURROGATE_ESCAPE.search(text) is not None:
            # The C scanner would accept lone surrogate escapes the
            # strict grammar rejects; defer before decoding so the
            # strict lane is the arbiter of acceptance.
            raise FastLaneMiss("surrogate \\u escape; deferring to strict")
        try:
            value = self._decode(text)
        except (ValueError, InvalidTypeError) as exc:
            # json.JSONDecodeError, our own hooks' FastLaneMiss, and the
            # duplicate-key InvalidTypeError all funnel into one miss.
            raise FastLaneMiss(str(exc)) from exc
        return self._type_of(value)

    def _record_hook(self, pairs: list[tuple[str, object]]) -> Type:
        field = self._field
        type_of = self._type_of
        share_key = self._key
        return self._record(
            tuple(field(share_key(k), type_of(v)) for k, v in pairs)
        )

    def _type_of(self, value: object) -> Type:
        """Classify one scanner output (native value or ready-made type)."""
        cls = value.__class__
        if cls is str:
            return STR
        if cls is list:
            return self._array(tuple(map(self._type_of, value)))
        if cls is bool:
            return BOOL
        if value is None:
            return NULL
        return value  # already a Type from a nested hook


# ---------------------------------------------------------------------------
# Lane "bytes": batched zero-decode typing with a duplicate-line type cache

#: Default entry bound of :class:`LineTypeCache`.
DEFAULT_LINE_CACHE_ENTRIES = 1 << 20

#: Default byte bound of :class:`LineTypeCache` (sum of cached key sizes).
DEFAULT_LINE_CACHE_BYTES = 64 << 20


class LineTypeCache:
    """Bounded raw-line -> interned-type dedup cache.

    Feeds the bytes lane's short-circuit: a line whose exact raw bytes
    were typed before maps straight to its canonical type — no decode, no
    parse.  Soundness is by construction: keys are the *unmodified* line
    slices, entries are inserted only after a successful fast-path parse,
    and the cache lives next to exactly one interner (a
    :class:`~repro.inference.kernel.WarmState`'s, or a per-task
    accumulator's), so a cached type is always canonical where it is
    reused.  Warm-state residency is what makes it generation-tagged:
    driver-side invalidation rebuilds the warm state, cache included.

    Bounded on both entry count and summed key bytes with the same
    clear-on-full policy as :class:`~repro.jsonio.keycache.KeyCache`: hot
    lines re-enter on their next occurrence, memory stays bounded, and a
    missed reuse only costs a re-parse, never a wrong result.
    """

    __slots__ = ("data", "_cap_entries", "_cap_bytes", "_size_bytes")

    def __init__(
        self,
        cap_entries: int = DEFAULT_LINE_CACHE_ENTRIES,
        cap_bytes: int = DEFAULT_LINE_CACHE_BYTES,
    ) -> None:
        if cap_entries < 1 or cap_bytes < 1:
            raise ValueError("cache bounds must be positive")
        #: The probe table.  Exposed raw: the hot loop probes
        #: ``data.get(line)`` directly (a readonly ``memoryview`` hashes
        #: and compares equal to its ``bytes`` copy, so mmap slices probe
        #: without copying).
        self.data: dict = {}
        self._cap_entries = cap_entries
        self._cap_bytes = cap_bytes
        self._size_bytes = 0

    def insert(self, line, t: Type) -> None:
        """Cache ``line`` (bytes or str) -> ``t``, evicting when full."""
        if (len(self.data) >= self._cap_entries
                or self._size_bytes >= self._cap_bytes):
            self.data.clear()
            self._size_bytes = 0
        self.data[line] = t
        self._size_bytes += len(line)

    def __len__(self) -> int:
        return len(self.data)


class BytesBatchTyper:
    """Vectorized bytes-native typing: one C-scanner pass per line batch.

    The per-line hook lane still pays one Python ``loads`` round trip per
    record.  This lane amortises it: a batch of raw line slices is joined
    with commas into one ``[...]`` document and decoded through a single
    prebuilt :class:`json.JSONDecoder` call, so scanner setup, hook
    dispatch machinery and key memoization are shared across thousands of
    records.  Numbers are left to the C scanner entirely (native
    ``int``/``float`` construction beats a Python ``parse_int`` hook at
    batch sizes) and classified to ``Num`` in :meth:`_type_of`.

    Equivalence with the strict lane rests on three guards:

    * the joined document is decoded from an **explicit** UTF-8 ``str``
      (``json.loads(bytes)`` would BOM-sniff via ``detect_encoding``,
      silently accepting BOM'd records the strict lane rejects);
    * a surrogate ``\\u`` escape anywhere in the batch defers the whole
      batch (same conservative check as :class:`HookTyper`);
    * the decoded element count must equal the joined line count.  Every
      non-empty line contributes at least one element or fails the parse,
      so equality proves each line contributed *exactly* one — a line
      like ``1,2`` (which strict rejects as trailing data) can never
      smuggle extra records through the join.

    Any violation — or any decode error at all — raises
    :class:`FastLaneMiss`, and the caller re-runs that batch line by line
    through the ordinary per-line arbitration (fast parse, strict
    re-parse on miss), keeping errors and quarantine byte-identical.

    ``hits`` / ``misses`` / ``bytes_avoided`` count dedup-cache outcomes
    for completed fast-path batches (a batch that falls back contributes
    nothing: its records were re-parsed, so no decode was avoided).
    """

    __slots__ = ("_field", "_record", "_array", "_decode", "_key",
                 "_cache", "hits", "misses", "bytes_avoided")

    def __init__(self, acc, key_cache: KeyCache | None = None,
                 line_cache: "LineTypeCache | None" = None) -> None:
        self._field = acc.interner.field
        self._record = acc.record_type
        self._array = acc.array_type
        self._key = (key_cache or KeyCache()).share
        self._cache = line_cache
        self.hits = 0
        self.misses = 0
        self.bytes_avoided = 0
        self._decode = json.JSONDecoder(
            object_pairs_hook=self._record_hook,
            parse_constant=_constant_hook,
        ).decode

    def type_lines(self, lines) -> list:
        """Type one batch of raw byte lines (memoryview/bytes slices).

        Returns a list aligned with ``lines``: the interned type per
        record, ``None`` for empty lines.  Raises :class:`FastLaneMiss`
        when the batch needs per-line arbitration — nothing has been
        observed or cached at that point, so the caller can simply rerun
        the same ``lines`` through the per-line path.
        """
        cache = self._cache
        probe = cache.data.get if cache is not None else None
        out: list = []
        append = out.append
        miss_index: list[int] = []
        batch_hits = batch_hit_bytes = 0
        for line in lines:
            if not line:
                append(None)  # blank line: counted, never typed
                continue
            if probe is not None:
                t = probe(line)
                if t is not None:
                    append(t)
                    batch_hits += 1
                    batch_hit_bytes += len(line)
                    continue
            miss_index.append(len(out))
            append(None)
        if miss_index:
            doc = b"[" + b",".join([lines[i] for i in miss_index]) + b"]"
            try:
                text = doc.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise FastLaneMiss(str(exc)) from exc
            if "\\u" in text and _SURROGATE_ESCAPE.search(text) is not None:
                raise FastLaneMiss(
                    "surrogate \\u escape; deferring to strict"
                )
            try:
                values = self._decode(text)
            except (ValueError, InvalidTypeError, RecursionError) as exc:
                raise FastLaneMiss(str(exc)) from exc
            if len(values) != len(miss_index):
                raise FastLaneMiss(
                    "joined batch decoded to a different record count; "
                    "a line is not a single JSON document"
                )
            type_of = self._type_of
            record_cls = RecordType
            for i, v in zip(miss_index, values):
                out[i] = v if v.__class__ is record_cls else type_of(v)
            if cache is not None:
                insert = cache.insert
                for i in miss_index:
                    insert(bytes(lines[i]), out[i])
        self.hits += batch_hits
        self.misses += len(miss_index)
        self.bytes_avoided += batch_hit_bytes
        return out

    def type_text_lines(self, lines: list) -> list:
        """Line-mode twin of :meth:`type_lines` over ``str`` lines.

        The driver's line mode ships already-decoded, already-stripped
        text, so the join is textual and cache keys are the ``str`` lines
        themselves (``str`` and ``bytes`` keys never collide in one
        table).  Blank lines cannot occur (the line reader drops them).
        """
        cache = self._cache
        probe = cache.data.get if cache is not None else None
        out: list = []
        append = out.append
        miss_index: list[int] = []
        batch_hits = batch_hit_bytes = 0
        for line in lines:
            if probe is not None:
                t = probe(line)
                if t is not None:
                    append(t)
                    batch_hits += 1
                    batch_hit_bytes += len(line)
                    continue
            miss_index.append(len(out))
            append(None)
        if miss_index:
            text = "[" + ",".join([lines[i] for i in miss_index]) + "]"
            if "\\u" in text and _SURROGATE_ESCAPE.search(text) is not None:
                raise FastLaneMiss(
                    "surrogate \\u escape; deferring to strict"
                )
            try:
                values = self._decode(text)
            except (ValueError, InvalidTypeError, RecursionError) as exc:
                raise FastLaneMiss(str(exc)) from exc
            if len(values) != len(miss_index):
                raise FastLaneMiss(
                    "joined batch decoded to a different record count; "
                    "a line is not a single JSON document"
                )
            type_of = self._type_of
            record_cls = RecordType
            for i, v in zip(miss_index, values):
                out[i] = v if v.__class__ is record_cls else type_of(v)
            if cache is not None:
                insert = cache.insert
                for i in miss_index:
                    insert(lines[i], out[i])
        self.hits += batch_hits
        self.misses += len(miss_index)
        self.bytes_avoided += batch_hit_bytes
        return out

    def _record_hook(self, pairs: list) -> Type:
        field = self._field
        type_of = self._type_of
        share_key = self._key
        return self._record(
            tuple([field(share_key(k), type_of(v)) for k, v in pairs])
        )

    def _type_of(self, value: object) -> Type:
        """Classify one scanner output (native value or ready-made type)."""
        cls = value.__class__
        if cls is str:
            return STR
        if cls is int or cls is float:
            return NUM
        if cls is list:
            return self._array(tuple([self._type_of(e) for e in value]))
        if cls is bool:
            return BOOL
        if value is None:
            return NULL
        return value  # already a Type from a nested hook


_TYPERS = {"tokens": TokenTyper, "hooks": HookTyper}


def make_typer(
    lane: str, acc, key_cache: KeyCache | None = None
) -> TokenTyper | HookTyper:
    """Instantiate the typer for a resolved fast lane, bound to ``acc``.

    ``key_cache`` substitutes a caller-owned key-dedup cache (a warm
    worker's) for the typer's default per-partition one.
    """
    try:
        return _TYPERS[lane](acc, key_cache)
    except KeyError:
        raise ValueError(
            f"no fast-lane typer for lane {lane!r}; expected one of "
            f"{tuple(_TYPERS)}"
        ) from None


def type_from_tokens(text: str, acc=None) -> Type:
    """Type one JSON document straight from its token stream.

    Convenience wrapper over :class:`TokenTyper` for one-off use and the
    differential tests; for whole partitions build one typer and reuse it.
    With an accumulator, the result is canonical in *its* interner —
    pointer-equal to ``acc.interner.intern(infer_type(loads(text)))``.

    >>> from repro.core.printer import print_type
    >>> print_type(type_from_tokens('{"a": [1, "x"]}'))
    '{a: [Num, Str]}'
    """
    if acc is None:
        from repro.inference.kernel import PartitionAccumulator

        acc = PartitionAccumulator()
    return TokenTyper(acc).type_document(text)
