"""Abstract syntax of the JSON type language (paper Fig. 3).

The language has six constructors::

    T ::= BT | RT | AT | SAT | eps | T + T          Top-level types
    BT ::= null | bool | num | str                  Basic types
    RT ::= { l1 : T1 [?], ..., ln : Tn [?] }        Record types
    AT ::= [ T1, ..., Tn ]                          (positional) array types
    SAT ::= [ T * ]                                 Simplified array types

which map here onto :class:`BasicType`, :class:`RecordType` (with
:class:`Field` entries carrying the optionality flag ``?``),
:class:`ArrayType`, :class:`StarArrayType`, :class:`EmptyType` (``eps``) and
:class:`UnionType`.

Design notes
------------

* **Immutability.**  Types are deeply immutable; hash and size (the paper's
  succinctness metric: number of AST nodes) are computed once at
  construction.  This makes distinct-type counting over millions of records
  (Tables 2-5 of the paper) a plain ``set`` insertion.
* **Canonical form.**  Record fields are stored sorted by key (records are
  *sets* of fields, Section 4) and union members sorted by kind.  As a
  consequence structural equality coincides with the paper's equality
  modulo field/addend reordering, and the commutativity theorem
  (Theorem 5.4) holds as plain ``==`` on the fused results.
* **Singletons.**  The four basic types and the empty type are exposed as
  module-level constants (:data:`NULL`, :data:`BOOL`, :data:`NUM`,
  :data:`STR`, :data:`EMPTY`); constructing new instances is possible but
  unnecessary.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.errors import InvalidTypeError
from repro.core.kinds import Kind

__all__ = [
    "Type",
    "BasicType",
    "Field",
    "RecordType",
    "ArrayType",
    "StarArrayType",
    "UnionType",
    "EmptyType",
    "NULL",
    "BOOL",
    "NUM",
    "STR",
    "EMPTY",
    "make_union",
    "make_record",
    "make_array",
    "make_star",
]


class Type:
    """Base class of all type AST nodes.

    Subclasses precompute ``_hash`` and ``_size`` at construction; both are
    exposed through :meth:`__hash__` and :attr:`size`.
    """

    __slots__ = ("_hash", "_size", "_has_positional")

    #: Kind of the node; ``None`` only for the empty type and unions.
    kind: Kind | None = None

    @property
    def size(self) -> int:
        """Number of AST nodes — the paper's measure of type size."""
        return self._size

    @property
    def has_positional_array(self) -> bool:
        """True if any positional array type occurs in this type.

        Fusion is idempotent (``fuse(t, t) == t``) exactly on types without
        positional arrays — fusing two equal positional arrays still
        collapses them into a star type (Fig. 6 line 4).  The fusion fast
        path keys off this flag.
        """
        return self._has_positional

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __repr__(self) -> str:
        from repro.core.printer import print_type

        return f"<{type(self).__name__} {print_type(self)!r}>"

    def __str__(self) -> str:
        from repro.core.printer import print_type

        return print_type(self)

    def addends(self) -> tuple["Type", ...]:
        """Decompose into non-union addends — the paper's ``o(T)`` operator.

        ``o(T1 + T2) = o(T1) . o(T2)``, ``o(eps) = []`` and ``o(T) = [T]``
        otherwise.  Non-union types therefore return a 1-tuple of themselves.
        """
        return (self,)

    def children(self) -> Iterator["Type"]:
        """Iterate over direct sub-types (used by generic traversals)."""
        return iter(())


_BASIC_NAMES = {
    Kind.NULL: "Null",
    Kind.BOOL: "Bool",
    Kind.NUM: "Num",
    Kind.STR: "Str",
}


class BasicType(Type):
    """An atomic type: ``Null``, ``Bool``, ``Num`` or ``Str``."""

    __slots__ = ("kind",)

    def __init__(self, kind: Kind) -> None:
        if kind not in _BASIC_NAMES:
            raise InvalidTypeError(f"not a basic kind: {kind!r}")
        self.kind = kind
        self._size = 1
        self._has_positional = False
        self._hash = hash(("basic", int(kind)))

    @property
    def name(self) -> str:
        """The paper-syntax name of this basic type (e.g. ``"Num"``)."""
        return _BASIC_NAMES[self.kind]

    __hash__ = Type.__hash__

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BasicType) and other.kind == self.kind

    def __reduce__(self):
        return (BasicType, (self.kind,))


class EmptyType(Type):
    """The empty type ``eps``: no value inhabits it.

    Never produced by value typing; it only appears as the body of the
    simplified array type obtained from an empty array (``[eps*]``, paper
    footnote 1) and as the neutral element of fusion.
    """

    __slots__ = ()

    kind = None

    def __init__(self) -> None:
        self._size = 1
        self._has_positional = False
        self._hash = hash(("empty",))

    __hash__ = Type.__hash__

    def __eq__(self, other: object) -> bool:
        return isinstance(other, EmptyType)

    def addends(self) -> tuple[Type, ...]:
        return ()

    def __reduce__(self):
        return (EmptyType, ())


#: Singleton instances of the basic types and the empty type.
NULL = BasicType(Kind.NULL)
BOOL = BasicType(Kind.BOOL)
NUM = BasicType(Kind.NUM)
STR = BasicType(Kind.STR)
EMPTY = EmptyType()


class Field:
    """A single record field ``l : T`` or ``l : T?``.

    ``optional`` encodes the paper's cardinality annotation: ``False`` is the
    implicit total cardinality ``1`` (the field is mandatory), ``True`` is
    ``?`` (the field may be absent).
    """

    __slots__ = ("name", "type", "optional", "_hash")

    def __init__(self, name: str, type: Type, optional: bool = False) -> None:
        if not isinstance(name, str):
            raise InvalidTypeError(f"field name must be a string, got {name!r}")
        if not isinstance(type, Type):
            raise InvalidTypeError(f"field type must be a Type, got {type!r}")
        self.name = name
        self.type = type
        self.optional = bool(optional)
        self._hash = hash(("field", name, type, self.optional))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Field)
            and other.name == self.name
            and other.optional == self.optional
            and other.type == self.type
        )

    def __repr__(self) -> str:
        mark = "?" if self.optional else ""
        return f"Field({self.name!r}: {self.type!s}{mark})"

    def with_optional(self, optional: bool) -> "Field":
        """Return a copy of this field with the given optionality."""
        if optional == self.optional:
            return self
        return Field(self.name, self.type, optional)

    def __reduce__(self):
        return (Field, (self.name, self.type, self.optional))


class RecordType(Type):
    """A record type ``{ l1 : T1 [?], ..., ln : Tn [?] }``.

    Fields are stored sorted by key: records are sets of fields (Section 4),
    so two record types differing only in field order compare equal here by
    construction.  Keys must be unique.
    """

    __slots__ = ("fields", "_by_name")

    kind = Kind.RECORD

    def __init__(self, fields: Iterable[Field] = ()) -> None:
        ordered = tuple(sorted(fields, key=lambda f: f.name))
        by_name: dict[str, Field] = {}
        for field in ordered:
            if not isinstance(field, Field):
                raise InvalidTypeError(f"not a Field: {field!r}")
            if field.name in by_name:
                raise InvalidTypeError(f"duplicate record key: {field.name!r}")
            by_name[field.name] = field
        self.fields = ordered
        self._by_name = by_name
        # A record node plus, per field, one field node and its type subtree.
        self._size = 1 + sum(1 + f.type.size for f in ordered)
        self._has_positional = any(f.type._has_positional for f in ordered)
        self._hash = hash(("record", ordered))

    __hash__ = Type.__hash__

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RecordType)
            and other._hash == self._hash
            and other.fields == self.fields
        )

    def keys(self) -> tuple[str, ...]:
        """Record keys, in canonical (sorted) order — ``Keys(RT)``."""
        return tuple(f.name for f in self.fields)

    def field(self, name: str) -> Field | None:
        """The field named ``name``, or ``None`` if absent."""
        return self._by_name.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def children(self) -> Iterator[Type]:
        return (f.type for f in self.fields)

    def __reduce__(self):
        return (RecordType, (self.fields,))


class ArrayType(Type):
    """A positional array type ``[T1, ..., Tn]``.

    This is the form produced by value typing (Fig. 4): one element type per
    array element, in order.  Fusion simplifies it into a
    :class:`StarArrayType` via ``collapse`` before merging.
    """

    __slots__ = ("elements",)

    kind = Kind.ARRAY

    def __init__(self, elements: Iterable[Type] = ()) -> None:
        elems = tuple(elements)
        for elem in elems:
            if not isinstance(elem, Type):
                raise InvalidTypeError(f"not a Type: {elem!r}")
        self.elements = elems
        self._size = 1 + sum(t.size for t in elems)
        self._has_positional = True
        self._hash = hash(("array", elems))

    __hash__ = Type.__hash__

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArrayType)
            and other._hash == self._hash
            and other.elements == self.elements
        )

    def __len__(self) -> int:
        return len(self.elements)

    def children(self) -> Iterator[Type]:
        return iter(self.elements)

    def __reduce__(self):
        return (ArrayType, (self.elements,))


class StarArrayType(Type):
    """A simplified array type ``[T*]``: arrays whose elements all match ``T``.

    The body may be a union (the common case after ``collapse``) or the empty
    type, in which case only the empty array ``[]`` is admitted.
    """

    __slots__ = ("body",)

    kind = Kind.ARRAY

    def __init__(self, body: Type) -> None:
        if not isinstance(body, Type):
            raise InvalidTypeError(f"not a Type: {body!r}")
        self.body = body
        self._size = 1 + body.size
        self._has_positional = body._has_positional
        self._hash = hash(("star", body))

    __hash__ = Type.__hash__

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StarArrayType) and other.body == self.body

    def children(self) -> Iterator[Type]:
        return iter((self.body,))

    def __reduce__(self):
        return (StarArrayType, (self.body,))


class UnionType(Type):
    """A union type ``T1 + ... + Tn`` with ``n >= 2``.

    Members must be non-union, non-empty types and are stored sorted by kind.
    Fusion only ever builds *normal* unions (at most one member per kind);
    the constructor tolerates same-kind members so that intermediate,
    hand-written types remain expressible, but :mod:`repro.core.normal_form`
    can be used to check the invariant.

    Use :func:`make_union` rather than the raw constructor: it flattens
    nested unions, drops empty types and deduplicates members.
    """

    __slots__ = ("members",)

    kind = None

    def __init__(self, members: Iterable[Type]) -> None:
        flat = tuple(members)
        if len(flat) < 2:
            raise InvalidTypeError("a union needs at least two members")
        for member in flat:
            if isinstance(member, (UnionType, EmptyType)):
                raise InvalidTypeError(
                    "union members must be non-union, non-empty types; "
                    f"got {member!r} (use make_union to normalize)"
                )
            if not isinstance(member, Type):
                raise InvalidTypeError(f"not a Type: {member!r}")
        ordered = tuple(sorted(flat, key=lambda t: int(t.kind)))
        self.members = ordered
        self._size = 1 + sum(t.size for t in ordered)
        self._has_positional = any(t._has_positional for t in ordered)
        self._hash = hash(("union", ordered))

    __hash__ = Type.__hash__

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, UnionType)
            and other._hash == self._hash
            and other.members == self.members
        )

    def addends(self) -> tuple[Type, ...]:
        return self.members

    def children(self) -> Iterator[Type]:
        return iter(self.members)

    def __reduce__(self):
        return (UnionType, (self.members,))


def make_union(types: Iterable[Type]) -> Type:
    """Build a union from arbitrary types — the paper's ``(+)`` rebuilder.

    Nested unions are flattened, empty types dropped and duplicate members
    deduplicated.  Zero remaining members yield :data:`EMPTY`, one yields the
    member itself, several yield a :class:`UnionType`.

    >>> make_union([NUM, BOOL]) == make_union([BOOL, NUM])
    True
    >>> make_union([NUM]) is NUM
    True
    >>> make_union([]) == EMPTY
    True
    """
    seen: set[Type] = set()
    flat: list[Type] = []
    for t in types:
        for addend in t.addends():
            if addend not in seen:
                seen.add(addend)
                flat.append(addend)
    if not flat:
        return EMPTY
    if len(flat) == 1:
        return flat[0]
    return UnionType(flat)


def make_record(entries: dict[str, Type] | Iterable[tuple[str, Type]],
                optional: Iterable[str] = ()) -> RecordType:
    """Convenience record constructor from a mapping of keys to types.

    ``optional`` names the keys to mark with ``?``.

    >>> rt = make_record({"a": NUM, "b": STR}, optional=["b"])
    >>> rt.field("b").optional
    True
    """
    items = entries.items() if isinstance(entries, dict) else entries
    optional_set = set(optional)
    fields = [Field(name, t, optional=name in optional_set) for name, t in items]
    unknown = optional_set - {f.name for f in fields}
    if unknown:
        raise InvalidTypeError(f"optional keys not in record: {sorted(unknown)}")
    return RecordType(fields)


def make_array(*elements: Type) -> ArrayType:
    """Convenience positional-array constructor: ``make_array(NUM, STR)``."""
    return ArrayType(elements)


def make_star(body: Type) -> StarArrayType:
    """Convenience simplified-array constructor: ``make_star(NUM)`` is ``[Num*]``."""
    return StarArrayType(body)
