"""Export inferred types to standard JSON Schema documents.

The paper notes (Section 3) that its type language "can be seen as a core
part of the JSON Schema language" of Pezoa et al.; this module realises that
correspondence, so that schemas inferred by this library can be consumed by
any off-the-shelf JSON Schema validator:

=====================  =====================================================
Type                   JSON Schema
=====================  =====================================================
``Null``               ``{"type": "null"}``
``Bool``               ``{"type": "boolean"}``
``Num``                ``{"type": "number"}``
``Str``                ``{"type": "string"}``
record type            ``{"type": "object", "properties": ...,
                       "required": [mandatory keys],
                       "additionalProperties": false}``
``[T1, ..., Tn]``      ``{"type": "array", "prefixItems": [...],
                       "minItems": n, "maxItems": n}``
``[T*]``               ``{"type": "array", "items": ...}``
``T + U``              ``{"anyOf": [...]}``
``eps``                ``{"not": {}}`` (matches nothing)
=====================  =====================================================
"""

from __future__ import annotations

from typing import Any

from repro.core.kinds import Kind
from repro.core.types import (
    ArrayType,
    BasicType,
    EmptyType,
    RecordType,
    StarArrayType,
    Type,
    UnionType,
)

__all__ = ["to_json_schema"]

_BASIC_SCHEMA_TYPES = {
    Kind.NULL: "null",
    Kind.BOOL: "boolean",
    Kind.NUM: "number",
    Kind.STR: "string",
}

#: The dialect the exporter targets (prefixItems requires 2020-12).
SCHEMA_DIALECT = "https://json-schema.org/draft/2020-12/schema"


def _convert(t: Type) -> dict[str, Any]:
    if isinstance(t, BasicType):
        return {"type": _BASIC_SCHEMA_TYPES[t.kind]}
    if isinstance(t, EmptyType):
        return {"not": {}}
    if isinstance(t, RecordType):
        properties = {f.name: _convert(f.type) for f in t.fields}
        required = [f.name for f in t.fields if not f.optional]
        schema: dict[str, Any] = {
            "type": "object",
            "properties": properties,
            "additionalProperties": False,
        }
        if required:
            schema["required"] = required
        return schema
    if isinstance(t, ArrayType):
        n = len(t.elements)
        schema = {"type": "array", "minItems": n, "maxItems": n}
        if n:
            schema["prefixItems"] = [_convert(e) for e in t.elements]
        return schema
    if isinstance(t, StarArrayType):
        if isinstance(t.body, EmptyType):
            # [eps*] admits only the empty array.
            return {"type": "array", "maxItems": 0}
        return {"type": "array", "items": _convert(t.body)}
    if isinstance(t, UnionType):
        members = [_convert(m) for m in t.members]
        if all(set(m) == {"type"} for m in members):
            # Purely atomic unions compress to the multi-type shorthand.
            return {"type": [m["type"] for m in members]}
        return {"anyOf": members}
    raise TypeError(f"not a type: {t!r}")


def to_json_schema(t: Type, title: str | None = None) -> dict[str, Any]:
    """Convert ``t`` to a JSON Schema document (2020-12 dialect).

    >>> from repro.core.type_parser import parse_type
    >>> doc = to_json_schema(parse_type("{a: Num, b: Str?}"))
    >>> doc["required"]
    ['a']
    """
    schema = _convert(t)
    schema["$schema"] = SCHEMA_DIALECT
    if title is not None:
        schema["title"] = title
    return schema
