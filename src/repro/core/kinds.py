"""Type kinds, mirroring the ``kind`` function of the paper (Section 4).

The paper assigns a small integer *kind* to every non-union type::

    kind(null) = 0    kind(str)  = 3
    kind(bool) = 1    kind(rt)   = 4   (record types)
    kind(num)  = 2    kind(at) = kind(sat) = 5   (array types)

Kinds drive the ``KMatch`` / ``KUnmatch`` decomposition used by fusion: two
union addends are fused together if and only if they share a kind, and a
*normal* union contains at most one addend per kind — hence at most six
addends.
"""

from __future__ import annotations

from enum import IntEnum

__all__ = ["Kind", "N_KINDS"]


class Kind(IntEnum):
    """Integer kind of a non-union type, exactly as in the paper."""

    NULL = 0
    BOOL = 1
    NUM = 2
    STR = 3
    RECORD = 4
    ARRAY = 5

    @property
    def is_basic(self) -> bool:
        """True for the four atomic kinds (``kind < 4`` in the paper)."""
        return self < Kind.RECORD


#: Number of distinct kinds; a normal union has at most this many addends.
N_KINDS = len(Kind)
