"""A sound syntactic subtype checker for the paper's type language.

The paper defines subtyping semantically (Definition 4.1: ``T <: U`` iff
``[[T]] subseteq [[U]]``) and explicitly does *not* give an algorithm; it
only uses the notion to state the correctness of fusion (Theorem 5.2).  To
*test* that theorem mechanically we implement a syntax-directed checker that
is **sound** (``is_subtype(T, U)`` implies ``[[T]] subseteq [[U]]``) and
complete enough to verify every subtyping fact the fusion algorithm is
supposed to establish.

Rules (each is a straightforward consequence of the semantics):

* ``eps <: U`` always; ``T <: eps`` only for ``T = eps``.
* ``B <: B`` for equal basic types.
* ``T1 + ... + Tn <: U`` iff every ``Ti <: U``.
* ``T <: U1 + ... + Um`` (``T`` non-union) if ``T <: Ui`` for some ``i``.
* ``R1 <: R2`` iff every key of ``R1`` appears in ``R2`` with a supertype and
  compatible cardinality (an optional field cannot become mandatory), and
  every key of ``R2`` missing from ``R1`` is optional in ``R2``.
* ``[T1..Tn] <: [U1..Un]`` pointwise; ``[T1..Tn] <: [U*]`` iff every
  ``Ti <: U``; ``[T*] <: [U*]`` iff ``T <: U``; ``[T*] <: [U1..Un]`` only in
  the degenerate case ``[eps*] <: []``.
"""

from __future__ import annotations

from repro.core.types import (
    ArrayType,
    BasicType,
    EmptyType,
    RecordType,
    StarArrayType,
    Type,
    UnionType,
)

__all__ = ["is_subtype", "is_equivalent"]


def _record_subtype(r1: RecordType, r2: RecordType) -> bool:
    for field1 in r1.fields:
        field2 = r2.field(field1.name)
        if field2 is None:
            # r1's records may carry this key; r2's never do.
            return False
        if field1.optional and not field2.optional:
            # r1 admits records lacking the key; mandatory field2 does not.
            return False
        if not is_subtype(field1.type, field2.type):
            return False
    for field2 in r2.fields:
        if field2.name not in r1 and not field2.optional:
            # r1's records never carry this key, but r2 requires it.
            return False
    return True


def _array_subtype(t1: Type, t2: Type) -> bool:
    if isinstance(t1, ArrayType) and isinstance(t2, ArrayType):
        return len(t1.elements) == len(t2.elements) and all(
            is_subtype(a, b) for a, b in zip(t1.elements, t2.elements)
        )
    if isinstance(t1, ArrayType) and isinstance(t2, StarArrayType):
        return all(is_subtype(a, t2.body) for a in t1.elements)
    if isinstance(t1, StarArrayType) and isinstance(t2, StarArrayType):
        return is_subtype(t1.body, t2.body)
    if isinstance(t1, StarArrayType) and isinstance(t2, ArrayType):
        # [T*] always admits []; a positional type admits one length only.
        return isinstance(t1.body, EmptyType) and not t2.elements
    raise AssertionError("unreachable array combination")


def is_subtype(t1: Type, t2: Type) -> bool:
    """Soundly decide ``t1 <: t2`` (semantic inclusion, Definition 4.1).

    >>> from repro.core.type_parser import parse_type as p
    >>> is_subtype(p("{a: Num}"), p("{a: Num + Str, b: Bool?}"))
    True
    >>> is_subtype(p("{a: Num?}"), p("{a: Num}"))
    False
    """
    if isinstance(t1, EmptyType):
        return True
    if isinstance(t2, EmptyType):
        return False
    if isinstance(t1, UnionType):
        return all(is_subtype(m, t2) for m in t1.members)
    if isinstance(t2, UnionType):
        return any(is_subtype(t1, m) for m in t2.members)
    if isinstance(t1, BasicType):
        return isinstance(t2, BasicType) and t1.kind == t2.kind
    if isinstance(t1, RecordType):
        return isinstance(t2, RecordType) and _record_subtype(t1, t2)
    if isinstance(t1, (ArrayType, StarArrayType)):
        if not isinstance(t2, (ArrayType, StarArrayType)):
            return False
        return _array_subtype(t1, t2)
    raise TypeError(f"not a type: {t1!r}")


def is_equivalent(t1: Type, t2: Type) -> bool:
    """Mutual inclusion: ``t1 <: t2`` and ``t2 <: t1``.

    Weaker than ``==`` (e.g. ``[Num]`` and ``[Num]`` built differently are
    ``==``, while ``[eps*]`` and ``[]`` are equivalent but not equal).
    """
    return is_subtype(t1, t2) and is_subtype(t2, t1)
