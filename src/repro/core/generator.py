"""Type-directed value generation: sample values from ``[[T]]``.

The inverse of type inference: given a schema, produce random JSON values
that inhabit it.  Two uses in this repository:

* **Precision measurement** (:mod:`repro.analysis.precision`).  The paper's
  conclusions list "the relationship between precision and efficiency" as
  future work; sampling a fused schema and checking how many samples were
  actually possible under the original per-record types quantifies how much
  the schema over-approximates.
* **Test-data synthesis** — generating fixtures that a schema is guaranteed
  to admit.

Generation is seeded and deterministic.  Every generated value satisfies
``matches(value, t)`` (property-checked in the test suite).  The empty
type is uninhabited; sampling it raises :class:`ValueError`.
"""

from __future__ import annotations

from random import Random
from typing import Any

from repro.core.kinds import Kind
from repro.core.types import (
    ArrayType,
    BasicType,
    EmptyType,
    RecordType,
    StarArrayType,
    Type,
    UnionType,
)

__all__ = ["generate_value", "generate_values"]

_WORDS = ("alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta")


def _inhabited(t: Type) -> bool:
    """Conservatively decide whether ``[[t]]`` is non-empty.

    Only the empty type and unions of nothing are uninhabited in this
    language — ``[eps*]`` still admits ``[]`` and records with fields of
    uninhabited type admit nothing, so recurse through mandatory fields.
    """
    if isinstance(t, EmptyType):
        return False
    if isinstance(t, UnionType):
        return any(_inhabited(m) for m in t.members)
    if isinstance(t, RecordType):
        return all(_inhabited(f.type) for f in t.fields if not f.optional)
    if isinstance(t, ArrayType):
        return all(_inhabited(e) for e in t.elements)
    return True  # basic types and star arrays ([] always works)


def generate_value(t: Type, rng: Random, max_array_len: int = 3) -> Any:
    """Sample one value of ``t``.

    >>> from repro.core.type_parser import parse_type
    >>> from repro.core.semantics import matches
    >>> t = parse_type("{a: Num, b: Str?}")
    >>> matches(generate_value(t, Random(7)), t)
    True

    Raises ``ValueError`` if ``t`` is uninhabited.
    """
    if not _inhabited(t):
        raise ValueError(f"type is uninhabited: {t!s}")
    if isinstance(t, BasicType):
        if t.kind == Kind.NULL:
            return None
        if t.kind == Kind.BOOL:
            return rng.random() < 0.5
        if t.kind == Kind.NUM:
            if rng.random() < 0.5:
                return rng.randint(-1000, 1000)
            return round(rng.uniform(-1000, 1000), 3)
        return rng.choice(_WORDS)
    if isinstance(t, RecordType):
        out: dict[str, Any] = {}
        for field in t.fields:
            absent = field.optional and (
                not _inhabited(field.type) or rng.random() < 0.5
            )
            if not absent:
                out[field.name] = generate_value(field.type, rng, max_array_len)
        return out
    if isinstance(t, ArrayType):
        return [generate_value(e, rng, max_array_len) for e in t.elements]
    if isinstance(t, StarArrayType):
        if not _inhabited(t.body):
            return []
        length = rng.randint(0, max_array_len)
        return [
            generate_value(t.body, rng, max_array_len) for _ in range(length)
        ]
    if isinstance(t, UnionType):
        candidates = [m for m in t.members if _inhabited(m)]
        return generate_value(rng.choice(candidates), rng, max_array_len)
    raise TypeError(f"not a type: {t!r}")


def generate_values(t: Type, n: int, seed: int = 0,
                    max_array_len: int = 3) -> list[Any]:
    """Sample ``n`` values of ``t`` deterministically from ``seed``."""
    rng = Random(f"typegen:{seed}")
    return [generate_value(t, rng, max_array_len) for _ in range(n)]
