"""Helpers over JSON *values* represented as plain Python objects.

The paper's data model (Fig. 2) is mapped onto Python as follows:

=============  ==========================
JSON           Python
=============  ==========================
``null``       ``None``
``true/false`` ``bool``
number         ``int`` / ``float`` (finite)
string         ``str``
record         ``dict`` with ``str`` keys
array          ``list``
=============  ==========================

The data-model constraint of key uniqueness within records is automatic for
``dict`` objects; the :mod:`repro.jsonio` parser enforces it on JSON *text*
(where duplicates can appear) before a ``dict`` is ever built.
"""

from __future__ import annotations

import math
from typing import Any, Iterator

from repro.core.errors import InvalidValueError

__all__ = ["validate_value", "is_valid_value", "value_depth", "record_depth",
           "value_node_count", "iter_paths"]


def validate_value(value: Any, path: str = "$") -> None:
    """Raise :class:`InvalidValueError` unless ``value`` is a valid JSON value.

    ``path`` tracks the location of the offending sub-value for error
    messages (``$`` is the root, in JSONPath style).
    """
    if value is None or isinstance(value, (bool, str)):
        return
    if isinstance(value, (int, float)):
        if isinstance(value, float) and not math.isfinite(value):
            raise InvalidValueError(f"non-finite number at {path}: {value!r}")
        return
    if isinstance(value, dict):
        for key, sub in value.items():
            if not isinstance(key, str):
                raise InvalidValueError(f"non-string record key at {path}: {key!r}")
            validate_value(sub, f"{path}.{key}")
        return
    if isinstance(value, list):
        for index, sub in enumerate(value):
            validate_value(sub, f"{path}[{index}]")
        return
    raise InvalidValueError(f"not a JSON value at {path}: {type(value).__name__}")


def is_valid_value(value: Any) -> bool:
    """True if ``value`` is a valid JSON value (no exception variant)."""
    try:
        validate_value(value)
    except InvalidValueError:
        return False
    return True


def value_depth(value: Any) -> int:
    """Nesting depth of a value: atoms are 0, ``{"a": [1]}`` is 2.

    The paper characterises its datasets by maximum nesting depth (GitHub
    <= 4, Twitter <= 3, Wikidata <= 6, NYTimes <= 7); the dataset tests use
    this helper to pin those bounds on the synthetic generators.
    """
    if isinstance(value, dict):
        return 1 + max((value_depth(v) for v in value.values()), default=0)
    if isinstance(value, list):
        return 1 + max((value_depth(v) for v in value), default=0)
    return 0


def record_depth(value: Any) -> int:
    """Nesting depth counting *records only* (arrays are transparent).

    This is the convention under which the paper's per-dataset depth bounds
    read naturally: Twitter <= 3 even though its records hold arrays of
    records, because ``entities -> hashtags[] -> item`` is three record
    levels.

    >>> record_depth({"a": [{"b": 1}]})
    2
    """
    if isinstance(value, dict):
        return 1 + max((record_depth(v) for v in value.values()), default=0)
    if isinstance(value, list):
        return max((record_depth(v) for v in value), default=0)
    return 0


def value_node_count(value: Any) -> int:
    """Number of nodes in the value tree (records/arrays count as one node)."""
    if isinstance(value, dict):
        return 1 + sum(value_node_count(v) for v in value.values())
    if isinstance(value, list):
        return 1 + sum(value_node_count(v) for v in value)
    return 1


def iter_paths(value: Any, prefix: str = "$") -> Iterator[str]:
    """Yield every traversable path in a value, JSONPath-style.

    Arrays contribute a single ``[*]`` step (the paper's schema language is
    position-insensitive after simplification, so paths are too).

    >>> sorted(iter_paths({"a": {"b": 1}, "c": [2]}))
    ['$', '$.a', '$.a.b', '$.c', '$.c[*]']
    """
    yield prefix
    if isinstance(value, dict):
        for key, sub in value.items():
            yield from iter_paths(sub, f"{prefix}.{key}")
    elif isinstance(value, list):
        seen: set[str] = set()
        for sub in value:
            for path in iter_paths(sub, f"{prefix}[*]"):
                if path not in seen:
                    seen.add(path)
                    yield path
