"""Parser for the concrete type syntax produced by :mod:`repro.core.printer`.

Grammar (whitespace, including newlines, is insignificant between tokens)::

    type      := term ('+' term)*
    term      := basic | record | array | '(empty)' | '(' type ')'
    basic     := 'Null' | 'Bool' | 'Num' | 'Str'
    record    := '{' [field (',' field)*] '}'
    field     := key ':' term ['?']
    key       := identifier | string-literal
    array     := '[' ']'                          -- empty positional array
               | '[' type '*' ']'                 -- simplified array
               | '[' type (',' type)* ']'         -- positional array

Note the single grammar subtlety: inside ``[...]`` we parse a full union
``type`` and then decide, on seeing ``*``, whether it was a simplified array
body.  ``[Num + Str]`` is a one-element positional array of a union;
``[(Num + Str)*]`` and ``[Num + Str*]`` are both the simplified array.

String-literal keys support the escapes the printer emits: ``\\\\``,
``\\"``, ``\\n``, ``\\t``, ``\\r`` and ``\\uXXXX``; any other backslashed
character stands for itself.  The printer never leaves a raw control
character in its output, so a printed type always occupies exactly one
line.
"""

from __future__ import annotations

from repro.core.errors import TypeSyntaxError
from repro.core.types import (
    ArrayType,
    BOOL,
    EMPTY,
    Field,
    NULL,
    NUM,
    RecordType,
    STR,
    StarArrayType,
    Type,
    make_union,
)

__all__ = ["parse_type"]

_BASIC = {"Null": NULL, "Bool": BOOL, "Num": NUM, "Str": STR}


class _Parser:
    """Recursive-descent parser over a raw source string."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0

    # -- low-level helpers -------------------------------------------------

    def error(self, message: str) -> TypeSyntaxError:
        return TypeSyntaxError(message, self.pos)

    def skip_ws(self) -> None:
        while self.pos < len(self.source) and self.source[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        self.skip_ws()
        if self.pos >= len(self.source):
            return ""
        return self.source[self.pos]

    def eat(self, char: str) -> None:
        if self.peek() != char:
            raise self.error(f"expected {char!r}")
        self.pos += 1

    def try_eat(self, char: str) -> bool:
        if self.peek() == char:
            self.pos += 1
            return True
        return False

    def read_word(self) -> str:
        self.skip_ws()
        start = self.pos
        while self.pos < len(self.source):
            c = self.source[self.pos]
            if c.isalnum() or c in "_-$":
                self.pos += 1
            else:
                break
        if self.pos == start:
            raise self.error("expected an identifier")
        return self.source[start:self.pos]

    #: Escape sequences with a meaning beyond "the next char verbatim";
    #: mirrors the printer's key escapes so quoted keys round-trip.
    _ESCAPES = {"n": "\n", "t": "\t", "r": "\r"}

    def read_string(self) -> str:
        self.eat('"')
        out: list[str] = []
        while True:
            if self.pos >= len(self.source):
                raise self.error("unterminated string literal")
            c = self.source[self.pos]
            self.pos += 1
            if c == '"':
                return "".join(out)
            if c == "\\":
                if self.pos >= len(self.source):
                    raise self.error("unterminated escape")
                escaped = self.source[self.pos]
                self.pos += 1
                if escaped == "u":
                    digits = self.source[self.pos:self.pos + 4]
                    if len(digits) < 4 or any(
                        d not in "0123456789abcdefABCDEF" for d in digits
                    ):
                        raise self.error(
                            "\\u escape needs four hex digits"
                        )
                    out.append(chr(int(digits, 16)))
                    self.pos += 4
                else:
                    out.append(self._ESCAPES.get(escaped, escaped))
            else:
                out.append(c)

    # -- grammar rules -----------------------------------------------------

    def parse_type(self) -> Type:
        terms = [self.parse_term()]
        while self.try_eat("+"):
            terms.append(self.parse_term())
        if len(terms) == 1:
            return terms[0]
        return make_union(terms)

    def parse_term(self) -> Type:
        c = self.peek()
        if c == "{":
            return self.parse_record()
        if c == "[":
            return self.parse_array()
        if c == "(":
            # Either "(empty)" or a parenthesised type.
            saved = self.pos
            self.eat("(")
            if self.peek().isalpha():
                word_start = self.pos
                word = self.read_word()
                if word == "empty" and self.try_eat(")"):
                    return EMPTY
                self.pos = word_start
            inner = self.parse_type()
            self.eat(")")
            return inner
        if c.isalpha():
            word = self.read_word()
            if word in _BASIC:
                return _BASIC[word]
            raise self.error(f"unknown type name {word!r}")
        if c == "":
            raise self.error("unexpected end of input")
        # Restore a sensible error position for stray characters.
        self.skip_ws()
        raise self.error(f"unexpected character {c!r}")

    def parse_record(self) -> RecordType:
        self.eat("{")
        fields: list[Field] = []
        if self.try_eat("}"):
            return RecordType(fields)
        while True:
            fields.append(self.parse_field())
            if self.try_eat(","):
                continue
            self.eat("}")
            return RecordType(fields)

    def parse_field(self) -> Field:
        if self.peek() == '"':
            name = self.read_string()
        else:
            name = self.read_word()
        self.eat(":")
        # A full union is allowed without parentheses, as the paper writes
        # record types (e.g. "B: Num + Bool"); a trailing "?" marks the
        # whole field optional.
        t = self.parse_type()
        optional = self.try_eat("?")
        return Field(name, t, optional=optional)

    def parse_array(self) -> Type:
        self.eat("[")
        if self.try_eat("]"):
            return ArrayType(())
        elements = [self.parse_type()]
        if self.try_eat("*"):
            self.eat("]")
            return StarArrayType(elements[0])
        while self.try_eat(","):
            elements.append(self.parse_type())
        self.eat("]")
        return ArrayType(elements)


def parse_type(source: str) -> Type:
    """Parse a type from its concrete syntax.

    >>> from repro.core.printer import print_type
    >>> print_type(parse_type("{a: Num, b: (Str + Null)?}"))
    '{a: Num, b: (Null + Str)?}'

    Raises :class:`repro.core.errors.TypeSyntaxError` on malformed input or
    trailing garbage.
    """
    parser = _Parser(source)
    t = parser.parse_type()
    parser.skip_ws()
    if parser.pos != len(source):
        raise parser.error("trailing characters after type")
    return t
