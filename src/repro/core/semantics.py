"""Denotational semantics of types: the membership test ``value in [[T]]``.

Implements the semantic function of Section 4 as a decision procedure
:func:`matches`.  The equations, paraphrased:

* ``[[Null]] = {null}``, ``[[Bool]] = {true, false}``, ``[[Num]]`` = numbers,
  ``[[Str]]`` = strings.
* A record type admits records that (i) contain every mandatory field with a
  value in the field's type, (ii) may contain each optional field, again with
  a value in its type, and (iii) contain **no other** keys — record types are
  closed descriptions.
* A positional array type ``[T1, ..., Tn]`` admits exactly the length-``n``
  arrays whose ``i``-th element is in ``[[Ti]]``.
* A simplified array type ``[T*]`` admits arrays of any length all of whose
  elements are in ``[[T]]`` — including the empty array, even for ``[eps*]``
  (``S^0 = {[]}`` in the auxiliary functions of Section 4).
* ``[[T + U]] = [[T]] u [[U]]`` and ``[[eps]]`` is empty.

Membership is the ground truth against which the test suite checks both the
soundness of value typing (Lemma 5.1: ``infer_type(v)`` always admits ``v``)
and the correctness of fusion (Theorem 5.2, via preservation:
``matches(v, T1)`` implies ``matches(v, fuse(T1, T2))``).
"""

from __future__ import annotations

from typing import Any

from repro.core.kinds import Kind
from repro.core.types import (
    ArrayType,
    BasicType,
    EmptyType,
    RecordType,
    StarArrayType,
    Type,
    UnionType,
)

__all__ = ["matches"]


def _matches_basic(value: Any, kind: Kind) -> bool:
    if kind == Kind.NULL:
        return value is None
    if kind == Kind.BOOL:
        return isinstance(value, bool)
    if kind == Kind.NUM:
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if kind == Kind.STR:
        return isinstance(value, str)
    raise AssertionError(f"not a basic kind: {kind!r}")


def _matches_record(value: Any, t: RecordType) -> bool:
    if not isinstance(value, dict):
        return False
    for field in t.fields:
        if field.name in value:
            if not matches(value[field.name], field.type):
                return False
        elif not field.optional:
            return False
    # Closed-record semantics: keys outside the type are not admitted.
    for key in value:
        if key not in t:
            return False
    return True


def matches(value: Any, t: Type) -> bool:
    """Decide ``value in [[t]]``.

    >>> from repro.core.types import NUM, STR, make_record, make_star, make_union
    >>> matches(3, make_union([NUM, STR]))
    True
    >>> matches({"a": 1}, make_record({"a": NUM, "b": STR}, optional=["b"]))
    True
    >>> matches([], make_star(NUM))
    True
    """
    if isinstance(t, BasicType):
        return _matches_basic(value, t.kind)
    if isinstance(t, RecordType):
        return _matches_record(value, t)
    if isinstance(t, ArrayType):
        return (
            isinstance(value, list)
            and not isinstance(value, str)
            and len(value) == len(t.elements)
            and all(matches(v, u) for v, u in zip(value, t.elements))
        )
    if isinstance(t, StarArrayType):
        return isinstance(value, list) and all(matches(v, t.body) for v in value)
    if isinstance(t, UnionType):
        return any(matches(value, m) for m in t.members)
    if isinstance(t, EmptyType):
        return False
    raise TypeError(f"not a type: {t!r}")
