"""Human-readable concrete syntax for types, following the paper's notation.

Examples of the output syntax::

    Null  Bool  Num  Str                         basic types
    {a: Num, b: (Num + Bool), c: Str?}           record with an optional field
    [Num, Str]                                   positional array type
    [(Str + {E: Str, F: Num})*]                  simplified array type
    Num + Str                                    union
    (empty)                                      the empty type

The syntax is designed to round-trip through :mod:`repro.core.type_parser`:
``parse_type(print_type(t)) == t`` for every type ``t`` (a property the test
suite checks with hypothesis).
"""

from __future__ import annotations

from repro.core.types import (
    ArrayType,
    BasicType,
    EmptyType,
    RecordType,
    StarArrayType,
    Type,
    UnionType,
)

__all__ = ["print_type", "pretty_print"]

#: Printed form of the empty type.  Chosen to be ASCII-friendly.
EMPTY_SYMBOL = "(empty)"


#: Short escapes for the common control characters; everything else
#: below U+0020 prints as ``\uXXXX``.  Keeping printed types free of raw
#: control characters makes the output safe for line-oriented formats
#: (one type per line, e.g. a checkpoint's distinct-types file) and for
#: terminals.
_KEY_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n", "\t": "\\t",
                "\r": "\\r"}


def _key_syntax(name: str) -> str:
    """Quote a record key unless it is a bare identifier."""
    if name and all(c.isalnum() or c in "_-$" for c in name) and not name[0].isdigit():
        return name
    out = ['"']
    for c in name:
        escape = _KEY_ESCAPES.get(c)
        if escape is not None:
            out.append(escape)
        elif ord(c) < 0x20:
            out.append(f"\\u{ord(c):04x}")
        else:
            out.append(c)
    out.append('"')
    return "".join(out)


def print_type(t: Type) -> str:
    """Render ``t`` on a single line in the paper's concrete syntax."""
    if isinstance(t, BasicType):
        return t.name
    if isinstance(t, EmptyType):
        return EMPTY_SYMBOL
    if isinstance(t, RecordType):
        parts = []
        for field in t.fields:
            rendered = print_type(field.type)
            if isinstance(field.type, UnionType):
                rendered = f"({rendered})"
            mark = "?" if field.optional else ""
            parts.append(f"{_key_syntax(field.name)}: {rendered}{mark}")
        return "{" + ", ".join(parts) + "}"
    if isinstance(t, ArrayType):
        return "[" + ", ".join(print_type(e) for e in t.elements) + "]"
    if isinstance(t, StarArrayType):
        body = print_type(t.body)
        if isinstance(t.body, UnionType):
            return f"[({body})*]"
        return f"[{body}*]"
    if isinstance(t, UnionType):
        return " + ".join(print_type(m) for m in t.members)
    raise TypeError(f"not a type: {t!r}")


def pretty_print(t: Type, indent: int = 2, _level: int = 0) -> str:
    """Render ``t`` over multiple lines with indentation.

    Useful for large fused schemas; the single-line form of a Wikidata-style
    schema is unreadable.  The output is still valid input for the parser.
    """
    pad = " " * (indent * _level)
    inner = " " * (indent * (_level + 1))
    if isinstance(t, RecordType) and t.fields:
        lines = ["{"]
        for field in t.fields:
            rendered = pretty_print(field.type, indent, _level + 1)
            if isinstance(field.type, UnionType):
                rendered = f"({rendered})"
            mark = "?" if field.optional else ""
            lines.append(f"{inner}{_key_syntax(field.name)}: {rendered}{mark},")
        # Strip the trailing comma from the final field for parser friendliness.
        lines[-1] = lines[-1][:-1]
        lines.append(pad + "}")
        return "\n".join(lines)
    if isinstance(t, StarArrayType):
        body = pretty_print(t.body, indent, _level)
        if isinstance(t.body, UnionType):
            return f"[({body})*]"
        return f"[{body}*]"
    if isinstance(t, ArrayType) and t.elements:
        rendered = ", ".join(pretty_print(e, indent, _level) for e in t.elements)
        return f"[{rendered}]"
    if isinstance(t, UnionType):
        return " + ".join(pretty_print(m, indent, _level) for m in t.members)
    return print_type(t)
