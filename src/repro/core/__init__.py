"""Core type system: the JSON type language of the paper (Section 4).

Re-exports the pieces most callers need; the sub-modules hold the details:

* :mod:`repro.core.types` — the type AST and smart constructors.
* :mod:`repro.core.kinds` — the ``kind`` function.
* :mod:`repro.core.semantics` — membership ``value in [[T]]``.
* :mod:`repro.core.subtyping` — sound ``T <: U`` checking.
* :mod:`repro.core.normal_form` — the normal-type invariant.
* :mod:`repro.core.printer` / :mod:`repro.core.type_parser` — concrete syntax.
* :mod:`repro.core.json_schema` — export to standard JSON Schema.
* :mod:`repro.core.values` — JSON values as plain Python objects.
* :mod:`repro.core.generator` — type-directed random value generation.
* :mod:`repro.core.interning` — hash-consing pool for type trees.
"""

from repro.core.errors import (
    InvalidTypeError,
    InvalidValueError,
    NormalizationError,
    TypeSyntaxError,
    TypeSystemError,
)
from repro.core.generator import generate_value, generate_values
from repro.core.interning import TypeInterner
from repro.core.json_schema import to_json_schema
from repro.core.kinds import Kind
from repro.core.normal_form import check_normal, is_normal
from repro.core.printer import pretty_print, print_type
from repro.core.semantics import matches
from repro.core.subtyping import is_equivalent, is_subtype
from repro.core.type_parser import parse_type
from repro.core.types import (
    BOOL,
    EMPTY,
    NULL,
    NUM,
    STR,
    ArrayType,
    BasicType,
    EmptyType,
    Field,
    RecordType,
    StarArrayType,
    Type,
    UnionType,
    make_array,
    make_record,
    make_star,
    make_union,
)
from repro.core.values import (
    is_valid_value,
    iter_paths,
    validate_value,
    value_depth,
    value_node_count,
)

__all__ = [
    # types
    "Type", "BasicType", "RecordType", "Field", "ArrayType", "StarArrayType",
    "UnionType", "EmptyType", "NULL", "BOOL", "NUM", "STR", "EMPTY",
    "make_union", "make_record", "make_array", "make_star", "Kind",
    # operations
    "matches", "is_subtype", "is_equivalent", "is_normal", "check_normal",
    "print_type", "pretty_print", "parse_type", "to_json_schema",
    # values
    "validate_value", "is_valid_value", "value_depth", "value_node_count",
    "iter_paths",
    # generation & interning
    "generate_value", "generate_values", "TypeInterner",
    # errors
    "TypeSystemError", "InvalidTypeError", "InvalidValueError",
    "TypeSyntaxError", "NormalizationError",
]
