"""Exception hierarchy for the core type system.

All exceptions raised by :mod:`repro.core` derive from :class:`TypeSystemError`
so that callers can catch everything coming out of the type layer with a
single ``except`` clause while still being able to discriminate finer causes.
"""

from __future__ import annotations

__all__ = [
    "TypeSystemError",
    "InvalidTypeError",
    "InvalidValueError",
    "TypeSyntaxError",
    "NormalizationError",
]


class TypeSystemError(Exception):
    """Base class for every error raised by the core type system."""


class InvalidTypeError(TypeSystemError):
    """A type was constructed or combined in a way the language forbids.

    Examples: a record type with duplicate keys, a union with fewer than two
    members, a union member that is itself a union.
    """


class InvalidValueError(TypeSystemError):
    """A Python object is not a valid JSON value for the paper's data model.

    The data model (paper Fig. 2) admits ``null``, booleans, numbers, strings,
    records with string keys, and arrays.  Anything else (tuples, sets, bytes,
    non-string keys, NaN/Infinity) is rejected.
    """


class TypeSyntaxError(TypeSystemError):
    """The concrete type syntax could not be parsed.

    Carries the offset of the offending character to aid debugging.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class NormalizationError(TypeSystemError):
    """A type violates the normal-form invariant required by fusion.

    A *normal* type (paper Section 5.2) is one where every union contains at
    most one addend of each kind.  Fusion assumes and preserves this
    invariant; feeding it a non-normal type raises this error.
    """
