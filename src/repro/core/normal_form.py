"""The *normal type* invariant of Section 5.2.

A type is **normal** when every union occurring in it contains at most one
addend of each kind (hence at most six addends), addends are themselves
non-union and non-empty, and the property holds recursively under records
and arrays.  All fusion algorithms assume normal inputs and are proven to
produce normal outputs; this module provides the runtime check used by the
property-based tests ("fusion preserves normality") and by defensive
assertions in the pipeline.
"""

from __future__ import annotations

from repro.core.errors import NormalizationError
from repro.core.kinds import Kind
from repro.core.types import (
    ArrayType,
    BasicType,
    EmptyType,
    RecordType,
    StarArrayType,
    Type,
    UnionType,
)

__all__ = ["is_normal", "check_normal"]


def is_normal(t: Type) -> bool:
    """True iff ``t`` satisfies the normal-type invariant."""
    try:
        check_normal(t)
    except NormalizationError:
        return False
    return True


def check_normal(t: Type, _path: str = "$") -> None:
    """Raise :class:`NormalizationError` at the first violation, with a path.

    >>> from repro.core.types import NUM, UnionType, make_star
    >>> check_normal(make_star(NUM))
    >>> is_normal(UnionType([NUM, NUM]))
    False
    """
    if isinstance(t, (BasicType, EmptyType)):
        return
    if isinstance(t, UnionType):
        kinds_seen: set[Kind] = set()
        for member in t.members:
            # UnionType's constructor already bans nested unions and eps.
            if member.kind in kinds_seen:
                raise NormalizationError(
                    f"kind {member.kind.name} occurs twice in union at {_path}"
                )
            kinds_seen.add(member.kind)
            check_normal(member, _path)
        return
    if isinstance(t, RecordType):
        for field in t.fields:
            check_normal(field.type, f"{_path}.{field.name}")
        return
    if isinstance(t, ArrayType):
        for index, element in enumerate(t.elements):
            check_normal(element, f"{_path}[{index}]")
        return
    if isinstance(t, StarArrayType):
        check_normal(t.body, f"{_path}[*]")
        return
    raise TypeError(f"not a type: {t!r}")
