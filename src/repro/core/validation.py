"""Explaining *why* a value fails a schema: validation with error paths.

:func:`repro.core.semantics.matches` answers yes/no; production pipelines
need the *where* and *why* — which record failed, at which path, expecting
what.  :func:`validate` returns a list of :class:`Violation` entries, empty
iff the value matches, and is consistent with ``matches`` by construction
(property-checked in the test suite).

For union types the report explains the *best* alternative — the one with
the fewest violations — rather than dumping every alternative's failures,
which keeps reports readable when a schema has accumulated many variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.kinds import Kind
from repro.core.printer import print_type
from repro.core.types import (
    ArrayType,
    BasicType,
    EmptyType,
    RecordType,
    StarArrayType,
    Type,
    UnionType,
)

__all__ = ["Violation", "validate"]


@dataclass(frozen=True)
class Violation:
    """One reason a value does not inhabit a type."""

    path: str
    expected: str
    found: str

    def __str__(self) -> str:
        return f"{self.path}: expected {self.expected}, found {self.found}"


def _describe(value: Any) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return f"the boolean {str(value).lower()}"
    if isinstance(value, (int, float)):
        return f"the number {value!r}"
    if isinstance(value, str):
        shown = value if len(value) <= 20 else value[:17] + "..."
        return f"the string {shown!r}"
    if isinstance(value, dict):
        return f"a record with keys {sorted(value)!r}"
    if isinstance(value, list):
        return f"an array of {len(value)} element(s)"
    return f"a {type(value).__name__}"


def validate(value: Any, t: Type, path: str = "$") -> list[Violation]:
    """Collect every violation of ``t`` by ``value``.

    >>> from repro.core.type_parser import parse_type
    >>> schema = parse_type("{a: Num, b: Str}")
    >>> for v in validate({"a": "x", "c": 1}, schema):
    ...     print(v)
    $.a: expected Num, found the string 'x'
    $.b: expected a mandatory field, found nothing
    $.c: expected no such key, found the number 1
    """
    out: list[Violation] = []
    _validate(value, t, path, out)
    return out


def _validate(value: Any, t: Type, path: str, out: list[Violation]) -> None:
    if isinstance(t, BasicType):
        if not _matches_basic(value, t.kind):
            out.append(Violation(path, t.name, _describe(value)))
    elif isinstance(t, EmptyType):
        out.append(Violation(path, "nothing (the empty type)",
                             _describe(value)))
    elif isinstance(t, RecordType):
        _validate_record(value, t, path, out)
    elif isinstance(t, ArrayType):
        _validate_positional(value, t, path, out)
    elif isinstance(t, StarArrayType):
        if not isinstance(value, list):
            out.append(Violation(path, print_type(t), _describe(value)))
        else:
            for index, item in enumerate(value):
                _validate(item, t.body, f"{path}[{index}]", out)
    elif isinstance(t, UnionType):
        _validate_union(value, t, path, out)
    else:
        raise TypeError(f"not a type: {t!r}")


def _matches_basic(value: Any, kind: Kind) -> bool:
    if kind == Kind.NULL:
        return value is None
    if kind == Kind.BOOL:
        return isinstance(value, bool)
    if kind == Kind.NUM:
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    return isinstance(value, str)


def _validate_record(value: Any, t: RecordType, path: str,
                     out: list[Violation]) -> None:
    if not isinstance(value, dict):
        out.append(Violation(path, print_type(t), _describe(value)))
        return
    for field in t.fields:
        sub_path = f"{path}.{field.name}"
        if field.name in value:
            _validate(value[field.name], field.type, sub_path, out)
        elif not field.optional:
            out.append(Violation(sub_path, "a mandatory field", "nothing"))
    for key in value:
        if key not in t:
            out.append(Violation(
                f"{path}.{key}", "no such key", _describe(value[key])
            ))


def _validate_positional(value: Any, t: ArrayType, path: str,
                         out: list[Violation]) -> None:
    if not isinstance(value, list):
        out.append(Violation(path, print_type(t), _describe(value)))
        return
    if len(value) != len(t.elements):
        out.append(Violation(
            path,
            f"an array of exactly {len(t.elements)} element(s)",
            _describe(value),
        ))
        return
    for index, (item, expected) in enumerate(zip(value, t.elements)):
        _validate(item, expected, f"{path}[{index}]", out)


def _value_kind(value: Any) -> Kind | None:
    if value is None:
        return Kind.NULL
    if isinstance(value, bool):
        return Kind.BOOL
    if isinstance(value, (int, float)):
        return Kind.NUM
    if isinstance(value, str):
        return Kind.STR
    if isinstance(value, dict):
        return Kind.RECORD
    if isinstance(value, list):
        return Kind.ARRAY
    return None


def _validate_union(value: Any, t: UnionType, path: str,
                    out: list[Violation]) -> None:
    kind = _value_kind(value)
    best: list[Violation] | None = None
    best_score: tuple[int, int] | None = None
    for member in t.members:
        attempt: list[Violation] = []
        _validate(value, member, path, attempt)
        if not attempt:
            return  # one alternative matches: no violation at all
        # Prefer the alternative of the value's own kind — "your record is
        # missing b" beats "this is not a number" — then fewest violations.
        score = (0 if member.kind == kind else 1, len(attempt))
        if best_score is None or score < best_score:
            best, best_score = attempt, score
    assert best is not None  # a union has at least two members
    out.extend(best)
