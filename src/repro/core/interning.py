"""Hash-consing for types: share structurally equal subtrees.

Typing a million homogeneous records produces a million structurally equal
type trees.  Equality and hashing are already O(1)-amortised (hashes are
cached), but memory is not: each tree is a separate object graph.  A
:class:`TypeInterner` rebuilds types bottom-up through a pool so that equal
subtrees become the *same* object — after interning, a dataset's types form
a DAG whose size is the number of distinct subtrees.

This is the "type interning on/off" ablation of DESIGN.md: interning costs
one pool lookup per node at creation and repays it with near-deduplicated
memory and pointer-equality fast paths downstream.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.types import (
    ArrayType,
    EmptyType,
    Field,
    RecordType,
    StarArrayType,
    Type,
    UnionType,
)

__all__ = ["TypeInterner"]


class TypeInterner:
    """A pool mapping each distinct type to one canonical instance.

    >>> from repro.inference import infer_type
    >>> interner = TypeInterner()
    >>> a = interner.intern(infer_type({"x": 1}))
    >>> b = interner.intern(infer_type({"x": 2}))
    >>> a is b
    True
    """

    def __init__(self) -> None:
        self._pool: dict[Type, Type] = {}
        self._field_pool: dict[Field, Field] = {}
        # (name, id(canonical type), optional) -> canonical Field; lets
        # :meth:`field` skip Field construction and structural hashing on
        # repeats.  Sound because the pool keeps canonical types alive, so
        # the id cannot be recycled.
        self._field_cache: dict[tuple[str, int, bool], Field] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        """Number of distinct type nodes in the pool."""
        return len(self._pool)

    def _canon(self, t: Type) -> Type:
        found = self._pool.get(t)
        if found is not None:
            self.hits += 1
            return found
        self.misses += 1
        self._pool[t] = t
        return t

    def _intern_field(self, field: Field, field_type: Type) -> Field:
        if field_type is not field.type:
            field = Field(field.name, field_type, field.optional)
        found = self._field_pool.get(field)
        if found is not None:
            return found
        self._field_pool[field] = field
        return field

    def field(self, name: str, type: Type, optional: bool = False) -> Field:
        """Canonical :class:`Field` for ``(name, type, optional)``.

        ``type`` must already be canonical (interned); callers building
        types bottom-up — like the streaming kernel — use this so that
        record types are constructed from pooled fields and the record
        pool lookup compares field tuples by pointer equality.
        """
        key = (name, id(type), optional)
        found = self._field_cache.get(key)
        if found is not None:
            return found
        field = Field(name, type, optional)
        canonical = self._field_pool.get(field)
        if canonical is None:
            self._field_pool[field] = canonical = field
        self._field_cache[key] = canonical
        return canonical

    def intern_node(self, t: Type) -> Type:
        """Canonicalize one node whose children are *already* canonical.

        The streaming kernel and the fusion memo build types bottom-up
        from pooled children, so the recursive rebuild of :meth:`intern`
        is pure overhead for them: one pool lookup decides canonicity of
        the whole node.  Callers must guarantee every child (field types,
        array elements, union members, star bodies) came out of this
        interner — handing over a node with foreign children would pool a
        type whose subtrees are not shared.
        """
        found = self._pool.get(t)
        if found is not None:
            self.hits += 1
            return found
        self.misses += 1
        self._pool[t] = t
        return t

    def intern(self, t: Type) -> Type:
        """Return the canonical instance of ``t``, pooling every subtree."""
        # Fast path: the exact node is already canonical.
        found = self._pool.get(t)
        if found is not None:
            self.hits += 1
            return found

        if isinstance(t, RecordType):
            fields = tuple(
                self._intern_field(f, self.intern(f.type)) for f in t.fields
            )
            rebuilt = t if all(a is b for a, b in zip(fields, t.fields)) \
                else RecordType(fields)
            return self._canon(rebuilt)
        if isinstance(t, ArrayType):
            elements = tuple(self.intern(e) for e in t.elements)
            rebuilt = t if all(a is b for a, b in zip(elements, t.elements)) \
                else ArrayType(elements)
            return self._canon(rebuilt)
        if isinstance(t, StarArrayType):
            body = self.intern(t.body)
            rebuilt = t if body is t.body else StarArrayType(body)
            return self._canon(rebuilt)
        if isinstance(t, UnionType):
            members = tuple(self.intern(m) for m in t.members)
            rebuilt = t if all(a is b for a, b in zip(members, t.members)) \
                else UnionType(members)
            return self._canon(rebuilt)
        # Basic and empty types.
        return self._canon(t)

    def intern_all(self, types: Iterable[Type]) -> list[Type]:
        """Intern a whole collection, preserving order."""
        return [self.intern(t) for t in types]

    @property
    def hit_rate(self) -> float:
        """Fraction of intern lookups served from the pool."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
