"""Command-line interface: ``python -m repro`` / ``json-schema-infer``.

Sub-commands::

    infer FILE            infer and print the fused schema of an NDJSON file
    merge A B... -o C     union schema checkpoints (cross-shard merge)
    stats FILE            print a Tables 2-5 style succinctness report
    statistics SOURCE     per-path value statistics (counts, ranges,
                          distinct estimates) from a file or checkpoint
    generate NAME N OUT   write a synthetic dataset as NDJSON
    paths FILE            list every schema path with its optionality
    check-path FILE PATH  resolve a query path against the inferred schema
    diff OLD NEW          structural diff of two files' inferred schemas
    project FILE PATH...  prune records down to the given paths
    validate FILE         check records against a schema, reporting paths
    report FILE           full Markdown audit report for a feed
    fsck PATH...          classify checkpoint/journal health (see docs)

Run any sub-command with ``-h`` for its options.

Exit codes: ``0`` success, ``1`` failure, ``2`` usage error, and
``EXIT_RESUMABLE`` (75, after ``EX_TEMPFAIL``) when a journaled ``infer``
run was interrupted (Ctrl-C/SIGTERM) after draining in-flight work — the
journal holds every completed partition and ``infer --resume`` finishes
the run.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.diff import diff_schemas
from repro.analysis.paths import iter_schema_paths, resolve_path
from repro.analysis.projection import ProjectionError, Projector
from repro.analysis.report import build_report
from repro.analysis.stats import SUCCINCTNESS_HEADERS, succinctness_row
from repro.analysis.tables import render_table
from repro.core.json_schema import to_json_schema
from repro.core.printer import pretty_print, print_type
from repro.core.type_parser import parse_type
from repro.core.validation import validate
from repro.datasets.base import DATASET_NAMES, write_dataset
from repro.inference.pipeline import (
    infer_ndjson_file,
    infer_schema,
    run_inference,
)
from repro.jsonio.ndjson import read_ndjson
from repro.jsonio.writer import dumps

__all__ = ["EXIT_RESUMABLE", "main", "build_parser"]

#: Exit code for "interrupted but resumable": the run drained and
#: journaled its in-flight tasks before exiting, so ``infer --resume``
#: will finish it.  75 after BSD ``EX_TEMPFAIL`` ("try again"), and
#: distinct from 0/1/2 and the engine's crash/kill codes.
EXIT_RESUMABLE = 75


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="json-schema-infer",
        description="Schema inference for massive JSON datasets (EDBT 2017).",
    )
    from repro import __version__
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {__version__}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_infer = sub.add_parser("infer", help="infer the schema of an NDJSON file")
    p_infer.add_argument("file", help="path to a newline-delimited JSON file")
    p_infer.add_argument(
        "--pretty", action="store_true",
        help="multi-line, indented schema output",
    )
    p_infer.add_argument(
        "--json-schema", action="store_true",
        help="emit a standard JSON Schema document instead of type syntax",
    )
    p_infer.add_argument(
        "--skip-invalid", action="store_true",
        help="silently drop lines that fail to parse",
    )
    p_infer.add_argument(
        "--permissive", action="store_true",
        help="quarantine malformed lines instead of failing, and report "
             "the skip count on stderr",
    )
    p_infer.add_argument(
        "--bad-records", metavar="PATH", default=None,
        help="with --permissive: spill quarantined lines to this NDJSON "
             "sidecar (line number, error, raw text)",
    )
    p_infer.add_argument(
        "--max-error-rate", type=float, metavar="RATE", default=None,
        help="abort (exit 1) if more than this fraction of records is "
             "malformed, e.g. 0.01 for 1%%",
    )
    p_infer.add_argument(
        "--parse-lane", choices=["auto", "fast", "bytes", "strict"],
        default="auto",
        help="map-phase parser: 'fast' types records during parsing and "
             "falls back to the strict parser only on errors, 'bytes' "
             "mmap-scans raw line bytes and types whole batches in one "
             "C decode with a duplicate-line type cache (same fallback, "
             "identical results), 'strict' always uses the diagnostic "
             "parser, 'auto' picks fast (default: auto)",
    )
    p_infer.add_argument(
        "--timings", action="store_true",
        help="collect and print per-phase map timings (parse/type/fuse, "
             "records/s) on stderr; off by default to keep the map loop "
             "free of per-record clock reads",
    )
    p_infer.add_argument(
        "--split-mode", choices=["auto", "bytes", "lines"], default="auto",
        help="input ingestion model: 'bytes' ships byte-range split "
             "descriptors and workers read the file themselves (zero-copy "
             "driver), 'lines' reads and distributes lines at the driver, "
             "'auto' picks bytes when --parallel is set (default: auto)",
    )
    p_infer.add_argument(
        "--min-split-mb", type=float, metavar="MB", default=None,
        help="with --split-mode bytes/auto: smallest byte-range split to "
             "plan, in MiB (default: 1)",
    )
    p_infer.add_argument(
        "--checkpoint", metavar="DIR", default=None,
        help="persist the inferred summary (schema, counts, distinct "
             "types, source fingerprints) as a checkpoint directory "
             "after the run",
    )
    p_infer.add_argument(
        "--update", action="store_true",
        help="with --checkpoint: fuse the stored summary with the new "
             "file instead of inferring from scratch (merge-on-update; "
             "a missing checkpoint directory starts cold)",
    )
    p_infer.add_argument(
        "--parallel", "--workers", type=int, metavar="N", default=None,
        dest="parallel",
        help="run typing+fusion on the engine with N-way parallelism "
             "(0 = one worker per available CPU; --workers is an alias)",
    )
    p_infer.add_argument(
        "--backend", choices=["thread", "process"], default="thread",
        help="engine worker pool for --parallel: threads share memory, "
             "processes give CPU-bound work true parallelism (default: "
             "thread)",
    )
    p_infer.add_argument(
        "--batch-size", type=int, metavar="N", default=None,
        help="partitions folded worker-locally per scheduler task; 1 "
             "disables batching (default: auto — batch only when "
             "partitions far outnumber workers)",
    )
    p_infer.add_argument(
        "--no-warm", action="store_true",
        help="do not keep per-worker kernel state (type interner, fusion "
             "memo, key cache) warm across tasks and jobs",
    )
    p_infer.add_argument(
        "--wire-format", choices=["auto", "on", "off"], default="auto",
        help="compact flat-table encoding for task-result summaries; "
             "'auto' enables it on the process backend where results "
             "cross the IPC boundary (default: auto)",
    )
    p_infer.add_argument(
        "--journal", metavar="PATH", default=None,
        help="write-ahead run journal: record the task plan up front and "
             "each completed partition summary durably, so a crashed or "
             "interrupted run can be finished with --resume (Ctrl-C "
             "drains in-flight tasks and exits with code 75)",
    )
    p_infer.add_argument(
        "--resume", action="store_true",
        help="with --journal: replay the journal's completed summaries "
             "and execute only the remaining tasks; the result is "
             "byte-identical to an uninterrupted run (requires the same "
             "input file and flags as the original run)",
    )
    p_infer.add_argument(
        "--summary-cache", metavar="DIR", default=None,
        help="cross-run content-addressed partition-summary cache: probe "
             "each planned partition's content digest before dispatch and "
             "replay hits instead of re-typing their bytes, so a re-run "
             "over unchanged (or append-mostly) data does map work "
             "proportional to the delta; results are byte-identical to "
             "an uncached run",
    )
    p_infer.add_argument(
        "--cache-mode", choices=["off", "read", "readwrite"],
        default="readwrite",
        help="with --summary-cache: 'readwrite' probes and stores "
             "(default), 'read' only probes (shared read-only cache), "
             "'off' ignores the cache entirely",
    )
    p_infer.add_argument(
        "--stats", choices=["off", "basic", "sketches"], default="off",
        dest="stats_mode",
        help="enrich the run with mergeable per-path statistics "
             "(presence/kind counts, numeric and length ranges; "
             "'sketches' adds HyperLogLog distinct estimates and Bloom "
             "membership filters); they ride summaries, checkpoints and "
             "incremental updates, the schema itself is unchanged, and "
             "'off' (default) costs nothing",
    )
    p_infer.add_argument(
        "--max-retries", type=int, metavar="N", default=3,
        help="retries per partition task for transient failures "
             "(default: 3)",
    )
    p_infer.add_argument(
        "--task-timeout", type=float, metavar="SECONDS", default=None,
        help="abandon and retry a partition task exceeding this wall-clock "
             "budget (default: unlimited)",
    )

    p_merge = sub.add_parser(
        "merge",
        help="union schema checkpoints into one (cross-shard merge)",
    )
    p_merge.add_argument(
        "checkpoints", nargs="+",
        help="checkpoint directories to merge (any order — the result "
             "is the same by associativity)",
    )
    p_merge.add_argument(
        "-o", "--out", required=True, metavar="DIR",
        help="directory to write the merged checkpoint to",
    )
    p_merge.add_argument(
        "--pretty", action="store_true",
        help="multi-line, indented schema output",
    )
    p_merge.add_argument(
        "--parallel", type=int, metavar="N", default=None,
        help="load and merge the checkpoints on the engine with N-way "
             "parallelism",
    )

    p_stats = sub.add_parser(
        "stats", help="succinctness statistics (Tables 2-5 columns)"
    )
    p_stats.add_argument("file")
    p_stats.add_argument("--skip-invalid", action="store_true")

    p_statistics = sub.add_parser(
        "statistics",
        help="per-path value statistics report (counts, kind frequencies, "
             "ranges, distinct estimates)",
    )
    p_statistics.add_argument(
        "source",
        help="an NDJSON file to analyse, or a checkpoint directory saved "
             "by 'infer --stats ... --checkpoint DIR' (the report then "
             "needs no access to the original data)",
    )
    p_statistics.add_argument(
        "--stats", choices=["basic", "sketches"], default="sketches",
        dest="stats_mode",
        help="statistics depth when analysing a file (default: sketches; "
             "ignored for checkpoints, which carry their saved mode)",
    )
    p_statistics.add_argument("--skip-invalid", action="store_true")
    p_statistics.add_argument(
        "--max-paths", type=int, metavar="N", default=200,
        help="largest number of path rows to print (default: 200)",
    )

    p_gen = sub.add_parser("generate", help="write a synthetic dataset")
    p_gen.add_argument("dataset", choices=sorted(DATASET_NAMES))
    p_gen.add_argument("n", type=int, help="number of records")
    p_gen.add_argument("out", help="output NDJSON path")
    p_gen.add_argument("--seed", type=int, default=0)

    p_paths = sub.add_parser(
        "paths", help="list every schema path with its optionality"
    )
    p_paths.add_argument("file")
    p_paths.add_argument("--skip-invalid", action="store_true")

    p_check = sub.add_parser(
        "check-path", help="resolve a query path against the schema"
    )
    p_check.add_argument("file")
    p_check.add_argument("path", help="dotted path, e.g. user.name or tags[*]")
    p_check.add_argument("--skip-invalid", action="store_true")

    p_diff = sub.add_parser(
        "diff", help="structural diff of two files' inferred schemas"
    )
    p_diff.add_argument("old", help="NDJSON file with the old data")
    p_diff.add_argument("new", help="NDJSON file with the new data")
    p_diff.add_argument("--skip-invalid", action="store_true")

    p_project = sub.add_parser(
        "project", help="prune records down to the given paths"
    )
    p_project.add_argument("file")
    p_project.add_argument("paths", nargs="+",
                           help="paths to keep, e.g. user.name tags[*].text")
    p_project.add_argument("--skip-invalid", action="store_true")

    p_validate = sub.add_parser(
        "validate",
        help="check every record against a schema, reporting violations",
    )
    p_validate.add_argument("file")
    group = p_validate.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--schema", help="schema in type syntax, e.g. '{a: Num, b: Str?}'"
    )
    group.add_argument(
        "--schema-file", help="file containing the schema in type syntax"
    )
    p_validate.add_argument("--skip-invalid", action="store_true")
    p_validate.add_argument(
        "--max-reports", type=int, default=20,
        help="stop printing after this many violating records (default 20)",
    )

    p_report = sub.add_parser(
        "report", help="full Markdown audit report for an NDJSON feed"
    )
    p_report.add_argument("file")
    p_report.add_argument("--name", default=None,
                          help="dataset name for the report title")
    p_report.add_argument("--skip-invalid", action="store_true")

    p_fsck = sub.add_parser(
        "fsck",
        help="check the health of checkpoint directories and run journals",
    )
    p_fsck.add_argument(
        "paths", nargs="+",
        help="checkpoint directories and/or run-journal files to inspect",
    )
    p_fsck.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit one JSON report object per path instead of text",
    )

    return parser


class _GracefulStop:
    """SIGINT/SIGTERM → drain-and-journal instead of dying mid-write.

    Installed only around journaled runs: the first signal sets the
    scheduler's stop event (queued tasks are cancelled, in-flight tasks
    drain and journal); a second signal falls back to Python's default
    handling so a wedged run can still be killed interactively.
    """

    def __init__(self) -> None:
        import threading

        self.event = threading.Event()
        self._previous: dict[int, object] = {}

    def _handle(self, signum, frame) -> None:
        if self.event.is_set():
            # Second signal: restore the previous handlers and abort so
            # the user can still force an exit out of a wedged drain.
            self.__exit__(None, None, None)
            raise KeyboardInterrupt
        print(
            "interrupted: draining in-flight tasks (press again to force)",
            file=sys.stderr,
        )
        self.event.set()

    def __enter__(self) -> "_GracefulStop":
        import signal

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                self._previous[signum] = signal.signal(signum, self._handle)
            except (ValueError, OSError):  # pragma: no cover - non-main thread
                pass
        return self

    def __exit__(self, *exc_info) -> None:
        import signal

        while self._previous:
            signum, previous = self._previous.popitem()
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):  # pragma: no cover
                pass


def _cmd_infer(args: argparse.Namespace) -> int:
    from contextlib import nullcontext

    from repro.engine import Context, RetryPolicy, available_parallelism
    from repro.inference.pipeline import ResumableInterrupt
    from repro.jsonio.errors import ErrorRateExceeded
    from repro.jsonio.splits import DEFAULT_MIN_SPLIT_BYTES
    from repro.store import checkpoint_exists
    from repro.store.journal import JournalError

    if args.update and not args.checkpoint:
        print("error: --update requires --checkpoint DIR", file=sys.stderr)
        return 2
    if args.resume and not args.journal:
        print("error: --resume requires --journal PATH", file=sys.stderr)
        return 2
    update_from = None
    if args.update and checkpoint_exists(args.checkpoint):
        update_from = args.checkpoint

    policy = RetryPolicy(
        max_retries=args.max_retries, task_timeout_s=args.task_timeout
    )
    permissive = args.permissive or args.skip_invalid
    kwargs = dict(
        permissive=permissive,
        bad_records_path=args.bad_records,
        max_error_rate=args.max_error_rate,
        parse_lane=args.parse_lane,
        collect_timings=args.timings,
        split_mode=args.split_mode,
        min_split_bytes=(
            int(args.min_split_mb * (1 << 20))
            if args.min_split_mb is not None else DEFAULT_MIN_SPLIT_BYTES
        ),
        update_from=update_from,
        checkpoint_to=args.checkpoint,
        batch_size=args.batch_size,
        wire_format=args.wire_format,
        journal_path=args.journal,
        resume=args.resume,
        summary_cache=args.summary_cache,
        cache_mode=args.cache_mode,
        stats_mode=args.stats_mode,
    )
    stats = None
    stop = _GracefulStop() if args.journal else nullcontext()
    try:
        with stop:
            if args.journal:
                kwargs["stop_event"] = stop.event
            if args.parallel is not None:
                # --parallel 0 means "size the pool to this machine".
                workers = args.parallel or available_parallelism()
                with Context(parallelism=workers, backend=args.backend,
                             retry_policy=policy,
                             warm=not args.no_warm) as ctx:
                    stats = ctx.scheduler.stats
                    run = infer_ndjson_file(
                        args.file, context=ctx,
                        num_partitions=workers * 2, **kwargs,
                    )
            else:
                run = infer_ndjson_file(args.file, **kwargs)
    except ErrorRateExceeded as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ResumableInterrupt as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        return EXIT_RESUMABLE
    except JournalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    schema = run.schema
    if args.json_schema:
        print(dumps(to_json_schema(schema, title=args.file)))
    elif args.pretty:
        print(pretty_print(schema))
    else:
        print(print_type(schema))
    if args.permissive and run.skipped_count:
        print(run.skip_summary(), file=sys.stderr)
    if args.checkpoint:
        reused = (f" ({run.checkpoint_record_count:,} reused from "
                  f"the previous checkpoint)" if update_from else "")
        print(
            f"checkpoint: {run.record_count:,} records -> "
            f"{args.checkpoint}{reused}",
            file=sys.stderr,
        )
    if args.timings:
        detail = (f" ({run.phase_timings.describe()})"
                  if run.phase_timings is not None else "")
        print(f"map {run.map_seconds:.3f}s{detail} · "
              f"reduce {run.reduce_seconds:.3f}s", file=sys.stderr)
        if stats is not None:
            print(
                f"input: {stats.input_bytes_shipped:,} B shipped from the "
                f"driver · {stats.input_bytes_read:,} B read by workers",
                file=sys.stderr,
            )
            if stats.tasks_per_worker:
                spread = " ".join(
                    f"{worker}={count}" for worker, count in
                    sorted(stats.tasks_per_worker.items())
                )
                print(f"workers: {spread}", file=sys.stderr)
            if stats.warm_state_builds or stats.warm_state_reuses:
                print(
                    f"warm state: {stats.warm_state_builds} built · "
                    f"{stats.warm_state_reuses} reused",
                    file=sys.stderr,
                )
            if stats.summary_wire_bytes_decoded:
                print(
                    f"summary wire: {stats.summary_wire_bytes_encoded:,} B "
                    f"encoded · {stats.summary_wire_bytes_decoded:,} B "
                    f"decoded",
                    file=sys.stderr,
                )
            if stats.dedup_line_hits or stats.dedup_line_misses:
                probed = stats.dedup_line_hits + stats.dedup_line_misses
                rate = stats.dedup_line_hits / probed if probed else 0.0
                print(
                    f"line dedup: {stats.dedup_line_hits:,} hits · "
                    f"{stats.dedup_line_misses:,} misses "
                    f"({rate:.1%} hit rate) · "
                    f"{stats.dedup_bytes_avoided:,} B never decoded",
                    file=sys.stderr,
                )
            if stats.cache_hits or stats.cache_misses:
                print(
                    f"summary cache: {stats.cache_hits:,} hits · "
                    f"{stats.cache_misses:,} misses · "
                    f"{stats.cache_stores:,} stored · "
                    f"{stats.cache_bytes_skipped:,} B of input skipped",
                    file=sys.stderr,
                )
            if stats.stats_bundles_merged:
                print(
                    f"statistics: {stats.stats_bundles_merged:,} partition "
                    f"bundles merged",
                    file=sys.stderr,
                )
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    from repro.store import CheckpointError, merge_checkpoints

    try:
        if args.parallel:
            from repro.engine import Context

            with Context(parallelism=args.parallel) as ctx:
                merged = ctx.merge_checkpoints(args.checkpoints,
                                               out=args.out)
        else:
            merged = merge_checkpoints(args.checkpoints, out=args.out)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.pretty:
        print(pretty_print(merged.schema))
    else:
        print(print_type(merged.schema))
    print(
        f"merged {len(args.checkpoints)} checkpoints "
        f"({merged.record_count:,} records, "
        f"{merged.manifest.distinct_type_count:,} distinct types) -> "
        f"{args.out}",
        file=sys.stderr,
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    values = list(read_ndjson(args.file, skip_invalid=args.skip_invalid))
    row = succinctness_row(values, label=args.file)
    run = run_inference(values)
    print(render_table(SUCCINCTNESS_HEADERS, [row.cells()]))
    print(f"records: {row.record_count:,}")
    print(f"map phase: {run.map_seconds:.3f}s  reduce phase: "
          f"{run.reduce_seconds:.3f}s")
    return 0


def _cmd_statistics(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.report import render_statistics
    from repro.store import CheckpointError, load_checkpoint

    source = Path(args.source)
    if source.is_dir():
        try:
            checkpoint = load_checkpoint(source)
        except CheckpointError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        bundle = checkpoint.summary.stats
        if bundle is None:
            print(
                f"error: checkpoint at {args.source!r} carries no "
                f"statistics; re-run "
                f"'infer --stats basic|sketches --checkpoint {args.source}'",
                file=sys.stderr,
            )
            return 1
    else:
        run = infer_ndjson_file(
            args.source, permissive=args.skip_invalid,
            stats_mode=args.stats_mode,
        )
        bundle = run.stats
    print(render_statistics(bundle, name=args.source,
                            max_paths=args.max_paths))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    count = write_dataset(args.dataset, args.n, args.out, seed=args.seed)
    print(f"wrote {count:,} {args.dataset} records to {args.out}")
    return 0


def _cmd_paths(args: argparse.Namespace) -> int:
    schema = infer_schema(read_ndjson(args.file, skip_invalid=args.skip_invalid))
    for path, guaranteed in sorted(iter_schema_paths(schema)):
        marker = "mandatory" if guaranteed else "optional "
        print(f"{marker}  {path}")
    return 0


def _cmd_check_path(args: argparse.Namespace) -> int:
    schema = infer_schema(read_ndjson(args.file, skip_invalid=args.skip_invalid))
    info = resolve_path(schema, args.path)
    if not info.exists:
        print(f"{args.path}: not present in any record")
        return 1
    status = "in every record" if info.guaranteed else "optional"
    print(f"{args.path}: {status}, type {print_type(info.type)}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    old = infer_schema(read_ndjson(args.old, skip_invalid=args.skip_invalid))
    new = infer_schema(read_ndjson(args.new, skip_invalid=args.skip_invalid))
    changes = diff_schemas(old, new)
    if not changes:
        print("schemas are identical")
        return 0
    for change in changes:
        print(change)
    return 0


def _cmd_project(args: argparse.Namespace) -> int:
    values = list(read_ndjson(args.file, skip_invalid=args.skip_invalid))
    schema = infer_schema(values)
    try:
        projector = Projector(schema, args.paths)
    except ProjectionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for pruned in projector.project_many(values):
        print(dumps(pruned))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    values = list(read_ndjson(args.file, skip_invalid=args.skip_invalid))
    print(build_report(values, name=args.name or args.file))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    if args.schema is not None:
        schema = parse_type(args.schema)
    else:
        with open(args.schema_file, "r", encoding="utf-8") as handle:
            schema = parse_type(handle.read())

    bad_records = 0
    total = 0
    printed = 0
    for total, value in enumerate(
        read_ndjson(args.file, skip_invalid=args.skip_invalid), start=1
    ):
        violations = validate(value, schema)
        if violations:
            bad_records += 1
            if printed < args.max_reports:
                printed += 1
                print(f"record {total}:")
                for violation in violations:
                    print(f"  {violation}")
    if bad_records:
        print(f"{bad_records}/{total} records violate the schema")
        return 1
    print(f"all {total} records conform")
    return 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from repro.store import (
        CACHE_MARKER_NAME,
        fsck_checkpoint,
        fsck_journal,
        fsck_summary_cache,
    )

    exit_code = 0
    for raw in args.paths:
        path = Path(raw)
        # A summary cache is a directory with the CACHE marker, any
        # other directory is a checkpoint, a journal is a file; for
        # missing paths, guess journal when the name looks like one so
        # the report's "kind" stays useful.
        if path.is_dir() and (path / CACHE_MARKER_NAME).is_file():
            report = fsck_summary_cache(path)
        elif path.is_dir():
            report = fsck_checkpoint(path)
        elif path.is_file() or "journal" in path.name:
            report = fsck_journal(path)
        else:
            report = fsck_checkpoint(path)
        if report["status"] != "ok" or report.get("lock") == "held":
            exit_code = 1
        if args.as_json:
            print(_json.dumps(report, sort_keys=True))
            continue
        line = f"{report['kind']:<10} {report['status']:<16} {raw}"
        if report.get("detail"):
            line += f" — {report['detail']}"
        if report.get("lock", "none") != "none":
            line += f" [lock: {report['lock']}]"
        if report.get("orphans"):
            line += f" [orphans: {len(report['orphans'])}]"
        print(line)
    return exit_code


_COMMANDS = {
    "infer": _cmd_infer,
    "merge": _cmd_merge,
    "stats": _cmd_stats,
    "statistics": _cmd_statistics,
    "generate": _cmd_generate,
    "paths": _cmd_paths,
    "check-path": _cmd_check_path,
    "diff": _cmd_diff,
    "project": _cmd_project,
    "validate": _cmd_validate,
    "report": _cmd_report,
    "fsck": _cmd_fsck,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Output was piped into something like `head`; not an error.
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
