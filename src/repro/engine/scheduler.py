"""Task scheduler for the local engine.

Runs one task per partition on a thread pool (threads rather than processes:
fusion is allocation-bound, partitions share read-only inputs, and results
are plain Python objects — the same trade-off PySpark's local mode makes).
A ``parallelism`` of 1 degrades to inline execution, which is handy both for
debugging and as the sequential baseline in the ablation benchmarks.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

__all__ = ["Scheduler"]

T = TypeVar("T")
R = TypeVar("R")


def _default_parallelism() -> int:
    return max(2, os.cpu_count() or 2)


class Scheduler:
    """Executes per-partition tasks, preserving partition order of results."""

    def __init__(self, parallelism: int | None = None) -> None:
        if parallelism is None:
            parallelism = _default_parallelism()
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        self.parallelism = parallelism
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.parallelism,
                thread_name_prefix="repro-engine",
            )
        return self._pool

    def run(self, task: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``task`` to every item (one task per partition), in parallel.

        Results come back in input order.  Exceptions raised by any task
        propagate to the caller, mirroring a failed Spark job.

        Re-entrant calls (a task scheduling sub-tasks, as the shuffle does)
        run inline on the calling worker thread: handing them back to the
        pool could deadlock once every worker is waiting on a sub-task.
        """
        on_worker = threading.current_thread().name.startswith("repro-engine")
        if self.parallelism == 1 or len(items) <= 1 or on_worker:
            return [task(item) for item in items]
        pool = self._ensure_pool()
        return list(pool.map(task, items))

    def shutdown(self) -> None:
        """Release the worker pool.  The scheduler can be reused afterwards."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
