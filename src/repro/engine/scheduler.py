"""Fault-tolerant task scheduler for the local engine.

Runs one task per partition on a worker pool.  Two backends:

* ``backend="thread"`` (default) — a thread pool.  Cheap to start, shares
  read-only inputs by reference, but CPU-bound work is GIL-serialised —
  the same trade-off PySpark's local mode makes.
* ``backend="process"`` — a process pool, giving CPU-bound partition work
  (typing + fusion) true parallelism.  Tasks and items must be picklable;
  a task that is not (e.g. the closures the RDD lineage builds) falls back
  to the thread pool transparently, so a process-backed context still runs
  every workload.  The streaming inference kernel ships a module-level
  function plus raw partition data precisely so it can ride this backend,
  and its per-partition results are tiny summaries that are cheap to send
  back.

On top of dispatch, :meth:`Scheduler.run` provides the fault tolerance a
massive-input job needs (malformed data aside — that is the ingestion
layer's quarantine):

* **Retries with exponential backoff.**  Errors are classified: transient
  ones (:exc:`~repro.engine.faults.TransientError`, a broken process pool,
  a task timeout) are retried up to :attr:`RetryPolicy.max_retries` times
  with deterministic exponential backoff + jitter.  Any other exception is
  presumed a deterministic user error: it gets exactly *one* retry (the
  cheap way to prove determinism), then propagates.
* **Worker-crash recovery.**  A crashed process-pool worker breaks the
  whole pool; the scheduler rebuilds the pool and transparently
  re-dispatches every partition that was in flight.  After
  :attr:`RetryPolicy.max_pool_rebuilds` rebuilds it stops trusting the
  process backend and falls back to the thread pool for the remainder of
  the job — last resort, but the job finishes.
* **Per-task timeouts.**  With :attr:`RetryPolicy.task_timeout_s` set, a
  task that exceeds its budget is abandoned and retried.  The clock for
  each task starts when a worker actually begins executing it — time
  spent queued behind other partitions never counts against the budget.
  An abandoned task cannot be interrupted and may still run to
  completion in the background — tasks must therefore be pure, which
  every engine workload is.  An abandoned task also keeps occupying its
  worker until it finishes; when genuinely hung tasks wedge *every*
  thread-pool worker this way, the scheduler walks away from that pool
  and starts a fresh one so queued retries keep moving (a hung
  *process* worker, by contrast, holds its slot until the pool crashes
  or is shut down — pair ``task_timeout_s`` with a small
  ``max_retries`` for hang-prone process-backend workloads).  Nested
  (re-entrant) jobs run inline on the calling worker and therefore
  cannot enforce a timeout at all.
* **Deterministic fault injection.**  A
  :class:`~repro.engine.faults.FaultPlan` threaded through the scheduler
  fires planned incidents per ``(partition, attempt)``, so all of the
  above is exercised in CI without flakiness.

Because tasks may execute more than once, they must be **idempotent and
side-effect free** — which partition typing, fusion and parsing all are;
the safety of recomputation is exactly the associativity/commutativity
property (paper Section 5) that already licenses out-of-order reduction.

A ``parallelism`` of 1 degrades to inline execution (with the same retry
classification), which is handy both for debugging and as the sequential
baseline in the ablation benchmarks.  When ``task_timeout_s`` is set,
sequential and single-item jobs run on the thread pool instead, so the
driver has a worker to abandon on timeout; only nested (re-entrant) jobs
remain inline and unbounded.
"""

from __future__ import annotations

import gc
import itertools
import os
import pickle
import random
import threading
import time
import warnings
from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Sequence, TypeVar
from weakref import WeakKeyDictionary

from repro.engine.faults import FaultInjected, FaultPlan, TransientError

__all__ = [
    "JobCancelled",
    "Scheduler",
    "SchedulerStats",
    "RetryPolicy",
    "TaskTimeoutError",
    "BACKENDS",
    "available_parallelism",
]

T = TypeVar("T")
R = TypeVar("R")

#: Supported execution backends.
BACKENDS = ("thread", "process")


class JobCancelled(Exception):
    """The job was drained early because its ``stop_event`` was set.

    Deliberately *not* a :exc:`~repro.engine.faults.TransientError`: a
    cancellation is a driver decision (SIGINT/SIGTERM graceful
    shutdown), not a task failure, so it must never enter the retry
    classifier.  Every task that had already completed was delivered
    through the job's ``on_result`` callback before this was raised —
    with a journaling callback, all completed work is durable and the
    run is resumable.
    """

    def __init__(self, completed: int, total: int) -> None:
        super().__init__(
            f"job cancelled after draining in-flight tasks: "
            f"{completed}/{total} partitions completed"
        )
        self.completed = completed
        self.total = total

    def __reduce__(self):
        return (self.__class__, (self.completed, self.total))


class _StopCancelled(Exception):
    """Internal marker: a queued future was cancelled by the stop drain.

    Never escapes the scheduler — the recovery loop drops these keys on
    the floor (no retry, no failure) and raises :exc:`JobCancelled` for
    the job as a whole.
    """


class TaskTimeoutError(TransientError):
    """A task exceeded :attr:`RetryPolicy.task_timeout_s` and was abandoned.

    Transient by classification: slowness is often load- or
    injection-induced, so the task is worth retrying; if every attempt
    times out the error propagates once the retry budget is spent.
    """

    def __init__(self, partition: int, attempt: int, timeout_s: float) -> None:
        super().__init__(
            f"task for partition {partition} (attempt {attempt}) exceeded "
            f"{timeout_s:g}s timeout"
        )
        self.partition = partition
        self.attempt = attempt
        self.timeout_s = timeout_s


@dataclass(frozen=True)
class RetryPolicy:
    """How the scheduler retries failing tasks.

    * transient errors (:exc:`~repro.engine.faults.TransientError`,
      a broken process pool, a task timeout) are retried up to
      ``max_retries`` times per task, sleeping
      ``min(max_delay_s, base_delay_s * 2**(attempt-1))`` plus a
      deterministic jitter fraction between attempts;
    * any other exception is treated as a deterministic user error and
      gets exactly one retry — if it fails again, it propagates;
    * ``task_timeout_s`` (``None`` = unlimited) bounds each attempt's
      wall-clock, measured from the moment a worker starts executing it
      (time queued behind other partitions does not count); a timed-out
      task counts as a transient failure.  Enforced on pooled execution
      only — nested (re-entrant) jobs run inline and unbounded;
    * after ``max_pool_rebuilds`` process-pool crashes *within one job*
      the scheduler abandons the process backend for the rest of that
      job and finishes on threads.
    """

    max_retries: int = 3
    base_delay_s: float = 0.01
    max_delay_s: float = 2.0
    jitter: float = 0.5
    task_timeout_s: float | None = None
    max_pool_rebuilds: int = 3

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise ValueError("task_timeout_s must be positive (or None)")
        if self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")

    def is_retryable(self, exc: BaseException) -> bool:
        """Whether ``exc`` is transient (retry) vs deterministic (fail)."""
        return isinstance(exc, (TransientError, BrokenProcessPool))

    def backoff_s(self, partition: int, attempt: int) -> float:
        """Sleep before re-running ``partition`` at ``attempt`` (>= 1).

        Exponential in the attempt number, capped at ``max_delay_s``, with
        a jitter term drawn from an RNG seeded by ``(partition, attempt)``
        — deterministic for reproducibility, yet de-synchronised across
        partitions so retries do not stampede in lockstep.
        """
        base = min(self.max_delay_s,
                   self.base_delay_s * (2 ** max(0, attempt - 1)))
        if not self.jitter:
            return base
        rng = random.Random(f"backoff:{partition}:{attempt}")
        return base * (1.0 + self.jitter * rng.random())


@dataclass
class SchedulerStats:
    """Counters of the recovery machinery, for observability and tests.

    All counters accumulate over the scheduler's lifetime (across jobs);
    per-job budgets such as :attr:`RetryPolicy.max_pool_rebuilds` are
    tracked separately inside each :meth:`Scheduler.run` call.

    ``jobs`` / ``tasks_completed`` / ``job_time_s`` profile throughput:
    how many :meth:`Scheduler.run` calls executed (nested jobs included),
    how many partition tasks they completed, and their summed wall-clock
    — the scheduler-level counterpart of the kernel's per-partition
    :class:`~repro.inference.kernel.PhaseTimings`, letting a benchmark
    split engine overhead from map-phase work.

    ``input_bytes_shipped`` / ``input_bytes_read`` account for how input
    data reached the workers (maintained by the ingestion pipelines, not
    the dispatch loop): bytes of input payload the *driver* materialised
    and handed to partition tasks, versus bytes the *workers* read
    directly from source files via byte-range splits.  A
    ``split_mode="bytes"`` run ships a few hundred descriptor bytes and
    reads the whole file worker-side; a ``split_mode="lines"`` run is
    the mirror image — that contrast is the observable win of the
    input-split model (surfaced by the CLI's ``--timings``).

    ``checkpoints_loaded`` / ``checkpoints_saved`` /
    ``checkpoint_records_merged`` account for incremental maintenance
    (maintained by :mod:`repro.store` and the pipelines): how many
    persistent summaries entered this scheduler's merges, how many were
    written back, and how many already-summarised records those loads
    contributed — the records an update run *didn't* have to re-parse,
    i.e. the work incrementality saved.
    """

    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    thread_pool_replacements: int = 0
    thread_fallbacks: int = 0
    faults_injected: int = 0
    jobs: int = 0
    tasks_completed: int = 0
    job_time_s: float = 0.0
    input_bytes_shipped: int = 0
    input_bytes_read: int = 0
    checkpoints_loaded: int = 0
    checkpoints_saved: int = 0
    checkpoint_records_merged: int = 0
    #: Warm per-worker kernel state (interner/memo/key cache) accounting,
    #: maintained by the pipelines from summary telemetry: how many
    #: partition tasks found a warm state waiting in their worker versus
    #: how many had to build one from scratch (first task on a worker, or
    #: after :meth:`Scheduler.invalidate_warm_state`).
    warm_state_reuses: int = 0
    warm_state_builds: int = 0
    #: Compact summary wire format accounting (pipelines): bytes of
    #: flat-table-encoded summaries produced by workers and decoded back
    #: at the driver.  Zero when summaries travel as pickled object
    #: graphs (thread backend, or ``wire_format=False``).
    summary_wire_bytes_encoded: int = 0
    summary_wire_bytes_decoded: int = 0
    #: Bytes-lane duplicate-line type cache accounting (pipelines, from
    #: summary telemetry): lines typed straight from the cache without
    #: any parsing, lines that had to be parsed, and the raw input bytes
    #: the hits never decoded.  Zero on every other parse lane.
    dedup_line_hits: int = 0
    dedup_line_misses: int = 0
    dedup_bytes_avoided: int = 0
    #: Cross-run summary cache accounting (pipelines, from the driver's
    #: probe of :class:`repro.store.summarycache.SummaryCache`):
    #: partitions replayed from cache versus dispatched to workers,
    #: entries newly stored this run, and the input bytes the hits never
    #: re-read — the map work content addressing skipped.  Zero when no
    #: cache is configured.
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0
    cache_bytes_skipped: int = 0
    #: Statistics enrichment accounting (pipelines, from summary
    #: telemetry): partition summaries that arrived carrying a
    #: :class:`repro.inference.statistics.StatsBundle`.  Zero when
    #: ``stats_mode`` is off.
    stats_bundles_merged: int = 0
    #: Partition tasks attributed per worker (``pid<N>/<thread-name>``),
    #: maintained by the pipelines from summary telemetry — the
    #: observable spread of a job over the pool.
    tasks_per_worker: dict[str, int] = field(default_factory=dict)

    def reset(self) -> None:
        """Zero every counter."""
        self.retries = 0
        self.timeouts = 0
        self.pool_rebuilds = 0
        self.thread_pool_replacements = 0
        self.thread_fallbacks = 0
        self.faults_injected = 0
        self.jobs = 0
        self.tasks_completed = 0
        self.job_time_s = 0.0
        self.input_bytes_shipped = 0
        self.input_bytes_read = 0
        self.checkpoints_loaded = 0
        self.checkpoints_saved = 0
        self.checkpoint_records_merged = 0
        self.warm_state_reuses = 0
        self.warm_state_builds = 0
        self.summary_wire_bytes_encoded = 0
        self.summary_wire_bytes_decoded = 0
        self.dedup_line_hits = 0
        self.dedup_line_misses = 0
        self.dedup_bytes_avoided = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_stores = 0
        self.cache_bytes_skipped = 0
        self.stats_bundles_merged = 0
        self.tasks_per_worker = {}


def available_parallelism() -> int:
    """CPUs actually available to this process.

    ``os.cpu_count()`` reports the machine's cores; under a container
    quota, a cpuset, or ``taskset`` the process may be allowed far fewer.
    ``os.sched_getaffinity(0)`` reflects that restriction, so it is the
    honest default for sizing worker pools and the number benchmarks
    should record as ``cpu_count``.  Falls back to ``os.cpu_count()``
    where affinity is not exposed (macOS, Windows).
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:  # pragma: no cover - affinity query denied
            pass
    return max(1, os.cpu_count() or 1)


def _default_parallelism() -> int:
    return max(2, available_parallelism())


#: Process-wide source of warm-state generation tags.  Each scheduler
#: draws a fresh generation at construction (and on invalidation), so
#: workers shared between schedulers — or reused across invalidations —
#: can tell stale per-worker kernel state from current state by comparing
#: tags.  A plain counter: generations only need to be unique within the
#: process, and forked workers inherit a snapshot that can never collide
#: with later driver draws in a way that matters (a stale tag mismatch
#: just rebuilds state).
_WARM_GENERATIONS = itertools.count(1)


def _prestart_probe() -> None:
    """No-op task used by :meth:`Scheduler.prestart` to spin workers up."""
    return None


def _process_worker_init() -> None:
    """Run once in each worker process, right after it starts.

    Disables the cyclic garbage collector in the worker: partition tasks
    build immutable, acyclic data (type trees, summaries) that reference
    counting reclaims fully, while a cycle collection in a forked child
    would traverse — and, via copy-on-write, duplicate — the entire
    inherited parent heap.  Measurably faster on large inputs and safe for
    the engine's workloads.
    """
    gc.disable()


class _Dispatch:
    """One task attempt, bundled with its fault-injection coordinates.

    A module-level class (not a closure) so the process backend can pickle
    it; ``plan`` is ``None`` for the common uninjected dispatch, keeping
    the wrapper overhead to one attribute test.
    """

    __slots__ = ("task", "item", "partition", "attempt", "plan", "allow_kill")

    def __init__(self, task, item, partition, attempt, plan, allow_kill):
        self.task = task
        self.item = item
        self.partition = partition
        self.attempt = attempt
        self.plan = plan
        self.allow_kill = allow_kill

    def __call__(self):
        if self.plan is not None:
            self.plan.apply(self.partition, self.attempt, self.allow_kill)
        return self.task(self.item)

    def __getstate__(self):
        return (self.task, self.item, self.partition, self.attempt,
                self.plan, self.allow_kill)

    def __setstate__(self, state):
        (self.task, self.item, self.partition, self.attempt,
         self.plan, self.allow_kill) = state


class Scheduler:
    """Executes per-partition tasks, preserving partition order of results."""

    def __init__(
        self,
        parallelism: int | None = None,
        backend: str = "thread",
        retry_policy: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        warm: bool = True,
    ) -> None:
        if parallelism is None:
            parallelism = _default_parallelism()
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        self.parallelism = parallelism
        self.backend = backend
        self.retry_policy = retry_policy or RetryPolicy()
        self.fault_plan = fault_plan if fault_plan else None
        self.stats = SchedulerStats()
        #: Whether tasks may keep per-worker kernel state (interner, fusion
        #: memo, key cache) warm across tasks and jobs.  The pools already
        #: persist across :meth:`run` calls; ``warm`` additionally lets the
        #: kernel's partition tasks reuse worker-local caches tagged with
        #: :attr:`warm_generation`.  Purely a performance knob — results
        #: are identical either way, which the warm-pool tests check.
        self.warm = warm
        self.warm_generation = next(_WARM_GENERATIONS)
        self._pool: ThreadPoolExecutor | None = None
        self._process_pool: ProcessPoolExecutor | None = None
        # Futures abandoned on timeout that may still be running on a
        # thread-pool worker ("zombies"): each occupies a worker until
        # its task finishes, so once they cover the whole pool the pool
        # is replaced to keep queued retries runnable.
        self._thread_zombies: list[Future] = []
        # Re-entrancy guard: per-thread nesting depth of `run` (set while a
        # task body executes, on whichever thread executes it).
        self._local = threading.local()
        # Shippability verdicts, cached per task object.  Keyed weakly so
        # the cache never pins user functions; unhashable/unweakrefable
        # tasks simply skip the cache.
        self._shippable_cache: WeakKeyDictionary = WeakKeyDictionary()

    # ------------------------------------------------------------------
    # pools

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.parallelism,
                thread_name_prefix="repro-engine",
            )
        return self._pool

    def _ensure_process_pool(self) -> ProcessPoolExecutor:
        if self._process_pool is None:
            self._process_pool = ProcessPoolExecutor(
                max_workers=self.parallelism,
                initializer=_process_worker_init,
            )
        return self._process_pool

    def _ensure_live_thread_pool(self) -> ThreadPoolExecutor:
        """The thread pool, replaced first if hung tasks wedge all workers.

        A timed-out thread task cannot be interrupted; it keeps its
        worker until it finishes.  If such zombies ever occupy every
        worker, queued retries could never start — so the wedged pool is
        abandoned (its threads exit as their tasks do) and a fresh one
        takes over.
        """
        self._thread_zombies = [
            f for f in self._thread_zombies if not f.done()
        ]
        if (self._pool is not None
                and len(self._thread_zombies) >= self.parallelism):
            warnings.warn(
                "all thread-pool workers are occupied by timed-out tasks; "
                "replacing the pool so retries can proceed",
                RuntimeWarning,
                stacklevel=4,
            )
            self._pool.shutdown(wait=False)
            self._pool = None
            self._thread_zombies = []
            self.stats.thread_pool_replacements += 1
        return self._ensure_pool()

    def _rebuild_process_pool(self) -> None:
        """Discard a broken process pool so the next round gets a fresh one.

        Warm per-worker kernel state needs no explicit invalidation here:
        it lives in the crashed workers and dies with them, and the fresh
        pool's workers start cold and rebuild on their first task — so
        crash recovery composes with the warm pool without any change to
        the :class:`RetryPolicy` semantics (the in-flight partitions are
        re-dispatched exactly as before).
        """
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=False, cancel_futures=True)
            self._process_pool = None
        self.stats.pool_rebuilds += 1

    def invalidate_warm_state(self) -> int:
        """Retire every worker's warm kernel state; returns the new tag.

        Bumps :attr:`warm_generation`: a worker whose thread-local state
        carries an older tag rebuilds it lazily on its next task.  Cheap
        (one counter draw — no worker round-trip) and safe to call
        between jobs of a long-lived scheduler, e.g. after processing an
        unrelated dataset whose field names would only pollute the
        interners.
        """
        self.warm_generation = next(_WARM_GENERATIONS)
        return self.warm_generation

    def prestart(self) -> int:
        """Best-effort spin-up of the configured workers before a job.

        Submits one no-op probe per worker slot and waits for all of
        them, so the first real job does not pay pool construction —
        process forking especially — inside its measured wall-clock.
        Idempotent; returns the configured parallelism.
        """
        if self.backend == "process":
            pool: ProcessPoolExecutor | ThreadPoolExecutor = (
                self._ensure_process_pool()
            )
        else:
            pool = self._ensure_live_thread_pool()
        wait([pool.submit(_prestart_probe) for _ in range(self.parallelism)])
        return self.parallelism

    # ------------------------------------------------------------------
    # shippability

    def _shippable(self, task: Callable) -> bool:
        """Whether ``task`` can be sent to a worker process.

        The pickling probe is not free for large closures, so the verdict
        is cached per task object (weakly — the scheduler must not keep
        user functions alive).  Stable module-level functions such as the
        inference kernel's entry point hit the cache on every job.
        """
        try:
            return self._shippable_cache[task]
        except (KeyError, TypeError):
            pass
        try:
            pickle.dumps(task)
            verdict = True
        except Exception:
            verdict = False
        try:
            self._shippable_cache[task] = verdict
        except TypeError:
            pass  # unhashable or not weak-referenceable: just re-probe
        return verdict

    @staticmethod
    def _first_item_shippable(items: Sequence) -> bool:
        """Probe whether partition *data* can cross a process boundary.

        A picklable task over unpicklable items would die mid-dispatch
        with an opaque pool error; probing one representative item up
        front lets the scheduler fall back to threads with a clear
        warning instead.
        """
        if not items:
            return True
        try:
            pickle.dumps(items[0])
            return True
        except Exception:
            return False

    # ------------------------------------------------------------------
    # execution

    def run(
        self,
        task: Callable[[T], R],
        items: Sequence[T],
        on_result: Callable[[int, R], None] | None = None,
        stop_event: threading.Event | None = None,
    ) -> list[R]:
        """Apply ``task`` to every item (one task per partition), in parallel.

        Results come back in input order.  Exceptions raised by any task
        propagate to the caller after the retry policy is exhausted,
        mirroring a failed Spark job; transient failures, worker crashes
        and timeouts are recovered per :class:`RetryPolicy`.

        ``on_result(index, result)`` is invoked on the driver thread the
        first time each partition completes, *before* the job as a whole
        finishes — the seam the run journal hangs off: a summary is
        durable the moment its task succeeds, not when the job ends.  An
        exception from the callback fails the job (nothing swallows an
        ``ENOSPC`` from a journal append).

        ``stop_event`` requests a graceful drain: when it is set, queued
        attempts are cancelled, already-executing tasks are allowed to
        finish (and are delivered through ``on_result``), and the job
        raises :exc:`JobCancelled` instead of returning — the
        SIGINT/SIGTERM half of crash-safe runs.

        Re-entrant calls (a task scheduling sub-tasks, as the shuffle
        does) run inline on the calling worker: handing them back to the
        pool could deadlock once every worker is waiting on a sub-task.
        The guard is an explicit per-thread depth flag — it recognises
        nested execution on any backend, not just threads with a
        particular name.  Inline execution cannot enforce
        ``task_timeout_s`` (there is no spare worker to abandon the task
        to), so non-nested sequential and single-item jobs run on the
        pool whenever a timeout is configured.
        """
        start = time.perf_counter()
        try:
            results = self._dispatch(task, items, on_result, stop_event)
        finally:
            self.stats.jobs += 1
            self.stats.job_time_s += time.perf_counter() - start
        self.stats.tasks_completed += len(results)
        return results

    def _dispatch(
        self,
        task: Callable[[T], R],
        items: Sequence[T],
        on_result: Callable[[int, R], None] | None = None,
        stop_event: threading.Event | None = None,
    ) -> list[R]:
        """Route a job to the inline, thread, or process execution path."""
        if self._depth() > 0:
            return self._run_inline(task, items, on_result, stop_event)
        if self.parallelism == 1 or len(items) <= 1:
            if self.retry_policy.task_timeout_s is None:
                return self._run_inline(task, items, on_result, stop_event)
            # Timeout enforcement needs a pool worker the driver can
            # abandon; the thread pool is enough for a sequential job.
            return self._run_with_recovery(
                task, items, use_process=False,
                on_result=on_result, stop_event=stop_event,
            )
        use_process = self.backend == "process" and self._shippable(task)
        if use_process and not self._first_item_shippable(items):
            warnings.warn(
                "partition items are not picklable; running the job on the "
                "thread pool instead of the process backend",
                RuntimeWarning,
                stacklevel=2,
            )
            use_process = False
        return self._run_with_recovery(
            task, items, use_process,
            on_result=on_result, stop_event=stop_event,
        )

    def _depth(self) -> int:
        return getattr(self._local, "depth", 0)

    def _enter_task(self, call: Callable[[], R]) -> R:
        """Execute one dispatch with the re-entrancy depth flag raised."""
        self._local.depth = self._depth() + 1
        try:
            return call()
        finally:
            self._local.depth -= 1

    def _run_inline(
        self,
        task: Callable[[T], R],
        items: Sequence[T],
        on_result: Callable[[int, R], None] | None = None,
        stop_event: threading.Event | None = None,
    ) -> list[R]:
        """Sequential execution with the same retry classification.

        Used for re-entrant calls always, and for ``parallelism=1`` /
        single-item jobs when no task timeout is configured (timeouts
        need a pool worker to abandon, so :meth:`run` routes those to
        the thread pool instead).  ``task_timeout_s`` is *not* enforced
        here.  Worker kills are injected as transient failures (there is
        no separate process to kill).  A ``stop_event`` is honoured
        between items: the current item always runs to completion (and
        reaches ``on_result``) before the drain raises.
        """
        results = []
        for index, item in enumerate(items):
            if stop_event is not None and stop_event.is_set():
                raise JobCancelled(len(results), len(items))
            attempt = 0
            deterministic_retry_used = False
            while True:
                call = _Dispatch(task, item, index, attempt,
                                 self.fault_plan, allow_kill=False)
                try:
                    result = self._enter_task(call)
                    if on_result is not None:
                        on_result(index, result)
                    results.append(result)
                    break
                except Exception as exc:
                    attempt, deterministic_retry_used = self._next_attempt(
                        exc, index, attempt, deterministic_retry_used
                    )
                    time.sleep(self.retry_policy.backoff_s(index, attempt))
        return results

    def _next_attempt(
        self,
        exc: BaseException,
        partition: int,
        attempt: int,
        deterministic_retry_used: bool,
    ) -> tuple[int, bool]:
        """Decide the fate of a failed attempt: retry (returning the next
        attempt number) or re-raise ``exc``."""
        if isinstance(exc, FaultInjected):
            self.stats.faults_injected += 1
        if self.retry_policy.is_retryable(exc):
            if attempt < self.retry_policy.max_retries:
                self.stats.retries += 1
                return attempt + 1, deterministic_retry_used
            raise exc
        # Deterministic user error: one retry proves determinism, then
        # fail fast — no point burning the full transient budget.
        if not deterministic_retry_used and self.retry_policy.max_retries > 0:
            self.stats.retries += 1
            return attempt + 1, True
        raise exc

    def _run_with_recovery(
        self,
        task: Callable[[T], R],
        items: Sequence[T],
        use_process: bool,
        on_result: Callable[[int, R], None] | None = None,
        stop_event: threading.Event | None = None,
    ) -> list[R]:
        """The retrying dispatch loop shared by both pool backends.

        Proceeds in rounds: submit every pending ``(partition, attempt)``,
        harvest results, classify failures, back off, repeat.  A broken
        process pool fails the whole round; the pool is rebuilt and the
        unfinished partitions are re-dispatched.

        A set ``stop_event`` drains rather than aborts: the harvest
        cancels attempts that have not started, waits for the executing
        ones, and their results still flow through ``on_result`` before
        :exc:`JobCancelled` is raised — nothing a worker finished is
        ever thrown away.
        """
        policy = self.retry_policy
        results: dict[int, R] = {}
        pending: list[tuple[int, int]] = [(i, 0) for i in range(len(items))]
        deterministic_retry_used: set[int] = set()
        # The rebuild budget is per job: a long-lived scheduler must not
        # carry one job's crash history into the next (stats.pool_rebuilds
        # keeps the lifetime total for observability).
        rebuilds_this_job = 0

        while pending:
            if stop_event is not None and stop_event.is_set():
                raise JobCancelled(len(results), len(items))
            futures = self._submit_round(task, items, pending, use_process)
            outcomes = self._harvest_round(
                futures, policy.task_timeout_s, use_process, stop_event,
                on_result,
            )
            next_pending: list[tuple[int, int]] = []
            max_backoff = 0.0
            pool_broken = False
            fatal: BaseException | None = None

            for (index, attempt), future in futures.items():
                exc = outcomes[(index, attempt)]
                if exc is None:
                    # on_result already fired inside the harvest, at the
                    # moment the future resolved.
                    results[index] = future.result()
                    continue
                if isinstance(exc, _StopCancelled):
                    # Cancelled by the drain before it started: neither a
                    # success nor a failure — the partition stays for the
                    # resumed run.
                    continue
                if isinstance(exc, BrokenProcessPool):
                    pool_broken = True
                if isinstance(exc, TaskTimeoutError):
                    self.stats.timeouts += 1
                try:
                    next_attempt, det_used = self._next_attempt(
                        exc, index, attempt,
                        index in deterministic_retry_used,
                    )
                except BaseException as final_exc:
                    if fatal is None:
                        fatal = final_exc
                    continue
                if det_used:
                    deterministic_retry_used.add(index)
                next_pending.append((index, next_attempt))
                max_backoff = max(
                    max_backoff, policy.backoff_s(index, next_attempt)
                )

            if fatal is not None:
                for future in futures.values():
                    future.cancel()
                raise fatal
            if stop_event is not None and stop_event.is_set():
                raise JobCancelled(len(results), len(items))
            if pool_broken and use_process:
                self._rebuild_process_pool()
                rebuilds_this_job += 1
                if rebuilds_this_job > policy.max_pool_rebuilds:
                    # Last resort: the process backend keeps dying; finish
                    # the job on threads.
                    warnings.warn(
                        "process pool crashed more than "
                        f"{policy.max_pool_rebuilds} times; falling back to "
                        "the thread backend for the remaining partitions",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                    self.stats.thread_fallbacks += 1
                    use_process = False
            pending = next_pending
            if pending and max_backoff > 0:
                time.sleep(max_backoff)

        return [results[i] for i in range(len(items))]

    def _submit_round(
        self,
        task: Callable[[T], R],
        items: Sequence[T],
        pending: Sequence[tuple[int, int]],
        use_process: bool,
    ) -> dict[tuple[int, int], Future]:
        """Submit one attempt per pending partition to the active pool."""
        futures: dict[tuple[int, int], Future] = {}
        if use_process:
            pool: ProcessPoolExecutor | ThreadPoolExecutor = (
                self._ensure_process_pool()
            )
        else:
            pool = self._ensure_live_thread_pool()
        for index, attempt in pending:
            call = _Dispatch(task, items[index], index, attempt,
                             self.fault_plan, allow_kill=use_process)
            try:
                if use_process:
                    futures[(index, attempt)] = pool.submit(call)
                else:
                    futures[(index, attempt)] = pool.submit(
                        self._enter_task, call
                    )
            except BrokenProcessPool as exc:
                # A worker died while this round was still being submitted;
                # surface it as a pre-failed future so the harvest loop
                # rebuilds the pool and re-dispatches as usual.
                failed: Future = Future()
                failed.set_exception(exc)
                futures[(index, attempt)] = failed
        return futures

    def _harvest_round(
        self,
        futures: dict[tuple[int, int], Future],
        timeout: float | None,
        use_process: bool,
        stop_event: threading.Event | None = None,
        on_result: Callable[[int, R], None] | None = None,
    ) -> dict[tuple[int, int], BaseException | None]:
        """Collect every future of one round; per key, its exception or None.

        With a ``timeout``, each task is timed *individually from the
        moment the pool starts executing it* (observed via
        :meth:`Future.running`), so time a task spends queued behind
        other partitions never counts against its budget.  A task that
        exceeds the budget is cancelled and reported as
        :exc:`TaskTimeoutError`; one that is already running cannot be
        interrupted and is abandoned — it may finish in the background
        (harmless: tasks are pure) but keeps occupying its worker until
        it does, see the module notes on hung tasks.

        ``on_result`` is called here, the moment a future resolves
        successfully — not after the round completes — so a journal
        append hanging off it makes each summary durable while sibling
        tasks are still running.  A callback exception cancels the rest
        of the round and propagates.

        When ``stop_event`` fires mid-harvest, futures that have not
        started are cancelled (marked :exc:`_StopCancelled`) and the
        already-executing remainder is drained normally, so completed
        work still reaches the caller.
        """
        outcomes: dict[tuple[int, int], BaseException | None] = {}
        remaining = dict(futures)
        started: dict[tuple[int, int], float] = {}
        stop_seen = False
        # Poll granularity: fine enough that timeout detection lags the
        # budget by at most ~10% (and a stop request by ~50ms), without
        # busy-waiting.
        poll_s = (
            0.05 if timeout is None
            else max(0.001, min(0.05, timeout / 10.0))
        )
        while remaining:
            if timeout is None and (stop_event is None or stop_seen):
                # Nothing to poll for: block until the next resolution
                # (any resolution, so on_result fires promptly).
                wait(
                    remaining.values(),
                    return_when=(
                        "FIRST_COMPLETED" if on_result is not None
                        else "ALL_COMPLETED"
                    ),
                )
            else:
                wait(remaining.values(), timeout=poll_s)
            if (not stop_seen and stop_event is not None
                    and stop_event.is_set()):
                stop_seen = True
                for key in list(remaining):
                    if remaining[key].cancel():
                        outcomes[key] = _StopCancelled()
                        del remaining[key]
            now = time.monotonic()
            for key in list(remaining):
                future = remaining[key]
                if future.done():
                    exc = self._exception_of(future)
                    if exc is None and on_result is not None:
                        try:
                            on_result(key[0], future.result())
                        except BaseException:
                            for other in remaining.values():
                                other.cancel()
                            raise
                    outcomes[key] = exc
                    del remaining[key]
                elif timeout is None:
                    continue
                elif key not in started:
                    if future.running():
                        started[key] = now
                elif now - started[key] >= timeout:
                    if not future.cancel() and not use_process:
                        # Still running on a thread worker: abandoned,
                        # and holding that worker until it finishes.
                        self._thread_zombies.append(future)
                    index, attempt = key
                    outcomes[key] = TaskTimeoutError(index, attempt, timeout)
                    del remaining[key]
        return outcomes

    @staticmethod
    def _exception_of(future: Future) -> BaseException | None:
        """Block until ``future`` resolves; its exception, or None."""
        try:
            future.result()
            return None
        except BaseException as exc:
            return exc

    def shutdown(self) -> None:
        """Release the worker pools.  The scheduler can be reused afterwards.

        Does not block on abandoned (timed-out) thread tasks — their
        threads exit on their own when the tasks finish.  Queued
        process-pool work is cancelled (``cancel_futures=True``): a
        ``Context.__exit__`` racing an in-flight job must not block on
        tasks that have not even started, only on the ones already
        executing.
        """
        if self._pool is not None:
            self._thread_zombies = [
                f for f in self._thread_zombies if not f.done()
            ]
            self._pool.shutdown(wait=not self._thread_zombies)
            self._pool = None
            self._thread_zombies = []
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=True, cancel_futures=True)
            self._process_pool = None

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
