"""Task scheduler for the local engine.

Runs one task per partition on a worker pool.  Two backends:

* ``backend="thread"`` (default) — a thread pool.  Cheap to start, shares
  read-only inputs by reference, but CPU-bound work is GIL-serialised —
  the same trade-off PySpark's local mode makes.
* ``backend="process"`` — a process pool, giving CPU-bound partition work
  (typing + fusion) true parallelism.  Tasks and items must be picklable;
  a task that is not (e.g. the closures the RDD lineage builds) falls back
  to the thread pool transparently, so a process-backed context still runs
  every workload.  The streaming inference kernel ships a module-level
  function plus raw partition data precisely so it can ride this backend,
  and its per-partition results are tiny summaries that are cheap to send
  back.

A ``parallelism`` of 1 degrades to inline execution, which is handy both
for debugging and as the sequential baseline in the ablation benchmarks.
"""

from __future__ import annotations

import gc
import os
import pickle
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

__all__ = ["Scheduler", "BACKENDS"]

T = TypeVar("T")
R = TypeVar("R")

#: Supported execution backends.
BACKENDS = ("thread", "process")


def _default_parallelism() -> int:
    return max(2, os.cpu_count() or 2)


def _process_worker_init() -> None:
    """Run once in each worker process, right after it starts.

    Disables the cyclic garbage collector in the worker: partition tasks
    build immutable, acyclic data (type trees, summaries) that reference
    counting reclaims fully, while a cycle collection in a forked child
    would traverse — and, via copy-on-write, duplicate — the entire
    inherited parent heap.  Measurably faster on large inputs and safe for
    the engine's workloads.
    """
    gc.disable()


class Scheduler:
    """Executes per-partition tasks, preserving partition order of results."""

    def __init__(
        self, parallelism: int | None = None, backend: str = "thread"
    ) -> None:
        if parallelism is None:
            parallelism = _default_parallelism()
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        self.parallelism = parallelism
        self.backend = backend
        self._pool: ThreadPoolExecutor | None = None
        self._process_pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.parallelism,
                thread_name_prefix="repro-engine",
            )
        return self._pool

    def _ensure_process_pool(self) -> ProcessPoolExecutor:
        if self._process_pool is None:
            self._process_pool = ProcessPoolExecutor(
                max_workers=self.parallelism,
                initializer=_process_worker_init,
            )
        return self._process_pool

    @staticmethod
    def _shippable(task: Callable) -> bool:
        """Whether ``task`` can be sent to a worker process."""
        try:
            pickle.dumps(task)
            return True
        except Exception:
            return False

    def run(self, task: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``task`` to every item (one task per partition), in parallel.

        Results come back in input order.  Exceptions raised by any task
        propagate to the caller, mirroring a failed Spark job.

        Re-entrant calls (a task scheduling sub-tasks, as the shuffle does)
        run inline on the calling worker thread: handing them back to the
        pool could deadlock once every worker is waiting on a sub-task.
        """
        on_worker = threading.current_thread().name.startswith("repro-engine")
        if self.parallelism == 1 or len(items) <= 1 or on_worker:
            return [task(item) for item in items]
        if self.backend == "process" and self._shippable(task):
            pool = self._ensure_process_pool()
            return list(pool.map(task, items))
        thread_pool = self._ensure_pool()
        return list(thread_pool.map(task, items))

    def shutdown(self) -> None:
        """Release the worker pools.  The scheduler can be reused afterwards."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=True)
            self._process_pool = None

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
