"""A deterministic cluster simulator for the scalability experiments.

The paper's cluster study (Section 6.2, Tables 7-8) reports two phenomena
that are about *scheduling and data locality*, not about typing itself:

1. With the whole dataset ingested onto a single HDFS node, Spark's
   locality-preferring scheduler concentrated the computation on the nodes
   holding data while the rest of the cluster sat idle.
2. A manual partition-isolated strategy — process each partition entirely
   locally, then fuse the tiny partial schemas — used the full cluster and
   cut the runtime; its safety rests on the associativity of fusion.

Since a physical 6-node cluster is not available to this reproduction, this
module simulates it: nodes with a given core count and processing rate,
dataset blocks with explicit replica placement, and a greedy
earliest-finish-time list scheduler with optional strict locality.  The
simulator is deliberately simple — every quantity the benchmarks report
(makespan, per-node busy time, nodes used) is a deterministic function of
the placement policy, which is exactly the variable the paper manipulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "NodeSpec",
    "Block",
    "ClusterSimulator",
    "SimulationResult",
    "place_on_single_node",
    "place_round_robin",
]

#: Effective throughput of a 1 Gb/s link in MB/s (the paper's interconnect).
GIGABIT_MB_PER_S = 117.0


@dataclass(frozen=True)
class NodeSpec:
    """A cluster node: ``cores`` parallel task slots, each processing
    ``cpu_mb_per_s`` megabytes of JSON per second.

    The paper's nodes have two 10-core CPUs; the default mirrors that.
    """

    name: str
    cores: int = 20
    cpu_mb_per_s: float = 8.0


@dataclass(frozen=True)
class Block:
    """A unit of input data: ``size_mb`` megabytes, replicated on
    ``replicas`` (node names).  One block becomes one task."""

    block_id: int
    size_mb: float
    replicas: tuple[str, ...]


@dataclass
class SimulationResult:
    """Outcome of a simulated run."""

    makespan_s: float
    busy_s: dict[str, float]
    tasks_per_node: dict[str, int]
    total_slots: int

    @property
    def nodes_used(self) -> int:
        """Number of nodes that executed at least one task."""
        return sum(1 for n in self.tasks_per_node.values() if n > 0)

    def utilization(self) -> float:
        """Fraction of total slot-time spent busy over the makespan (0..1)."""
        if not self.busy_s or self.makespan_s == 0 or self.total_slots == 0:
            return 0.0
        total = sum(self.busy_s.values())
        return total / (self.total_slots * self.makespan_s)


def place_on_single_node(
    sizes_mb: Sequence[float], nodes: Sequence[NodeSpec], node_index: int = 0
) -> list[Block]:
    """All blocks on one node — the paper's accidental HDFS layout."""
    name = nodes[node_index].name
    return [
        Block(i, size, (name,)) for i, size in enumerate(sizes_mb)
    ]


def place_round_robin(
    sizes_mb: Sequence[float],
    nodes: Sequence[NodeSpec],
    replication: int = 1,
) -> list[Block]:
    """Spread blocks round-robin with ``replication`` replicas each —
    the layout the partitioning strategy of Section 6.2 achieves."""
    n = len(nodes)
    replication = min(replication, n)
    blocks = []
    for i, size in enumerate(sizes_mb):
        replicas = tuple(nodes[(i + r) % n].name for r in range(replication))
        blocks.append(Block(i, size, replicas))
    return blocks


@dataclass
class _Slot:
    """One executor slot: (free_at, node_name, slot_id) in a heap."""

    free_at: float
    node: str
    slot_id: int

    def __lt__(self, other: "_Slot") -> bool:
        return (self.free_at, self.node, self.slot_id) < (
            other.free_at, other.node, other.slot_id
        )


class ClusterSimulator:
    """Greedy earliest-finish-time list scheduler over executor slots.

    ``strict_locality=True`` models Spark's locality wait taken to its
    limit: a task only runs on nodes holding a replica of its block (this is
    what strands the idle nodes in the paper's naive run).  With
    ``strict_locality=False`` a task may run anywhere but pays the network
    transfer time for remote reads.
    """

    def __init__(
        self,
        nodes: Iterable[NodeSpec],
        network_mb_per_s: float = GIGABIT_MB_PER_S,
        strict_locality: bool = True,
    ) -> None:
        self.nodes = list(nodes)
        if not self.nodes:
            raise ValueError("a cluster needs at least one node")
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError("duplicate node names")
        self.network_mb_per_s = network_mb_per_s
        self.strict_locality = strict_locality
        self._by_name = {n.name: n for n in self.nodes}

    def task_duration_s(self, block: Block, node: str) -> float:
        """Time for ``node`` to process ``block``: compute plus, for remote
        reads, the network transfer."""
        spec = self._by_name[node]
        duration = block.size_mb / spec.cpu_mb_per_s
        if node not in block.replicas:
            duration += block.size_mb / self.network_mb_per_s
        return duration

    def run(self, blocks: Sequence[Block]) -> SimulationResult:
        """Schedule one task per block; return the resulting timeline."""
        for block in blocks:
            unknown = set(block.replicas) - set(self._by_name)
            if unknown:
                raise ValueError(f"replicas on unknown nodes: {sorted(unknown)}")

        # Longest-processing-time-first is the standard greedy heuristic.
        ordered = sorted(blocks, key=lambda b: -b.size_mb)

        slot_free: dict[tuple[str, int], float] = {}
        for spec in self.nodes:
            for slot in range(spec.cores):
                slot_free[(spec.name, slot)] = 0.0

        busy = {spec.name: 0.0 for spec in self.nodes}
        tasks = {spec.name: 0 for spec in self.nodes}
        makespan = 0.0

        for block in ordered:
            if self.strict_locality:
                allowed = set(block.replicas)
            else:
                allowed = set(self._by_name)
            best_key: tuple[str, int] | None = None
            best_finish = float("inf")
            for (node, slot), free_at in slot_free.items():
                if node not in allowed:
                    continue
                finish = free_at + self.task_duration_s(block, node)
                if finish < best_finish:
                    best_finish = finish
                    best_key = (node, slot)
            if best_key is None:
                raise ValueError(
                    f"block {block.block_id} has no eligible node "
                    f"(replicas {block.replicas})"
                )
            node, _slot = best_key
            duration = self.task_duration_s(block, node)
            slot_free[best_key] = best_finish
            busy[node] += duration
            tasks[node] += 1
            makespan = max(makespan, best_finish)

        return SimulationResult(
            makespan_s=makespan,
            busy_s=busy,
            tasks_per_node=tasks,
            total_slots=sum(spec.cores for spec in self.nodes),
        )


def default_cluster(num_nodes: int = 6) -> list[NodeSpec]:
    """The paper's testbed: six nodes, two 10-core CPUs each, Gigabit link."""
    return [NodeSpec(name=f"node{i}") for i in range(num_nodes)]
