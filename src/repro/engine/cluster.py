"""A deterministic cluster simulator for the scalability experiments.

The paper's cluster study (Section 6.2, Tables 7-8) reports two phenomena
that are about *scheduling and data locality*, not about typing itself:

1. With the whole dataset ingested onto a single HDFS node, Spark's
   locality-preferring scheduler concentrated the computation on the nodes
   holding data while the rest of the cluster sat idle.
2. A manual partition-isolated strategy — process each partition entirely
   locally, then fuse the tiny partial schemas — used the full cluster and
   cut the runtime; its safety rests on the associativity of fusion.

Since a physical 6-node cluster is not available to this reproduction, this
module simulates it: nodes with a given core count and processing rate,
dataset blocks with explicit replica placement, and a greedy
earliest-finish-time list scheduler with optional strict locality.  The
simulator is deliberately simple — every quantity the benchmarks report
(makespan, per-node busy time, nodes used) is a deterministic function of
the placement policy, which is exactly the variable the paper manipulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "NodeSpec",
    "Block",
    "ClusterSimulator",
    "NodeFailure",
    "SimulationResult",
    "place_on_single_node",
    "place_round_robin",
]

#: Effective throughput of a 1 Gb/s link in MB/s (the paper's interconnect).
GIGABIT_MB_PER_S = 117.0


@dataclass(frozen=True)
class NodeSpec:
    """A cluster node: ``cores`` parallel task slots, each processing
    ``cpu_mb_per_s`` megabytes of JSON per second.

    The paper's nodes have two 10-core CPUs; the default mirrors that.
    """

    name: str
    cores: int = 20
    cpu_mb_per_s: float = 8.0


@dataclass(frozen=True)
class Block:
    """A unit of input data: ``size_mb`` megabytes, replicated on
    ``replicas`` (node names).  One block becomes one task."""

    block_id: int
    size_mb: float
    replicas: tuple[str, ...]


@dataclass(frozen=True)
class NodeFailure:
    """A node crashing at ``at_s`` seconds into the run.

    Tasks running on (or scheduled after ``at_s`` on) the failed node are
    lost and must be rescheduled on surviving nodes — onto surviving
    *replicas* of their block under strict locality, which is exactly why
    the paper's partition-isolated strategy wants replication.
    """

    node: str
    at_s: float

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError("failure time must be >= 0")


@dataclass
class SimulationResult:
    """Outcome of a simulated run.

    ``rescheduled_tasks`` / ``lost_work_s`` / ``failed_nodes`` quantify
    the failure impact: how many block executions were re-run elsewhere,
    how much finished-or-partial compute time the crashes destroyed, and
    which nodes died.  ``busy_s`` counts useful (surviving) work only.
    """

    makespan_s: float
    busy_s: dict[str, float]
    tasks_per_node: dict[str, int]
    total_slots: int
    rescheduled_tasks: int = 0
    lost_work_s: float = 0.0
    failed_nodes: tuple[str, ...] = ()

    @property
    def nodes_used(self) -> int:
        """Number of nodes that executed at least one task."""
        return sum(1 for n in self.tasks_per_node.values() if n > 0)

    def utilization(self) -> float:
        """Fraction of total slot-time spent busy over the makespan (0..1)."""
        if not self.busy_s or self.makespan_s == 0 or self.total_slots == 0:
            return 0.0
        total = sum(self.busy_s.values())
        return total / (self.total_slots * self.makespan_s)


def place_on_single_node(
    sizes_mb: Sequence[float], nodes: Sequence[NodeSpec], node_index: int = 0
) -> list[Block]:
    """All blocks on one node — the paper's accidental HDFS layout."""
    name = nodes[node_index].name
    return [
        Block(i, size, (name,)) for i, size in enumerate(sizes_mb)
    ]


def place_round_robin(
    sizes_mb: Sequence[float],
    nodes: Sequence[NodeSpec],
    replication: int = 1,
) -> list[Block]:
    """Spread blocks round-robin with ``replication`` replicas each —
    the layout the partitioning strategy of Section 6.2 achieves."""
    n = len(nodes)
    replication = min(replication, n)
    blocks = []
    for i, size in enumerate(sizes_mb):
        replicas = tuple(nodes[(i + r) % n].name for r in range(replication))
        blocks.append(Block(i, size, replicas))
    return blocks


@dataclass
class _Slot:
    """One executor slot: (free_at, node_name, slot_id) in a heap."""

    free_at: float
    node: str
    slot_id: int

    def __lt__(self, other: "_Slot") -> bool:
        return (self.free_at, self.node, self.slot_id) < (
            other.free_at, other.node, other.slot_id
        )


class ClusterSimulator:
    """Greedy earliest-finish-time list scheduler over executor slots.

    ``strict_locality=True`` models Spark's locality wait taken to its
    limit: a task only runs on nodes holding a replica of its block (this is
    what strands the idle nodes in the paper's naive run).  With
    ``strict_locality=False`` a task may run anywhere but pays the network
    transfer time for remote reads.
    """

    def __init__(
        self,
        nodes: Iterable[NodeSpec],
        network_mb_per_s: float = GIGABIT_MB_PER_S,
        strict_locality: bool = True,
    ) -> None:
        self.nodes = list(nodes)
        if not self.nodes:
            raise ValueError("a cluster needs at least one node")
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError("duplicate node names")
        self.network_mb_per_s = network_mb_per_s
        self.strict_locality = strict_locality
        self._by_name = {n.name: n for n in self.nodes}

    def task_duration_s(self, block: Block, node: str) -> float:
        """Time for ``node`` to process ``block``: compute plus, for remote
        reads, the network transfer."""
        spec = self._by_name[node]
        duration = block.size_mb / spec.cpu_mb_per_s
        if node not in block.replicas:
            duration += block.size_mb / self.network_mb_per_s
        return duration

    def run(
        self,
        blocks: Sequence[Block],
        failures: Sequence[NodeFailure] = (),
    ) -> SimulationResult:
        """Schedule one task per block; return the resulting timeline.

        With ``failures``, the run is re-played against node crashes: a
        crash at time ``t`` destroys every task on that node still running
        (or queued) at ``t``, and the affected blocks are rescheduled from
        ``t`` onward on surviving nodes — surviving *replicas* under
        strict locality (raising ``ValueError`` if a block has none).
        Rescheduled tasks can themselves be killed by later failures.
        The returned result carries the makespan impact: compare against
        a failure-free ``run(blocks)`` of the same placement.
        """
        for block in blocks:
            unknown = set(block.replicas) - set(self._by_name)
            if unknown:
                raise ValueError(f"replicas on unknown nodes: {sorted(unknown)}")
        for failure in failures:
            if failure.node not in self._by_name:
                raise ValueError(f"failure on unknown node {failure.node!r}")

        # Longest-processing-time-first is the standard greedy heuristic.
        ordered = sorted(blocks, key=lambda b: -b.size_mb)

        slot_free: dict[tuple[str, int], float] = {}
        for spec in self.nodes:
            for slot in range(spec.cores):
                slot_free[(spec.name, slot)] = 0.0

        # (block, node, slot_key, start, finish) for every surviving task.
        assignments: list[tuple[Block, str, tuple[str, int], float, float]] = []

        def assign(block: Block, not_before: float, dead: set[str]) -> None:
            """Greedy earliest-finish placement honouring locality and
            excluding dead nodes; records the assignment."""
            if self.strict_locality:
                allowed = set(block.replicas) - dead
            else:
                allowed = set(self._by_name) - dead
            best_key: tuple[str, int] | None = None
            best_start = 0.0
            best_finish = float("inf")
            for (node, slot), free_at in slot_free.items():
                if node not in allowed:
                    continue
                start = max(free_at, not_before)
                finish = start + self.task_duration_s(block, node)
                if finish < best_finish:
                    best_start = start
                    best_finish = finish
                    best_key = (node, slot)
            if best_key is None:
                where = "surviving replica" if dead else "eligible node"
                raise ValueError(
                    f"block {block.block_id} has no {where} "
                    f"(replicas {block.replicas})"
                )
            slot_free[best_key] = best_finish
            assignments.append(
                (block, best_key[0], best_key, best_start, best_finish)
            )

        dead: set[str] = set()
        for block in ordered:
            assign(block, 0.0, dead)

        # Re-play the timeline against each crash, in chronological order.
        rescheduled = 0
        lost_work = 0.0
        for failure in sorted(failures, key=lambda f: (f.at_s, f.node)):
            if failure.node in dead:
                continue
            dead.add(failure.node)
            victims = [a for a in assignments
                       if a[1] == failure.node and a[4] > failure.at_s]
            assignments = [a for a in assignments if a not in victims]
            for key in list(slot_free):
                if key[0] == failure.node:
                    del slot_free[key]
            # Work already sunk into the killed tasks is lost for good.
            lost_work += sum(
                max(0.0, failure.at_s - start)
                for (_b, _n, _k, start, _f) in victims
            )
            for block, _node, _key, _start, _finish in sorted(
                victims, key=lambda a: -a[0].size_mb
            ):
                assign(block, failure.at_s, dead)
                rescheduled += 1

        busy = {spec.name: 0.0 for spec in self.nodes}
        tasks = {spec.name: 0 for spec in self.nodes}
        makespan = 0.0
        for _block, node, _key, start, finish in assignments:
            busy[node] += finish - start
            tasks[node] += 1
            makespan = max(makespan, finish)

        return SimulationResult(
            makespan_s=makespan,
            busy_s=busy,
            tasks_per_node=tasks,
            total_slots=sum(spec.cores for spec in self.nodes),
            rescheduled_tasks=rescheduled,
            lost_work_s=lost_work,
            failed_nodes=tuple(sorted(dead)),
        )


def default_cluster(num_nodes: int = 6) -> list[NodeSpec]:
    """The paper's testbed: six nodes, two 10-core CPUs each, Gigabit link."""
    return [NodeSpec(name=f"node{i}") for i in range(num_nodes)]
