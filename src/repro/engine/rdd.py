"""Partitioned datasets with lazy transformations — a miniature RDD.

The paper's implementation runs on Spark; this module provides the same
programming model in-process: an immutable, partitioned collection with lazy
narrow transformations (``map``, ``filter``, ``flat_map``,
``map_partitions``), one wide transformation (``reduce_by_key``) and eager
actions (``collect``, ``count``, ``reduce``, ``tree_reduce``,
``aggregate``...).  Lineage is a chain of parent references; computing a
partition walks the chain down to the source data.

Only what the schema-inference workload needs is implemented, but it is
implemented honestly: partitions are computed independently and in parallel
on the context's scheduler, and ``tree_reduce`` performs the balanced
reduction whose safety is exactly the associativity theorem (Theorem 5.5)
of the paper.
"""

from __future__ import annotations

import copy
import random
import threading
from collections import Counter
from typing import Any, Callable, Generic, Hashable, Iterable, Iterator, TypeVar

__all__ = ["RDD"]

T = TypeVar("T")
U = TypeVar("U")
K = TypeVar("K")
V = TypeVar("V")


class RDD(Generic[T]):
    """An immutable partitioned dataset.

    Instances are created through :class:`repro.engine.context.Context`
    (``parallelize``, ``text_file``, ``ndjson_file``) or by transforming an
    existing RDD; user code never calls the constructor directly.
    """

    def __init__(self, context: "Any", num_partitions: int) -> None:
        self.context = context
        self._num_partitions = num_partitions
        self._cache: list[list[T]] | None = None
        self._cache_lock = threading.Lock()

    # ------------------------------------------------------------------
    # partition computation

    @property
    def num_partitions(self) -> int:
        """Number of partitions the dataset is split into."""
        return self._num_partitions

    def compute_partition(self, index: int) -> list[T]:
        """Materialise partition ``index`` (respecting any cached copy)."""
        if self._cache is not None:
            return self._cache[index]
        return self._compute(index)

    def _compute(self, index: int) -> list[T]:  # pragma: no cover - abstract
        raise NotImplementedError

    def cache(self) -> "RDD[T]":
        """Materialise all partitions now and serve future computations
        from memory — the moral equivalent of Spark's ``persist()``.

        Thread-safe: concurrent callers materialise the partitions once
        (double-checked lock; without it two threads can both observe an
        unset cache and compute every partition twice).
        """
        if self._cache is None:
            with self._cache_lock:
                if self._cache is None:
                    self._cache = self._run_per_partition(
                        self.compute_partition
                    )
        return self

    def unpersist(self) -> "RDD[T]":
        """Drop any cached partitions."""
        self._cache = None
        return self

    def _run_per_partition(self, task: Callable[[int], U]) -> list[U]:
        return self.context.scheduler.run(task, range(self.num_partitions))

    # ------------------------------------------------------------------
    # narrow transformations (lazy)

    def map(self, fn: Callable[[T], U]) -> "RDD[U]":
        """Element-wise transformation — the paper's Map phase primitive."""
        return _MapPartitionsRDD(self, lambda part, _i: [fn(x) for x in part])

    def filter(self, predicate: Callable[[T], bool]) -> "RDD[T]":
        """Keep the elements satisfying ``predicate``."""
        return _MapPartitionsRDD(
            self, lambda part, _i: [x for x in part if predicate(x)]
        )

    def flat_map(self, fn: Callable[[T], Iterable[U]]) -> "RDD[U]":
        """Map then flatten one level."""
        return _MapPartitionsRDD(
            self, lambda part, _i: [y for x in part for y in fn(x)]
        )

    def map_quarantined(
        self,
        fn: Callable[[T], U],
        skipped: "Any | None" = None,
        errors: tuple[type[BaseException], ...] = (Exception,),
    ) -> "RDD[U]":
        """Element-wise transformation that drops failing elements.

        Elements for which ``fn`` raises one of ``errors`` are skipped
        instead of failing the whole job — the engine-level half of the
        permissive-ingestion story (``Context.ndjson_file`` uses it to
        keep one bad record from killing a partition).  Pass a
        ``skipped`` accumulator (anything with ``add(int)``, e.g.
        :class:`repro.engine.accumulators.CounterAccumulator`) to count
        the drops per partition.
        """
        def apply(part: list[T], _i: int) -> list[U]:
            out: list[U] = []
            dropped = 0
            for x in part:
                try:
                    out.append(fn(x))
                except errors:
                    dropped += 1
            if dropped and skipped is not None:
                skipped.add(dropped)
            return out

        return _MapPartitionsRDD(self, apply)

    def map_partitions(
        self, fn: Callable[[list[T]], Iterable[U]]
    ) -> "RDD[U]":
        """Transform whole partitions at once (``fn`` sees the full list)."""
        return _MapPartitionsRDD(self, lambda part, _i: list(fn(part)))

    def map_partitions_with_index(
        self, fn: Callable[[int, list[T]], Iterable[U]]
    ) -> "RDD[U]":
        """Like :meth:`map_partitions`, also passing the partition index."""
        return _MapPartitionsRDD(self, lambda part, i: list(fn(i, part)))

    def glom(self) -> "RDD[list[T]]":
        """Turn each partition into a single list element."""
        return _MapPartitionsRDD(self, lambda part, _i: [list(part)])

    def key_by(self, fn: Callable[[T], K]) -> "RDD[tuple[K, T]]":
        """Pair every element with a computed key."""
        return self.map(lambda x: (fn(x), x))

    def union(self, other: "RDD[T]") -> "RDD[T]":
        """Concatenate two datasets partition-wise (no shuffle)."""
        return _UnionRDD(self, other)

    def sample(self, fraction: float, seed: int = 0) -> "RDD[T]":
        """Bernoulli sample: keep each element with probability ``fraction``.

        Deterministic for a given ``seed`` and partitioning (each partition
        derives its own RNG), like Spark's ``sample`` without replacement.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")

        def sample_partition(index: int, part: list[T]) -> list[T]:
            rng = random.Random(f"sample:{seed}:{index}")
            return [x for x in part if rng.random() < fraction]

        return self.map_partitions_with_index(sample_partition)

    def zip_with_index(self) -> "RDD[tuple[T, int]]":
        """Pair every element with its global index (two passes, no shuffle).

        The first pass counts partition lengths; the second offsets each
        partition — the same trade-off Spark's ``zipWithIndex`` makes.
        """
        lengths = self._run_per_partition(
            lambda i: len(self.compute_partition(i))
        )
        offsets = [0]
        for length in lengths[:-1]:
            offsets.append(offsets[-1] + length)

        def index_partition(index: int, part: list[T]) -> list[tuple[T, int]]:
            base = offsets[index]
            return [(x, base + i) for i, x in enumerate(part)]

        return self.map_partitions_with_index(index_partition)

    def coalesce(self, num_partitions: int) -> "RDD[T]":
        """Reduce the partition count by concatenating adjacent partitions."""
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        return _CoalesceRDD(self, min(num_partitions, self.num_partitions))

    # ------------------------------------------------------------------
    # wide transformation

    def reduce_by_key(
        self: "RDD[tuple[K, V]]",
        fn: Callable[[V, V], V],
        num_partitions: int | None = None,
    ) -> "RDD[tuple[K, V]]":
        """Combine values sharing a key with an associative function.

        Performs a map-side combine per input partition (like Spark), then a
        hash shuffle into ``num_partitions`` output partitions.
        """
        return _ShuffledRDD(self, fn, num_partitions or self.num_partitions)

    def distinct(self) -> "RDD[T]":
        """Deduplicate elements (requires hashability); uses the shuffle."""
        paired: RDD[tuple[T, None]] = self.map(lambda x: (x, None))
        reduced = paired.reduce_by_key(lambda a, _b: a)
        return reduced.map(lambda kv: kv[0])

    # ------------------------------------------------------------------
    # actions (eager)

    def collect(self) -> list[T]:
        """Materialise the whole dataset in partition order."""
        parts = self._run_per_partition(self.compute_partition)
        return [x for part in parts for x in part]

    def count(self) -> int:
        """Number of elements."""
        lengths = self._run_per_partition(
            lambda i: len(self.compute_partition(i))
        )
        return sum(lengths)

    def take(self, n: int) -> list[T]:
        """The first ``n`` elements in partition order."""
        out: list[T] = []
        for index in range(self.num_partitions):
            if len(out) >= n:
                break
            out.extend(self.compute_partition(index))
        return out[:n]

    def first(self) -> T:
        """The first element; raises ``ValueError`` on an empty dataset."""
        got = self.take(1)
        if not got:
            raise ValueError("RDD is empty")
        return got[0]

    def reduce(self, fn: Callable[[T, T], T]) -> T:
        """Reduce with an associative, commutative binary function.

        Each partition is reduced in parallel, then the per-partition
        results are folded on the driver.  Empty datasets raise
        ``ValueError`` (as in Spark).
        """
        partials = self._partition_reductions(fn)
        if not partials:
            raise ValueError("reduce of an empty RDD")
        result = partials[0]
        for partial in partials[1:]:
            result = fn(result, partial)
        return result

    def tree_reduce(self, fn: Callable[[T, T], T], depth: int | None = None) -> T:
        """Balanced reduction of the per-partition results.

        This is the shape of computation whose correctness rests on
        associativity (paper Theorem 5.5): partial results are combined
        pairwise in parallel rounds rather than in one sequential fold.
        ``depth`` bounds the number of rounds (``None`` = fully balanced).
        """
        partials = self._partition_reductions(fn)
        if not partials:
            raise ValueError("tree_reduce of an empty RDD")
        rounds = 0
        while len(partials) > 1 and (depth is None or rounds < depth):
            pairs = [
                tuple(partials[i:i + 2]) for i in range(0, len(partials), 2)
            ]
            partials = self.context.scheduler.run(
                lambda pair: pair[0] if len(pair) == 1 else fn(*pair), pairs
            )
            rounds += 1
        result = partials[0]
        for partial in partials[1:]:
            result = fn(result, partial)
        return result

    def fold(self, zero: T, fn: Callable[[T, T], T]) -> T:
        """Reduce with a neutral element; empty datasets return ``zero``."""
        partials = self._partition_reductions(fn)
        result = zero
        for partial in partials:
            result = fn(result, partial)
        return result

    def aggregate(
        self,
        zero: U,
        seq_op: Callable[[U, T], U],
        comb_op: Callable[[U, U], U],
    ) -> U:
        """Spark-style two-operator aggregation.

        ``seq_op`` folds elements into a per-partition accumulator starting
        from ``zero``; ``comb_op`` merges the per-partition accumulators.
        Each partition gets its own deep copy of ``zero`` (as in Spark,
        where the zero value is shipped per task), so mutating accumulators
        in ``seq_op`` is safe.
        """
        def per_partition(index: int) -> U:
            acc = copy.deepcopy(zero)
            for x in self.compute_partition(index):
                acc = seq_op(acc, x)
            return acc

        partials = self._run_per_partition(per_partition)
        result = copy.deepcopy(zero)
        for partial in partials:
            result = comb_op(result, partial)
        return result

    def count_by_value(self: "RDD[Hashable]") -> Counter:
        """Histogram of element occurrences."""
        return self.aggregate(
            Counter(),
            lambda acc, x: _counter_add(acc, x),
            lambda a, b: a + b,
        )

    def _partition_reductions(self, fn: Callable[[T, T], T]) -> list[T]:
        """Reduce each non-empty partition in parallel."""
        def per_partition(index: int) -> list[T]:
            part = self.compute_partition(index)
            if not part:
                return []
            result = part[0]
            for x in part[1:]:
                result = fn(result, x)
            return [result]

        nested = self._run_per_partition(per_partition)
        return [x for sub in nested for x in sub]

    def __iter__(self) -> Iterator[T]:
        for index in range(self.num_partitions):
            yield from self.compute_partition(index)

    def save_ndjson(self, directory: "Any") -> list[str]:
        """Write the dataset as NDJSON part files, one per partition.

        Produces ``part-00000.ndjson`` ... in ``directory`` (created if
        missing), like Spark's ``saveAsTextFile`` layout.  Returns the
        written paths in partition order.  Elements must be JSON values.
        """
        import os

        from repro.jsonio.ndjson import write_ndjson

        os.makedirs(directory, exist_ok=True)

        def write_partition(index: int) -> str:
            path = os.path.join(
                str(directory), f"part-{index:05d}.ndjson"
            )
            write_ndjson(path, self.compute_partition(index))
            return path

        return self._run_per_partition(write_partition)

    # ------------------------------------------------------------------
    # lineage inspection

    def _parents(self) -> list["RDD"]:
        """Direct lineage parents (overridden by derived RDDs)."""
        return []

    def _describe(self) -> str:
        """One-line description of this node for :meth:`debug_string`."""
        return f"{type(self).__name__.lstrip('_')}[{self.num_partitions}]"

    def debug_string(self) -> str:
        """Render the lineage chain, in the spirit of Spark's
        ``toDebugString``: one line per ancestor, indented by depth.

        >>> from repro.engine.context import Context
        >>> with Context(parallelism=1) as ctx:
        ...     rdd = ctx.parallelize([1, 2], 2).map(str).filter(len)
        ...     print(rdd.debug_string())
        MapPartitionsRDD[2]
          MapPartitionsRDD[2]
            ParallelizedRDD[2]
        """
        lines: list[str] = []

        def walk(node: "RDD", depth: int) -> None:
            cached = " (cached)" if node._cache is not None else ""
            lines.append("  " * depth + node._describe() + cached)
            for parent in node._parents():
                walk(parent, depth + 1)

        walk(self, 0)
        return "\n".join(lines)


def _counter_add(acc: Counter, x: Hashable) -> Counter:
    acc[x] += 1
    return acc


class _MapPartitionsRDD(RDD[U]):
    """Narrow dependency: partition ``i`` depends only on parent's ``i``."""

    def __init__(
        self, parent: RDD[T], fn: Callable[[list[T], int], list[U]]
    ) -> None:
        super().__init__(parent.context, parent.num_partitions)
        self._parent = parent
        self._fn = fn

    def _compute(self, index: int) -> list[U]:
        return self._fn(self._parent.compute_partition(index), index)

    def _parents(self) -> list[RDD]:
        return [self._parent]


class _UnionRDD(RDD[T]):
    """Concatenation of the partitions of two parents."""

    def __init__(self, left: RDD[T], right: RDD[T]) -> None:
        super().__init__(left.context, left.num_partitions + right.num_partitions)
        self._left = left
        self._right = right

    def _compute(self, index: int) -> list[T]:
        if index < self._left.num_partitions:
            return self._left.compute_partition(index)
        return self._right.compute_partition(index - self._left.num_partitions)

    def _parents(self) -> list[RDD]:
        return [self._left, self._right]


class _CoalesceRDD(RDD[T]):
    """Concatenates contiguous runs of parent partitions (no shuffle)."""

    def __init__(self, parent: RDD[T], num_partitions: int) -> None:
        super().__init__(parent.context, num_partitions)
        self._parent = parent
        n, k = parent.num_partitions, num_partitions
        bounds = [round(i * n / k) for i in range(k + 1)]
        self._ranges = list(zip(bounds, bounds[1:]))

    def _compute(self, index: int) -> list[T]:
        start, stop = self._ranges[index]
        out: list[T] = []
        for parent_index in range(start, stop):
            out.extend(self._parent.compute_partition(parent_index))
        return out

    def _parents(self) -> list[RDD]:
        return [self._parent]


class _ShuffledRDD(RDD[tuple[K, V]]):
    """Hash shuffle with map-side combine, backing ``reduce_by_key``."""

    def __init__(
        self,
        parent: RDD[tuple[K, V]],
        fn: Callable[[V, V], V],
        num_partitions: int,
    ) -> None:
        super().__init__(parent.context, num_partitions)
        self._parent = parent
        self._fn = fn
        self._buckets: list[list[dict[K, V]]] | None = None
        self._map_side_lock = threading.Lock()

    def _map_side(self) -> list[list[dict[K, V]]]:
        """Run the map side once: per parent partition, combine locally and
        split the combined dict into one bucket per output partition.

        Guarded by a lock: several reduce-side partitions may be computed
        concurrently and must share a single map-side pass.
        """
        with self._map_side_lock:
            return self._map_side_locked()

    def _map_side_locked(self) -> list[list[dict[K, V]]]:
        if self._buckets is not None:
            return self._buckets

        fn = self._fn
        n_out = self.num_partitions

        def per_partition(index: int) -> list[dict[K, V]]:
            combined: dict[K, V] = {}
            for key, value in self._parent.compute_partition(index):
                if key in combined:
                    combined[key] = fn(combined[key], value)
                else:
                    combined[key] = value
            buckets: list[dict[K, V]] = [dict() for _ in range(n_out)]
            for key, value in combined.items():
                buckets[hash(key) % n_out][key] = value
            return buckets

        self._buckets = self.context.scheduler.run(
            per_partition, range(self._parent.num_partitions)
        )
        return self._buckets

    def _compute(self, index: int) -> list[tuple[K, V]]:
        fn = self._fn
        merged: dict[K, V] = {}
        for bucket_row in self._map_side():
            for key, value in bucket_row[index].items():
                if key in merged:
                    merged[key] = fn(merged[key], value)
                else:
                    merged[key] = value
        return list(merged.items())

    def _parents(self) -> list[RDD]:
        return [self._parent]
