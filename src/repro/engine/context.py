"""The engine entry point, in the style of Spark's ``SparkContext``.

A :class:`Context` owns a scheduler and creates source RDDs::

    with Context(parallelism=4) as ctx:
        schema = (ctx.parallelize(records, num_partitions=8)
                     .map(infer_type)
                     .tree_reduce(fuse))
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable, Sequence, TypeVar

from repro.engine.accumulators import CounterAccumulator
from repro.engine.faults import FaultPlan
from repro.engine.rdd import RDD
from repro.engine.scheduler import RetryPolicy, Scheduler
from repro.jsonio.errors import JsonError
from repro.jsonio.ndjson import iter_lines
from repro.jsonio.parser import loads

__all__ = ["Context"]

T = TypeVar("T")


def split_evenly(items: Sequence[T], num_partitions: int) -> list[list[T]]:
    """Split ``items`` into ``num_partitions`` contiguous, balanced chunks.

    Sizes differ by at most one element; trailing partitions may be empty
    when there are fewer items than partitions.

    >>> split_evenly([1, 2, 3, 4, 5, 6], 3)
    [[1, 2], [3, 4], [5, 6]]
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    n = len(items)
    bounds = [round(i * n / num_partitions) for i in range(num_partitions + 1)]
    return [list(items[a:b]) for a, b in zip(bounds, bounds[1:])]


class _ParallelizedRDD(RDD[T]):
    """Source RDD over in-memory data, pre-split into partitions."""

    def __init__(self, context: "Context", partitions: list[list[T]]) -> None:
        super().__init__(context, len(partitions))
        self._partitions = partitions

    def _compute(self, index: int) -> list[T]:
        return self._partitions[index]


class Context:
    """Driver-side entry point: creates source RDDs and owns the scheduler.

    ``retry_policy`` configures the scheduler's fault tolerance (retries,
    backoff, per-task timeouts, pool-rebuild budget); ``fault_plan``
    threads a deterministic fault injector through every dispatch — the
    default is no injection.  See :mod:`repro.engine.scheduler` and
    :mod:`repro.engine.faults`.
    """

    def __init__(
        self,
        parallelism: int | None = None,
        backend: str = "thread",
        retry_policy: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self.scheduler = Scheduler(
            parallelism,
            backend=backend,
            retry_policy=retry_policy,
            fault_plan=fault_plan,
        )

    @property
    def backend(self) -> str:
        """Execution backend of the scheduler (``"thread"`` or ``"process"``)."""
        return self.scheduler.backend

    @property
    def retry_policy(self) -> RetryPolicy:
        """The scheduler's retry policy."""
        return self.scheduler.retry_policy

    @property
    def default_parallelism(self) -> int:
        """Default number of partitions for new source RDDs."""
        return self.scheduler.parallelism

    def parallelize(
        self, data: Iterable[T], num_partitions: int | None = None
    ) -> RDD[T]:
        """Distribute an in-memory collection over ``num_partitions``."""
        items = list(data)
        n = num_partitions or self.default_parallelism
        return _ParallelizedRDD(self, split_evenly(items, n))

    def from_partitions(self, partitions: Iterable[Iterable[T]]) -> RDD[T]:
        """Build an RDD from an explicit partition layout.

        Used by the partition-isolated strategy (paper Section 6.2 /
        Table 8), where the caller controls exactly what each partition
        holds.
        """
        return _ParallelizedRDD(self, [list(p) for p in partitions])

    def text_file(
        self, path: str | Path, num_partitions: int | None = None
    ) -> RDD[str]:
        """One element per non-blank line of ``path``."""
        return self.parallelize(iter_lines(path), num_partitions)

    def ndjson_file(
        self,
        path: str | Path,
        num_partitions: int | None = None,
        permissive: bool = False,
        skipped: CounterAccumulator | None = None,
    ) -> RDD[Any]:
        """One parsed JSON record per line of ``path``.

        Parsing happens inside the partitions (i.e. in parallel), not at
        RDD-creation time.  With ``permissive=True`` malformed lines are
        dropped instead of failing the job; pass a ``skipped``
        accumulator to count them.  (Accumulator updates require the
        thread backend to be visible driver-side; the file pipeline
        :func:`repro.inference.pipeline.infer_ndjson_file` carries
        quarantine counts through partition summaries instead and works
        on every backend.)
        """
        lines = self.text_file(path, num_partitions)
        if not permissive:
            return lines.map(loads)
        return lines.map_quarantined(
            loads, skipped=skipped, errors=(JsonError,)
        )

    def stop(self) -> None:
        """Shut the scheduler down; the context may be reused afterwards."""
        self.scheduler.shutdown()

    def __enter__(self) -> "Context":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
