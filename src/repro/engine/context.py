"""The engine entry point, in the style of Spark's ``SparkContext``.

A :class:`Context` owns a scheduler and creates source RDDs::

    with Context(parallelism=4) as ctx:
        schema = (ctx.parallelize(records, num_partitions=8)
                     .map(infer_type)
                     .tree_reduce(fuse))
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence, TypeVar

from repro.engine.accumulators import CounterAccumulator
from repro.engine.faults import FaultPlan
from repro.engine.rdd import RDD
from repro.engine.scheduler import RetryPolicy, Scheduler
from repro.jsonio.errors import JsonError
from repro.jsonio.ndjson import iter_lines
from repro.jsonio.parser import loads
from repro.jsonio.splits import (
    DEFAULT_MIN_SPLIT_BYTES,
    iter_split_lines,
    plan_splits,
)

__all__ = ["Context", "SequenceView", "split_evenly"]

T = TypeVar("T")


class SequenceView(Sequence[T]):
    """A zero-copy window ``[start, stop)`` over an underlying sequence.

    :func:`split_evenly` hands these out instead of sliced copies, so
    partitioning an N-element dataset allocates O(partitions) objects
    instead of duplicating all N references.  The view is read-only and
    *aliases* the base sequence — mutating the base afterwards shows
    through, like :class:`memoryview`.

    Pickling materialises the window into a plain list: a view shipped to
    a worker process carries only its own slice, never the whole base
    sequence.  Equality compares element-wise against any sequence, so
    views interoperate with lists in comparisons and tests.
    """

    __slots__ = ("_base", "_start", "_stop")

    def __init__(self, base: Sequence[T], start: int, stop: int) -> None:
        self._base = base
        self._start = start
        self._stop = max(start, stop)

    def __len__(self) -> int:
        return self._stop - self._start

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self))
            if step != 1:
                return [self._base[self._start + i]
                        for i in range(start, stop, step)]
            return SequenceView(
                self._base, self._start + start, self._start + stop
            )
        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("SequenceView index out of range")
        return self._base[self._start + index]

    def __iter__(self) -> Iterator[T]:
        base = self._base
        for i in range(self._start, self._stop):
            yield base[i]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (Sequence, SequenceView)) and not isinstance(
            other, (str, bytes)
        ):
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other)
            )
        return NotImplemented

    def __repr__(self) -> str:
        return repr(list(self))

    def __reduce__(self):
        # Ship only the window's elements across a process boundary (or
        # into any other pickle), reconstructed as a plain list.
        return (list, (list(self),))


def split_evenly(
    items: Sequence[T], num_partitions: int
) -> list[SequenceView[T]]:
    """Split ``items`` into ``num_partitions`` contiguous, balanced chunks.

    Sizes differ by at most one element; trailing partitions may be empty
    when there are fewer items than partitions.  Accepts any sequence and
    returns lazy :class:`SequenceView` windows — no element is copied, so
    splitting a million-record list costs a few dozen objects.  The views
    alias ``items``; do not mutate it while they are in use.

    >>> split_evenly([1, 2, 3, 4, 5, 6], 3)
    [[1, 2], [3, 4], [5, 6]]
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    n = len(items)
    bounds = [round(i * n / num_partitions) for i in range(num_partitions + 1)]
    return [SequenceView(items, a, b) for a, b in zip(bounds, bounds[1:])]


class _ParallelizedRDD(RDD[T]):
    """Source RDD over in-memory data, pre-split into partitions."""

    def __init__(
        self, context: "Context", partitions: list[Sequence[T]]
    ) -> None:
        super().__init__(context, len(partitions))
        self._partitions = partitions

    def _compute(self, index: int) -> list[T]:
        return self._partitions[index]


class _SplitFileRDD(RDD[str]):
    """Source RDD over a file's byte-range splits: one split per partition.

    The driver holds only :class:`~repro.jsonio.splits.FileSplit`
    descriptors; each partition opens the file and reads its own byte
    range when computed — on the engine's workers, in parallel — so no
    line text ever lives at the driver.
    """

    def __init__(self, context: "Context", splits: list) -> None:
        super().__init__(context, len(splits))
        self._splits = splits

    def _compute(self, index: int) -> list[str]:
        return [text for _, text in iter_split_lines(self._splits[index])]


class Context:
    """Driver-side entry point: creates source RDDs and owns the scheduler.

    ``retry_policy`` configures the scheduler's fault tolerance (retries,
    backoff, per-task timeouts, pool-rebuild budget); ``fault_plan``
    threads a deterministic fault injector through every dispatch — the
    default is no injection.  See :mod:`repro.engine.scheduler` and
    :mod:`repro.engine.faults`.

    Worker pools persist across jobs until :meth:`stop`, and with
    ``warm=True`` (the default) the inference kernel's partition tasks
    keep per-worker state (type interner, fusion memo, key cache) warm
    across tasks and jobs too — a long-lived context gets faster on the
    second job over similar data, with identical results.  ``warm=False``
    opts out; :meth:`invalidate_warm_state` retires the state explicitly
    between unrelated datasets.
    """

    def __init__(
        self,
        parallelism: int | None = None,
        backend: str = "thread",
        retry_policy: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        warm: bool = True,
    ) -> None:
        self.scheduler = Scheduler(
            parallelism,
            backend=backend,
            retry_policy=retry_policy,
            fault_plan=fault_plan,
            warm=warm,
        )

    @property
    def backend(self) -> str:
        """Execution backend of the scheduler (``"thread"`` or ``"process"``)."""
        return self.scheduler.backend

    @property
    def warm(self) -> bool:
        """Whether partition tasks keep per-worker kernel state warm."""
        return self.scheduler.warm

    def invalidate_warm_state(self) -> int:
        """Retire every worker's warm kernel state (see the scheduler)."""
        return self.scheduler.invalidate_warm_state()

    def prestart(self) -> int:
        """Spin up the worker pool before the first job (best effort)."""
        return self.scheduler.prestart()

    @property
    def retry_policy(self) -> RetryPolicy:
        """The scheduler's retry policy."""
        return self.scheduler.retry_policy

    @property
    def default_parallelism(self) -> int:
        """Default number of partitions for new source RDDs."""
        return self.scheduler.parallelism

    def parallelize(
        self, data: Iterable[T], num_partitions: int | None = None
    ) -> RDD[T]:
        """Distribute an in-memory collection over ``num_partitions``."""
        items = list(data)
        n = num_partitions or self.default_parallelism
        return _ParallelizedRDD(self, split_evenly(items, n))

    def from_partitions(self, partitions: Iterable[Iterable[T]]) -> RDD[T]:
        """Build an RDD from an explicit partition layout.

        Used by the partition-isolated strategy (paper Section 6.2 /
        Table 8), where the caller controls exactly what each partition
        holds.
        """
        return _ParallelizedRDD(self, [list(p) for p in partitions])

    def text_file(
        self,
        path: str | Path,
        num_partitions: int | None = None,
        split_mode: str = "lines",
        min_split_bytes: int = DEFAULT_MIN_SPLIT_BYTES,
    ) -> RDD[str]:
        """One element per non-blank line of ``path``.

        ``split_mode="lines"`` (default) reads the file at the driver and
        distributes the lines.  ``split_mode="bytes"`` plans byte-range
        splits from the file size alone (see
        :func:`repro.jsonio.splits.plan_splits`) and each partition reads
        its own range when computed — the driver never materialises the
        file, and partition computation parallelises the I/O.
        """
        if split_mode == "bytes":
            splits = plan_splits(
                path,
                num_partitions or self.default_parallelism,
                min_split_bytes,
            )
            return _SplitFileRDD(self, splits)
        if split_mode != "lines":
            raise ValueError(
                f"unknown split_mode {split_mode!r}; expected 'lines' or "
                "'bytes'"
            )
        return self.parallelize(iter_lines(path), num_partitions)

    def ndjson_file(
        self,
        path: str | Path,
        num_partitions: int | None = None,
        permissive: bool = False,
        skipped: CounterAccumulator | None = None,
        split_mode: str = "lines",
    ) -> RDD[Any]:
        """One parsed JSON record per line of ``path``.

        Parsing happens inside the partitions (i.e. in parallel), not at
        RDD-creation time; ``split_mode="bytes"`` additionally moves the
        file *reading* into the partitions (see :meth:`text_file`).  With
        ``permissive=True`` malformed lines are dropped instead of
        failing the job; pass a ``skipped`` accumulator to count them.
        (Accumulator updates require the thread backend to be visible
        driver-side; the file pipeline
        :func:`repro.inference.pipeline.infer_ndjson_file` carries
        quarantine counts through partition summaries instead and works
        on every backend.)
        """
        lines = self.text_file(path, num_partitions, split_mode=split_mode)
        if not permissive:
            return lines.map(loads)
        return lines.map_quarantined(
            loads, skipped=skipped, errors=(JsonError,)
        )

    def merge_checkpoints(
        self,
        inputs: "Sequence[str | Path | Any]",
        out: str | Path | None = None,
    ) -> "Any":
        """Union schema checkpoints on this context's scheduler.

        The distributed face of :func:`repro.store.merge_checkpoints`:
        checkpoint loads (parsing the stored type files) run as parallel
        tasks, and above the kernel's tree-merge threshold the pairwise
        summary merges do too — safe in any grouping by associativity
        (Theorem 5.5).  Loads, saves and reused record counts are
        accounted in :class:`~repro.engine.scheduler.SchedulerStats`.
        With ``out``, the merged checkpoint is saved there.  Returns the
        merged :class:`~repro.store.Checkpoint`.
        """
        # Imported lazily: the store imports the inference kernel, which
        # sits above this module in the package layering.
        from repro.store.checkpoint import merge_checkpoints

        return merge_checkpoints(
            inputs,
            out=out,
            scheduler=self.scheduler,
            stats=self.scheduler.stats,
        )

    def stop(self) -> None:
        """Shut the scheduler down; the context may be reused afterwards."""
        self.scheduler.shutdown()

    def __enter__(self) -> "Context":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
