"""Deterministic fault injection for the engine (chaos testing without luck).

Real clusters lose workers and hit flaky tasks; a scheduler that claims to
recover from those must be *testable* without relying on actual
nondeterministic crashes.  This module provides a seedable, fully
deterministic injector that the scheduler consults on every task dispatch:

* :class:`Fault` — one planned incident, keyed by ``(partition, attempt)``:
  raise a transient exception, kill the worker process, or delay the task.
* :class:`FaultPlan` — an immutable, picklable set of faults.  Because a
  fault fires for one specific attempt number only, a retrying scheduler
  always converges: the retry runs the same task at ``attempt + 1``, where
  the plan (by construction) is silent.
* :exc:`TransientError` / :exc:`FaultInjected` — the marker hierarchy the
  scheduler's retry classifier treats as retryable.

Plans can be built explicitly, generated pseudo-randomly from a seed
(:meth:`FaultPlan.random_plan`), or read from the ``REPRO_FAULT_SEED`` /
``REPRO_FAULT_RATE`` environment variables (:meth:`FaultPlan.from_env`) —
which is how the CI fault-injection job turns the whole recovery machinery
on for a test run.  The default everywhere is :meth:`FaultPlan.none`, a
plan with no faults, whose :meth:`~FaultPlan.apply` is a no-op.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Iterable, Mapping

__all__ = [
    "CRASH_EXIT_CODE",
    "CRASH_POINT_ENV",
    "FAULT_KINDS",
    "Fault",
    "FaultInjected",
    "FaultPlan",
    "TransientError",
    "WORKER_KILL_EXIT_CODE",
    "crash_due",
    "crash_point",
    "reset_crash_points",
]

#: Supported fault kinds.
FAULT_KINDS = ("fail", "kill", "delay")

#: Exit code a killed worker process dies with (visible in core dumps /
#: process tables when debugging an injected run).
WORKER_KILL_EXIT_CODE = 73

#: Exit code a process dies with at a planned :func:`crash_point` — distinct
#: from :data:`WORKER_KILL_EXIT_CODE` so a crash-matrix harness can tell a
#: planned driver crash from an injected worker kill.
CRASH_EXIT_CODE = 66

#: Environment variable naming the crash point to fire:
#: ``"name"`` or ``"name:occurrence"`` (1-based; default 1).
CRASH_POINT_ENV = "REPRO_CRASH_POINT"


class TransientError(Exception):
    """Base class for errors the scheduler should treat as retryable.

    User tasks may raise subclasses of this to signal "try me again"
    (e.g. a wrapped network hiccup); the injector's :exc:`FaultInjected`
    is one such subclass.
    """


class FaultInjected(TransientError):
    """A deliberately injected transient task failure."""

    def __init__(self, partition: int, attempt: int, message: str) -> None:
        super().__init__(
            f"injected fault on partition {partition} attempt {attempt}: "
            f"{message}"
        )
        self.partition = partition
        self.attempt = attempt


@dataclass(frozen=True)
class Fault:
    """One planned incident: what happens to ``(partition, attempt)``.

    ``kind`` is one of :data:`FAULT_KINDS`:

    * ``"fail"`` — raise :exc:`FaultInjected` before the task body runs;
    * ``"kill"`` — hard-kill the worker *process* (``os._exit``), which the
      driver observes as a broken pool.  On a thread worker (where killing
      would take the driver down too) it degrades to a ``"fail"``;
    * ``"delay"`` — sleep ``delay_s`` before running the task body, for
      exercising task timeouts.
    """

    partition: int
    attempt: int
    kind: str = "fail"
    delay_s: float = 0.0
    message: str = "injected"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, picklable schedule of faults.

    The plan is a pure function of its fault set: given the same plan, the
    same ``(partition, attempt)`` pair always produces the same incident,
    so every recovery path is reproducible in CI.  An empty plan
    (:meth:`none`) is the no-op default and costs one attribute check per
    dispatch.
    """

    faults: tuple[Fault, ...] = field(default=())

    def __post_init__(self) -> None:
        keys = [(f.partition, f.attempt) for f in self.faults]
        if len(set(keys)) != len(keys):
            raise ValueError("duplicate (partition, attempt) in fault plan")

    # ------------------------------------------------------------------
    # constructors

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan: inject nothing."""
        return cls(())

    @classmethod
    def transient_failures(
        cls, partitions: Iterable[int], attempt: int = 0
    ) -> "FaultPlan":
        """Fail each listed partition once, at the given attempt."""
        return cls(tuple(
            Fault(partition=p, attempt=attempt, kind="fail")
            for p in partitions
        ))

    @classmethod
    def random_plan(
        cls,
        seed: int,
        num_partitions: int,
        rate: float = 0.2,
        kinds: tuple[str, ...] = ("fail",),
        max_attempt: int = 0,
    ) -> "FaultPlan":
        """A pseudo-random plan, fully determined by ``seed``.

        Each ``(partition, attempt)`` pair with ``attempt <= max_attempt``
        independently receives a fault with probability ``rate``; the kind
        is drawn uniformly from ``kinds``.  With ``max_attempt`` strictly
        below a scheduler's retry budget the injected run is guaranteed to
        converge to the fault-free result.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        rng = random.Random(f"fault-plan:{seed}")
        faults = []
        for partition in range(num_partitions):
            for attempt in range(max_attempt + 1):
                if rng.random() < rate:
                    faults.append(Fault(
                        partition=partition,
                        attempt=attempt,
                        kind=rng.choice(kinds),
                        message=f"seed {seed}",
                    ))
        return cls(tuple(faults))

    @classmethod
    def from_env(
        cls,
        num_partitions: int,
        environ: Mapping[str, str] | None = None,
    ) -> "FaultPlan":
        """Build a plan from ``REPRO_FAULT_SEED`` / ``REPRO_FAULT_RATE``.

        Returns the empty plan when ``REPRO_FAULT_SEED`` is unset or
        ``"0"`` — so exporting a nonzero seed (as the CI fault-injection
        job does) is the single switch that turns injection on.
        """
        env = os.environ if environ is None else environ
        seed = int(env.get("REPRO_FAULT_SEED", "0"))
        if not seed:
            return cls.none()
        rate = float(env.get("REPRO_FAULT_RATE", "0.2"))
        return cls.random_plan(seed, num_partitions, rate=rate)

    # ------------------------------------------------------------------
    # queries

    def __bool__(self) -> bool:
        return bool(self.faults)

    def lookup(self, partition: int, attempt: int) -> Fault | None:
        """The fault planned for ``(partition, attempt)``, if any."""
        for fault in self.faults:
            if fault.partition == partition and fault.attempt == attempt:
                return fault
        return None

    def max_planned_attempt(self) -> int:
        """Highest attempt number any fault targets (-1 for no faults).

        A retry budget of ``max_planned_attempt() + 1`` retries is always
        enough for a run under this plan to converge.
        """
        return max((f.attempt for f in self.faults), default=-1)

    # ------------------------------------------------------------------
    # execution

    def apply(self, partition: int, attempt: int, allow_kill: bool) -> None:
        """Fire the fault planned for this dispatch, if any.

        Called by the scheduler's task wrapper right before the task body,
        on the worker that will run it.  ``allow_kill`` is True only on
        process-pool workers; elsewhere a ``"kill"`` degrades to a
        ``"fail"`` (killing a thread worker would kill the driver).
        """
        fault = self.lookup(partition, attempt)
        if fault is None:
            return
        if fault.kind == "delay":
            time.sleep(fault.delay_s)
            return
        if fault.kind == "kill" and allow_kill:
            os._exit(WORKER_KILL_EXIT_CODE)
        raise FaultInjected(partition, attempt, fault.message)


# ----------------------------------------------------------------------
# Process-level crash points.
#
# Where :class:`FaultPlan` injects *task*-level incidents the scheduler is
# expected to recover from in-process, a crash point kills the whole
# process (``os._exit``) at a named durability boundary — "after the
# journal header was fsynced", "between the two renames of a checkpoint
# swap" — so a subprocess harness can prove that a resume from the
# on-disk state the crash left behind reproduces the uninterrupted run.
#
# Activation is by environment variable so the harness controls the child
# without any code plumbing: ``REPRO_CRASH_POINT=name`` crashes at the
# first time ``name`` is reached, ``REPRO_CRASH_POINT=name:3`` at the
# third.  In a normal process the env var is unset and every
# :func:`crash_point` call is a dict lookup + string compare.

_crash_hits: dict[str, int] = {}


def _crash_spec(environ: Mapping[str, str] | None = None):
    env = os.environ if environ is None else environ
    spec = env.get(CRASH_POINT_ENV, "")
    if not spec:
        return None, 0
    name, _, occurrence = spec.partition(":")
    try:
        nth = int(occurrence) if occurrence else 1
    except ValueError:
        raise ValueError(
            f"malformed {CRASH_POINT_ENV} spec {spec!r}: occurrence must "
            f"be an integer"
        ) from None
    return name, max(1, nth)


def reset_crash_points() -> None:
    """Forget all crash-point hit counts (test isolation helper)."""
    _crash_hits.clear()


def crash_due(name: str) -> bool:
    """Record a hit on crash point ``name``; True when it should fire.

    Counting is per-process: occurrence ``k`` in ``name:k`` means the
    k-th time this process reaches the point.  Callers that need to do
    work *before* dying (e.g. write half a journal frame to simulate a
    torn append) check :func:`crash_due` and exit themselves with
    :data:`CRASH_EXIT_CODE`; everyone else just calls
    :func:`crash_point`.
    """
    armed, nth = _crash_spec()
    if armed is None or armed != name:
        return False
    _crash_hits[name] = _crash_hits.get(name, 0) + 1
    return _crash_hits[name] == nth


def crash_point(name: str) -> None:
    """Die with :data:`CRASH_EXIT_CODE` if crash point ``name`` is armed.

    ``os._exit`` — no atexit handlers, no flush, no unwinding — the
    closest a test can get to SIGKILL while still choosing the line it
    lands on.
    """
    if crash_due(name):
        os._exit(CRASH_EXIT_CODE)
