"""Shared accumulators, in the style of Spark's ``Accumulator``.

Tasks running on the scheduler's worker threads can add to an accumulator;
the driver reads the total after the action completes.  Used by the
pipelines to count records, parse failures and distinct types without a
second pass over the data.
"""

from __future__ import annotations

import threading
from typing import Callable, Generic, TypeVar

__all__ = ["Accumulator", "CounterAccumulator"]

T = TypeVar("T")


class Accumulator(Generic[T]):
    """A write-only-from-tasks, read-from-driver accumulator.

    ``combine`` must be associative and commutative — the same contract the
    paper's fusion operator satisfies, and for the same reason: updates
    arrive in a nondeterministic order.
    """

    def __init__(self, zero: T, combine: Callable[[T, T], T]) -> None:
        self._value = zero
        self._combine = combine
        self._lock = threading.Lock()

    def add(self, update: T) -> None:
        """Merge ``update`` into the accumulator (thread-safe)."""
        with self._lock:
            self._value = self._combine(self._value, update)

    @property
    def value(self) -> T:
        """Current accumulated value."""
        with self._lock:
            return self._value


class CounterAccumulator(Accumulator[int]):
    """The common integer-sum accumulator."""

    def __init__(self) -> None:
        super().__init__(0, lambda a, b: a + b)

    def increment(self, by: int = 1) -> None:
        """Add ``by`` (default 1) to the counter."""
        self.add(by)
