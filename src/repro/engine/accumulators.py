"""Shared accumulators, in the style of Spark's ``Accumulator``.

Tasks running on the scheduler's worker threads can add to an accumulator;
the driver reads the total after the action completes.  Used by the
pipelines to count records, parse failures and distinct types without a
second pass over the data.
"""

from __future__ import annotations

import threading
from typing import Callable, Generic, TypeVar

__all__ = ["Accumulator", "CounterAccumulator", "MapAccumulator"]

T = TypeVar("T")


class Accumulator(Generic[T]):
    """A write-only-from-tasks, read-from-driver accumulator.

    ``combine`` must be associative and commutative — the same contract the
    paper's fusion operator satisfies, and for the same reason: updates
    arrive in a nondeterministic order.
    """

    def __init__(self, zero: T, combine: Callable[[T, T], T]) -> None:
        self._value = zero
        self._combine = combine
        self._lock = threading.Lock()

    def add(self, update: T) -> None:
        """Merge ``update`` into the accumulator (thread-safe)."""
        with self._lock:
            self._value = self._combine(self._value, update)

    @property
    def value(self) -> T:
        """Current accumulated value."""
        with self._lock:
            return self._value


class CounterAccumulator(Accumulator[int]):
    """The common integer-sum accumulator."""

    def __init__(self) -> None:
        super().__init__(0, lambda a, b: a + b)

    def increment(self, by: int = 1) -> None:
        """Add ``by`` (default 1) to the counter."""
        self.add(by)


def _merge_counts(a: dict, b: dict) -> dict:
    merged = dict(a)
    for key, count in b.items():
        merged[key] = merged.get(key, 0) + count
    return merged


class MapAccumulator(Accumulator[dict]):
    """Per-key integer counts — e.g. skipped records *per partition*.

    The permissive ingestion pipeline uses one of these to attribute
    quarantined rows to the partition that skipped them, which is what
    turns "something was dropped somewhere" into an actionable report.
    """

    def __init__(self) -> None:
        super().__init__({}, _merge_counts)

    def add_count(self, key, by: int = 1) -> None:
        """Add ``by`` to the count kept under ``key``."""
        self.add({key: by})
