"""Mini-Spark execution substrate (the paper ran on Spark 1.6.1).

* :mod:`repro.engine.context` / :mod:`repro.engine.rdd` — partitioned
  datasets with lazy transformations and parallel actions.
* :mod:`repro.engine.scheduler` — the fault-tolerant task scheduler
  (thread/process backends, retries, worker-crash recovery, timeouts).
* :mod:`repro.engine.faults` — deterministic, seedable fault injection.
* :mod:`repro.engine.accumulators` — driver-readable shared counters.
* :mod:`repro.engine.cluster` — the deterministic cluster simulator used by
  the Table 7/8 scalability experiments, including node-failure modelling.
"""

from repro.engine.accumulators import (
    Accumulator,
    CounterAccumulator,
    MapAccumulator,
)
from repro.engine.cluster import (
    Block,
    ClusterSimulator,
    NodeFailure,
    NodeSpec,
    SimulationResult,
    default_cluster,
    place_on_single_node,
    place_round_robin,
)
from repro.engine.context import Context, split_evenly
from repro.engine.faults import (
    Fault,
    FaultInjected,
    FaultPlan,
    TransientError,
)
from repro.engine.rdd import RDD
from repro.engine.scheduler import (
    JobCancelled,
    RetryPolicy,
    Scheduler,
    SchedulerStats,
    TaskTimeoutError,
    available_parallelism,
)

__all__ = [
    "Context", "RDD", "Scheduler", "split_evenly",
    "RetryPolicy", "SchedulerStats", "TaskTimeoutError", "JobCancelled",
    "Fault", "FaultInjected", "FaultPlan", "TransientError",
    "Accumulator", "CounterAccumulator", "MapAccumulator",
    "NodeSpec", "Block", "ClusterSimulator", "SimulationResult",
    "NodeFailure",
    "default_cluster", "place_on_single_node", "place_round_robin",
    "available_parallelism",
]
