"""Mini-Spark execution substrate (the paper ran on Spark 1.6.1).

* :mod:`repro.engine.context` / :mod:`repro.engine.rdd` — partitioned
  datasets with lazy transformations and parallel actions.
* :mod:`repro.engine.scheduler` — the thread-pool task scheduler.
* :mod:`repro.engine.accumulators` — driver-readable shared counters.
* :mod:`repro.engine.cluster` — the deterministic cluster simulator used by
  the Table 7/8 scalability experiments.
"""

from repro.engine.accumulators import Accumulator, CounterAccumulator
from repro.engine.cluster import (
    Block,
    ClusterSimulator,
    NodeSpec,
    SimulationResult,
    default_cluster,
    place_on_single_node,
    place_round_robin,
)
from repro.engine.context import Context, split_evenly
from repro.engine.rdd import RDD
from repro.engine.scheduler import Scheduler

__all__ = [
    "Context", "RDD", "Scheduler", "split_evenly",
    "Accumulator", "CounterAccumulator",
    "NodeSpec", "Block", "ClusterSimulator", "SimulationResult",
    "default_cluster", "place_on_single_node", "place_round_robin",
]
