"""Baseline schema-inference algorithms the paper compares against.

* :mod:`repro.baselines.spark_like` — Spark SQL's JSON schema inference
  with type coercion (Section 6.1: "the Spark API uses type coercion
  yielding an array of type String only").
"""

from repro.baselines.spark_like import (
    BIGINT_T,
    BOOLEAN_T,
    DOUBLE_T,
    NULL_T,
    STRING_T,
    SparkArray,
    SparkAtom,
    SparkStruct,
    SparkType,
    count_coercions,
    infer_spark_schema,
    infer_spark_type,
    merge_spark_types,
    spark_schema_paths,
    to_ddl,
)

__all__ = [
    "SparkType", "SparkAtom", "SparkStruct", "SparkArray",
    "NULL_T", "BOOLEAN_T", "BIGINT_T", "DOUBLE_T", "STRING_T",
    "infer_spark_type", "infer_spark_schema", "merge_spark_types",
    "to_ddl", "count_coercions", "spark_schema_paths",
]
