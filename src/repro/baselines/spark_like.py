"""Baseline: Spark-SQL-style JSON schema inference with type coercion.

Section 6.1 of the paper contrasts its union types with what Spark's own
``DataFrame`` JSON reader infers: "the Spark API uses type coercion
yielding an array of type String only.  In our case, we can exploit union
types to generate a much more precise type."

This module implements that baseline faithfully enough to measure the
contrast (modelled on Spark 1.6's ``InferSchema``):

* atoms map to ``null``/``boolean``/``bigint``/``double``/``string``;
* records map to structs whose fields are merged across records, every
  field nullable (absence needs no ``?`` marker — everything is nullable);
* arrays map to ``array<elementType>`` where all element types are merged;
* **conflicting types coerce**: ``bigint`` vs ``double`` widens to
  ``double``; any other conflict (``bigint`` vs ``string``, struct vs
  array, a mixed-content array...) collapses to ``string``.

The coercion points are counted so benchmarks can report exactly how much
structural information the baseline throws away compared to the paper's
union types.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from typing import Any, Iterable, Iterator

from repro.core.errors import InvalidValueError

__all__ = [
    "SparkType",
    "SparkAtom",
    "SparkStruct",
    "SparkArray",
    "NULL_T",
    "BOOLEAN_T",
    "BIGINT_T",
    "DOUBLE_T",
    "STRING_T",
    "infer_spark_type",
    "merge_spark_types",
    "infer_spark_schema",
    "to_ddl",
    "count_coercions",
    "spark_schema_paths",
]


class SparkType:
    """Base class of the baseline's type AST."""

    __slots__ = ()

    def __eq__(self, other: object) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def __hash__(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:
        return to_ddl(self)


@dataclass(frozen=True)
class SparkAtom(SparkType):
    """An atomic Spark SQL type, identified by its DDL name."""

    name: str


NULL_T = SparkAtom("null")
BOOLEAN_T = SparkAtom("boolean")
BIGINT_T = SparkAtom("bigint")
DOUBLE_T = SparkAtom("double")
STRING_T = SparkAtom("string")


@dataclass(frozen=True)
class SparkStruct(SparkType):
    """A struct type: name-sorted ``(name, type)`` pairs, all nullable."""

    fields: tuple[tuple[str, SparkType], ...]

    def field(self, name: str) -> SparkType | None:
        for field_name, field_type in self.fields:
            if field_name == name:
                return field_type
        return None


@dataclass(frozen=True)
class SparkArray(SparkType):
    """An array type with a single, merged element type."""

    element: SparkType


def infer_spark_type(value: Any, _merge=None) -> SparkType:
    """Type a single JSON value the way Spark's JSON reader does.

    Array element types are merged immediately (with coercion), which is
    where a single mixed-content array already collapses to ``string`` —
    the paper's Section 6.1 observation.  ``_merge`` lets the coercion
    counter instrument this path too.
    """
    merge = _merge or merge_spark_types
    if value is None:
        return NULL_T
    if isinstance(value, bool):
        return BOOLEAN_T
    if isinstance(value, int):
        return BIGINT_T
    if isinstance(value, float):
        return DOUBLE_T
    if isinstance(value, str):
        return STRING_T
    if isinstance(value, dict):
        fields = []
        for key, sub in sorted(value.items()):
            if not isinstance(key, str):
                raise InvalidValueError(f"non-string record key: {key!r}")
            fields.append((key, infer_spark_type(sub, _merge)))
        return SparkStruct(tuple(fields))
    if isinstance(value, list):
        element = reduce(
            merge, (infer_spark_type(v, _merge) for v in value), NULL_T
        )
        return SparkArray(element)
    raise InvalidValueError(f"not a JSON value: {type(value).__name__}")


def merge_spark_types(t1: SparkType, t2: SparkType) -> SparkType:
    """Spark's ``compatibleType``: widen where possible, coerce otherwise.

    >>> to_ddl(merge_spark_types(BIGINT_T, DOUBLE_T))
    'double'
    >>> to_ddl(merge_spark_types(BIGINT_T, STRING_T))
    'string'
    """
    if t1 == t2:
        return t1
    # Null absorbs into anything.
    if t1 == NULL_T:
        return t2
    if t2 == NULL_T:
        return t1
    # Numeric widening.
    numeric = {BIGINT_T, DOUBLE_T}
    if t1 in numeric and t2 in numeric:
        return DOUBLE_T
    if isinstance(t1, SparkStruct) and isinstance(t2, SparkStruct):
        names = sorted({n for n, _ in t1.fields} | {n for n, _ in t2.fields})
        merged = []
        for name in names:
            left = t1.field(name)
            right = t2.field(name)
            if left is None:
                merged.append((name, right))
            elif right is None:
                merged.append((name, left))
            else:
                merged.append((name, merge_spark_types(left, right)))
        return SparkStruct(tuple(merged))
    if isinstance(t1, SparkArray) and isinstance(t2, SparkArray):
        return SparkArray(merge_spark_types(t1.element, t2.element))
    # Everything else — including struct vs atom and the paper's
    # mixed-content array example — coerces to string.
    return STRING_T


def infer_spark_schema(values: Iterable[Any]) -> SparkType:
    """The baseline end-to-end: type each record, merge with coercion."""
    return reduce(
        merge_spark_types, (infer_spark_type(v) for v in values), NULL_T
    )


def to_ddl(t: SparkType) -> str:
    """Render in Spark SQL DDL syntax: ``struct<a:bigint,b:array<string>>``."""
    if isinstance(t, SparkAtom):
        return t.name
    if isinstance(t, SparkStruct):
        inner = ",".join(f"{n}:{to_ddl(ft)}" for n, ft in t.fields)
        return f"struct<{inner}>"
    if isinstance(t, SparkArray):
        return f"array<{to_ddl(t.element)}>"
    raise TypeError(f"not a spark type: {t!r}")


def count_coercions(values: Iterable[Any]) -> int:
    """Number of string-coercion events while merging ``values``.

    Each event is a point where the baseline threw structure away that the
    paper's union types would have kept.
    """
    count = 0

    def bump() -> None:
        nonlocal count
        count += 1

    def merge(a: SparkType, b: SparkType) -> SparkType:
        return _merge_instrumented(a, b, bump)

    reduce(
        merge,
        (infer_spark_type(v, _merge=merge) for v in values),
        NULL_T,
    )
    return count


def _merge_instrumented(t1: SparkType, t2: SparkType, bump) -> SparkType:
    """merge_spark_types with a callback on every coercion-to-string."""
    if t1 == t2 or t1 == NULL_T:
        return t2 if t1 == NULL_T else t1
    if t2 == NULL_T:
        return t1
    numeric = {BIGINT_T, DOUBLE_T}
    if t1 in numeric and t2 in numeric:
        return DOUBLE_T
    if isinstance(t1, SparkStruct) and isinstance(t2, SparkStruct):
        names = sorted({n for n, _ in t1.fields} | {n for n, _ in t2.fields})
        merged = []
        for name in names:
            left, right = t1.field(name), t2.field(name)
            if left is None or right is None:
                merged.append((name, left or right))
            else:
                merged.append((name, _merge_instrumented(left, right, bump)))
        return SparkStruct(tuple(merged))
    if isinstance(t1, SparkArray) and isinstance(t2, SparkArray):
        return SparkArray(_merge_instrumented(t1.element, t2.element, bump))
    # Incompatible: the baseline coerces to string, losing structure the
    # paper's union types would keep.
    bump()
    return STRING_T


def spark_schema_paths(t: SparkType, prefix: str = "$") -> Iterator[str]:
    """Paths visible in a baseline schema (same notation as
    :func:`repro.analysis.paths.iter_schema_paths`).

    Structure swallowed by string coercion contributes no paths — the
    quantity the comparison benchmark reports.
    """
    if isinstance(t, SparkStruct):
        for name, field_type in t.fields:
            sub = f"{prefix}.{name}"
            yield sub
            yield from spark_schema_paths(field_type, sub)
    elif isinstance(t, SparkArray):
        sub = f"{prefix}[*]"
        yield sub
        yield from spark_schema_paths(t.element, sub)
