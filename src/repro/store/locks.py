"""Advisory file locks for store writers (single-host mutual exclusion).

A checkpoint save is an atomic directory swap and a journal append is an
fsync'd frame write — each is individually crash-safe, but two *writers*
racing on the same path (an update job and a ``merge`` landing on the
same output directory, say) could still interleave their swaps and
silently drop one side's work.  The store therefore takes an advisory
lock around every mutation:

* The lock is a sibling file ``<target>.lock`` created with
  ``O_CREAT | O_EXCL`` — the classic portable atomic-creation lock.  It
  never lives *inside* a checkpoint directory, so the checkpoint's
  on-disk format (exactly three files) is unchanged.
* The file body records ``pid`` and hostname.  A lock whose pid is no
  longer alive on this host is *stale* (its owner crashed before
  releasing) and is broken automatically; this is what keeps a crash
  from wedging every future writer, without any daemon or TTL.
* Locks are advisory: readers (``load_checkpoint``, resume replay) take
  no lock — the atomic swap already guarantees they never observe a
  mixed-version directory.  Only writers and ``merge`` inputs consult
  them.

``flock``/``fcntl`` are deliberately not used: their locks vanish when
any fd to the file closes and they do not survive across the process
pool's spawned workers; the exclusive-create protocol is the same one
``git`` uses for ``index.lock`` and behaves identically on every
platform this repo targets.
"""

from __future__ import annotations

import errno
import os
import socket
import time
from pathlib import Path

__all__ = [
    "FileLock",
    "LockHeldError",
    "lock_path_for",
    "read_lock_owner",
]

#: Suffix appended to the protected path to form the lock file name.
LOCK_SUFFIX = ".lock"


class LockHeldError(Exception):
    """Another live process holds the advisory lock on this path."""

    def __init__(self, target: str, owner_pid: int | None = None) -> None:
        detail = f" (held by pid {owner_pid})" if owner_pid else ""
        super().__init__(
            f"store lock busy: {target!r} is being written by another "
            f"process{detail}; retry when it finishes, or delete "
            f"{lock_path_for(target)!r} if its owner is gone"
        )
        self.target = str(target)
        self.owner_pid = owner_pid

    def __reduce__(self):
        return (self.__class__, (self.target, self.owner_pid))


def lock_path_for(target: str | os.PathLike[str]) -> str:
    """The lock file protecting ``target`` (a sibling, never inside it)."""
    return os.fspath(target).rstrip("/\\") + LOCK_SUFFIX


def read_lock_owner(target: str | os.PathLike[str]) -> int | None:
    """The pid recorded in ``target``'s lock file, or None if unlocked.

    Returns ``-1`` for a lock file that exists but is unreadable or
    malformed (treated as held: refusing is safer than clobbering).
    """
    try:
        body = Path(lock_path_for(target)).read_text("utf-8", "replace")
    except (FileNotFoundError, NotADirectoryError):
        return None
    except OSError:
        return -1
    try:
        return int(body.split()[0])
    except (IndexError, ValueError):
        return -1


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return True  # malformed owner: assume alive, refuse to break
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, owned by another uid
        return True
    except OSError:  # pragma: no cover
        return True
    return True


def is_stale_lock(target: str | os.PathLike[str]) -> bool | None:
    """None if unlocked; True if the lock's owner pid is dead locally."""
    owner = read_lock_owner(target)
    if owner is None:
        return None
    return not _pid_alive(owner)


class FileLock:
    """Context manager acquiring the advisory lock on ``target``.

    >>> import tempfile
    >>> with tempfile.TemporaryDirectory() as d:
    ...     with FileLock(os.path.join(d, "ckpt")):
    ...         pass  # exclusive writer section
    """

    def __init__(
        self,
        target: str | os.PathLike[str],
        timeout_s: float = 0.0,
        poll_s: float = 0.05,
    ) -> None:
        self.target = os.fspath(target)
        self.lock_path = lock_path_for(target)
        self.timeout_s = timeout_s
        self.poll_s = poll_s
        self._held = False

    # ------------------------------------------------------------------

    def _try_acquire(self) -> bool:
        try:
            fd = os.open(
                self.lock_path,
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                0o644,
            )
        except FileExistsError:
            return False
        except OSError as exc:  # parent dir missing and alike
            if exc.errno == errno.ENOENT:
                os.makedirs(
                    os.path.dirname(self.lock_path) or ".", exist_ok=True
                )
                return self._try_acquire()
            raise
        try:
            os.write(
                fd,
                f"{os.getpid()} {socket.gethostname()}\n".encode(
                    "utf-8", "replace"
                ),
            )
            os.fsync(fd)
        finally:
            os.close(fd)
        return True

    def _break_if_stale(self) -> bool:
        owner = read_lock_owner(self.target)
        if owner is None:
            return True  # vanished: retry the create
        if _pid_alive(owner):
            return False
        # Dead owner: remove its lock.  Two breakers may race here; both
        # unlinks target the same dead lock and the O_EXCL create after
        # decides a single winner, so the race is benign.
        try:
            os.unlink(self.lock_path)
        except FileNotFoundError:
            pass
        return True

    def acquire(self) -> "FileLock":
        deadline = time.monotonic() + self.timeout_s
        while True:
            if self._try_acquire():
                self._held = True
                return self
            if self._break_if_stale():
                continue
            if time.monotonic() >= deadline:
                raise LockHeldError(
                    self.target, read_lock_owner(self.target)
                )
            time.sleep(self.poll_s)

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        try:
            os.unlink(self.lock_path)
        except FileNotFoundError:  # pragma: no cover - broken as stale
            pass

    # ------------------------------------------------------------------

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()
