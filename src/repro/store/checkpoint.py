"""Persistent, mergeable schema checkpoints (incremental maintenance).

The paper proves ``Fuse`` commutative and associative (Theorems 5.4-5.5)
precisely so that schemas can be maintained *incrementally*: the fused
state of everything seen so far is itself just another operand.  This
module gives that state a durable, versioned on-disk form so inference
stops being a one-shot batch job:

* :func:`save_checkpoint` persists a
  :class:`~repro.inference.kernel.PartitionSummary` — schema, record
  count, distinct top-level types — into a directory, alongside a
  manifest with the format version, counts, a schema digest and source
  fingerprints.
* :func:`load_checkpoint` reads it back, verifying version and digest,
  and yields a summary that is *exactly* a partition summary: it can be
  appended to a fresh run's partials and ride the existing merge path
  (:func:`~repro.inference.kernel.merge_summary_group`), including the
  scheduler's tree-merge reduce.
* :func:`merge_checkpoints` unions any number of checkpoints — the
  cross-shard schema union: shards infer independently, checkpoint, and
  their checkpoints merge in any order or grouping to the same schema.

Serialization is the existing concrete type syntax
(:func:`repro.core.printer.print_type` /
:func:`repro.core.type_parser.parse_type`), which round-trips exactly.
Every file is written deterministically — canonical (sorted) type form,
distinct types sorted by printed form, manifest keys sorted, no
timestamps — so checkpointing the same data twice, on any backend,
produces byte-identical directories (a golden-file test pins this).

A checkpoint of a zero-record dataset is valid and round-trips the empty
type ``(empty)``: fusing it into anything is a no-op, exactly as the
algebra demands of the neutral element.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.core.errors import TypeSyntaxError
from repro.core.printer import print_type
from repro.core.type_parser import parse_type
from repro.core.types import Type
from repro.engine.faults import crash_point
from repro.inference.kernel import (
    PartitionSummary,
    tree_merge_rows,
)
from repro.inference.statistics import StatsBundle
from repro.store.locks import FileLock, LockHeldError, is_stale_lock

__all__ = [
    "FORMAT_VERSION",
    "Checkpoint",
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointFormatError",
    "CheckpointManifest",
    "CheckpointNotFoundError",
    "SourceFingerprint",
    "build_manifest",
    "checkpoint_exists",
    "fingerprint_source",
    "fsck_checkpoint",
    "load_checkpoint",
    "load_manifest",
    "load_summary",
    "merge_checkpoints",
    "save_checkpoint",
]

#: On-disk format version; bumped on any incompatible layout change.
FORMAT_VERSION = 1

#: File names inside a checkpoint directory.  ``STATS_FILE`` exists only
#: in checkpoints saved from a stats-enriched run (``stats_mode`` other
#: than ``"off"``); stats-off checkpoints are byte-identical to pre-stats
#: ones, manifest included.
MANIFEST_FILE = "MANIFEST.json"
SCHEMA_FILE = "schema.type"
DISTINCT_FILE = "distinct.types"
STATS_FILE = "statistics.json"

#: How much of a source file the fingerprint hashes (a prefix: cheap and
#: deterministic, and together with the size enough to notice the common
#: mutations — truncation, replacement, append-with-rewrite).
_FINGERPRINT_BYTES = 1 << 16


class CheckpointError(Exception):
    """Base class for checkpoint store failures.

    Every class in the hierarchy reduces to ``(class, args)`` so an
    instance raised inside a process-pool worker (``merge_checkpoints``
    ships loads to workers) survives the pickled return path intact —
    the same discipline as :mod:`repro.jsonio.errors`.
    """

    def __reduce__(self):
        return (self.__class__, self.args)


class CheckpointNotFoundError(CheckpointError):
    """The named directory does not hold a checkpoint."""


class CheckpointFormatError(CheckpointError):
    """The checkpoint exists but cannot be trusted.

    Raised for unknown format versions; its subclass
    :class:`CheckpointCorruptError` covers damage (torn writes, bad
    digests, unparseable files).
    """


class CheckpointCorruptError(CheckpointFormatError):
    """The checkpoint's files are damaged or contradict each other.

    The torn/corrupt class: unreadable or unparseable files, schema
    digest mismatches, count mismatches — anything ``repro fsck``
    classifies as ``corrupt`` rather than a mere version skew.  Carries
    the offending ``directory`` and a ``detail`` string structurally so
    callers (fsck, merge) can report the shard without parsing messages.
    """

    def __init__(self, directory: str, detail: str) -> None:
        super().__init__(f"corrupt checkpoint at {directory!r}: {detail}")
        self.directory = str(directory)
        self.detail = detail

    def __reduce__(self):
        return (self.__class__, (self.directory, self.detail))


@dataclass(frozen=True)
class SourceFingerprint:
    """Identity of one input file that contributed to a checkpoint.

    ``sha256`` digests the first 64 KiB of the file by default — a cheap
    prefix hash, not a full-content hash — so fingerprinting stays O(1)
    however large the source.  Combined with ``size`` it detects the
    usual ways a source diverges from what was ingested: truncation,
    replacement, append-with-rewrite.  What the prefix hash *cannot* see
    is an in-place mutation beyond the first 64 KiB at unchanged size —
    and a pure tail append changes only ``size``, so the hash alone
    never notices it.  Callers that need content-exact identity (audit
    trails, the delta accounting around the cross-run summary cache)
    pass ``full_sha256=True`` to :func:`fingerprint_source` and pay one
    O(size) streaming read instead.
    """

    path: str
    size: int
    sha256: str

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form for the manifest JSON."""
        return {"path": self.path, "size": self.size, "sha256": self.sha256}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SourceFingerprint":
        """Rebuild from the manifest JSON dict."""
        try:
            return cls(
                path=str(data["path"]),
                size=int(data["size"]),
                sha256=str(data["sha256"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointFormatError(
                f"malformed source fingerprint entry: {data!r}"
            ) from exc


def fingerprint_source(
    path: str | Path, full_sha256: bool = False
) -> SourceFingerprint:
    """Fingerprint one source file (size + sha256).

    By default the digest covers only the first 64 KiB — O(1) whatever
    the file size, but blind to changes past the prefix (see
    :class:`SourceFingerprint` for the tradeoff).  ``full_sha256=True``
    streams the whole file through the hash: O(size), and the resulting
    fingerprint distinguishes *any* content change, tail appends
    included.
    """
    p = Path(path)
    size = p.stat().st_size
    digest = hashlib.sha256()
    with open(p, "rb") as handle:
        if full_sha256:
            while True:
                chunk = handle.read(1 << 20)
                if not chunk:
                    break
                digest.update(chunk)
        else:
            digest.update(handle.read(_FINGERPRINT_BYTES))
    return SourceFingerprint(str(p), size, digest.hexdigest())


@dataclass(frozen=True)
class CheckpointManifest:
    """The checkpoint's metadata record (``MANIFEST.json``).

    ``skipped_count`` is informational: quarantined records themselves
    live in NDJSON sidecars (see ``infer_ndjson_file``), not in the
    checkpoint, so only their cumulative count survives an update chain.
    """

    format_version: int
    record_count: int
    distinct_type_count: int
    skipped_count: int
    schema_sha256: str
    sources: tuple[SourceFingerprint, ...] = ()
    #: Statistics enrichment (both ``None`` unless the checkpoint was
    #: saved from a stats-carrying summary): the bundle's mode and the
    #: digest of its canonical ``statistics.json`` bytes.
    stats_mode: str | None = None
    stats_sha256: str | None = None

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form, ready for deterministic JSON dumping.

        The stats keys appear only when the checkpoint carries a bundle,
        so stats-off manifests stay byte-identical to pre-stats ones
        (the digest-stability guarantee the golden tests pin).
        """
        data = {
            "format_version": self.format_version,
            "record_count": self.record_count,
            "distinct_type_count": self.distinct_type_count,
            "skipped_count": self.skipped_count,
            "schema_sha256": self.schema_sha256,
            "sources": [s.to_dict() for s in self.sources],
        }
        if self.stats_mode is not None:
            data["stats_mode"] = self.stats_mode
            data["stats_sha256"] = self.stats_sha256
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CheckpointManifest":
        """Rebuild from parsed manifest JSON, validating field shapes."""
        try:
            stats_mode = data.get("stats_mode")
            stats_sha256 = data.get("stats_sha256")
            if (stats_mode is None) != (stats_sha256 is None):
                raise ValueError(
                    "stats_mode and stats_sha256 must appear together"
                )
            return cls(
                format_version=int(data["format_version"]),
                record_count=int(data["record_count"]),
                distinct_type_count=int(data["distinct_type_count"]),
                skipped_count=int(data.get("skipped_count", 0)),
                schema_sha256=str(data["schema_sha256"]),
                sources=tuple(
                    SourceFingerprint.from_dict(s)
                    for s in data.get("sources", [])
                ),
                stats_mode=None if stats_mode is None else str(stats_mode),
                stats_sha256=(
                    None if stats_sha256 is None else str(stats_sha256)
                ),
            )
        except CheckpointFormatError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointFormatError(
                f"malformed checkpoint manifest: missing or invalid "
                f"field ({exc})"
            ) from exc


@dataclass(frozen=True)
class Checkpoint:
    """A checkpoint in memory: its manifest plus the summary it stores.

    ``path`` is the directory it was loaded from or saved to (``None``
    for a merge result that was not written out).
    """

    manifest: CheckpointManifest
    summary: PartitionSummary
    path: str | None = None

    @property
    def schema(self) -> Type:
        """The checkpointed fused schema."""
        return self.summary.schema

    @property
    def record_count(self) -> int:
        """Records folded into this checkpoint so far."""
        return self.summary.record_count


def _schema_bytes(schema: Type) -> bytes:
    """The deterministic on-disk form of the schema file."""
    return (print_type(schema) + "\n").encode("utf-8")


def _distinct_bytes(distinct_types: Sequence[Type]) -> bytes:
    """The deterministic on-disk form of the distinct-types file.

    One printed type per line, sorted lexicographically — the set of
    distinct types is order-free, so sorting makes the file independent
    of partition arrival order (and therefore of backend and batch
    split).  ``print_type`` never emits a raw newline (control
    characters in record keys are escaped), so lines and types are in
    bijection.
    """
    lines = sorted(print_type(t) for t in distinct_types)
    return "".join(line + "\n" for line in lines).encode("utf-8")


def _write_bytes(handle, data: bytes) -> None:
    """Single seam every checkpoint byte passes through.

    Module-level so fault-injection tests can monkeypatch it to raise
    ``ENOSPC``/``EIO`` mid-save and assert that no partial state is ever
    observable afterwards.
    """
    handle.write(data)


def _fsync_dir(path: Path) -> None:
    """fsync a directory so its entries (renames, creates) are durable."""
    fd = os.open(path, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_file(directory: Path, name: str, data: bytes) -> None:
    """Write one checkpoint file atomically *and durably*.

    Temp file + fsync + rename + parent-directory fsync: after this
    returns, the file either exists with exactly ``data`` or (on any
    failure) does not exist at all — the temp file is removed on the
    error path rather than left to litter the directory.
    """
    tmp = directory / (name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            _write_bytes(handle, data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, directory / name)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_dir(directory)


#: Infix marking a staging/retired directory left by ``save_checkpoint``
#: (``<name>.tmp-<token>``); cleaned up on the next save and reported by
#: :func:`fsck_checkpoint`.
_TMP_INFIX = ".tmp-"


def _clean_orphans(target: Path) -> None:
    """Remove debris a crashed or failed earlier save may have left.

    Covers both generations of the writer: stale ``*.tmp`` files inside
    the directory (the pre-swap writer's per-file temps) and sibling
    ``<name>.tmp-*`` staging/retired directories from an interrupted
    swap.  Called under the target's advisory lock, so no live writer's
    staging directory can be swept by accident.
    """
    if target.is_dir():
        for stray in target.glob("*.tmp"):
            try:
                stray.unlink()
            except OSError:
                pass
    parent = target.parent if str(target.parent) else Path(".")
    if not parent.is_dir():
        return
    for stray in parent.glob(target.name + _TMP_INFIX + "*"):
        try:
            if stray.is_dir() and not stray.is_symlink():
                shutil.rmtree(stray, ignore_errors=True)
            else:
                stray.unlink()
        except OSError:
            pass


def _normalize_sources(
    sources: Iterable[SourceFingerprint | str | Path],
) -> tuple[SourceFingerprint, ...]:
    """Fingerprint paths, dedupe by path (last wins), sort for determinism."""
    by_path: dict[str, SourceFingerprint] = {}
    for source in sources:
        if not isinstance(source, SourceFingerprint):
            source = fingerprint_source(source)
        by_path[source.path] = source
    return tuple(sorted(by_path.values(), key=lambda s: s.path))


def _stats_bytes(summary: PartitionSummary) -> bytes | None:
    """Canonical ``statistics.json`` bytes, or ``None`` when stats-free."""
    bundle = getattr(summary, "stats", None)
    return None if bundle is None else bundle.to_bytes()


def _scrub_partial_stats(summary: PartitionSummary) -> PartitionSummary:
    """Drop a stats bundle that does not cover every checkpointed record.

    Happens when an update folds fresh stats-enriched partitions into a
    pre-stats checkpoint: the bundle describes only the new records, and
    persisting it would misreport the history.  Dropping is always safe
    — stats are an enrichment, never part of the schema algebra.
    """
    bundle = getattr(summary, "stats", None)
    if bundle is not None and bundle.record_count != summary.record_count:
        return replace(summary, stats=None)
    return summary


def build_manifest(
    summary: PartitionSummary,
    sources: Iterable[SourceFingerprint | str | Path] = (),
    skipped_count: int | None = None,
) -> CheckpointManifest:
    """The manifest describing ``summary``; paths are fingerprinted.

    ``skipped_count`` defaults to the summary's own quarantine count;
    an update pass overrides it with the cumulative count carried over
    from the previous checkpoint.
    """
    stats_payload = _stats_bytes(summary)
    return CheckpointManifest(
        format_version=FORMAT_VERSION,
        record_count=summary.record_count,
        distinct_type_count=summary.distinct_type_count,
        skipped_count=(
            summary.skipped_count if skipped_count is None else skipped_count
        ),
        schema_sha256=hashlib.sha256(
            _schema_bytes(summary.schema)
        ).hexdigest(),
        sources=_normalize_sources(sources),
        stats_mode=None if stats_payload is None else summary.stats.mode,
        stats_sha256=(
            None if stats_payload is None
            else hashlib.sha256(stats_payload).hexdigest()
        ),
    )


def save_checkpoint(
    directory: str | Path,
    summary: PartitionSummary,
    sources: Iterable[SourceFingerprint | str | Path] = (),
    skipped_count: int | None = None,
    stats: Any | None = None,
) -> Checkpoint:
    """Persist ``summary`` into ``directory`` (created if needed).

    Existing checkpoint files in the directory are replaced atomically,
    manifest last, so a reader never observes a manifest describing
    files that are not yet in place.  Only the algebraic state travels:
    schema, record count, distinct types.  Per-run transients —
    quarantined record bodies, phase timings, split line/byte counters —
    stay with the run that produced them (the manifest keeps the
    cumulative ``skipped_count`` for observability).

    ``stats`` may be a :class:`~repro.engine.scheduler.SchedulerStats`;
    when given, ``checkpoints_saved`` is incremented.

    >>> import tempfile
    >>> from repro.inference.kernel import accumulate_partition
    >>> summary = accumulate_partition([{"a": 1}, {"a": 2.5}])
    >>> with tempfile.TemporaryDirectory() as d:
    ...     ckpt = save_checkpoint(d, summary)
    ...     reloaded = load_checkpoint(d)
    >>> reloaded.summary.schema == summary.schema
    True
    >>> reloaded.record_count
    2
    """
    target = Path(directory)
    parent = target.parent if str(target.parent) else Path(".")
    parent.mkdir(parents=True, exist_ok=True)
    if (
        target.is_dir()
        and any(target.iterdir())
        and not checkpoint_exists(target)
    ):
        raise CheckpointError(
            f"refusing to replace {str(target)!r}: directory is not empty "
            f"and holds no checkpoint (missing {MANIFEST_FILE})"
        )
    summary = _scrub_partial_stats(summary)
    stats_payload = _stats_bytes(summary)
    manifest = build_manifest(summary, sources, skipped_count)
    manifest_bytes = (
        json.dumps(manifest.to_dict(), sort_keys=True, indent=2) + "\n"
    ).encode("utf-8")
    with FileLock(target):
        _clean_orphans(target)
        staging = Path(tempfile.mkdtemp(
            prefix=target.name + _TMP_INFIX, dir=parent
        ))
        try:
            _write_file(staging, SCHEMA_FILE, _schema_bytes(summary.schema))
            _write_file(
                staging, DISTINCT_FILE, _distinct_bytes(summary.distinct_types)
            )
            if stats_payload is not None:
                # Before the manifest, like every data file: a reader
                # that sees the manifest's stats digest must find the
                # bytes it describes already in place.
                _write_file(staging, STATS_FILE, stats_payload)
            _write_file(staging, MANIFEST_FILE, manifest_bytes)
            crash_point("checkpoint.pre_swap")
            _swap_into_place(staging, target, parent)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        crash_point("checkpoint.post_swap")
    if stats is not None:
        stats.checkpoints_saved += 1
    return Checkpoint(manifest=manifest, summary=summary, path=str(target))


def _swap_into_place(staging: Path, target: Path, parent: Path) -> None:
    """Install the fully-written ``staging`` directory as ``target``.

    One ``os.replace`` when ``target`` is absent or an empty directory
    (POSIX rename replaces an empty directory atomically).  Over an
    existing checkpoint, the old version is renamed aside first — the
    only non-atomic window, covered by the ``checkpoint.mid_swap`` crash
    point; a crash there leaves *no* ``target`` but both complete
    versions on disk under ``.tmp-`` names, which fsck reports and the
    next save sweeps.  A reader can therefore observe old bytes, new
    bytes, or not-found — never a mix of versions.
    """
    try:
        os.replace(staging, target)
    except OSError:
        if not target.is_dir():
            raise
        retired = Path(tempfile.mkdtemp(
            prefix=target.name + _TMP_INFIX + "retired-", dir=parent
        ))
        # mkdtemp created the placeholder only to reserve the name;
        # rename over it (empty dir) is the atomic retire.
        os.replace(target, retired)
        crash_point("checkpoint.mid_swap")
        os.replace(staging, target)
        shutil.rmtree(retired, ignore_errors=True)
    _fsync_dir(parent)


def checkpoint_exists(directory: str | Path) -> bool:
    """Whether ``directory`` holds a checkpoint (has a manifest)."""
    return (Path(directory) / MANIFEST_FILE).is_file()


def _read_file(directory: Path, name: str) -> bytes:
    try:
        with open(directory / name, "rb") as handle:
            return handle.read()
    except FileNotFoundError:
        raise CheckpointNotFoundError(
            f"no checkpoint at {str(directory)!r}: missing {name}"
        ) from None


def load_manifest(directory: str | Path) -> CheckpointManifest:
    """Read and validate just the manifest of a checkpoint directory.

    Cheap (one small JSON file), so callers that only need metadata —
    source fingerprints, counts — can skip parsing the type files.
    Raises :class:`CheckpointNotFoundError` when no checkpoint is there
    and :class:`CheckpointFormatError` on a malformed manifest or an
    unknown format version.
    """
    target = Path(directory)
    if not target.is_dir():
        raise CheckpointNotFoundError(
            f"no checkpoint at {str(target)!r}: not a directory"
        )
    manifest_bytes = _read_file(target, MANIFEST_FILE)
    try:
        manifest_data = json.loads(manifest_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointCorruptError(
            str(target), f"unreadable manifest: {exc}"
        ) from exc
    if not isinstance(manifest_data, dict):
        raise CheckpointCorruptError(
            str(target), "manifest is not a JSON object"
        )
    try:
        manifest = CheckpointManifest.from_dict(manifest_data)
    except CheckpointCorruptError:
        raise
    except CheckpointFormatError as exc:
        # from_dict has no path context of its own; add it here so an
        # error always names the directory it came from.
        raise CheckpointCorruptError(str(target), str(exc)) from exc
    if manifest.format_version != FORMAT_VERSION:
        raise CheckpointFormatError(
            f"checkpoint at {str(target)!r} has format version "
            f"{manifest.format_version}; this build reads version "
            f"{FORMAT_VERSION}"
        )
    return manifest


def load_checkpoint(
    directory: str | Path, stats: Any | None = None
) -> Checkpoint:
    """Load and verify the checkpoint stored in ``directory``.

    Verification covers the format version, the manifest's JSON shape,
    the schema digest (the schema file must be exactly the bytes the
    manifest was computed over) and the distinct-type count.  Failures
    raise :class:`CheckpointFormatError`; a missing directory or file
    raises :class:`CheckpointNotFoundError`.

    The returned summary's types are parsed fresh; they are *not*
    interned into any live accumulator.  That is fine for every merge
    path — structural equality drives deduplication across process
    boundaries already — and
    :meth:`~repro.inference.kernel.PartitionAccumulator.add_summary`
    interns them on the way in when a live accumulator adopts them.
    """
    target = Path(directory)
    manifest = load_manifest(target)

    schema_bytes = _read_file(target, SCHEMA_FILE)
    digest = hashlib.sha256(schema_bytes).hexdigest()
    if digest != manifest.schema_sha256:
        raise CheckpointCorruptError(
            str(target),
            f"schema digest mismatch: manifest says "
            f"{manifest.schema_sha256[:12]}…, file hashes to {digest[:12]}…",
        )
    try:
        schema = parse_type(schema_bytes.decode("utf-8").strip())
    except (UnicodeDecodeError, TypeSyntaxError) as exc:
        raise CheckpointCorruptError(
            str(target), f"unparseable schema: {exc}"
        ) from exc

    distinct_bytes = _read_file(target, DISTINCT_FILE)
    try:
        lines = distinct_bytes.decode("utf-8").splitlines()
        distinct = tuple(parse_type(line) for line in lines if line.strip())
    except (UnicodeDecodeError, TypeSyntaxError) as exc:
        raise CheckpointCorruptError(
            str(target), f"unparseable distinct-types file: {exc}"
        ) from exc
    if len(distinct) != manifest.distinct_type_count:
        raise CheckpointCorruptError(
            str(target),
            f"distinct-type count mismatch: manifest says "
            f"{manifest.distinct_type_count}, file holds {len(distinct)}",
        )

    bundle = None
    if manifest.stats_mode is not None:
        try:
            stats_payload = _read_file(target, STATS_FILE)
        except CheckpointNotFoundError as exc:
            # The manifest promises a stats file; its absence is damage,
            # not a missing checkpoint.
            raise CheckpointCorruptError(
                str(target), f"manifest promises statistics but {exc}"
            ) from exc
        stats_digest = hashlib.sha256(stats_payload).hexdigest()
        if stats_digest != manifest.stats_sha256:
            raise CheckpointCorruptError(
                str(target),
                f"statistics digest mismatch: manifest says "
                f"{manifest.stats_sha256[:12]}…, file hashes to "
                f"{stats_digest[:12]}…",
            )
        try:
            bundle = StatsBundle.from_bytes(stats_payload)
        except ValueError as exc:
            raise CheckpointCorruptError(
                str(target), f"unparseable statistics file: {exc}"
            ) from exc
        if bundle.mode != manifest.stats_mode:
            raise CheckpointCorruptError(
                str(target),
                f"statistics mode mismatch: manifest says "
                f"{manifest.stats_mode!r}, file holds {bundle.mode!r}",
            )
        if bundle.record_count != manifest.record_count:
            raise CheckpointCorruptError(
                str(target),
                f"statistics record count mismatch: manifest says "
                f"{manifest.record_count}, bundle covers "
                f"{bundle.record_count}",
            )

    summary = PartitionSummary(
        schema=schema,
        record_count=manifest.record_count,
        distinct_types=distinct,
        stats=bundle,
    )
    if stats is not None:
        stats.checkpoints_loaded += 1
        stats.checkpoint_records_merged += summary.record_count
    return Checkpoint(manifest=manifest, summary=summary, path=str(target))


def load_summary(directory: str | Path) -> PartitionSummary:
    """Load just the partition summary of a checkpoint.

    A module-level function over picklable data, so
    :func:`merge_checkpoints` can ship the loads to scheduler workers —
    parsing a large distinct-types file is the expensive part of a load,
    and it parallelises perfectly.
    """
    return load_checkpoint(directory).summary


def _load_merge_input(directory: str | Path) -> PartitionSummary:
    """Worker task for merge loads: failures always name the shard.

    A bare digest or version error from a 30-shard merge is useless
    without knowing *which* shard to quarantine; this wrapper re-raises
    every store error with the offending input path in front, preserving
    the class (so retry/fsck classification still works) and pickling
    cleanly back from process-pool workers.
    """
    try:
        return load_summary(directory)
    except CheckpointCorruptError as exc:
        raise CheckpointCorruptError(
            exc.directory, f"cannot merge this shard: {exc.detail}"
        ) from exc
    except CheckpointNotFoundError as exc:
        raise CheckpointNotFoundError(
            f"cannot merge shard {str(directory)!r}: {exc}"
        ) from exc
    except CheckpointFormatError as exc:
        raise CheckpointFormatError(
            f"cannot merge shard {str(directory)!r}: {exc}"
        ) from exc


def merge_checkpoints(
    inputs: Sequence[str | Path | Checkpoint],
    out: str | Path | None = None,
    scheduler: Any | None = None,
    stats: Any | None = None,
) -> Checkpoint:
    """Union any number of checkpoints into one (cross-shard schema merge).

    Every component of the merge is associative and commutative —
    schemas fuse, record counts add, distinct types union structurally —
    so shards may be merged in any order or grouping and the result is
    the schema a single pass over all the shards' data would have
    produced (Theorem 5.5).  The merge reuses the kernel's shared
    tree-reduce (:func:`~repro.inference.kernel.tree_merge_rows`), and
    with a ``scheduler`` both the checkpoint *loads* and — above the
    kernel's tree-merge threshold — the pairwise merge rounds run as
    parallel tasks.

    With ``out``, the merged checkpoint is saved there (its manifest
    unions the inputs' source fingerprints) and the returned
    :class:`Checkpoint` points at it; otherwise the result stays in
    memory with ``path=None``.
    """
    if not inputs:
        raise CheckpointError("merge_checkpoints needs at least one input")
    paths = [c for c in inputs if not isinstance(c, Checkpoint)]
    for path in paths:
        # Advisory writer exclusion: refuse to read a shard some live
        # process is mid-save on (a stale lock from a crashed writer is
        # ignored — the swap left the directory consistent either way).
        if is_stale_lock(path) is False:
            raise LockHeldError(os.fspath(path))
    if scheduler is not None and len(paths) > 1:
        # Ship the expensive part (parsing the type files) to workers;
        # manifests are one small JSON each and stay at the driver.
        loaded_by_path = dict(
            zip(map(str, paths), scheduler.run(_load_merge_input, paths))
        )
        if stats is not None:
            stats.checkpoints_loaded += len(paths)
            stats.checkpoint_records_merged += sum(
                s.record_count for s in loaded_by_path.values()
            )
        checkpoints = [
            item if isinstance(item, Checkpoint) else Checkpoint(
                manifest=load_manifest(item),
                summary=loaded_by_path[str(item)],
                path=str(item),
            )
            for item in inputs
        ]
    else:
        checkpoints = []
        for item in inputs:
            if isinstance(item, Checkpoint):
                checkpoints.append(item)
                continue
            summary = _load_merge_input(item)
            checkpoints.append(Checkpoint(
                manifest=load_manifest(item),
                summary=summary,
                path=str(item),
            ))
            if stats is not None:
                stats.checkpoints_loaded += 1
                stats.checkpoint_records_merged += summary.record_count
    sources = [s for c in checkpoints for s in c.manifest.sources]
    skipped = sum(c.manifest.skipped_count for c in checkpoints)

    merged = tree_merge_rows(scheduler, [c.summary for c in checkpoints])

    if out is not None:
        return save_checkpoint(
            out, merged, sources=sources, skipped_count=skipped, stats=stats
        )
    # Same coverage rule as the saved path: a bundle contributed by only
    # some shards must not describe the whole union.
    merged = _scrub_partial_stats(merged)
    return Checkpoint(
        manifest=build_manifest(merged, sources, skipped_count=skipped),
        summary=merged,
        path=None,
    )


def fsck_checkpoint(directory: str | Path) -> dict[str, Any]:
    """Classify the health of a checkpoint directory (``repro fsck``).

    Pure inspection — nothing is repaired or deleted.  The report says
    what a load would conclude (``ok`` / ``not-found`` /
    ``version-mismatch`` / ``corrupt``), lists swap debris a crashed
    writer may have left (``orphans`` — removed automatically by the
    next :func:`save_checkpoint`), and reports the advisory lock state
    (``none`` / ``held`` / ``stale``).
    """
    target = Path(directory)
    report: dict[str, Any] = {
        "path": str(target),
        "kind": "checkpoint",
        "status": "ok",
        "detail": "",
        "orphans": [],
        "lock": "none",
    }
    try:
        ckpt = load_checkpoint(target)
        report["detail"] = (
            f"{ckpt.record_count} records, "
            f"{ckpt.manifest.distinct_type_count} distinct types, "
            f"schema {ckpt.manifest.schema_sha256[:12]}"
        )
        if ckpt.manifest.stats_mode is not None:
            report["detail"] += f", stats {ckpt.manifest.stats_mode}"
            report["stats_mode"] = ckpt.manifest.stats_mode
        report["schema_sha256"] = ckpt.manifest.schema_sha256
    except CheckpointNotFoundError as exc:
        report["status"] = "not-found"
        report["detail"] = str(exc)
    except CheckpointCorruptError as exc:
        report["status"] = "corrupt"
        report["detail"] = exc.detail
    except CheckpointFormatError as exc:
        report["status"] = "version-mismatch"
        report["detail"] = str(exc)
    orphans = []
    if target.is_dir():
        orphans.extend(str(p) for p in sorted(target.glob("*.tmp")))
    parent = target.parent if str(target.parent) else Path(".")
    if parent.is_dir():
        orphans.extend(
            str(p) for p in sorted(parent.glob(target.name + _TMP_INFIX + "*"))
        )
    report["orphans"] = orphans
    stale = is_stale_lock(target)
    if stale is not None:
        report["lock"] = "stale" if stale else "held"
    return report
