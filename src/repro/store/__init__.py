"""Persistent schema state: checkpoint save/load/merge.

The store turns the one-shot reproducer into a restartable, shardable
service primitive: a run's fused summary persists as a versioned on-disk
checkpoint, a later run fuses new data *into* it instead of recomputing
from scratch (``infer_ndjson_file(..., update_from=..., checkpoint_to=
...)``), and checkpoints from independent shards union with
:func:`merge_checkpoints` — all of it exact by the fusion algebra's
commutativity/associativity (paper Theorems 5.4-5.5).

See :mod:`repro.store.checkpoint` for the on-disk format.
"""

from repro.store.checkpoint import (
    FORMAT_VERSION,
    Checkpoint,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointFormatError,
    CheckpointManifest,
    CheckpointNotFoundError,
    SourceFingerprint,
    build_manifest,
    checkpoint_exists,
    fingerprint_source,
    fsck_checkpoint,
    load_checkpoint,
    load_manifest,
    load_summary,
    merge_checkpoints,
    save_checkpoint,
)
from repro.store.journal import (
    JournalCorruptError,
    JournalError,
    JournalMismatchError,
    JournalNotFoundError,
    JournalState,
    RunJournal,
    fsck_journal,
    plan_signature,
    read_journal,
)
from repro.store.locks import FileLock, LockHeldError
from repro.store.summarycache import (
    CACHE_FORMAT_VERSION,
    CACHE_MARKER_NAME,
    SummaryCache,
    config_signature,
    fsck_summary_cache,
)

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CACHE_MARKER_NAME",
    "FORMAT_VERSION",
    "Checkpoint",
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointFormatError",
    "CheckpointManifest",
    "CheckpointNotFoundError",
    "FileLock",
    "JournalCorruptError",
    "JournalError",
    "JournalMismatchError",
    "JournalNotFoundError",
    "JournalState",
    "LockHeldError",
    "RunJournal",
    "SourceFingerprint",
    "SummaryCache",
    "build_manifest",
    "checkpoint_exists",
    "config_signature",
    "fingerprint_source",
    "fsck_checkpoint",
    "fsck_journal",
    "fsck_summary_cache",
    "load_checkpoint",
    "load_manifest",
    "load_summary",
    "merge_checkpoints",
    "plan_signature",
    "read_journal",
    "save_checkpoint",
]
