"""Cross-run, content-addressed partition-summary cache.

The map phase is a pure function: a split's :class:`PartitionSummary`
depends on nothing but the split's bytes (boundary probe and overshoot
included — :func:`repro.jsonio.blockscan.split_content_span`) and the
kernel configuration that typed them.  That purity is the whole load-
bearing wall here: key a persistent store by ``(content sha-256,
config signature)`` and a re-run over mostly-unchanged data can *replay*
the unchanged splits' summaries instead of re-typing their bytes.  The
driver probes the plan before dispatch, decodes hits straight into its
adoption accumulator (byte-identical schema and quarantine line
numbers), and ships only changed or new splits to workers — an
append-mostly re-run does map work proportional to the delta, not the
file.

Entries store the wire-format payload of PR 6's :func:`encode_summary`
with *split-local* quarantine line numbers, exactly as a worker would
have returned it; the driver's existing prefix-sum rebase then treats
hits and misses uniformly.  The config signature folds in everything
that changes a summary for fixed bytes: parse lane, permissive mode,
timing collection, split mode, and the wire-format version itself.

Layout (content-addressed store, git-object style)::

    <root>/CACHE                      # marker + human-readable header
    <root>/objects/<d[:2]>/<d[2:]>-<signature>.sum

Durability and concurrency reuse the checkpoint hardening from PR 7:
entries are written atomically and durably (temp file + fsync + rename +
directory fsync), every entry is framed with a magic string, length and
payload checksum so torn or bit-flipped entries classify as *misses*
(recompute, never wrong results), and eviction runs under the same
advisory :class:`~repro.store.locks.FileLock` used by checkpoints.  The
cache is strictly best-effort: a held lock, a full disk or a corrupt
entry degrade to an uncached run, never to an error or a wrong schema.

Eviction is size-bounded LRU: hits bump an entry's mtime, and when the
store grows past ``max_bytes`` the oldest entries are removed until it
fits again.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

from repro.store.checkpoint import _fsync_dir, _write_file
from repro.store.locks import FileLock, LockHeldError, is_stale_lock

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CACHE_MARKER_NAME",
    "DEFAULT_MAX_BYTES",
    "SummaryCache",
    "config_signature",
    "fsck_summary_cache",
]

#: Bumped whenever the entry framing or key derivation changes; folded
#: into :func:`config_signature` so old entries become unreachable
#: (plain misses) instead of misdecoding.
CACHE_FORMAT_VERSION = 1

#: Marker file distinguishing a summary-cache directory from a
#: checkpoint directory (both are directories; ``repro fsck`` and
#: humans dispatch on this).
CACHE_MARKER_NAME = "CACHE"

#: Default size bound: generous for summaries (a 100k-record run's
#: entries total well under a megabyte) while guaranteeing a shared
#: cache directory cannot grow without bound.
DEFAULT_MAX_BYTES = 1 << 30

#: Entry framing: magic + 8-byte big-endian payload length + 32-byte
#: payload sha-256 + payload.  Anything that does not parse — short
#: file, wrong magic, length mismatch, checksum mismatch — is a miss.
_MAGIC = b"RSUMCACHE1\n"
_LEN_BYTES = 8
_CHECKSUM_BYTES = 32
_HEADER_BYTES = len(_MAGIC) + _LEN_BYTES + _CHECKSUM_BYTES

_ENTRY_SUFFIX = ".sum"


def config_signature(
    *,
    parse_lane: str,
    permissive: bool,
    collect_timings: bool,
    split_mode: str,
    stats: str = "off",
) -> str:
    """Kernel-config half of a cache key (16 hex chars).

    Two runs share cache entries only when every input to the map phase
    other than the bytes themselves is identical: the parse lane that
    typed the lines, strict-vs-permissive error handling (changes both
    quarantine contents and which records count), whether per-phase
    timings were collected (rides inside the summary), the split mode
    (lines-mode summaries bake absolute line numbers in), the statistics
    mode (an enriched summary carries a stats bundle a plain one lacks),
    and the wire format plus cache framing versions (an encoding change
    must not replay stale bytes).
    """
    from repro.inference.kernel import WIRE_FORMAT_VERSION

    config = {
        "cache_format": CACHE_FORMAT_VERSION,
        "wire_format": WIRE_FORMAT_VERSION,
        "parse_lane": parse_lane,
        "permissive": bool(permissive),
        "collect_timings": bool(collect_timings),
        "split_mode": split_mode,
    }
    if stats != "off":
        # Folded in only when enabled, so the stats-off signature stays
        # a pure function of the pre-existing kernel knobs.
        config["stats"] = stats
    blob = json.dumps(config, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def _frame(payload: bytes) -> bytes:
    return b"".join((
        _MAGIC,
        len(payload).to_bytes(_LEN_BYTES, "big"),
        hashlib.sha256(payload).digest(),
        payload,
    ))


def _unframe(blob: bytes) -> "bytes | None":
    """Payload of a framed entry, or ``None`` for anything malformed."""
    if len(blob) < _HEADER_BYTES or not blob.startswith(_MAGIC):
        return None
    cursor = len(_MAGIC)
    length = int.from_bytes(blob[cursor:cursor + _LEN_BYTES], "big")
    cursor += _LEN_BYTES
    checksum = blob[cursor:cursor + _CHECKSUM_BYTES]
    payload = blob[cursor + _CHECKSUM_BYTES:]
    if len(payload) != length:
        return None
    if hashlib.sha256(payload).digest() != checksum:
        return None
    return payload


class SummaryCache:
    """Persistent ``(content digest, config signature) -> payload`` store.

    ``get``/``put`` never raise on storage trouble: unreadable, missing
    or corrupt entries are misses, and a failed store (lock held, disk
    error) is silently skipped — correctness always falls back to
    recomputing the split.  Only genuinely broken *usage* (a relative
    ``max_bytes < 1``) raises.
    """

    def __init__(
        self,
        root: str | Path,
        max_bytes: int = DEFAULT_MAX_BYTES,
        lock_timeout_s: float = 2.0,
    ) -> None:
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.lock_timeout_s = lock_timeout_s

    # -- key layout -----------------------------------------------------

    def entry_path(self, digest: str, signature: str) -> Path:
        """Where ``(digest, signature)`` lives: two-level fan-out like
        git's object store, so one directory never holds every entry."""
        return (
            self.root / "objects" / digest[:2]
            / f"{digest[2:]}-{signature}{_ENTRY_SUFFIX}"
        )

    # -- read side ------------------------------------------------------

    def get(self, digest: str, signature: str) -> "bytes | None":
        """The stored payload, or ``None`` (miss) for absent/corrupt."""
        path = self.entry_path(digest, signature)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        payload = _unframe(blob)
        if payload is None:
            # Corrupt entry: drop it so it stops costing reads; the
            # caller recomputes either way.
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        try:
            # LRU touch: hits keep an entry young.
            os.utime(path)
        except OSError:
            pass
        return payload

    # -- write side -----------------------------------------------------

    def put(self, digest: str, signature: str, payload: bytes) -> bool:
        """Store one entry; returns ``True`` if it was newly written.

        Atomic and durable via the checkpoint writer (temp + fsync +
        rename + directory fsync); an existing entry is only touched.
        Any storage failure is swallowed — the cache is an accelerator,
        never a correctness dependency.
        """
        path = self.entry_path(digest, signature)
        try:
            if path.is_file():
                os.utime(path)
                return False
            self._ensure_layout()
            path.parent.mkdir(parents=True, exist_ok=True)
            _write_file(path.parent, path.name, _frame(payload))
        except OSError:
            return False
        self._evict_if_needed()
        return True

    def _ensure_layout(self) -> None:
        """Create the root, marker and objects directory on first use."""
        marker = self.root / CACHE_MARKER_NAME
        if marker.is_file():
            return
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / "objects").mkdir(exist_ok=True)
        header = json.dumps(
            {"kind": "summary-cache", "format": CACHE_FORMAT_VERSION},
            sort_keys=True,
        ).encode("utf-8") + b"\n"
        _write_file(self.root, CACHE_MARKER_NAME, header)

    # -- eviction -------------------------------------------------------

    def _entries(self) -> "list[tuple[float, int, Path]]":
        """Every entry as ``(mtime, size, path)``, oldest first."""
        rows = []
        objects = self.root / "objects"
        if not objects.is_dir():
            return rows
        for path in objects.glob(f"*/*{_ENTRY_SUFFIX}"):
            try:
                stat = path.stat()
            except OSError:
                continue
            rows.append((stat.st_mtime, stat.st_size, path))
        rows.sort()
        return rows

    def size_bytes(self) -> int:
        """Total bytes of stored entries (framing included)."""
        return sum(size for _, size, _ in self._entries())

    def entry_count(self) -> int:
        """Number of stored entries."""
        return len(self._entries())

    def _evict_if_needed(self) -> None:
        """Remove oldest entries until the store fits ``max_bytes``.

        Runs under the store's advisory lock so two concurrent writers
        do not race the scan; if the lock is held, eviction is deferred
        to whoever holds it (or the next writer).
        """
        rows = self._entries()
        total = sum(size for _, size, _ in rows)
        if total <= self.max_bytes:
            return
        try:
            with FileLock(self.root, timeout_s=self.lock_timeout_s):
                for _, size, path in rows:
                    if total <= self.max_bytes:
                        break
                    try:
                        os.unlink(path)
                    except OSError:
                        continue
                    total -= size
                _fsync_dir(self.root)
        except (LockHeldError, OSError):
            return


def fsck_summary_cache(directory: str | Path) -> dict[str, Any]:
    """Classify the health of a summary-cache directory (``repro fsck``).

    Pure inspection, same report shape as the checkpoint and journal
    fscks: ``status`` is ``ok`` / ``not-found`` / ``corrupt`` (one or
    more entries failed their frame checksum — they will be treated as
    misses and dropped on next probe), ``orphans`` lists temp-file
    debris from crashed writers, and ``lock`` reports the advisory lock
    state (``none`` / ``held`` / ``stale``).
    """
    target = Path(directory)
    report: dict[str, Any] = {
        "path": str(target),
        "kind": "summary-cache",
        "status": "ok",
        "detail": "",
        "orphans": [],
        "lock": "none",
    }
    marker = target / CACHE_MARKER_NAME
    if not target.is_dir() or not marker.is_file():
        report["status"] = "not-found"
        report["detail"] = f"no summary cache at {target}"
        return report
    entries = 0
    total = 0
    corrupt: list[str] = []
    orphans: list[str] = []
    objects = target / "objects"
    if objects.is_dir():
        for path in sorted(objects.glob("*/*")):
            if path.name.endswith(".tmp"):
                orphans.append(str(path))
                continue
            if not path.name.endswith(_ENTRY_SUFFIX):
                continue
            try:
                blob = path.read_bytes()
            except OSError:
                corrupt.append(str(path))
                continue
            if _unframe(blob) is None:
                corrupt.append(str(path))
                continue
            entries += 1
            total += len(blob)
    report.update(entries=entries, bytes=total, corrupt_entries=corrupt)
    if corrupt:
        report["status"] = "corrupt"
        report["detail"] = (
            f"{len(corrupt)} corrupt entr"
            f"{'y' if len(corrupt) == 1 else 'ies'} "
            f"(treated as misses), {entries} intact"
        )
    else:
        report["detail"] = f"{entries} entries, {total} bytes"
    report["orphans"] = orphans
    stale = is_stale_lock(target)
    if stale is not None:
        report["lock"] = "stale" if stale else "held"
    return report
