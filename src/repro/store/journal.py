"""Write-ahead run journal: durable progress for a single inference run.

The fusion algebra makes every completed partition summary a permanent,
order-free unit of progress (Theorems 5.4-5.5): once a split's summary
exists, no crash can invalidate it — it merges into the final schema
whenever the run finishes.  The journal turns that mathematical fact
into an operational one.  A journaled run writes, before doing any work,
a **header frame** describing exactly what it planned (source file
fingerprint, split mode, parse lane, the task plan's digest), then
appends one **task frame** per completed task — the task's encoded
partition summary in the compact flat-table wire format
(:func:`repro.inference.kernel.encode_summary`) — and finally a
**commit frame** with the finished schema's digest.  ``infer --resume``
replays the task frames through
:meth:`~repro.inference.kernel.PartitionAccumulator.add_summary` and
re-executes only the missing task indices; the algebra guarantees the
result is byte-identical to the uninterrupted run.

Frame format (little-endian)::

    magic   b"RJRNL1\\n"                      (once, at offset 0)
    frame   kind:u8  length:u32  crc32:u32   payload[length]

``kind`` is ``H`` (header, JSON), ``T`` (task: ``index:u32`` + summary
wire bytes) or ``C`` (commit, JSON).  Every append is
write → flush → ``fsync`` — a frame either is fully durable or will
fail its CRC.  On read, a frame that runs past EOF or fails its CRC *at
the tail* is a torn append from the crash itself and is dropped
(:class:`JournalState.torn`); a CRC failure with valid bytes after it
is real mid-file damage and raises :class:`JournalCorruptError` — the
journal never silently skips interior frames.

A writer holds the store's advisory :class:`~repro.store.locks.FileLock`
on the journal path for the whole run, so two runs cannot interleave
appends into one journal; a crashed writer's lock is stale and is broken
automatically by the next one.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.engine.faults import CRASH_EXIT_CODE, crash_due, crash_point
from repro.store.locks import FileLock, is_stale_lock

__all__ = [
    "JOURNAL_FORMAT_VERSION",
    "JOURNAL_MAGIC",
    "JournalCorruptError",
    "JournalError",
    "JournalMismatchError",
    "JournalNotFoundError",
    "JournalState",
    "RunJournal",
    "fsck_journal",
    "plan_signature",
    "read_journal",
]

#: File magic: identifies a run journal and pins its container version.
JOURNAL_MAGIC = b"RJRNL1\n"

#: Bumped on any incompatible frame-layout change.
JOURNAL_FORMAT_VERSION = 1

_FRAME_HEADER = struct.Struct("<BII")  # kind, payload length, payload crc32
_TASK_PREFIX = struct.Struct("<I")  # task index, before the wire payload

KIND_HEADER = ord("H")
KIND_TASK = ord("T")
KIND_COMMIT = ord("C")

#: Refuse to trust absurd frame lengths (a torn length field can claim
#: gigabytes); summaries are compact, headers are small.
_MAX_FRAME_PAYLOAD = 1 << 31


class JournalError(Exception):
    """Base class for run-journal failures (pickles via ``(class, args)``)."""

    def __reduce__(self):
        return (self.__class__, self.args)


class JournalNotFoundError(JournalError):
    """The journal file does not exist."""


class JournalCorruptError(JournalError):
    """The journal is damaged beyond the tolerated torn tail.

    Carries ``path``, ``detail`` and the byte ``offset`` of the bad
    frame structurally, for fsck reporting.
    """

    def __init__(self, path: str, detail: str, offset: int = -1) -> None:
        at = f" at byte {offset}" if offset >= 0 else ""
        super().__init__(f"corrupt run journal {path!r}{at}: {detail}")
        self.path = str(path)
        self.detail = detail
        self.offset = offset

    def __reduce__(self):
        return (self.__class__, (self.path, self.detail, self.offset))


class JournalMismatchError(JournalError):
    """The journal describes a different run than the one resuming.

    Raised when ``--resume`` finds a journal whose source fingerprint or
    task plan digest disagrees with the current invocation — replaying
    summaries of *other* data would silently produce a wrong schema.
    """


def _write_bytes(handle, data: bytes) -> None:
    """Single seam every journal byte passes through.

    Module-level so fault-injection tests can monkeypatch it to raise
    ``ENOSPC``/``EIO`` mid-append and assert the reader still sees only
    whole frames afterwards.
    """
    handle.write(data)


def _fsync_dir(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _frame(kind: int, payload: bytes) -> bytes:
    return _FRAME_HEADER.pack(
        kind, len(payload), zlib.crc32(payload)
    ) + payload


def plan_signature(plan: Any) -> str:
    """Deterministic digest of a task plan (any JSON-serialisable value).

    The pipeline feeds it the full list of task descriptors — split
    offsets and lengths (or line-partition bounds), batching, modes — so
    two invocations agree on the signature iff they would dispatch the
    identical task list, which is exactly the condition under which
    journal task frames are replayable.
    """
    blob = json.dumps(plan, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# reading


@dataclass
class JournalState:
    """Everything a resume needs to know from an existing journal."""

    path: str
    header: dict[str, Any]
    #: task index → encoded summary payload, first write wins.
    completed: dict[int, bytes] = field(default_factory=dict)
    #: commit-frame payload, when the run finished.
    commit: dict[str, Any] | None = None
    #: a torn tail was dropped (the crash interrupted an append).
    torn: bool = False
    #: bytes dropped with the torn tail.
    torn_bytes: int = 0
    #: offset just past the last valid frame (where appends resume).
    end_offset: int = 0

    @property
    def committed(self) -> bool:
        return self.commit is not None

    def remaining(self, task_count: int | None = None) -> list[int]:
        """Task indices the journal has no summary for, in order."""
        total = (
            self.header.get("task_count", 0)
            if task_count is None else task_count
        )
        return [i for i in range(total) if i not in self.completed]


def _iter_frames(
    data: bytes, path: str
) -> Iterator[tuple[int, int, bytes]]:
    """Yield ``(offset, kind, payload)`` for every valid frame.

    Implements the torn-tail rule: an incomplete or CRC-bad frame that
    reaches EOF terminates iteration silently (the caller learns about
    it through :func:`read_journal`'s state flags); the same damage with
    live bytes *after* it is an error.
    """
    pos = len(JOURNAL_MAGIC)
    size = len(data)
    while pos < size:
        if pos + _FRAME_HEADER.size > size:
            return  # torn: header itself is incomplete
        kind, length, crc = _FRAME_HEADER.unpack_from(data, pos)
        body_start = pos + _FRAME_HEADER.size
        if length > _MAX_FRAME_PAYLOAD or body_start + length > size:
            return  # torn: payload runs past EOF (or absurd length)
        payload = data[body_start:body_start + length]
        if zlib.crc32(payload) != crc:
            if body_start + length == size:
                return  # torn: half-written final payload
            raise JournalCorruptError(
                path,
                f"frame CRC mismatch with {size - body_start - length} "
                f"valid bytes after it (mid-file damage, not a torn tail)",
                offset=pos,
            )
        yield pos, kind, payload
        pos = body_start + length


def read_journal(path: str | Path) -> JournalState:
    """Parse a journal, tolerating a torn tail, rejecting interior damage.

    Raises :class:`JournalNotFoundError` when the file is missing and
    :class:`JournalCorruptError` on bad magic, a damaged header frame,
    or mid-file frame corruption.
    """
    p = Path(path)
    try:
        data = p.read_bytes()
    except FileNotFoundError:
        raise JournalNotFoundError(
            f"no run journal at {str(p)!r}"
        ) from None
    except IsADirectoryError:
        raise JournalNotFoundError(
            f"no run journal at {str(p)!r}: is a directory"
        ) from None
    if not data.startswith(JOURNAL_MAGIC):
        raise JournalCorruptError(
            str(p), "bad magic: not a run journal", offset=0
        )

    header: dict[str, Any] | None = None
    state = JournalState(path=str(p), header={})
    end = len(JOURNAL_MAGIC)
    for offset, kind, payload in _iter_frames(data, str(p)):
        if header is None:
            if kind != KIND_HEADER:
                raise JournalCorruptError(
                    str(p), "first frame is not a header", offset=offset
                )
            try:
                header = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise JournalCorruptError(
                    str(p), f"unreadable header frame: {exc}", offset=offset
                ) from exc
            if header.get("journal_format") != JOURNAL_FORMAT_VERSION:
                raise JournalCorruptError(
                    str(p),
                    f"journal format "
                    f"{header.get('journal_format')!r}; this build reads "
                    f"version {JOURNAL_FORMAT_VERSION}",
                    offset=offset,
                )
            state.header = header
        elif kind == KIND_TASK:
            if len(payload) < _TASK_PREFIX.size:
                raise JournalCorruptError(
                    str(p), "task frame shorter than its index prefix",
                    offset=offset,
                )
            (index,) = _TASK_PREFIX.unpack_from(payload)
            state.completed.setdefault(
                index, payload[_TASK_PREFIX.size:]
            )
        elif kind == KIND_COMMIT:
            try:
                state.commit = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise JournalCorruptError(
                    str(p), f"unreadable commit frame: {exc}", offset=offset
                ) from exc
        else:
            raise JournalCorruptError(
                str(p), f"unknown frame kind {kind!r}", offset=offset
            )
        end = offset + _FRAME_HEADER.size + len(payload)
    if header is None:
        raise JournalCorruptError(
            str(p),
            "no complete header frame (the run died before its plan was "
            "durable); delete the journal and rerun without --resume",
            offset=len(JOURNAL_MAGIC),
        )
    state.end_offset = end
    state.torn = end < len(data)
    state.torn_bytes = len(data) - end
    return state


# ----------------------------------------------------------------------
# writing


class RunJournal:
    """Appender for one run's journal (create, or reopen to resume).

    All appends are fsync'd before returning: when
    :meth:`append_task` comes back, that task's summary will survive
    any subsequent crash.  Crash points (``journal.create.post``,
    ``journal.append.torn``, ``journal.append.post``,
    ``journal.commit.pre``, ``journal.commit.post``) let the subprocess
    harness kill the run at every durability boundary.
    """

    def __init__(self, path: str | Path, handle, lock: FileLock) -> None:
        self.path = str(path)
        self._handle = handle
        self._lock = lock
        self.tasks_appended = 0
        self.bytes_appended = 0

    # -- constructors ---------------------------------------------------

    @classmethod
    def create(cls, path: str | Path, header: dict[str, Any]) -> "RunJournal":
        """Start a fresh journal: magic + header frame, durably.

        Refuses to overwrite an existing journal file (that is what
        resume is for); a stale leftover must be deleted explicitly.
        """
        p = Path(path)
        if p.parent and not p.parent.is_dir():
            p.parent.mkdir(parents=True, exist_ok=True)
        lock = FileLock(p).acquire()
        try:
            if p.exists():
                raise JournalError(
                    f"journal {str(p)!r} already exists; pass --resume to "
                    f"continue it or delete it to start over"
                )
            header = dict(header)
            header.setdefault("journal_format", JOURNAL_FORMAT_VERSION)
            payload = json.dumps(
                header, sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
            handle = open(p, "xb")
            try:
                _write_bytes(handle, JOURNAL_MAGIC)
                _write_bytes(handle, _frame(KIND_HEADER, payload))
                handle.flush()
                os.fsync(handle.fileno())
            except BaseException:
                handle.close()
                try:
                    os.unlink(p)
                except OSError:
                    pass
                raise
            _fsync_dir(p.parent if str(p.parent) else Path("."))
        except BaseException:
            lock.release()
            raise
        crash_point("journal.create.post")
        return cls(p, handle, lock)

    @classmethod
    def open_resume(
        cls, path: str | Path
    ) -> tuple["RunJournal", JournalState]:
        """Reopen an existing journal for appending, dropping a torn tail.

        Returns the journal (positioned after the last valid frame, the
        torn bytes truncated away and the truncation fsync'd) together
        with the parsed :class:`JournalState`.
        """
        p = Path(path)
        lock = FileLock(p).acquire()
        try:
            state = read_journal(p)
            handle = open(p, "r+b")
            try:
                if state.torn:
                    handle.truncate(state.end_offset)
                    handle.flush()
                    os.fsync(handle.fileno())
                handle.seek(0, os.SEEK_END)
            except BaseException:
                handle.close()
                raise
        except BaseException:
            lock.release()
            raise
        return cls(p, handle, lock), state

    # -- appends --------------------------------------------------------

    def _append(self, kind: int, payload: bytes, torn_point: str) -> None:
        if self._handle is None:
            raise JournalError(f"journal {self.path!r} is closed")
        frame = _frame(kind, payload)
        if crash_due(torn_point):
            # Simulate the crash landing mid-write: half a frame reaches
            # the disk, then the process dies.  The reader must shrug
            # this off as a torn tail.
            self._handle.write(frame[:max(1, len(frame) // 2)])
            self._handle.flush()
            os.fsync(self._handle.fileno())
            os._exit(CRASH_EXIT_CODE)
        _write_bytes(self._handle, frame)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.bytes_appended += len(frame)

    def append_task(self, index: int, summary_wire: bytes) -> None:
        """Durably record task ``index``'s encoded partition summary."""
        self._append(
            KIND_TASK,
            _TASK_PREFIX.pack(index) + summary_wire,
            torn_point="journal.append.torn",
        )
        self.tasks_appended += 1
        crash_point("journal.append.post")

    def append_commit(self, info: dict[str, Any]) -> None:
        """Record run completion (typically the final schema digest)."""
        crash_point("journal.commit.pre")
        payload = json.dumps(
            info, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        self._append(KIND_COMMIT, payload, torn_point="journal.commit.torn")
        crash_point("journal.commit.post")

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None
                self._lock.release()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def fsck_journal(path: str | Path) -> dict[str, Any]:
    """Classify the health of a run journal (``repro fsck``).

    Pure inspection.  ``status`` is ``ok`` / ``not-found`` /
    ``corrupt``; an ``ok`` journal additionally reports whether it is
    committed, how many of its planned tasks have durable summaries,
    whether a torn tail would be dropped on resume, and the advisory
    lock state.
    """
    p = Path(path)
    report: dict[str, Any] = {
        "path": str(p),
        "kind": "journal",
        "status": "ok",
        "detail": "",
        "lock": "none",
    }
    try:
        state = read_journal(p)
    except JournalNotFoundError as exc:
        report["status"] = "not-found"
        report["detail"] = str(exc)
    except JournalCorruptError as exc:
        report["status"] = "corrupt"
        report["detail"] = exc.detail
        report["offset"] = exc.offset
    else:
        task_count = state.header.get("task_count")
        report.update(
            committed=state.committed,
            tasks_recorded=len(state.completed),
            task_count=task_count,
            torn=state.torn,
            torn_bytes=state.torn_bytes,
        )
        done = len(state.completed)
        total = task_count if task_count is not None else "?"
        bits = [f"{done}/{total} task summaries durable"]
        if state.committed:
            digest = (state.commit or {}).get("schema_sha256", "")
            bits.append(f"committed schema {digest[:12]}")
        if state.torn:
            bits.append(
                f"torn tail ({state.torn_bytes} bytes, dropped on resume)"
            )
        report["detail"] = ", ".join(bits)
    stale = is_stale_lock(p)
    if stale is not None:
        report["lock"] = "stale" if stale else "held"
    return report
