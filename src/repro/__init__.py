"""repro — schema inference for massive JSON datasets.

A faithful, self-contained Python reproduction of

    M.-A. Baazizi, H. Ben Lahmar, D. Colazzo, G. Ghelli, C. Sartiani.
    "Schema Inference for Massive JSON Datasets." EDBT 2017.

Quick start::

    from repro import infer_schema, print_type

    schema = infer_schema([{"a": 1}, {"a": "x", "b": True}])
    print(print_type(schema))       # {a: Num + Str, b: Bool?}

Package layout:

* :mod:`repro.core` — the JSON type language (AST, semantics, subtyping,
  printing/parsing, JSON Schema export).
* :mod:`repro.inference` — value typing (Map) and type fusion (Reduce),
  pipelines, incremental inference, statistics enrichment.
* :mod:`repro.jsonio` — from-scratch JSON parsing/serialisation and NDJSON.
* :mod:`repro.engine` — mini-Spark execution substrate + cluster simulator.
* :mod:`repro.store` — persistent schema checkpoints: save/load/merge
  partition summaries for incremental, restartable inference.
* :mod:`repro.datasets` — synthetic generators for the paper's four
  datasets (GitHub, Twitter, Wikidata, NYTimes).
* :mod:`repro.analysis` — succinctness statistics, schema paths, tables.
"""

from repro.core import (
    BOOL,
    EMPTY,
    NULL,
    NUM,
    STR,
    ArrayType,
    BasicType,
    EmptyType,
    Field,
    Kind,
    RecordType,
    StarArrayType,
    Type,
    UnionType,
    is_normal,
    is_subtype,
    make_array,
    make_record,
    make_star,
    make_union,
    matches,
    parse_type,
    pretty_print,
    print_type,
    to_json_schema,
)
from repro.engine import Context
from repro.store import (
    Checkpoint,
    load_checkpoint,
    merge_checkpoints,
    save_checkpoint,
)
from repro.inference import (
    SchemaInferencer,
    collapse,
    fuse,
    fuse_all,
    infer_partitioned,
    infer_schema,
    infer_type,
    run_inference,
)

def _detect_version() -> str:
    """Single-source the package version from ``pyproject.toml``.

    The source tree is the authority (the usual way this package runs:
    ``PYTHONPATH=src``, no installation), so the adjacent pyproject is
    read first; an installed distribution falls back to its own
    metadata, and a source tree shipped without packaging metadata falls
    back to a sentinel rather than failing import.
    """
    import os
    import re

    pyproject = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))),
        "pyproject.toml",
    )
    try:
        with open(pyproject, "rb") as handle:
            raw = handle.read()
        try:
            import tomllib
            version = tomllib.loads(raw.decode("utf-8"))["project"]["version"]
            if isinstance(version, str):
                return version
        except ModuleNotFoundError:  # pragma: no cover - Python < 3.11
            match = re.search(
                rb'^version\s*=\s*"([^"]+)"', raw, re.MULTILINE
            )
            if match:
                return match.group(1).decode("utf-8")
    except (OSError, KeyError, ValueError):
        pass
    try:  # pragma: no cover - only reached when installed as a dist
        from importlib.metadata import version as dist_version
        return dist_version("repro")
    except Exception:
        return "0+unknown"


__version__ = _detect_version()

__all__ = [
    "__version__",
    # types
    "Type", "BasicType", "RecordType", "Field", "ArrayType", "StarArrayType",
    "UnionType", "EmptyType", "NULL", "BOOL", "NUM", "STR", "EMPTY", "Kind",
    "make_union", "make_record", "make_array", "make_star",
    # type operations
    "matches", "is_subtype", "is_normal", "print_type", "pretty_print",
    "parse_type", "to_json_schema",
    # inference
    "infer_type", "fuse", "collapse", "fuse_all", "infer_schema",
    "run_inference", "SchemaInferencer", "infer_partitioned",
    # engine
    "Context",
    # store
    "Checkpoint", "save_checkpoint", "load_checkpoint", "merge_checkpoints",
]
