"""Synthetic Twitter stream records (the paper's second dataset).

Structural signature reproduced (Section 6.1):

* a mix of **two kinds of records**: tweet entities and tiny *delete*
  notices (the paper: "a tiny fraction ... corresponds to a specific API
  call meant to delete tweets"), giving very small minimum type sizes
  (min 7 in Table 3);
* **five different top-level schemas** sharing common parts: deletes,
  plain tweets, retweets (``retweeted_status``), quote tweets
  (``quoted_status``) and tweets with ``extended_entities``;
* both records and **arrays of records** (``entities.hashtags``,
  ``entities.urls``, ``entities.user_mentions``), with nesting depth <= 3
  before arrays are considered;
* varying array lengths and nullable fields make distinct-type counts grow
  faster than GitHub's but fusion still compacts well (fused/avg <= 4 in
  Table 3).
"""

from __future__ import annotations

from random import Random
from typing import Any

from repro.datasets.vocabulary import (
    random_login,
    random_name,
    random_sentence,
    random_timestamp_ms,
    random_url,
    random_word,
)

__all__ = ["generate_record", "DELETE_FRACTION"]

#: Fraction of records that are delete notices rather than tweets.
DELETE_FRACTION = 0.07


def _delete(rng: Random) -> dict[str, Any]:
    """A delete notice — the smallest record shape in the stream."""
    tweet_id = rng.randint(10**9, 10**12)
    return {
        "delete": {
            "status": {
                "id": tweet_id,
                "user_id": rng.randint(1, 10**9),
            },
            "timestamp_ms": random_timestamp_ms(rng),
        }
    }


def _twitter_user(rng: Random) -> dict[str, Any]:
    login = random_login(rng)
    return {
        "id": rng.randint(1, 10**9),
        "name": random_name(rng),
        "screen_name": login,
        "location": None if rng.random() < 0.4 else random_word(rng).capitalize(),
        "url": None if rng.random() < 0.6 else random_url(rng),
        "description": None if rng.random() < 0.3 else random_sentence(rng, 3, 10),
        "protected": rng.random() < 0.05,
        "verified": rng.random() < 0.02,
        "followers_count": rng.randint(0, 2_000_000),
        "friends_count": rng.randint(0, 50_000),
        "statuses_count": rng.randint(0, 500_000),
        "lang": rng.choice(["en", "fr", "es", "pt", "ja", "ar", "de"]),
        "geo_enabled": rng.random() < 0.3,
    }


def _hashtags(rng: Random, n: int) -> list[dict[str, Any]]:
    out = []
    for _ in range(n):
        start = rng.randint(0, 100)
        word = random_word(rng)
        out.append({"text": word, "indices": [start, start + len(word) + 1]})
    return out


def _urls(rng: Random, n: int) -> list[dict[str, Any]]:
    out = []
    for _ in range(n):
        start = rng.randint(0, 100)
        out.append({
            "url": random_url(rng, "t.example.org"),
            "expanded_url": random_url(rng),
            "display_url": random_word(rng) + ".example.org",
            "indices": [start, start + 23],
        })
    return out


def _mentions(rng: Random, n: int) -> list[dict[str, Any]]:
    out = []
    for _ in range(n):
        start = rng.randint(0, 100)
        login = random_login(rng)
        out.append({
            "screen_name": login,
            "name": random_name(rng),
            "id": rng.randint(1, 10**9),
            "indices": [start, start + len(login) + 1],
        })
    return out


def _entities(rng: Random) -> dict[str, Any]:
    """The entities record: arrays of records with data-dependent lengths."""
    return {
        "hashtags": _hashtags(rng, rng.randint(0, 3)),
        "urls": _urls(rng, rng.randint(0, 2)),
        "user_mentions": _mentions(rng, rng.randint(0, 2)),
        "symbols": [],
    }


def _media(rng: Random, n: int) -> list[dict[str, Any]]:
    out = []
    for _ in range(n):
        start = rng.randint(0, 100)
        out.append({
            "id": rng.randint(1, 10**12),
            "media_url": random_url(rng, "pbs.example.org"),
            "type": rng.choice(["photo", "video", "animated_gif"]),
            "indices": [start, start + 23],
            # Sizes are flattened to strings so that Twitter stays within
            # the paper's record-nesting bound of 3 levels
            # (extended_entities -> media[] -> item is already 3).
            "size_small": f"340x{rng.randint(100, 340)}",
            "size_large": f"1024x{rng.randint(300, 1024)}",
        })
    return out


def _coordinates(rng: Random) -> dict[str, Any] | None:
    if rng.random() < 0.9:
        return None
    return {
        "type": "Point",
        "coordinates": [
            round(rng.uniform(-180, 180), 5),
            round(rng.uniform(-90, 90), 5),
        ],
    }


def _base_tweet(rng: Random) -> dict[str, Any]:
    """The shape shared by the four tweet-flavoured top-level schemas."""
    return {
        "created_at": random_timestamp_ms(rng),
        "id": rng.randint(10**9, 10**12),
        "text": random_sentence(rng, 3, 18),
        "source": f"<a href=\"{random_url(rng)}\">{random_word(rng)}</a>",
        "truncated": rng.random() < 0.03,
        "in_reply_to_status_id": (
            None if rng.random() < 0.8 else rng.randint(10**9, 10**12)
        ),
        "user": _twitter_user(rng),
        "geo": None,
        "coordinates": _coordinates(rng),
        "retweet_count": rng.randint(0, 10_000),
        "favorite_count": rng.randint(0, 50_000),
        "entities": _entities(rng),
        "favorited": False,
        "retweeted": False,
        "lang": rng.choice(["en", "fr", "es", "pt", "ja", "ar", "und"]),
        "timestamp_ms": random_timestamp_ms(rng),
    }


def generate_record(rng: Random) -> dict[str, Any]:
    """One stream record: a delete notice or one of four tweet shapes."""
    if rng.random() < DELETE_FRACTION:
        return _delete(rng)
    tweet = _base_tweet(rng)
    shape = rng.random()
    if shape < 0.25:
        # Retweet: embeds the original as a nested (array-free) stub.
        inner = _base_tweet(rng)
        inner.pop("entities")
        tweet["retweeted_status"] = inner
    elif shape < 0.40:
        # Quote tweet.
        tweet["quoted_status_id"] = rng.randint(10**9, 10**12)
        tweet["is_quote_status"] = True
    elif shape < 0.55:
        # Media tweet with extended entities.
        tweet["extended_entities"] = {"media": _media(rng, rng.randint(1, 2))}
    # else: plain tweet.
    return tweet
