"""Dataset registry, deterministic generation and the paper's sub-sampling.

The paper evaluates on four datasets, each cut to sub-datasets of 1K, 10K,
100K and 1M records (Table 1).  Originals are proprietary crawls; this
module exposes seeded synthetic generators with the same structural
signatures (see the per-dataset modules for what exactly is reproduced)
and mirrors the sub-sampling protocol.

Every dataset is a pure function of ``(name, n, seed)``: record ``i`` of a
given dataset/seed never changes, and a 1K sub-dataset is a prefix of the
10K one, so results at different scales are comparable the way the paper's
are.
"""

from __future__ import annotations

from pathlib import Path
from random import Random
from typing import Any, Callable, Iterator

from repro.datasets import github, nytimes, twitter, wikidata
from repro.jsonio.ndjson import write_ndjson

__all__ = [
    "DATASET_NAMES",
    "SCALES",
    "generate",
    "generate_list",
    "write_dataset",
    "dataset_generator",
]

#: Record generators, one per paper dataset, keyed by the paper's names.
_GENERATORS: dict[str, Callable[[Random], dict[str, Any]]] = {
    "github": github.generate_record,
    "twitter": twitter.generate_record,
    "wikidata": wikidata.generate_record,
    "nytimes": nytimes.generate_record,
}

DATASET_NAMES = tuple(_GENERATORS)

#: The paper's sub-dataset scales (Table 1).
SCALES = {"1K": 1_000, "10K": 10_000, "100K": 100_000, "1M": 1_000_000}


def dataset_generator(name: str) -> Callable[[Random], dict[str, Any]]:
    """The per-record generator for ``name`` (raises ``KeyError`` with the
    valid names listed if unknown)."""
    try:
        return _GENERATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(DATASET_NAMES)}"
        ) from None


def generate(name: str, n: int, seed: int = 0) -> Iterator[dict[str, Any]]:
    """Stream ``n`` records of dataset ``name``.

    Each record gets its own ``Random`` derived from ``(seed, index)``, so
    the stream is deterministic *and* prefix-stable: ``generate(name, 1000)``
    is the first thousand records of ``generate(name, 10_000)``.
    """
    make_record = dataset_generator(name)
    for index in range(n):
        # String seeds are hashed with SHA-512 internally, so this is both
        # deterministic across processes and decorrelated across indices.
        yield make_record(Random(f"{name}:{seed}:{index}"))


def generate_list(name: str, n: int, seed: int = 0) -> list[dict[str, Any]]:
    """Materialised variant of :func:`generate`."""
    return list(generate(name, n, seed))


def write_dataset(name: str, n: int, path: str | Path, seed: int = 0) -> int:
    """Generate and write a dataset as NDJSON; returns the record count."""
    return write_ndjson(path, generate(name, n, seed))
