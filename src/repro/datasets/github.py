"""Synthetic GitHub pull-request metadata (the paper's first dataset).

Structural signature reproduced (Section 6.1):

* every record shares the same **top-level** schema; variation only occurs
  at lower levels;
* records are **exclusively nested records** — no arrays at all;
* nesting depth never exceeds **4**;
* per-record inferred types are homogeneous in size (the paper reports a
  constant type size of 147 across the whole dataset) and the number of
  distinct types grows slowly with scale (29 at 1K to ~3000 at 1M).

Variation is driven by nullable lower-level fields (``body``,
``merged_at``, ``milestone``, ``assignee``...): each may independently be
``null`` or populated, so distinct type counts grow combinatorially but
slowly, exactly the regime where fusion compacts extremely well
(fused/avg ratio <= 1.4 in Table 2).
"""

from __future__ import annotations

from random import Random
from typing import Any

from repro.datasets.vocabulary import (
    random_date,
    random_login,
    random_sentence,
    random_sha,
    random_url,
    random_word,
)

__all__ = ["generate_record"]


def _user(rng: Random) -> dict[str, Any]:
    """A GitHub user stub (depth-1 record, fixed shape)."""
    login = random_login(rng)
    return {
        "login": login,
        "id": rng.randint(1, 10_000_000),
        "avatar_url": f"https://avatars.example.org/u/{login}",
        "gravatar_id": "",
        "url": f"https://api.example.org/users/{login}",
        "type": "User" if rng.random() < 0.97 else "Organization",
        "site_admin": rng.random() < 0.02,
    }


def _repo(rng: Random, owner: dict[str, Any]) -> dict[str, Any]:
    """A repository record; ``owner`` nests one level deeper (depth 3-4)."""
    name = f"{random_word(rng)}-{random_word(rng)}"
    return {
        "id": rng.randint(1, 50_000_000),
        "name": name,
        "full_name": f"{owner['login']}/{name}",
        "owner": owner,
        "private": rng.random() < 0.1,
        "html_url": random_url(rng, "github.example.org"),
        "description": _nullable_sentence(rng, 0.02),
        "fork": rng.random() < 0.2,
        "created_at": random_date(rng),
        "updated_at": random_date(rng),
        "size": rng.randint(1, 500_000),
        "stargazers_count": rng.randint(0, 50_000),
        "language": _nullable(rng, 0.02, lambda r: random_word(r).capitalize()),
        "has_issues": rng.random() < 0.9,
        "has_wiki": rng.random() < 0.7,
        "forks_count": rng.randint(0, 5_000),
        "open_issues_count": rng.randint(0, 900),
        "default_branch": "master",
    }


def _nullable(rng: Random, p_null: float, make: Any) -> Any:
    """Either ``null`` (with probability ``p_null``) or ``make(rng)``.

    These are the variation points that drive GitHub's slow distinct-type
    growth: the *keys* never change, only Null-vs-payload at lower levels.
    """
    if rng.random() < p_null:
        return None
    return make(rng)


def _nullable_sentence(rng: Random, p_null: float) -> str | None:
    return _nullable(rng, p_null, random_sentence)


def _milestone(rng: Random) -> dict[str, Any]:
    return {
        "id": rng.randint(1, 2_000_000),
        "number": rng.randint(1, 120),
        "title": random_word(rng).capitalize(),
        "description": _nullable_sentence(rng, 0.3),
        "open_issues": rng.randint(0, 50),
        "closed_issues": rng.randint(0, 200),
        "state": rng.choice(["open", "closed"]),
        "created_at": random_date(rng),
        "due_on": _nullable(rng, 0.4, random_date),
    }


def _branch_ref(rng: Random) -> dict[str, Any]:
    """A head/base reference: label, ref, sha, user, flat repo stub.

    The repo stub is flattened (``owner_login`` instead of a nested owner
    record) to respect the paper's depth bound of 4 for this dataset.
    """
    user = _user(rng)
    name = f"{random_word(rng)}-{random_word(rng)}"
    return {
        "label": f"{user['login']}:{random_word(rng)}",
        "ref": random_word(rng),
        "sha": random_sha(rng),
        "user": user,
        "repo": {
            "id": rng.randint(1, 50_000_000),
            "name": name,
            "full_name": f"{user['login']}/{name}",
            "owner_login": user["login"],
            "private": rng.random() < 0.1,
            "description": random_sentence(rng),
            "fork": rng.random() < 0.2,
            "language": random_word(rng).capitalize(),
            "default_branch": "master",
        },
    }


def generate_record(rng: Random) -> dict[str, Any]:
    """One pull-request event record."""
    merged = rng.random() < 0.4
    closed = merged or rng.random() < 0.2
    return {
        "action": rng.choice(["opened", "closed", "reopened", "synchronize"]),
        "number": rng.randint(1, 90_000),
        "pull_request": {
            "id": rng.randint(1, 80_000_000),
            "url": random_url(rng, "api.github.example.org"),
            "state": "closed" if closed else "open",
            "locked": rng.random() < 0.01,
            "title": random_sentence(rng, 2, 8),
            "user": _user(rng),
            "body": _nullable_sentence(rng, 0.2),
            "created_at": random_date(rng),
            "updated_at": random_date(rng),
            "closed_at": random_date(rng) if closed else None,
            "merged_at": random_date(rng) if merged else None,
            "merge_commit_sha": _nullable(rng, 0.25, random_sha),
            "assignee": _nullable(rng, 0.7, _user),
            "milestone": _nullable(rng, 0.8, _milestone),
            "head": _branch_ref(rng),
            "base": _branch_ref(rng),
            "merged": merged,
            "mergeable": _nullable(rng, 0.35, lambda r: r.random() < 0.8),
            "comments": rng.randint(0, 150),
            "commits": rng.randint(1, 80),
            "additions": rng.randint(0, 30_000),
            "deletions": rng.randint(0, 30_000),
            "changed_files": rng.randint(1, 400),
        },
        "repository": _repo(rng, _user(rng)),
        "sender": _user(rng),
    }
