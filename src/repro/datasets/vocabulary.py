"""Shared word/identifier pools for the synthetic dataset generators.

All helpers take an explicit ``random.Random`` so that every generated
dataset is a pure function of its seed — the benchmarks rely on that for
reproducible tables.
"""

from __future__ import annotations

from random import Random

__all__ = [
    "WORDS",
    "FIRST_NAMES",
    "LAST_NAMES",
    "LANGUAGES",
    "WIKI_SITES",
    "random_word",
    "random_words",
    "random_sentence",
    "random_name",
    "random_login",
    "random_hex",
    "random_sha",
    "random_url",
    "random_date",
    "random_timestamp_ms",
]

WORDS = (
    "data schema json record array type union merge fusion spark stream "
    "query index table column cluster node shard block region partition "
    "value field label claim badge token branch commit issue review "
    "release deploy metric trace event signal window batch source sink "
    "model graph vertex edge path route cache buffer queue topic offset "
    "market policy budget sensor device report story article press media "
    "culture science travel sports health climate energy finance election "
    "city street bridge river garden market museum theatre station harbor"
).split()

FIRST_NAMES = (
    "ada alan grace edsger barbara donald tony leslie john ken dennis "
    "margaret radia frances jean kathleen annie mary joan betty marlyn"
).split()

LAST_NAMES = (
    "lovelace turing hopper dijkstra liskov knuth hoare lamport backus "
    "thompson ritchie hamilton perlman allen sammet bartik holberton "
    "jennings snyder teitelbaum wescoff meltzer"
).split()

#: ISO-639-ish language codes used by the Wikidata generator's labels maps.
LANGUAGES = (
    "en fr de it es pt nl sv da no fi pl cs sk hu ro bg el ru uk tr ar he "
    "fa hi bn ta te ml kn ur th vi id ms zh ja ko ca eu gl ast oc br cy ga "
    "is lv lt et sl hr sr mk sq"
).split()

#: Wiki site identifiers for the Wikidata generator's sitelinks maps.
WIKI_SITES = tuple(
    f"{lang}wiki" for lang in (
        "en fr de it es pt nl sv da no fi pl cs ru uk ja zh ko ar he tr "
        "hu ro el bg ca eu"
    ).split()
)


def random_word(rng: Random) -> str:
    """A single lowercase word."""
    return rng.choice(WORDS)


def random_words(rng: Random, n: int) -> list[str]:
    """``n`` independent words."""
    return [rng.choice(WORDS) for _ in range(n)]


def random_sentence(rng: Random, min_words: int = 4, max_words: int = 14) -> str:
    """A capitalised, dot-terminated pseudo-sentence."""
    n = rng.randint(min_words, max_words)
    words = random_words(rng, n)
    return (" ".join(words)).capitalize() + "."


def random_name(rng: Random) -> str:
    """A "Firstname Lastname" pair."""
    return f"{rng.choice(FIRST_NAMES).capitalize()} {rng.choice(LAST_NAMES).capitalize()}"


def random_login(rng: Random) -> str:
    """A GitHub-style user login."""
    return f"{rng.choice(FIRST_NAMES)}{rng.randint(1, 9999)}"


def random_hex(rng: Random, length: int = 24) -> str:
    """A lowercase hex identifier of the given length."""
    return "".join(rng.choice("0123456789abcdef") for _ in range(length))


def random_sha(rng: Random) -> str:
    """A git-style 40-character SHA."""
    return random_hex(rng, 40)


def random_url(rng: Random, host: str = "example.org") -> str:
    """An https URL with a couple of word path segments."""
    path = "/".join(random_words(rng, rng.randint(1, 3)))
    return f"https://{host}/{path}"


def random_date(rng: Random) -> str:
    """An ISO-8601 date-time string (second precision, Zulu)."""
    return (
        f"{rng.randint(2008, 2016):04d}-{rng.randint(1, 12):02d}-"
        f"{rng.randint(1, 28):02d}T{rng.randint(0, 23):02d}:"
        f"{rng.randint(0, 59):02d}:{rng.randint(0, 59):02d}Z"
    )


def random_timestamp_ms(rng: Random) -> str:
    """A millisecond epoch timestamp, as the string Twitter uses."""
    return str(rng.randint(1_300_000_000_000, 1_480_000_000_000))
