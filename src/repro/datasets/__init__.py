"""Synthetic stand-ins for the paper's four evaluation datasets.

The originals (GitHub pull requests, a Twitter crawl, a Wikidata snapshot,
an NYTimes API crawl — up to 75 GB) are not redistributable; each module
here generates records with the same *structural signature*, which is the
property Tables 2-5 actually measure.  See DESIGN.md for the substitution
rationale and the per-dataset module docstrings for what is reproduced.
"""

from repro.datasets.base import (
    DATASET_NAMES,
    SCALES,
    dataset_generator,
    generate,
    generate_list,
    write_dataset,
)

__all__ = [
    "DATASET_NAMES", "SCALES", "generate", "generate_list",
    "write_dataset", "dataset_generator",
]
