"""Synthetic Wikidata entity records (the paper's third dataset).

Structural signature reproduced (Section 6.1):

* the pathology the paper singles out: **data encoded as keys**.  Language
  codes key the ``labels``/``descriptions`` maps, property identifiers
  (``P31``, ``P569``, ...) key the ``claims`` map, and wiki names key the
  ``sitelinks`` map.  Since fusion merges records *by key*, records with
  different key subsets never collapse — the distinct-type count explodes
  (640K distinct types at 1M in Table 4) and the fused schema is the
  largest of the four datasets, while still far smaller than the sum of
  the inputs;
* nesting reaches **6 levels** (root -> claims -> P-id -> claim ->
  mainsnak -> datavalue -> value record);
* otherwise a fixed overall layout ("structured following a fixed schema,
  but suffer from a poor design").
"""

from __future__ import annotations

from random import Random
from typing import Any

from repro.datasets.vocabulary import (
    LANGUAGES,
    WIKI_SITES,
    random_sentence,
    random_word,
)

__all__ = ["generate_record", "PROPERTY_SPACE"]

#: Size of the property-identifier space claims draw from.  A large space
#: relative to the per-record claim count makes almost every record's key
#: set — and hence its inferred type — unique.
PROPERTY_SPACE = 2000


def _label(rng: Random, language: str) -> dict[str, Any]:
    return {"language": language, "value": random_word(rng).capitalize()}


def _snak_value(rng: Random) -> Any:
    """A datavalue payload: either a plain string or an item reference."""
    roll = rng.random()
    if roll < 0.45:
        return {
            "entity-type": "item",
            "numeric-id": rng.randint(1, 20_000_000),
        }
    if roll < 0.75:
        return random_word(rng)
    if roll < 0.9:
        return {
            "time": f"+{rng.randint(1500, 2016)}-01-01T00:00:00Z",
            "precision": rng.choice([9, 10, 11]),
            "calendarmodel": "http://example.org/entity/Q1985727",
        }
    return {
        "amount": f"+{rng.randint(0, 10_000)}",
        "unit": "1",
    }


def _claim(rng: Random, property_id: str) -> dict[str, Any]:
    snaktype = "value" if rng.random() < 0.9 else "somevalue"
    mainsnak: dict[str, Any] = {
        "snaktype": snaktype,
        "property": property_id,
        "datatype": rng.choice(
            ["wikibase-item", "string", "time", "quantity", "url"]
        ),
    }
    if snaktype == "value":
        mainsnak["datavalue"] = {
            "value": _snak_value(rng),
            "type": rng.choice(["wikibase-entityid", "string", "time"]),
        }
    return {
        "mainsnak": mainsnak,
        "type": "statement",
        "id": f"Q{rng.randint(1, 20_000_000)}${random_word(rng)}",
        "rank": rng.choice(["normal", "normal", "normal", "preferred"]),
    }


def generate_record(rng: Random) -> dict[str, Any]:
    """One Wikidata entity with ids-as-keys maps throughout."""
    entity_id = f"Q{rng.randint(1, 20_000_000)}"
    languages = rng.sample(LANGUAGES, rng.randint(1, 6))
    description_languages = rng.sample(LANGUAGES, rng.randint(0, 4))
    properties = [
        f"P{rng.randint(1, PROPERTY_SPACE)}" for _ in range(rng.randint(1, 8))
    ]
    sites = rng.sample(WIKI_SITES, rng.randint(0, 4))
    return {
        "id": entity_id,
        "type": "item",
        "labels": {lang: _label(rng, lang) for lang in languages},
        "descriptions": {
            lang: {"language": lang, "value": random_sentence(rng, 2, 6)}
            for lang in description_languages
        },
        "claims": {
            pid: [_claim(rng, pid) for _ in range(rng.randint(1, 2))]
            for pid in sorted(set(properties))
        },
        "sitelinks": {
            site: {
                "site": site,
                "title": random_word(rng).capitalize(),
                "badges": [],
            }
            for site in sites
        },
    }
