"""Synthetic NYTimes article metadata (the paper's fourth dataset).

Structural signature reproduced (Section 6.1):

* the **first level is fixed** while lower levels vary — the regime the
  paper found compacts *best* under fusion (Table 5);
* the documented ``headline`` variability: some records carry subfields
  ``main``/``content_kicker``/``kicker``, others ``main``/
  ``print_headline``;
* the documented Num/Str conflicts: the same field (``word_count``,
  ``keywords[].rank``) is a number in some records and a string in others;
* mostly **text-valued fields** (headline, snippet, lead paragraph...),
  making records large on disk relative to their type size;
* deep nesting (up to 7 levels through ``multimedia[].legacy`` and
  ``byline.person[]``), and arrays of variable-shape records
  (``multimedia``, ``keywords``) driving a large distinct-type count.
"""

from __future__ import annotations

from random import Random
from typing import Any

from repro.datasets.vocabulary import (
    random_date,
    random_hex,
    random_name,
    random_sentence,
    random_url,
    random_word,
)

__all__ = ["generate_record"]

_SECTIONS = [
    "World", "U.S.", "Business", "Sports", "Arts", "Science", "Travel",
    "Opinion", "Technology", "Books",
]

_MATERIAL = ["News", "Review", "Op-Ed", "Editorial", "Blog", "Brief"]


def _headline(rng: Random) -> dict[str, Any]:
    """The two headline shapes the paper calls out explicitly."""
    headline: dict[str, Any] = {"main": random_sentence(rng, 3, 10)}
    if rng.random() < 0.5:
        headline["content_kicker"] = random_word(rng).capitalize()
        headline["kicker"] = random_word(rng).capitalize()
    else:
        headline["print_headline"] = random_sentence(rng, 2, 7)
    if rng.random() < 0.2:
        headline["seo"] = {"title": random_sentence(rng, 2, 6)}
    return headline


def _keyword(rng: Random, rank: int) -> dict[str, Any]:
    keyword: dict[str, Any] = {
        "name": rng.choice(["subject", "persons", "glocations", "organizations"]),
        "value": random_word(rng).capitalize(),
        # The Num/Str conflict the paper observed ("the use of Num and Str
        # types for the same field"): rank is sometimes a string.
        "rank": rank if rng.random() < 0.6 else str(rank),
    }
    if rng.random() < 0.3:
        keyword["major"] = rng.choice(["Y", "N"])
    return keyword


def _multimedia_item(rng: Random) -> dict[str, Any]:
    subtype = rng.choice(["wide", "thumbnail", "xlarge"])
    item: dict[str, Any] = {
        "url": random_url(rng, "static.example.org"),
        "format": subtype,
        "height": rng.randint(50, 800),
        "width": rng.randint(50, 1200),
        "type": "image",
        "subtype": "photo",
    }
    if rng.random() < 0.5:
        item["legacy"] = {
            subtype: {
                "url": random_url(rng, "static.example.org"),
                "height": rng.randint(50, 800),
                "width": rng.randint(50, 1200),
            }
        }
    if rng.random() < 0.3:
        # Image-crop metadata: the deepest branch of the dataset, reaching
        # the paper's 7 record-nesting levels
        # (root -> multimedia[] -> crops -> master -> rect -> origin -> point).
        item["crops"] = {
            "master": {
                "rect": {
                    "origin": {
                        "point": {
                            "x": rng.randint(0, 200),
                            "y": rng.randint(0, 200),
                        },
                    },
                    "size": f"{rng.randint(50, 1200)}x{rng.randint(50, 800)}",
                },
            },
        }
    if rng.random() < 0.25:
        item["caption"] = random_sentence(rng, 4, 12)
    return item


def _person(rng: Random, rank: int) -> dict[str, Any]:
    first, last = random_name(rng).split(" ", 1)
    person: dict[str, Any] = {
        "firstname": first,
        "lastname": last.upper(),
        "rank": rank,
        "role": "reported",
        "organization": "",
    }
    if rng.random() < 0.2:
        person["middlename"] = random_word(rng)[:1].upper() + "."
    if rng.random() < 0.1:
        person["qualifier"] = rng.choice(["Jr.", "Sr.", "III"])
    return person


def _byline(rng: Random) -> Any:
    """Byline: a record, or null — another lower-level variation point."""
    roll = rng.random()
    if roll < 0.08:
        return None
    byline: dict[str, Any] = {
        "original": f"By {random_name(rng).upper()}",
    }
    if rng.random() < 0.9:
        byline["person"] = [
            _person(rng, rank + 1) for rank in range(rng.randint(1, 3))
        ]
    if rng.random() < 0.1:
        byline["organization"] = "THE EXAMPLE PRESS"
    return byline


def generate_record(rng: Random) -> dict[str, Any]:
    """One article-metadata record with a fixed top level."""
    word_count = rng.randint(80, 3000)
    return {
        "web_url": random_url(rng, "www.nytimes.example.org"),
        "snippet": random_sentence(rng, 8, 25),
        "lead_paragraph": (
            None if rng.random() < 0.12 else random_sentence(rng, 15, 45)
        ),
        "abstract": None if rng.random() < 0.15 else random_sentence(rng, 6, 18),
        "print_page": (
            None if rng.random() < 0.2
            else (rng.randint(1, 40) if rng.random() < 0.5
                  else str(rng.randint(1, 40)))
        ),
        "source": "The Example Times",
        "multimedia": [
            _multimedia_item(rng) for _ in range(rng.randint(1, 3))
        ],
        "headline": _headline(rng),
        "keywords": [
            _keyword(rng, rank + 1) for rank in range(rng.randint(1, 4))
        ],
        "pub_date": random_date(rng),
        "document_type": rng.choice(["article", "blogpost", "multimedia"]),
        "news_desk": None if rng.random() < 0.3 else rng.choice(_SECTIONS),
        "section_name": None if rng.random() < 0.25 else rng.choice(_SECTIONS),
        "byline": _byline(rng),
        "type_of_material": rng.choice(_MATERIAL),
        "_id": random_hex(rng, 24),
        # The second Num/Str conflict field the paper mentions.
        "word_count": word_count if rng.random() < 0.7 else str(word_count),
    }
