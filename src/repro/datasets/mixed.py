"""Adversarial mixed-content dataset (not one of the paper's four).

Section 2 motivates the array-simplification design with *mixed-content
arrays* — "arrays can mix both basic and complex types" — yet the four
evaluation datasets barely exercise that corner.  This extra generator
produces records built around exactly the hard cases:

* arrays mixing atoms, records and nested arrays in shuffled orders (so
  positional types never line up and simplification has to work);
* empty arrays alongside populated ones (the ``[eps*]`` footnote case);
* the same field carrying an atom in one record and an array in another
  (kind conflicts at the field level);
* occasional records whose *only* difference is array element order —
  which the paper's position-insensitive star types deliberately identify.

Used by stress tests and available to benchmarks; deliberately *not*
registered in the evaluation registry (``repro.datasets.DATASET_NAMES``
mirrors the paper's four).
"""

from __future__ import annotations

from random import Random
from typing import Any

from repro.datasets.vocabulary import random_sentence, random_word

__all__ = ["generate_record", "generate", "generate_list"]


def _atom(rng: Random) -> Any:
    roll = rng.random()
    if roll < 0.25:
        return rng.randint(-1000, 1000)
    if roll < 0.5:
        return random_word(rng)
    if roll < 0.7:
        return rng.random() < 0.5
    if roll < 0.85:
        return None
    return round(rng.uniform(-10, 10), 3)


def _small_record(rng: Random) -> dict[str, Any]:
    keys = rng.sample(["E", "F", "G", "H"], rng.randint(1, 3))
    return {k: _atom(rng) for k in sorted(keys)}


def _mixed_array(rng: Random, depth: int = 0) -> list[Any]:
    length = rng.randint(0, 5)
    out: list[Any] = []
    for _ in range(length):
        roll = rng.random()
        if roll < 0.5:
            out.append(_atom(rng))
        elif roll < 0.85 or depth >= 2:
            out.append(_small_record(rng))
        else:
            out.append(_mixed_array(rng, depth + 1))
    rng.shuffle(out)
    return out


def generate_record(rng: Random) -> dict[str, Any]:
    """One adversarial record."""
    record: dict[str, Any] = {
        "id": rng.randint(1, 10**9),
        "items": _mixed_array(rng),
        "tags": [] if rng.random() < 0.3 else [
            random_word(rng) for _ in range(rng.randint(1, 4))
        ],
    }
    # A field that flips between atom and array across records.
    if rng.random() < 0.5:
        record["payload"] = random_sentence(rng, 2, 6)
    else:
        record["payload"] = [_atom(rng) for _ in range(rng.randint(0, 3))]
    # A field that flips between record and array.
    if rng.random() < 0.5:
        record["meta"] = _small_record(rng)
    else:
        record["meta"] = [_small_record(rng)]
    return record


def generate(n: int, seed: int = 0):
    """Stream ``n`` adversarial records, deterministically."""
    for index in range(n):
        yield generate_record(Random(f"mixed:{seed}:{index}"))


def generate_list(n: int, seed: int = 0) -> list[dict[str, Any]]:
    """Materialised variant of :func:`generate`."""
    return list(generate(n, seed))
