"""One-stop dataset audit reports.

Combines the analysis building blocks — fused schema, succinctness
statistics, path inventory, presence ratios, array-length statistics —
into a single Markdown document, the artefact a data engineer would attach
to a ticket when documenting an unknown JSON feed.  The CLI exposes it as
``json-schema-infer report``.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.analysis.paths import iter_schema_paths
from repro.analysis.stats import succinctness_row_from_run
from repro.analysis.tables import render_table
from repro.core.kinds import Kind
from repro.core.printer import pretty_print
from repro.core.types import Type
from repro.inference.counting import presence_report
from repro.inference.pipeline import run_inference

__all__ = ["STATISTICS_HEADERS", "build_report", "render_statistics",
           "statistics_rows"]


def build_report(values: Sequence[Any], name: str = "dataset",
                 max_paths: int = 200) -> str:
    """Render a Markdown audit report for a collection of JSON records.

    Sections: overview (record/type counts, sizes, timings), the fused
    schema, the path inventory split into always-present and optional
    paths (the introduction's three user guarantees), presence ratios for
    the optional fields, and array-length statistics.

    Everything after the schema comes from the run's summary statistics
    bundle rather than a second walk over the values, so the same
    sections can be produced from a stats-carrying checkpoint alone (see
    ``json-schema-infer statistics``); an equivalence test pins the two
    paths to identical output.
    """
    run = run_inference(values, stats_mode="basic")
    schema: Type = run.schema
    row = succinctness_row_from_run(run, label=name)

    stats = run.stats.as_collector_view()

    lines: list[str] = [f"# Schema audit: {name}", ""]

    # -- overview -----------------------------------------------------------
    lines += ["## Overview", ""]
    lines.append(render_table(
        ["records", "distinct types", "min size", "max size", "avg size",
         "fused size", "fused/avg"],
        [[
            f"{row.record_count:,}", f"{row.distinct_types:,}",
            f"{row.min_size:,}", f"{row.max_size:,}",
            f"{row.avg_size:,.1f}", f"{row.fused_size:,}",
            f"{row.ratio:.2f}",
        ]],
    ))
    lines.append("")
    lines.append(
        f"Inference took {run.map_seconds:.3f}s (typing) + "
        f"{run.reduce_seconds:.3f}s (fusion)."
    )
    lines.append("")

    # -- schema ---------------------------------------------------------------
    lines += ["## Fused schema", "", "```", pretty_print(schema), "```", ""]

    # -- paths ----------------------------------------------------------------
    paths = sorted(iter_schema_paths(schema))
    mandatory = [p for p, guaranteed in paths if guaranteed]
    optional = [p for p, guaranteed in paths if not guaranteed]
    lines += [
        "## Paths",
        "",
        f"{len(paths)} paths total: {len(mandatory)} always present, "
        f"{len(optional)} optional.",
        "",
    ]
    if mandatory:
        lines.append("Always present (safe to select unconditionally):")
        lines.append("")
        for path in mandatory[:max_paths]:
            lines.append(f"- `{path}`")
        if len(mandatory) > max_paths:
            lines.append(f"- ... and {len(mandatory) - max_paths} more")
        lines.append("")

    # -- presence -------------------------------------------------------------
    entries = [
        entry for entry in presence_report(schema, stats)
        if entry.optional and entry.occurrences > 0
    ]
    entries.sort(key=lambda e: e.ratio)
    if entries:
        lines += ["## Optional-field presence", ""]
        lines.append(render_table(
            ["path", "present in"],
            [[e.path, f"{e.ratio:.1%}"] for e in entries[:max_paths]],
        ))
        lines.append("")

    # -- arrays ---------------------------------------------------------------
    if stats.array_lengths:
        lines += ["## Array lengths", ""]
        lines.append(render_table(
            ["path", "arrays", "min", "mean", "max"],
            [
                [path, f"{s.count:,}", s.min_length,
                 f"{s.mean_length:.1f}", s.max_length]
                for path, s in sorted(stats.array_lengths.items())[:max_paths]
            ],
        ))
        lines.append("")

    return "\n".join(lines)


#: Header row matching :func:`statistics_rows`.
STATISTICS_HEADERS = [
    "path", "count", "kinds", "range", "distinct≈",
]


def _format_number(value: Any) -> str:
    # repr, not %g: bounds are exact (canonicalized in the bundle) and
    # the report should not re-round them.
    if isinstance(value, float):
        return repr(value)
    return f"{value:,}"


def _path_cells(path: str, node: Any, record_count: int) -> list[str]:
    """One table row for one document path's statistics."""
    kinds = " ".join(
        f"{name}:{count:,}"
        for name, count in sorted(node.kinds.counts.items())
    )
    ranges = []
    if node.numbers.count:
        ranges.append(
            f"[{_format_number(node.numbers.minimum)}, "
            f"{_format_number(node.numbers.maximum)}]"
        )
    if node.strings.count:
        ranges.append(
            f"len [{node.strings.minimum}, {node.strings.maximum}]"
        )
    if node.arrays.count:
        ranges.append(
            f"items [{node.arrays.minimum}, {node.arrays.maximum}]"
        )
    distinct = ""
    if node.values is not None:
        scalars = sum(
            count for name, count in node.kinds.counts.items()
            if Kind[name].is_basic
        )
        if scalars:
            distinct = f"{round(node.values.hll.estimate()):,}"
    return [path, f"{node.kinds.total:,}", kinds, " ".join(ranges), distinct]


def statistics_rows(bundle: Any, max_paths: int = 200) -> list[list[str]]:
    """Tabulated per-path statistics from a
    :class:`~repro.inference.statistics.StatsBundle` (paths sorted; the
    ``distinct≈`` column is populated only in ``sketches`` mode)."""
    return [
        _path_cells(path, bundle.paths[path], bundle.record_count)
        for path in sorted(bundle.paths)[:max_paths]
    ]


def render_statistics(bundle: Any, name: str = "dataset",
                      max_paths: int = 200) -> str:
    """The ``json-schema-infer statistics`` report: a per-path table of
    occurrence counts, kind frequencies, numeric/length ranges and (in
    ``sketches`` mode) HyperLogLog distinct-value estimates.

    Works from any stats bundle — a live run's or one loaded from a
    checkpoint — so the report needs no access to the original values.
    """
    lines = [
        f"# Statistics: {name}",
        "",
        f"{bundle.record_count:,} records · {bundle.path_count:,} paths · "
        f"mode {bundle.mode}",
        "",
        render_table(STATISTICS_HEADERS, statistics_rows(bundle, max_paths)),
    ]
    if bundle.path_count > max_paths:
        lines.append("")
        lines.append(f"... and {bundle.path_count - max_paths:,} more paths")
    return "\n".join(lines)
