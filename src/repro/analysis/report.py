"""One-stop dataset audit reports.

Combines the analysis building blocks — fused schema, succinctness
statistics, path inventory, presence ratios, array-length statistics —
into a single Markdown document, the artefact a data engineer would attach
to a ticket when documenting an unknown JSON feed.  The CLI exposes it as
``json-schema-infer report``.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.analysis.paths import iter_schema_paths
from repro.analysis.stats import succinctness_row
from repro.analysis.tables import render_table
from repro.core.printer import pretty_print
from repro.core.types import Type
from repro.inference.counting import StatisticsCollector, presence_report
from repro.inference.pipeline import run_inference

__all__ = ["build_report"]


def build_report(values: Sequence[Any], name: str = "dataset",
                 max_paths: int = 200) -> str:
    """Render a Markdown audit report for a collection of JSON records.

    Sections: overview (record/type counts, sizes, timings), the fused
    schema, the path inventory split into always-present and optional
    paths (the introduction's three user guarantees), presence ratios for
    the optional fields, and array-length statistics.
    """
    run = run_inference(values)
    schema: Type = run.schema
    row = succinctness_row(values, label=name)

    stats = StatisticsCollector()
    stats.observe_many(values)

    lines: list[str] = [f"# Schema audit: {name}", ""]

    # -- overview -----------------------------------------------------------
    lines += ["## Overview", ""]
    lines.append(render_table(
        ["records", "distinct types", "min size", "max size", "avg size",
         "fused size", "fused/avg"],
        [[
            f"{row.record_count:,}", f"{row.distinct_types:,}",
            f"{row.min_size:,}", f"{row.max_size:,}",
            f"{row.avg_size:,.1f}", f"{row.fused_size:,}",
            f"{row.ratio:.2f}",
        ]],
    ))
    lines.append("")
    lines.append(
        f"Inference took {run.map_seconds:.3f}s (typing) + "
        f"{run.reduce_seconds:.3f}s (fusion)."
    )
    lines.append("")

    # -- schema ---------------------------------------------------------------
    lines += ["## Fused schema", "", "```", pretty_print(schema), "```", ""]

    # -- paths ----------------------------------------------------------------
    paths = sorted(iter_schema_paths(schema))
    mandatory = [p for p, guaranteed in paths if guaranteed]
    optional = [p for p, guaranteed in paths if not guaranteed]
    lines += [
        "## Paths",
        "",
        f"{len(paths)} paths total: {len(mandatory)} always present, "
        f"{len(optional)} optional.",
        "",
    ]
    if mandatory:
        lines.append("Always present (safe to select unconditionally):")
        lines.append("")
        for path in mandatory[:max_paths]:
            lines.append(f"- `{path}`")
        if len(mandatory) > max_paths:
            lines.append(f"- ... and {len(mandatory) - max_paths} more")
        lines.append("")

    # -- presence -------------------------------------------------------------
    entries = [
        entry for entry in presence_report(schema, stats)
        if entry.optional and entry.occurrences > 0
    ]
    entries.sort(key=lambda e: e.ratio)
    if entries:
        lines += ["## Optional-field presence", ""]
        lines.append(render_table(
            ["path", "present in"],
            [[e.path, f"{e.ratio:.1%}"] for e in entries[:max_paths]],
        ))
        lines.append("")

    # -- arrays ---------------------------------------------------------------
    if stats.array_lengths:
        lines += ["## Array lengths", ""]
        lines.append(render_table(
            ["path", "arrays", "min", "mean", "max"],
            [
                [path, f"{s.count:,}", s.min_length,
                 f"{s.mean_length:.1f}", s.max_length]
                for path, s in sorted(stats.array_lengths.items())[:max_paths]
            ],
        ))
        lines.append("")

    return "\n".join(lines)
