"""Succinctness statistics — the columns of the paper's Tables 2-5.

For each dataset and scale the paper reports: the number of *distinct*
inferred types, the min/max/average size of those types, and the size of
the fused type.  "The notion of size of a type is standard, and corresponds
to the size (number of nodes) of its Abstract Syntax Tree" (Section 6.2) —
that is :attr:`repro.core.types.Type.size`.

The fused/average ratio is the paper's headline succinctness metric
("the ratio between the size of the fused type and that of the average
size of the input types is not bigger than 1.4 for GitHub...").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.core.types import Type
from repro.inference.fusion import fuse_all
from repro.inference.infer import infer_type

__all__ = [
    "TypeStatistics",
    "SuccinctnessRow",
    "succinctness_row",
    "succinctness_row_from_run",
]


@dataclass(frozen=True)
class TypeStatistics:
    """Aggregate size statistics over a collection of types."""

    count: int
    distinct_count: int
    min_size: int
    max_size: int
    mean_size: float
    total_size: int

    @classmethod
    def from_types(cls, types: Sequence[Type]) -> "TypeStatistics":
        """Compute statistics for ``types`` (which may contain duplicates)."""
        if not types:
            return cls(0, 0, 0, 0, 0.0, 0)
        sizes = [t.size for t in types]
        return cls(
            count=len(types),
            distinct_count=len(set(types)),
            min_size=min(sizes),
            max_size=max(sizes),
            mean_size=sum(sizes) / len(sizes),
            total_size=sum(sizes),
        )

    @classmethod
    def from_values(cls, values: Iterable[Any]) -> "TypeStatistics":
        """Type every value, then compute statistics."""
        return cls.from_types([infer_type(v) for v in values])

    @classmethod
    def from_bundle(cls, bundle: Any, distinct_count: int) -> "TypeStatistics":
        """Statistics from a summary stats bundle — no values needed.

        ``bundle.type_sizes`` (see
        :class:`repro.inference.statistics.StatsBundle`) tracks the
        exact integer min/max/total of every observed record's type
        size, so every field here matches :meth:`from_values` over the
        same records exactly — which is what lets succinctness tables
        run from a checkpoint alone.
        """
        sizes = bundle.type_sizes
        if not sizes.count:
            return cls(0, 0, 0, 0, 0.0, 0)
        return cls(
            count=sizes.count,
            distinct_count=distinct_count,
            min_size=sizes.minimum,
            max_size=sizes.maximum,
            mean_size=sizes.mean,
            total_size=sizes.total,
        )


@dataclass(frozen=True)
class SuccinctnessRow:
    """One row of a Table 2-5 style report."""

    label: str
    record_count: int
    distinct_types: int
    min_size: int
    max_size: int
    avg_size: float
    fused_size: int

    @property
    def ratio(self) -> float:
        """Fused size over average input size — the succinctness metric."""
        if self.avg_size == 0:
            return 0.0
        return self.fused_size / self.avg_size

    def cells(self) -> list[str]:
        """Formatted cells in the paper's column order."""
        return [
            self.label,
            f"{self.distinct_types:,}",
            f"{self.min_size:,}",
            f"{self.max_size:,}",
            f"{self.avg_size:,.1f}",
            f"{self.fused_size:,}",
            f"{self.ratio:.2f}",
        ]


#: Header row matching :meth:`SuccinctnessRow.cells`.
SUCCINCTNESS_HEADERS = [
    "scale", "# types", "min", "max", "avg", "fused size", "fused/avg",
]


def succinctness_row(values: Sequence[Any], label: str) -> SuccinctnessRow:
    """Infer, fuse and measure — one full table row from raw values."""
    types = [infer_type(v) for v in values]
    stats = TypeStatistics.from_types(types)
    distinct = list(dict.fromkeys(types))
    fused = fuse_all(distinct)
    return SuccinctnessRow(
        label=label,
        record_count=stats.count,
        distinct_types=stats.distinct_count,
        min_size=stats.min_size,
        max_size=stats.max_size,
        avg_size=stats.mean_size,
        fused_size=fused.size,
    )


def succinctness_row_from_run(run: Any, label: str) -> SuccinctnessRow:
    """The same table row from a stats-enriched run — no values needed.

    ``run`` is anything with ``schema``, ``distinct_type_count`` and a
    ``stats`` bundle (an :class:`~repro.inference.pipeline.InferenceRun`
    from a ``stats_mode != "off"`` run, or a loaded stats-carrying
    checkpoint summary wrapped the same way).  The bundle's type-size
    range is exact, so the row equals :func:`succinctness_row` over the
    same records — the equivalence test pins this.
    """
    bundle = getattr(run, "stats", None)
    if bundle is None:
        raise ValueError(
            "succinctness_row_from_run needs a statistics bundle; "
            "run inference with stats_mode='basic' or 'sketches'"
        )
    stats = TypeStatistics.from_bundle(bundle, run.distinct_type_count)
    return SuccinctnessRow(
        label=label,
        record_count=stats.count,
        distinct_types=stats.distinct_count,
        min_size=stats.min_size,
        max_size=stats.max_size,
        avg_size=stats.mean_size,
        fused_size=run.schema.size,
    )
