"""Succinctness statistics — the columns of the paper's Tables 2-5.

For each dataset and scale the paper reports: the number of *distinct*
inferred types, the min/max/average size of those types, and the size of
the fused type.  "The notion of size of a type is standard, and corresponds
to the size (number of nodes) of its Abstract Syntax Tree" (Section 6.2) —
that is :attr:`repro.core.types.Type.size`.

The fused/average ratio is the paper's headline succinctness metric
("the ratio between the size of the fused type and that of the average
size of the input types is not bigger than 1.4 for GitHub...").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.core.types import Type
from repro.inference.fusion import fuse_all
from repro.inference.infer import infer_type

__all__ = ["TypeStatistics", "SuccinctnessRow", "succinctness_row"]


@dataclass(frozen=True)
class TypeStatistics:
    """Aggregate size statistics over a collection of types."""

    count: int
    distinct_count: int
    min_size: int
    max_size: int
    mean_size: float
    total_size: int

    @classmethod
    def from_types(cls, types: Sequence[Type]) -> "TypeStatistics":
        """Compute statistics for ``types`` (which may contain duplicates)."""
        if not types:
            return cls(0, 0, 0, 0, 0.0, 0)
        sizes = [t.size for t in types]
        return cls(
            count=len(types),
            distinct_count=len(set(types)),
            min_size=min(sizes),
            max_size=max(sizes),
            mean_size=sum(sizes) / len(sizes),
            total_size=sum(sizes),
        )

    @classmethod
    def from_values(cls, values: Iterable[Any]) -> "TypeStatistics":
        """Type every value, then compute statistics."""
        return cls.from_types([infer_type(v) for v in values])


@dataclass(frozen=True)
class SuccinctnessRow:
    """One row of a Table 2-5 style report."""

    label: str
    record_count: int
    distinct_types: int
    min_size: int
    max_size: int
    avg_size: float
    fused_size: int

    @property
    def ratio(self) -> float:
        """Fused size over average input size — the succinctness metric."""
        if self.avg_size == 0:
            return 0.0
        return self.fused_size / self.avg_size

    def cells(self) -> list[str]:
        """Formatted cells in the paper's column order."""
        return [
            self.label,
            f"{self.distinct_types:,}",
            f"{self.min_size:,}",
            f"{self.max_size:,}",
            f"{self.avg_size:,.1f}",
            f"{self.fused_size:,}",
            f"{self.ratio:.2f}",
        ]


#: Header row matching :meth:`SuccinctnessRow.cells`.
SUCCINCTNESS_HEADERS = [
    "scale", "# types", "min", "max", "avg", "fused size", "fused/avg",
]


def succinctness_row(values: Sequence[Any], label: str) -> SuccinctnessRow:
    """Infer, fuse and measure — one full table row from raw values."""
    types = [infer_type(v) for v in values]
    stats = TypeStatistics.from_types(types)
    distinct = list(dict.fromkeys(types))
    fused = fuse_all(distinct)
    return SuccinctnessRow(
        label=label,
        record_count=stats.count,
        distinct_types=stats.distinct_count,
        min_size=stats.min_size,
        max_size=stats.max_size,
        avg_size=stats.mean_size,
        fused_size=fused.size,
    )
