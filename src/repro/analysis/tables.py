"""Plain-text table rendering for the benchmark harness.

Every benchmark regenerating one of the paper's tables prints its rows
through :func:`render_table`, so the harness output can be compared to the
paper side by side.  Also hosts the small formatting helpers (bytes,
durations) shared by benches and the CLI.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "format_bytes", "format_seconds"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an ASCII table with right-aligned numeric-looking cells.

    >>> print(render_table(["name", "n"], [["github", 1000]]))
    | name   | n    |
    |--------|------|
    | github | 1000 |
    """
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells
        else len(headers[i])
        for i in range(len(headers))
    ]

    def is_numeric(text: str) -> bool:
        # Right-align quantities ("1,234", "2.4min", "16%", "14MB"):
        # they start with a digit/sign and contain at least one digit.
        return bool(text) and (text[0].isdigit() or (
            text[0] == "-" and len(text) > 1 and text[1].isdigit()
        ))

    def fmt_row(row: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(row):
            if is_numeric(cell) and row is not headers:
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "| " + " | ".join(parts) + " |"

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)


def format_bytes(n: int) -> str:
    """Human-friendly byte counts: ``14MB``, ``1.3GB`` — Table 1 style."""
    value = float(n)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1000 or unit == "TB":
            if value >= 100 or value == int(value):
                return f"{value:.0f}{unit}"
            return f"{value:.1f}{unit}"
        value /= 1000
    raise AssertionError("unreachable")


def format_seconds(seconds: float) -> str:
    """Human-friendly durations: ``450ms``, ``12.3s``, ``2.9min``."""
    if seconds < 1:
        return f"{seconds * 1000:.0f}ms"
    if seconds < 120:
        return f"{seconds:.1f}s"
    return f"{seconds / 60:.1f}min"
