"""Schema paths: the query-facing view of an inferred schema.

The paper's introduction motivates schema inference with three user-facing
guarantees: knowing (i) *all* fields that exist anywhere in the collection,
(ii) which are optional, and (iii) which are mandatory — plus
compile-time query optimisations such as "schema-based path rewriting and
wildcard expansion".  This module delivers those:

* :func:`iter_schema_paths` enumerates every traversable path of a schema
  (the paper's completeness property: every path traversable in any input
  value is traversable in the inferred schema);
* :func:`resolve_path` checks a dotted query path against the schema and
  classifies it as mandatory / optional / absent;
* :func:`expand_wildcard` expands a trailing ``*`` over the record fields
  reachable at a path.

Path syntax: dot-separated keys with ``[*]`` for array traversal, e.g.
``user.entities.urls[*].expanded_url``.  A leading ``$.`` is accepted and
ignored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.types import (
    ArrayType,
    RecordType,
    StarArrayType,
    Type,
    UnionType,
    make_union,
)

__all__ = ["PathInfo", "iter_schema_paths", "resolve_path", "expand_wildcard",
           "parse_path"]

#: Sentinel step meaning "descend into array elements".
STAR_STEP = "[*]"


def parse_path(path: str) -> list[str]:
    """Split a dotted path into steps; ``[*]`` suffixes become star steps.

    >>> parse_path("$.a.b[*].c")
    ['a', 'b', '[*]', 'c']
    """
    raw = path.strip()
    if raw.startswith("$"):
        raw = raw[1:].lstrip(".")
    steps: list[str] = []
    for piece in raw.split("."):
        if not piece:
            continue
        stars = 0
        while piece.endswith(STAR_STEP):
            piece = piece[: -len(STAR_STEP)]
            stars += 1
        if piece:
            steps.append(piece)
        steps.extend([STAR_STEP] * stars)
    return steps


@dataclass(frozen=True)
class PathInfo:
    """Resolution of a query path against a schema.

    ``exists``    — the path is traversable in at least some values.
    ``guaranteed``— the path is traversable in *every* value of the schema
                    (every step mandatory, never unioned with non-records,
                    no arrays involved — an array may be empty).
    ``type``      — the type(s) found at the end of the path (a union if
                    several alternatives reach it).
    """

    path: str
    exists: bool
    guaranteed: bool
    type: Type | None


def _records_at(t: Type) -> list[RecordType]:
    """Record alternatives of a (possibly union) type."""
    return [m for m in t.addends() if isinstance(m, RecordType)]


def _array_bodies_at(t: Type) -> list[Type]:
    """Element types reachable through the array alternatives of ``t``."""
    bodies: list[Type] = []
    for member in t.addends():
        if isinstance(member, StarArrayType):
            bodies.append(member.body)
        elif isinstance(member, ArrayType):
            bodies.extend(member.elements)
    return bodies


def resolve_path(schema: Type, path: str) -> PathInfo:
    """Check ``path`` against ``schema``.

    >>> from repro.core.type_parser import parse_type
    >>> schema = parse_type("{a: {b: Num}, c: Str?}")
    >>> resolve_path(schema, "a.b").guaranteed
    True
    >>> resolve_path(schema, "c").guaranteed
    False
    >>> resolve_path(schema, "z").exists
    False
    """
    steps = parse_path(path)
    current: list[Type] = [schema]
    guaranteed = True
    for step in steps:
        if step == STAR_STEP:
            nxt: list[Type] = []
            for t in current:
                nxt.extend(_array_bodies_at(t))
            # An array can always be empty, so no element path is guaranteed.
            guaranteed = False
        else:
            nxt = []
            for t in current:
                addends = t.addends()
                records = _records_at(t)
                # Non-record alternatives mean some values lack the step.
                if len(records) != len(addends):
                    guaranteed = False
                for record in records:
                    field = record.field(step)
                    if field is None:
                        guaranteed = False
                        continue
                    if field.optional:
                        guaranteed = False
                    nxt.append(field.type)
                if not records:
                    guaranteed = False
        if not nxt:
            return PathInfo(path=path, exists=False, guaranteed=False, type=None)
        current = nxt
    return PathInfo(
        path=path,
        exists=True,
        guaranteed=guaranteed,
        type=make_union(current),
    )


def iter_schema_paths(
    schema: Type, prefix: str = "$", _guaranteed: bool = True
) -> Iterator[tuple[str, bool]]:
    """Yield ``(path, guaranteed)`` for every path traversable in the schema.

    The root path ``$`` is not yielded; array traversal appends ``[*]``.

    >>> from repro.core.type_parser import parse_type
    >>> sorted(iter_schema_paths(parse_type("{a: {b: Num}, c: [Str*]?}")))
    [('$.a', True), ('$.a.b', True), ('$.c', False), ('$.c[*]', False)]
    """
    addends = schema.addends()
    records = _records_at(schema)
    all_records = len(records) == len(addends) and bool(records)
    for record in records:
        for field in record.fields:
            sub_guaranteed = _guaranteed and all_records and not field.optional
            sub_path = f"{prefix}.{field.name}"
            yield sub_path, sub_guaranteed
            yield from iter_schema_paths(field.type, sub_path, sub_guaranteed)
    bodies = _array_bodies_at(schema)
    if bodies:
        sub_path = f"{prefix}{STAR_STEP}"
        seen: set[tuple[str, bool]] = set()
        yield sub_path, False
        for body in bodies:
            for entry in iter_schema_paths(body, sub_path, False):
                if entry not in seen:
                    seen.add(entry)
                    yield entry


def expand_wildcard(schema: Type, path: str) -> list[str]:
    """Expand a trailing wildcard over the fields reachable at ``path``.

    ``expand_wildcard(schema, "user.*")`` returns one concrete path per
    field of the record(s) at ``user`` — the "wildcard expansion" query
    optimisation the introduction cites.  Returns an empty list if the
    prefix does not resolve or resolves to non-records.
    """
    raw = path.strip()
    if not raw.endswith("*"):
        raise ValueError("wildcard path must end with '*'")
    prefix = raw[:-1].rstrip(".")
    if prefix in ("", "$"):
        target: Type | None = schema
        base = "$"
    else:
        info = resolve_path(schema, prefix)
        target = info.type
        base = prefix if prefix.startswith("$") else f"$.{prefix}"
    if target is None:
        return []
    names = sorted(
        {f.name for record in _records_at(target) for f in record.fields}
    )
    return [f"{base}.{name}" for name in names]
