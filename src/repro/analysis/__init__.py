"""Analysis utilities: succinctness statistics, schema paths, tables.

* :mod:`repro.analysis.stats` — the Tables 2-5 columns (distinct types,
  size statistics, fused size, succinctness ratio).
* :mod:`repro.analysis.paths` — path enumeration, query-path validation and
  wildcard expansion over inferred schemas.
* :mod:`repro.analysis.tables` — plain-text table rendering for benches.
* :mod:`repro.analysis.diff` — structural schema diffs (evolution tracking).
* :mod:`repro.analysis.precision` — sampling-based precision measurement.
* :mod:`repro.analysis.projection` — schema-directed value pruning.
"""

from repro.analysis.diff import ChangeKind, SchemaChange, diff_schemas
from repro.analysis.paths import (
    PathInfo,
    expand_wildcard,
    iter_schema_paths,
    parse_path,
    resolve_path,
)
from repro.analysis.stats import (
    SUCCINCTNESS_HEADERS,
    SuccinctnessRow,
    TypeStatistics,
    succinctness_row,
)
from repro.analysis.precision import (
    PrecisionReport,
    path_precision,
    precision_score,
    schema_looseness,
)
from repro.analysis.projection import ProjectionError, Projector
from repro.analysis.report import build_report
from repro.analysis.tables import format_bytes, format_seconds, render_table

__all__ = [
    "TypeStatistics", "SuccinctnessRow", "succinctness_row",
    "SUCCINCTNESS_HEADERS",
    "PathInfo", "resolve_path", "iter_schema_paths", "expand_wildcard",
    "parse_path",
    "render_table", "format_bytes", "format_seconds",
    "diff_schemas", "SchemaChange", "ChangeKind",
    "precision_score", "path_precision", "PrecisionReport",
    "schema_looseness",
    "Projector", "ProjectionError",
    "build_report",
]
