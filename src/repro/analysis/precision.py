"""Quantifying schema precision — the paper's future-work axis.

A fused schema is a *supertype* of every record's type (Theorem 5.2), so it
may admit values that never occurred: unions forget field correlations
(``{a: Num + Str}`` admits records the data never paired that way), star
arrays forget element order and counts, optional fields forget co-presence.
The paper's conclusion announces studying "the relationship between
precision and efficiency"; this module supplies the measuring device:

* :func:`precision_score` — sample the fused schema with the type-directed
  generator and report the fraction of samples admitted by at least one of
  the *original* per-record types.  1.0 means no detectable
  over-approximation; lower means the schema got looser.
* :func:`schema_looseness` — a size-based companion: how much larger the
  value space got, path by path (counts union members and optional fields
  introduced by fusion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.generator import generate_values
from repro.core.semantics import matches
from repro.inference.counting import StatisticsCollector
from repro.core.types import RecordType, StarArrayType, Type, UnionType
from repro.inference.fusion import fuse_multiset
from repro.inference.infer import infer_type

__all__ = ["PrecisionReport", "precision_score", "path_precision",
           "schema_looseness"]


@dataclass(frozen=True)
class PrecisionReport:
    """Result of a sampling-based precision measurement."""

    samples: int
    admitted_by_originals: int
    schema_size: int

    @property
    def precision(self) -> float:
        """Fraction of schema samples the original types also admit."""
        if self.samples == 0:
            return 1.0
        return self.admitted_by_originals / self.samples


def precision_score(values: Sequence[Any], samples: int = 200,
                    seed: int = 0) -> PrecisionReport:
    """Measure how much the fused schema of ``values`` over-approximates.

    Infers the distinct types of ``values``, fuses them, samples the fused
    schema ``samples`` times, and counts how many samples at least one
    distinct original type admits.

    >>> report = precision_score([{"a": 1}, {"a": 2}], samples=50)
    >>> report.precision
    1.0
    """
    distinct = list(dict.fromkeys(infer_type(v) for v in values))
    schema = fuse_multiset(distinct)
    if not distinct:
        return PrecisionReport(samples=0, admitted_by_originals=0,
                               schema_size=schema.size)
    generated = generate_values(schema, samples, seed=seed)
    admitted = sum(
        1 for g in generated if any(matches(g, t) for t in distinct)
    )
    return PrecisionReport(
        samples=samples,
        admitted_by_originals=admitted,
        schema_size=schema.size,
    )


def path_precision(values: Sequence[Any], samples: int = 200,
                   seed: int = 0) -> float:
    """Path-level precision: a graded companion to :func:`precision_score`.

    Whole-record precision is brutally strict — on heterogeneous data a
    schema sample almost never reproduces an *exact* original field
    combination, so the score collapses to ~0 even though every individual
    path is fine.  This metric instead asks, per sampled value, whether
    every ``(path, kind)`` pair it contains was observed somewhere in the
    original data, and returns the fraction of fully path-sound samples.

    1.0 means fusion invented no new paths or path types (it cannot — the
    schema is built from observed types); values below 1.0 arise only from
    *combinations* the star/union structure permits, e.g. an array mixing
    element kinds that never co-occurred.
    """
    distinct = list(dict.fromkeys(infer_type(v) for v in values))
    if not distinct:
        return 1.0
    schema = fuse_multiset(distinct)

    observed = StatisticsCollector()
    observed.observe_many(values)
    observed_pairs = set(observed.kind_counts)

    sound = 0
    for sample in generate_values(schema, samples, seed=seed):
        probe = StatisticsCollector()
        probe.observe(sample)
        if set(probe.kind_counts) <= observed_pairs:
            sound += 1
    return sound / samples if samples else 1.0


def schema_looseness(t: Type) -> dict[str, int]:
    """Count the looseness constructs fusion introduced, per category.

    Returns counts of ``union_members`` (beyond the first per union),
    ``optional_fields`` and ``star_arrays`` — the three ways a fused schema
    widens beyond any single record type.
    """
    counts = {"union_members": 0, "optional_fields": 0, "star_arrays": 0}
    _walk(t, counts)
    return counts


def _walk(t: Type, counts: dict[str, int]) -> None:
    if isinstance(t, UnionType):
        counts["union_members"] += len(t.members) - 1
        for member in t.members:
            _walk(member, counts)
    elif isinstance(t, RecordType):
        for field in t.fields:
            if field.optional:
                counts["optional_fields"] += 1
            _walk(field.type, counts)
    elif isinstance(t, StarArrayType):
        counts["star_arrays"] += 1
        _walk(t.body, counts)
    else:
        for child in t.children():
            _walk(child, counts)
