"""Schema diffing: what changed between two inferred schemas.

Motivated by the related work the paper cites (Scherzinger et al.'s
object-NoSQL change tracking, which "is currently limited to only detect
mismatches between base types" and whose authors "claim that a wider
knowledge of schema information is needed" for changes like attribute
removal or renaming): with two fused schemas in hand — yesterday's and
today's, or staging's and production's — a structural diff reports exactly
those richer changes.

The diff walks both schemas in parallel and emits
:class:`SchemaChange` entries: added/removed paths, type changes
(``Num`` became ``Num + Str``), and cardinality changes (a mandatory field
became optional or vice versa).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.printer import print_type
from repro.core.types import RecordType, StarArrayType, Type, UnionType

__all__ = ["ChangeKind", "SchemaChange", "diff_schemas"]


class ChangeKind(str, Enum):
    """What happened to a path between the old and new schema."""

    ADDED = "added"
    REMOVED = "removed"
    TYPE_CHANGED = "type-changed"
    BECAME_OPTIONAL = "became-optional"
    BECAME_MANDATORY = "became-mandatory"


@dataclass(frozen=True)
class SchemaChange:
    """One entry of a schema diff."""

    kind: ChangeKind
    path: str
    detail: str = ""

    def __str__(self) -> str:
        suffix = f": {self.detail}" if self.detail else ""
        return f"[{self.kind.value}] {self.path}{suffix}"


def _records_of(t: Type) -> list[RecordType]:
    return [m for m in t.addends() if isinstance(m, RecordType)]


def _non_record_shape(t: Type) -> str:
    """Printable form of the non-record alternatives of a type."""
    rest = [m for m in t.addends() if not isinstance(m, RecordType)]
    return " + ".join(sorted(print_type(m) for m in rest))


def diff_schemas(old: Type, new: Type) -> list[SchemaChange]:
    """Structural diff of two schemas, as a flat list of changes.

    >>> from repro.core.type_parser import parse_type as p
    >>> changes = diff_schemas(p("{a: Num, b: Str}"), p("{a: Num + Str, c: Bool}"))
    >>> [str(c) for c in changes]
    ['[type-changed] $.a: Num -> Num + Str', '[removed] $.b', '[added] $.c']
    """
    changes: list[SchemaChange] = []
    _diff(old, new, "$", changes)
    changes.sort(key=lambda c: (c.path, c.kind.value))
    return changes


def _diff(old: Type, new: Type, path: str,
          changes: list[SchemaChange]) -> None:
    old_shape = _non_record_shape(old)
    new_shape = _non_record_shape(new)
    old_records = _records_of(old)
    new_records = _records_of(new)

    if old_shape != new_shape or bool(old_records) != bool(new_records):
        if old != new:
            changes.append(SchemaChange(
                ChangeKind.TYPE_CHANGED, path,
                f"{print_type(old)} -> {print_type(new)}",
            ))
            # Still recurse into records so field-level changes surface.

    _diff_record_fields(old_records, new_records, path, changes)
    _diff_array_bodies(old, new, path, changes)


def _diff_record_fields(old_records: list[RecordType],
                        new_records: list[RecordType], path: str,
                        changes: list[SchemaChange]) -> None:
    if not old_records or not new_records:
        return
    old_rt, new_rt = old_records[0], new_records[0]
    for field in old_rt.fields:
        other = new_rt.field(field.name)
        sub_path = f"{path}.{field.name}"
        if other is None:
            changes.append(SchemaChange(ChangeKind.REMOVED, sub_path))
            continue
        if field.optional != other.optional:
            kind = (ChangeKind.BECAME_OPTIONAL if other.optional
                    else ChangeKind.BECAME_MANDATORY)
            changes.append(SchemaChange(kind, sub_path))
        if field.type != other.type:
            if _shallow_shape(field.type) != _shallow_shape(other.type):
                changes.append(SchemaChange(
                    ChangeKind.TYPE_CHANGED, sub_path,
                    f"{print_type(field.type)} -> {print_type(other.type)}",
                ))
            _diff_record_fields(
                _records_of(field.type), _records_of(other.type),
                sub_path, changes,
            )
            _diff_array_bodies(field.type, other.type, sub_path, changes)
    for field in new_rt.fields:
        if field.name not in old_rt:
            changes.append(SchemaChange(
                ChangeKind.ADDED, f"{path}.{field.name}"
            ))


def _shallow_shape(t: Type) -> tuple:
    """A comparison key that ignores nested record/array contents."""
    shape = []
    for member in t.addends():
        if isinstance(member, RecordType):
            shape.append("record")
        elif isinstance(member, (StarArrayType,)) or member.kind is not None \
                and member.kind.name == "ARRAY":
            shape.append("array")
        else:
            shape.append(print_type(member))
    return tuple(sorted(shape))


def _diff_array_bodies(old: Type, new: Type, path: str,
                       changes: list[SchemaChange]) -> None:
    old_bodies = [m.body for m in old.addends()
                  if isinstance(m, StarArrayType)]
    new_bodies = [m.body for m in new.addends()
                  if isinstance(m, StarArrayType)]
    if old_bodies and new_bodies and old_bodies[0] != new_bodies[0]:
        _diff(old_bodies[0], new_bodies[0], f"{path}[*]", changes)
