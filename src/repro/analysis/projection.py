"""Schema-directed projection: load only the fragments a query needs.

The paper's introduction (and its citation of type-based projection for
JSON queries) motivates precisely this optimisation: "by identifying the
data requirements of a query ... it is possible to match these
requirements with the schema in order to load in main memory only those
fragments of the input dataset that are actually needed".

Given an inferred schema and the set of paths a query touches, this module

* validates the paths against the schema (catching dead paths at compile
  time, before any data is read), and
* builds a :class:`Projector` that prunes every record down to exactly the
  required fragments while parsing a stream.

The projector guarantees: for every required path, the projected record
contains it iff the original did; everything else is dropped.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.analysis.paths import STAR_STEP, parse_path, resolve_path
from repro.core.types import Type

__all__ = ["Projector", "ProjectionError"]


class ProjectionError(ValueError):
    """A required path does not exist in the schema."""


class _Node:
    """A trie node over path steps; ``keep_all`` marks a required leaf."""

    __slots__ = ("children", "keep_all")

    def __init__(self) -> None:
        self.children: dict[str, _Node] = {}
        self.keep_all = False


class Projector:
    """Prunes JSON values down to a set of required paths.

    >>> from repro.inference import infer_schema
    >>> data = [{"a": {"x": 1, "y": 2}, "b": ["big", "payload"]}]
    >>> projector = Projector(infer_schema(data), ["a.x"])
    >>> projector.project(data[0])
    {'a': {'x': 1}}
    """

    def __init__(self, schema: Type, paths: Sequence[str],
                 validate: bool = True) -> None:
        if validate:
            missing = [
                path for path in paths
                if not resolve_path(schema, path).exists
            ]
            if missing:
                raise ProjectionError(
                    f"paths not present in schema: {', '.join(missing)}"
                )
        self.paths = list(paths)
        self._root = _Node()
        for path in paths:
            node = self._root
            for step in parse_path(path):
                node = node.children.setdefault(step, _Node())
            node.keep_all = True

    def project(self, value: Any) -> Any:
        """Prune one value down to the required fragments."""
        return _project(value, self._root)

    def project_many(self, values: Iterable[Any]) -> Iterator[Any]:
        """Prune a stream of values lazily."""
        for value in values:
            yield _project(value, self._root)


def _project(value: Any, node: _Node) -> Any:
    if node.keep_all or not node.children:
        return value
    if isinstance(value, dict):
        out = {}
        for key, child in node.children.items():
            if key == STAR_STEP:
                continue
            if key in value:
                out[key] = _project(value[key], child)
        return out
    if isinstance(value, list):
        child = node.children.get(STAR_STEP)
        if child is None:
            return []
        return [_project(item, child) for item in value]
    # Required paths descend further but the value is an atom here (e.g. a
    # union alternative): the atom itself is the whole fragment.
    return value
