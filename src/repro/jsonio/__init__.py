"""From-scratch JSON I/O substrate (the paper used the Json4s library).

* :mod:`repro.jsonio.tokenizer` — RFC 8259 lexer with positions.
* :mod:`repro.jsonio.parser` — recursive-descent parser; rejects duplicate
  object keys, which the paper's data model forbids in records.
* :mod:`repro.jsonio.writer` — compact serializer.
* :mod:`repro.jsonio.ndjson` — streaming line-delimited JSON files.
* :mod:`repro.jsonio.stream` — element-wise readers for giant JSON arrays.
"""

from repro.jsonio.errors import DuplicateKeyError, JsonError, JsonSyntaxError
from repro.jsonio.ndjson import (
    count_records,
    file_size_bytes,
    iter_lines,
    read_ndjson,
    write_ndjson,
)
from repro.jsonio.parser import loads
from repro.jsonio.stream import iter_json_array, iter_json_values
from repro.jsonio.tokenizer import Token, TokenType, tokenize
from repro.jsonio.writer import dumps

__all__ = [
    "loads", "dumps", "tokenize", "Token", "TokenType",
    "read_ndjson", "write_ndjson", "iter_lines", "count_records",
    "file_size_bytes", "iter_json_array", "iter_json_values",
    "JsonError", "JsonSyntaxError", "DuplicateKeyError",
]
