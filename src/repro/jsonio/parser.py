"""Recursive-descent JSON parser over the token stream.

Differences from :func:`json.loads` that matter for schema inference:

* **Duplicate keys are rejected** (:class:`DuplicateKeyError`).  The paper's
  data model only admits well-formed records; the standard library silently
  keeps the last occurrence, which would make inferred schemas lie about the
  data.
* Errors carry line/column positions.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.jsonio.errors import DuplicateKeyError, JsonSyntaxError
from repro.jsonio.keycache import shared_key
from repro.jsonio.tokenizer import Token, TokenType, tokenize

__all__ = ["loads"]


class _TokenStream:
    """One-token-lookahead wrapper over the tokenizer."""

    __slots__ = ("_iter", "current")

    def __init__(self, tokens: Iterator[Token]) -> None:
        self._iter = tokens
        self.current = next(tokens)

    def advance(self) -> Token:
        token = self.current
        if token.type != TokenType.EOF:
            self.current = next(self._iter)
        return token

    def expect(self, token_type: str) -> Token:
        if self.current.type != token_type:
            raise JsonSyntaxError(
                f"expected {token_type!r}, found {self.current.type!r}",
                self.current.line,
                self.current.column,
            )
        return self.advance()


_ATOMS = {TokenType.STRING, TokenType.NUMBER, TokenType.TRUE,
          TokenType.FALSE, TokenType.NULL}


def _parse_value(stream: _TokenStream) -> Any:
    token = stream.current
    if token.type in _ATOMS:
        stream.advance()
        return token.value
    if token.type == TokenType.LBRACE:
        return _parse_object(stream)
    if token.type == TokenType.LBRACKET:
        return _parse_array(stream)
    raise JsonSyntaxError(
        f"unexpected token {token.type!r}", token.line, token.column
    )


def _parse_object(stream: _TokenStream) -> dict[str, Any]:
    stream.expect(TokenType.LBRACE)
    obj: dict[str, Any] = {}
    if stream.current.type == TokenType.RBRACE:
        stream.advance()
        return obj
    while True:
        key_token = stream.expect(TokenType.STRING)
        # Shared here as well as in the tokenizer: the tokenizer's
        # colon lookahead misses keys written with whitespace before the
        # colon, and the parser knows for certain this string is a key.
        key = shared_key(key_token.value)
        if key in obj:
            raise DuplicateKeyError(key, key_token.line, key_token.column)
        stream.expect(TokenType.COLON)
        obj[key] = _parse_value(stream)
        if stream.current.type == TokenType.COMMA:
            stream.advance()
            continue
        stream.expect(TokenType.RBRACE)
        return obj


def _parse_array(stream: _TokenStream) -> list[Any]:
    stream.expect(TokenType.LBRACKET)
    arr: list[Any] = []
    if stream.current.type == TokenType.RBRACKET:
        stream.advance()
        return arr
    while True:
        arr.append(_parse_value(stream))
        if stream.current.type == TokenType.COMMA:
            stream.advance()
            continue
        stream.expect(TokenType.RBRACKET)
        return arr


def loads(
    text: str, source: str | None = None, first_line: int = 1
) -> Any:
    """Parse a JSON document from a string.

    ``source`` and ``first_line`` anchor error positions in the document's
    origin: when parsing one record of an NDJSON file, pass the file path
    and the record's absolute (1-based) line number, and any error will
    report the position *in the file* instead of within the record's text.

    >>> loads('{"a": [1, true, null]}')
    {'a': [1, True, None]}
    >>> loads('{"a": 1, "a": 2}')
    Traceback (most recent call last):
        ...
    repro.jsonio.errors.DuplicateKeyError: duplicate object key 'a' (line 1, column 10)
    >>> loads('nope', source='feed.ndjson', first_line=3)
    Traceback (most recent call last):
        ...
    repro.jsonio.errors.JsonSyntaxError: invalid literal 'nope' (feed.ndjson, line 3, column 1)
    """
    try:
        stream = _TokenStream(tokenize(text))
        value = _parse_value(stream)
        stream.expect(TokenType.EOF)
        return value
    except JsonSyntaxError as exc:
        if source is None and first_line == 1:
            raise
        raise exc.relocate(source, first_line + exc.line - 1) from None
