"""JSON serializer matching the parser's strictness.

Serializes the Python representation of JSON values back to compact JSON
text.  Round-trips with :func:`repro.jsonio.parser.loads`:
``loads(dumps(v)) == v`` for every valid value (hypothesis-checked).
"""

from __future__ import annotations

import math
from typing import Any

from repro.core.errors import InvalidValueError

__all__ = ["dumps"]

_STRING_ESCAPES = {
    '"': '\\"',
    "\\": "\\\\",
    "\b": "\\b",
    "\f": "\\f",
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
}


def _escape_string(s: str) -> str:
    out: list[str] = ['"']
    for c in s:
        if c in _STRING_ESCAPES:
            out.append(_STRING_ESCAPES[c])
        elif ord(c) < 0x20:
            out.append(f"\\u{ord(c):04x}")
        else:
            out.append(c)
    out.append('"')
    return "".join(out)


def _write(value: Any, out: list[str]) -> None:
    if value is None:
        out.append("null")
    elif value is True:
        out.append("true")
    elif value is False:
        out.append("false")
    elif isinstance(value, str):
        out.append(_escape_string(value))
    elif isinstance(value, int):
        out.append(str(value))
    elif isinstance(value, float):
        if not math.isfinite(value):
            raise InvalidValueError(f"non-finite number: {value!r}")
        out.append(repr(value))
    elif isinstance(value, dict):
        out.append("{")
        first = True
        for key, sub in value.items():
            if not isinstance(key, str):
                raise InvalidValueError(f"non-string record key: {key!r}")
            if not first:
                out.append(",")
            first = False
            out.append(_escape_string(key))
            out.append(":")
            _write(sub, out)
        out.append("}")
    elif isinstance(value, list):
        out.append("[")
        for index, sub in enumerate(value):
            if index:
                out.append(",")
            _write(sub, out)
        out.append("]")
    else:
        raise InvalidValueError(f"not a JSON value: {type(value).__name__}")


def dumps(value: Any) -> str:
    """Serialize ``value`` to compact JSON text.

    >>> dumps({"a": [1, True, None], "b": "x\\n"})
    '{"a":[1,true,null],"b":"x\\\\n"}'
    """
    out: list[str] = []
    _write(value, out)
    return "".join(out)
