"""Streaming readers for large JSON documents.

NDJSON (one record per line) is the friendly case; plenty of real dumps —
including Wikidata's official exports — ship as **one giant JSON array**.
Loading such a file with :func:`repro.jsonio.parser.loads` materialises the
whole parsed object graph at once; this module parses element-wise:

* :func:`iter_json_array` yields the elements of a top-level JSON array
  one at a time — only the current element's *parsed form* is alive, which
  is the expensive part (parsed Python objects typically take an order of
  magnitude more memory than their JSON text);
* :func:`iter_json_values` auto-detects the container: a top-level array
  streams element-wise, anything else (including NDJSON-style concatenated
  documents) streams document-wise.

The raw text is held as a single string (the tokenizer's input); the
element-level laziness is about the parsed values.  Both readers use the
same token stream as the strict parser, so duplicate-key detection and
position-carrying errors work identically.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterator

from repro.jsonio.errors import JsonSyntaxError
from repro.jsonio.parser import _parse_value, _TokenStream
from repro.jsonio.tokenizer import TokenType, tokenize

__all__ = ["iter_json_array", "iter_json_values"]

def _file_token_stream(path: str | Path) -> _TokenStream:
    """A lazy token stream over a file's text."""
    text = Path(path).read_text(encoding="utf-8")
    return _TokenStream(tokenize(text))


def iter_json_array(path: str | Path) -> Iterator[Any]:
    """Stream the elements of a file whose top level is a JSON array.

    Elements are parsed and yielded one at a time; the consumed prefix of
    the token stream is released as iteration advances.

    Raises :class:`JsonSyntaxError` if the top level is not an array or
    the document is malformed (including trailing garbage after ``]``).
    """
    stream = _file_token_stream(path)
    first = stream.current
    if first.type != TokenType.LBRACKET:
        raise JsonSyntaxError(
            "top-level value is not an array", first.line, first.column
        )
    stream.advance()
    if stream.current.type == TokenType.RBRACKET:
        stream.advance()
        stream.expect(TokenType.EOF)
        return
    while True:
        yield _parse_value(stream)
        if stream.current.type == TokenType.COMMA:
            stream.advance()
            continue
        stream.expect(TokenType.RBRACKET)
        stream.expect(TokenType.EOF)
        return


def iter_json_values(path: str | Path) -> Iterator[Any]:
    """Stream JSON values from a file of either common container layout.

    * top-level array -> its elements (like :func:`iter_json_array`);
    * anything else -> whitespace-separated concatenated documents, which
      covers NDJSON as a special case.
    """
    stream = _file_token_stream(path)
    if stream.current.type == TokenType.LBRACKET:
        # Delegate by re-reading: element-wise protocol.
        yield from iter_json_array(path)
        return
    while stream.current.type != TokenType.EOF:
        yield _parse_value(stream)
