"""Bounded object-key deduplication (a safe stand-in for ``sys.intern``).

Repeated NDJSON field names benefit from sharing one string object per
distinct key: the interner's field cache and the typers' key-tuple
hashing then compare mostly by pointer, and per-record key copies are
dropped as soon as they are deduplicated.  ``sys.intern`` gives exactly
that sharing but at process scope — and on CPython >= 3.12 interned
strings are *immortalized*, so a feed whose objects use high-cardinality
keys (UUID- or id-keyed maps) would grow a long-lived worker process
without bound, one leaked string per distinct key, across every
partition it ever handles.

:class:`KeyCache` keeps the sharing and drops the leak: a plain dict
mapping each key to its first-seen instance, capped at ``cap`` entries.
When the cap is hit the cache is cleared and re-seeded — recently hot
keys re-enter on their next occurrence, memory stays bounded, and a
pathological partition cannot poison the cache for the rest of the
worker's life.  Cached strings are ordinary objects: dropping the cache
(or clearing it) releases them.

Sharing is an optimization, never a semantic: a missed share only means
two equal strings coexist, so the clear-on-full policy (and benign races
under free-threaded builds) cannot affect results.
"""

from __future__ import annotations

__all__ = ["KeyCache", "shared_key"]

#: Default capacity.  Real-world schemas have at most a few thousand
#: distinct field names; 16k leaves an order of magnitude of headroom
#: while capping worst-case retention at a few megabytes.
DEFAULT_CAP = 16384


class KeyCache:
    """A bounded ``str -> str`` dedup table with clear-on-full eviction."""

    __slots__ = ("_cache", "_cap")

    def __init__(self, cap: int = DEFAULT_CAP) -> None:
        if cap < 1:
            raise ValueError(f"cap must be positive, got {cap}")
        self._cache: dict[str, str] = {}
        self._cap = cap

    def share(self, key: str) -> str:
        """The canonical instance of ``key`` (``==`` to it, often ``is``).

        >>> cache = KeyCache()
        >>> a = "".join(["i", "d"])  # defeat source-literal interning
        >>> cache.share(a) is a
        True
        >>> cache.share("".join(["i", "d"])) is a
        True
        """
        cache = self._cache
        cached = cache.get(key)
        if cached is not None:
            return cached
        if len(cache) >= self._cap:
            cache.clear()
        cache[key] = key
        return key

    def __len__(self) -> int:
        """Number of distinct keys currently cached."""
        return len(self._cache)


#: Process-wide bounded cache used by the tokenizer and parser, which
#: have no per-partition object to hang a cache on.  The fast-lane
#: typers carry their own per-partition :class:`KeyCache` instead.
shared_key = KeyCache().share
