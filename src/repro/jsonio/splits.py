"""Byte-range input splits: the Spark/Hadoop ingestion model for NDJSON.

The line-oriented pipeline reads a whole file at the driver and ships every
record's text to the workers.  That makes driver memory O(dataset) and puts
the entire input through one process — and, on the process backend, through
pickle — before any partition can start.  This module implements the
input-split model instead: the driver looks at *nothing but the file size*,
computes ``FileSplit(path, offset, length)`` descriptors, and each worker
opens the file itself, seeks to its offset and reads only its byte range.
Nothing but ~100-byte descriptors crosses the process boundary on the way
out, and only tiny partition summaries come back.

Record boundaries never align with byte boundaries, so ownership follows
the classic rule (Hadoop's ``LineRecordReader``): **a line belongs to the
split that contains its first byte**.  A split whose offset lands mid-line
skips forward to the next line start; a split whose last line runs past its
end keeps reading until the line is finished.  Together the splits yield
every line exactly once, in file order within each split.

Line *numbers* are where the subtlety lives.  A worker reading from byte
1,073,741,824 cannot know which file line it is on, so everything a split
reports is numbered split-locally (1-based physical lines, blank lines
counted) and the reader keeps the split's total physical
:attr:`~SplitLineReader.line_count`.  The driver turns local numbers into
absolute ones with a prefix sum over the split line counts
(:func:`rebase_bad_records`), so quarantine sidecars and error messages
come out byte-identical to a line-oriented run.

Terminator handling matches text-mode universal newlines exactly —
``\\n``, ``\\r\\n`` and lone ``\\r`` all end a line — including every
boundary case: a ``\\r\\n`` pair straddling a split edge is one
terminator, a lone ``\\r`` at the edge is a whole one, and UTF-8
multibyte sequences straddling an edge are safe because the scanner only
compares against ASCII terminator bytes, which never occur inside a
multibyte sequence.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.jsonio.ndjson import BadRecord

__all__ = [
    "DEFAULT_MIN_SPLIT_BYTES",
    "FileSplit",
    "SplitLineReader",
    "count_lines_before",
    "iter_split_lines",
    "plan_splits",
    "rebase_bad_records",
]

#: Floor on a planned split's size: below this, per-split overhead (task
#: dispatch, open/seek, the skipped partial first line) outweighs the
#: parallelism, so :func:`plan_splits` plans fewer, larger splits instead.
DEFAULT_MIN_SPLIT_BYTES = 1 << 20

#: Read granularity of the boundary-skipping scanner.
_CHUNK = 1 << 16

#: Read granularity of the line reader's bulk loop: large enough that
#: ``bytes.splitlines`` (one C call per block) dominates per-line Python
#: work, small enough that a worker never holds more than one block of a
#: multi-gigabyte split in memory.
_BLOCK = 1 << 22


@dataclass(frozen=True)
class FileSplit:
    """One byte range of one file: everything a worker needs to read it.

    ``offset``/``length`` delimit the range ``[offset, offset + length)``;
    ``index`` is the split's position in the plan (partition order).  The
    descriptor is a few machine words however large the range — that is
    the whole point: it is the only thing the driver ships.
    """

    path: str
    offset: int
    length: int
    index: int = 0

    @property
    def end(self) -> int:
        """First byte offset *past* the split."""
        return self.offset + self.length


def plan_splits(
    path: str | Path,
    num_splits: int,
    min_split_bytes: int = DEFAULT_MIN_SPLIT_BYTES,
    stable: bool = False,
) -> list[FileSplit]:
    """Plan byte-range splits for ``path`` from its size alone.

    Returns at most ``num_splits`` contiguous, disjoint splits covering
    the file exactly, sized within one byte of each other; the count is
    reduced so no split falls below ``min_split_bytes`` (one split
    minimum).  An empty file yields an empty plan.  Only ``os.stat`` is
    consulted — planning a terabyte file costs the same as planning a
    kilobyte one.

    With ``stable=True`` the boundaries are quantized instead of scaled:
    every split but the last spans exactly ``chunk`` bytes, where
    ``chunk`` is the even-division size rounded *up* to a multiple of
    ``min_split_bytes``.  Scaled boundaries move whenever the file size
    changes, so appending one record would shift every split; quantized
    boundaries keep every fully-covered prefix split byte-identical
    across appends (as long as the reduced split count ``num`` is
    unchanged), which is what lets the cross-run summary cache
    (:mod:`repro.store.summarycache`) hit on the unchanged prefix of a
    grown file.  The trade-off is balance: the last split can be up to
    ``chunk`` bytes smaller than the rest.
    """
    if num_splits < 1:
        raise ValueError("num_splits must be >= 1")
    if min_split_bytes < 1:
        raise ValueError("min_split_bytes must be >= 1")
    source = str(path)
    size = os.stat(source).st_size
    if size == 0:
        return []
    num = max(1, min(num_splits, size // min_split_bytes))
    if stable:
        chunk = -(-size // num)  # ceil: at most `num` splits
        chunk = -(-chunk // min_split_bytes) * min_split_bytes
        bounds = list(range(0, size, chunk)) + [size]
    else:
        bounds = [round(i * size / num) for i in range(num + 1)]
    return [
        FileSplit(source, a, b - a, index)
        for index, (a, b) in enumerate(zip(bounds, bounds[1:]))
    ]


class SplitLineReader:
    """Iterate one split's lines: ``(local_line_number, stripped_text)``.

    Yields only non-blank lines (like
    :func:`repro.jsonio.ndjson.iter_numbered_lines`), but numbers them by
    *physical* position within the split — blank lines advance the
    counter — so a prefix sum over split :attr:`line_count` values turns
    local numbers into absolute file line numbers.

    After exhaustion, :attr:`line_count` holds the number of physical
    lines owned by the split and :attr:`bytes_read` the bytes consumed
    from the file (boundary probe and overshoot past the split end
    included).
    """

    def __init__(self, split: FileSplit) -> None:
        self.split = split
        #: Physical lines owned by this split (valid after exhaustion).
        self.line_count = 0
        #: Bytes consumed from the file (valid after exhaustion).
        self.bytes_read = 0

    def __iter__(self) -> Iterator[tuple[int, str]]:
        for line_number, piece in self.iter_raw():
            text = piece.decode("utf-8").strip()
            if text:
                yield line_number, text

    def iter_raw(self) -> Iterator[tuple[int, bytes]]:
        """Iterate every physical line as raw, terminator-stripped bytes.

        Unlike :meth:`__iter__`, blank lines are yielded too (as empty or
        whitespace-only ``bytes``) and nothing is decoded: the bytes-native
        parse lane feeds ``json.loads`` raw bytes, so the per-line
        ``decode("utf-8").strip()`` the text lane needs would be a pure
        allocation tax here.  Consumers that do need text semantics apply
        ``piece.decode("utf-8").strip()`` themselves — exactly what
        :meth:`__iter__` does — so blank-line and whitespace handling stay
        identical by construction between the two iteration modes.
        """
        split = self.split
        end = split.end
        if split.length <= 0:
            return
        with open(split.path, "rb") as handle:
            pos = self._align_to_line_start(handle, split.offset)
            consumed = pos - split.offset
            # Bulk loop: read the split in blocks and let
            # ``bytes.splitlines`` — which splits on exactly the three
            # universal-newline terminators — do the line scanning in C.
            # ``carry`` holds the trailing partial line of each block
            # (plus its ``\r`` when a block ends on one, so a ``\r\n``
            # pair straddling a block boundary reassembles).
            carry = b""
            remaining = end - pos
            at_eof = False
            while remaining > 0:
                chunk = handle.read(min(_BLOCK, remaining))
                if not chunk:
                    at_eof = True
                    break
                consumed += len(chunk)
                remaining -= len(chunk)
                data = carry + chunk
                pieces = data.splitlines()
                if data.endswith(b"\r"):
                    # The pair might complete with a \n in the next
                    # block (or just past the split end); hold the line.
                    carry = (pieces.pop() if pieces else b"") + b"\r"
                elif data.endswith(b"\n"):
                    carry = b""
                else:
                    carry = pieces.pop() if pieces else b""
                for piece in pieces:
                    self.line_count += 1
                    yield self.line_count, piece
            # Flush the final partial line.  A carry ending in \r is a
            # *terminated* line (a \n just past the split end would be
            # the pair's tail, skipped by the next split's alignment).
            # A non-empty unterminated carry belongs to this split — its
            # first byte is ours — so read past the split end to finish
            # it, keeping only up to the first terminator: anything
            # after starts a line owned by the next split.
            emit = None
            if carry.endswith(b"\r"):
                emit = carry[:-1]
            elif carry:
                tail = b"" if at_eof else handle.readline()
                if tail:
                    cr = tail.find(b"\r")
                    nl = tail.find(b"\n")  # readline: last byte, or -1
                    if cr != -1 and (nl == -1 or cr < nl):
                        keep = (
                            cr + 2 if tail[cr + 1:cr + 2] == b"\n" else cr + 1
                        )
                    else:
                        keep = len(tail)
                    consumed += keep
                    carry += tail[:keep]
                    if carry.endswith(b"\r\n"):
                        carry = carry[:-2]
                    elif carry.endswith((b"\n", b"\r")):
                        carry = carry[:-1]
                emit = carry
            if emit is not None:
                self.line_count += 1
                yield self.line_count, emit
        self.bytes_read = consumed

    @staticmethod
    def _align_to_line_start(handle, offset: int) -> int:
        """Position ``handle`` at the first line starting at/after ``offset``.

        Implements first-byte ownership: when ``offset`` lands exactly on
        a line start nothing is skipped; when it lands mid-line (or
        inside a ``\\r\\n`` pair) the partial line belongs to the
        previous split and is skipped.  Returns the aligned position.
        """
        if offset == 0:
            return 0
        handle.seek(offset - 1)
        boundary = handle.read(2)  # bytes at offset-1 and offset
        before, at = boundary[0:1], boundary[1:2]
        if before == b"\n":
            handle.seek(offset)
            return offset
        if before == b"\r":
            if at == b"\n":
                # The \n at `offset` is the tail of a \r\n terminator
                # consumed by the previous split; the line starts after.
                return offset + 1
            handle.seek(offset)
            return offset  # lone \r: a complete terminator
        # Mid-line: the rest of this line belongs to the previous split.
        handle.seek(offset)
        pos = offset
        while True:
            chunk = handle.read(_CHUNK)
            if not chunk:
                return pos  # EOF: nothing left for this split
            newline = chunk.find(b"\n")
            cr = chunk.find(b"\r")
            if cr != -1 and (newline == -1 or cr < newline):
                if cr + 1 < len(chunk):
                    skip = cr + 2 if chunk[cr + 1:cr + 2] == b"\n" else cr + 1
                    handle.seek(pos + skip)
                    return pos + skip
                # \r is the chunk's last byte: peek one byte for \r\n.
                peek = handle.read(1)
                skip = cr + 2 if peek == b"\n" else cr + 1
                handle.seek(pos + skip)
                return pos + skip
            if newline != -1:
                handle.seek(pos + newline + 1)
                return pos + newline + 1
            pos += len(chunk)


def iter_split_lines(split: FileSplit) -> Iterator[tuple[int, str]]:
    """Yield ``(split_local_line_number, stripped_line)`` for one split.

    The function-shaped convenience over :class:`SplitLineReader` for
    callers that do not need the split's line count.  Across the splits
    of one :func:`plan_splits` plan, every non-blank line of the file is
    yielded exactly once.
    """
    yield from SplitLineReader(split)


def count_lines_before(path: str | Path, offset: int) -> int:
    """Number of physical lines whose first byte precedes ``offset``.

    Used on the strict error path only: a worker that hit a malformed
    record knows the split-local line number and needs the absolute one
    for its error message.  Reuses the split reader over the synthetic
    range ``[0, offset)`` so the counting semantics are identical by
    construction.
    """
    if offset <= 0:
        return 0
    reader = SplitLineReader(FileSplit(str(path), 0, offset, 0))
    for _ in reader:
        pass
    return reader.line_count


#: The location suffix JsonSyntaxError appends to every message:
#: " (<source>, line <n>, column <c>)" at the very end of the string.
_LOCATION_SUFFIX = re.compile(
    r"^(?P<head>.*) \((?P<source>.*), line (?P<line>\d+), "
    r"column (?P<column>\d+)\)$",
    re.DOTALL,
)


def rebase_bad_records(
    records: Iterable[BadRecord], base: int
) -> tuple[BadRecord, ...]:
    """Shift split-local quarantine entries to absolute file line numbers.

    ``base`` is the number of physical lines owned by all earlier splits
    (the prefix sum of their ``line_count`` values).  Both the structured
    ``line_number`` and the human-readable location suffix inside the
    error message are rewritten, so a sidecar produced from byte splits
    is byte-identical to one produced by a line-oriented run.  The error
    text's location suffix is the one ``JsonSyntaxError`` itself appends,
    matched from the end of the message so raw record text quoted inside
    the message can never be confused for it.
    """
    if base == 0:
        return tuple(records)
    rebased = []
    for bad in records:
        absolute = bad.line_number + base
        error = bad.error
        match = _LOCATION_SUFFIX.match(error)
        if match is not None and int(match.group("line")) == bad.line_number:
            error = (
                f"{match.group('head')} ({match.group('source')}, "
                f"line {absolute}, column {match.group('column')})"
            )
        rebased.append(BadRecord(bad.path, absolute, error, bad.text))
    return tuple(rebased)
