"""Streaming newline-delimited JSON (NDJSON) readers and writers.

The paper's datasets are collections of JSON records, one per line; this
module reads and writes that format without materialising the whole file.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Iterable, Iterator, TextIO

from repro.jsonio.errors import JsonError
from repro.jsonio.parser import loads
from repro.jsonio.writer import dumps

__all__ = ["read_ndjson", "write_ndjson", "iter_lines", "count_records"]


def iter_lines(path: str | Path) -> Iterator[str]:
    """Yield non-blank lines of ``path`` (each should be one JSON record)."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if stripped:
                yield stripped


def read_ndjson(path: str | Path, skip_invalid: bool = False) -> Iterator[Any]:
    """Stream the JSON records of an NDJSON file.

    With ``skip_invalid=True``, unparseable lines are silently dropped —
    useful for raw crawls; the default propagates the parse error with its
    line context prepended.
    """
    for line_number, line in enumerate(iter_lines(path), start=1):
        try:
            yield loads(line)
        except JsonError as exc:
            if skip_invalid:
                continue
            raise JsonError(f"record {line_number}: {exc}") from exc


def write_ndjson(path: str | Path, values: Iterable[Any]) -> int:
    """Write ``values`` to ``path`` as NDJSON; returns the record count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for value in values:
            handle.write(dumps(value))
            handle.write("\n")
            count += 1
    return count


def count_records(path: str | Path) -> int:
    """Number of records in an NDJSON file (blank lines excluded)."""
    return sum(1 for _ in iter_lines(path))


def file_size_bytes(path: str | Path) -> int:
    """Size of a file in bytes (for Table 1 style dataset-size reports)."""
    return os.stat(path).st_size
