"""Streaming newline-delimited JSON (NDJSON) readers and writers.

The paper's datasets are collections of JSON records, one per line; this
module reads and writes that format without materialising the whole file.

Real-world feeds at the paper's scale (GitHub event streams, Twitter
firehose dumps) routinely contain malformed lines, so the readers support
three dispositions for a bad record:

* **strict** (default) — raise :class:`~repro.jsonio.errors.JsonError`,
  with the *absolute* file line number and the source path in the message;
* **skip** (``skip_invalid=True``) — silently drop the line;
* **quarantine** (:func:`read_ndjson_quarantined`) — drop the line but
  record a :class:`BadRecord` (path, absolute line number, error text, raw
  text) for reporting, and optionally spill the collection to an NDJSON
  sidecar via :func:`write_bad_records`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, MutableSequence

from repro.jsonio.errors import JsonError, JsonSyntaxError
from repro.jsonio.parser import loads
from repro.jsonio.writer import dumps

__all__ = [
    "BadRecord",
    "count_records",
    "iter_lines",
    "iter_numbered_lines",
    "read_ndjson",
    "read_ndjson_quarantined",
    "write_bad_records",
    "write_ndjson",
]


@dataclass(frozen=True)
class BadRecord:
    """One quarantined NDJSON line: where it was, why it failed, what it was.

    ``line_number`` is the absolute, 1-based physical line of the source
    file (blank lines included in the count), so the record can be located
    with any text editor or ``sed -n``.
    """

    path: str
    line_number: int
    error: str
    text: str

    def to_json(self) -> dict[str, Any]:
        """The sidecar representation (one NDJSON record per bad line)."""
        return {
            "path": self.path,
            "line": self.line_number,
            "error": self.error,
            "text": self.text,
        }


def iter_numbered_lines(path: str | Path) -> Iterator[tuple[int, str]]:
    """Yield ``(absolute_line_number, stripped_line)`` for non-blank lines.

    Line numbers are 1-based and count *physical* lines, blank ones
    included — they answer "which line of the file is this record on",
    which is what error messages and quarantine sidecars need.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if stripped:
                yield line_number, stripped


def iter_lines(path: str | Path) -> Iterator[str]:
    """Yield non-blank lines of ``path`` (each should be one JSON record)."""
    for _line_number, line in iter_numbered_lines(path):
        yield line


def read_ndjson(path: str | Path, skip_invalid: bool = False) -> Iterator[Any]:
    """Stream the JSON records of an NDJSON file.

    With ``skip_invalid=True``, unparseable lines are silently dropped —
    useful for raw crawls; the default propagates the parse error carrying
    the source path and the absolute file line number.
    """
    source = str(path)
    for line_number, line in iter_numbered_lines(path):
        try:
            yield loads(line, source=source, first_line=line_number)
        except JsonError as exc:
            if skip_invalid:
                continue
            if isinstance(exc, JsonSyntaxError):
                raise  # already carries the absolute position and path
            raise JsonError(f"{source}, line {line_number}: {exc}") from exc


def read_ndjson_quarantined(
    path: str | Path, quarantine: MutableSequence[BadRecord]
) -> Iterator[Any]:
    """Stream an NDJSON file, diverting malformed lines into ``quarantine``.

    Parse errors never propagate: each bad line becomes a
    :class:`BadRecord` appended to the caller's collection, and iteration
    continues with the next line.  The caller decides what "too many"
    means (see the pipelines' ``max_error_rate``).
    """
    source = str(path)
    for line_number, line in iter_numbered_lines(path):
        try:
            yield loads(line, source=source, first_line=line_number)
        except JsonError as exc:
            quarantine.append(
                BadRecord(source, line_number, str(exc), line)
            )


def write_ndjson(path: str | Path, values: Iterable[Any]) -> int:
    """Write ``values`` to ``path`` as NDJSON; returns the record count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for value in values:
            handle.write(dumps(value))
            handle.write("\n")
            count += 1
    return count


def write_bad_records(
    path: str | Path, records: Iterable[BadRecord]
) -> int:
    """Spill quarantined records to an NDJSON sidecar; returns the count.

    Each output line is ``{"path":…, "line":…, "error":…, "text":…}``,
    so the sidecar is itself machine-readable NDJSON — it can be grepped,
    diffed, or re-ingested once the upstream producer is fixed.
    """
    return write_ndjson(path, (bad.to_json() for bad in records))


def count_records(path: str | Path) -> int:
    """Number of records in an NDJSON file (blank lines excluded)."""
    return sum(1 for _ in iter_lines(path))


def file_size_bytes(path: str | Path) -> int:
    """Size of a file in bytes (for Table 1 style dataset-size reports)."""
    return os.stat(path).st_size
