"""A from-scratch JSON tokenizer (RFC 8259 lexical grammar).

Produces a stream of :class:`Token` objects with 1-based line/column
positions.  The tokenizer is strict: no comments, no trailing commas, no
single quotes, no ``NaN``/``Infinity`` — exactly the JSON grammar.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple

from repro.jsonio.errors import JsonSyntaxError
from repro.jsonio.keycache import shared_key

__all__ = ["Token", "TokenType", "tokenize"]


class TokenType:
    """Token discriminators (plain string constants for cheap comparison)."""

    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COLON = ":"
    COMMA = ","
    STRING = "string"
    NUMBER = "number"
    TRUE = "true"
    FALSE = "false"
    NULL = "null"
    EOF = "eof"


class Token(NamedTuple):
    """A single lexical token with its decoded value and source position."""

    type: str
    value: object
    line: int
    column: int


_PUNCT = {
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    ":": TokenType.COLON,
    ",": TokenType.COMMA,
}

_KEYWORDS = {
    "true": (TokenType.TRUE, True),
    "false": (TokenType.FALSE, False),
    "null": (TokenType.NULL, None),
}

_ESCAPES = {
    '"': '"',
    "\\": "\\",
    "/": "/",
    "b": "\b",
    "f": "\f",
    "n": "\n",
    "r": "\r",
    "t": "\t",
}

_WS = " \t\n\r"
_DIGITS = "0123456789"


class _Cursor:
    """Mutable position over the source text with line/column tracking."""

    __slots__ = ("text", "pos", "line", "col")

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.line = 1
        self.col = 1

    def error(self, message: str) -> JsonSyntaxError:
        return JsonSyntaxError(message, self.line, self.col)

    def advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self.pos < len(self.text) and self.text[self.pos] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.pos += 1


def _lex_string(cur: _Cursor) -> str:
    """Lex a string literal; the cursor sits on the opening quote."""
    start_line, start_col = cur.line, cur.col
    cur.advance()  # opening quote
    text = cur.text
    out: list[str] = []
    while True:
        if cur.pos >= len(text):
            raise JsonSyntaxError("unterminated string", start_line, start_col)
        c = text[cur.pos]
        if c == '"':
            cur.advance()
            return "".join(out)
        if c == "\\":
            cur.advance()
            if cur.pos >= len(text):
                raise cur.error("unterminated escape sequence")
            esc = text[cur.pos]
            if esc in _ESCAPES:
                out.append(_ESCAPES[esc])
                cur.advance()
            elif esc == "u":
                out.append(_lex_unicode_escape(cur))
            else:
                raise cur.error(f"invalid escape character {esc!r}")
        elif ord(c) < 0x20:
            raise cur.error(f"unescaped control character {c!r} in string")
        else:
            out.append(c)
            cur.advance()


def _lex_hex4(cur: _Cursor) -> int:
    """Read exactly four hex digits after a ``\\u``."""
    text = cur.text
    if cur.pos + 4 > len(text):
        raise cur.error("truncated \\u escape")
    quad = text[cur.pos:cur.pos + 4]
    try:
        code = int(quad, 16)
    except ValueError:
        raise cur.error(f"invalid \\u escape {quad!r}") from None
    cur.advance(4)
    return code


def _lex_unicode_escape(cur: _Cursor) -> str:
    """Decode ``\\uXXXX``, pairing surrogates per RFC 8259 section 7."""
    cur.advance()  # the 'u'
    code = _lex_hex4(cur)
    if 0xD800 <= code <= 0xDBFF:
        # High surrogate: require a following \uXXXX low surrogate.
        text = cur.text
        if text[cur.pos:cur.pos + 2] == "\\u":
            cur.advance(2)
            low = _lex_hex4(cur)
            if 0xDC00 <= low <= 0xDFFF:
                combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                return chr(combined)
            raise cur.error("unpaired high surrogate in \\u escape")
        raise cur.error("unpaired high surrogate in \\u escape")
    if 0xDC00 <= code <= 0xDFFF:
        raise cur.error("unpaired low surrogate in \\u escape")
    return chr(code)


def _lex_number(cur: _Cursor) -> int | float:
    """Lex a number; the cursor sits on ``-`` or a digit."""
    text = cur.text
    start = cur.pos
    is_float = False

    if cur.pos < len(text) and text[cur.pos] == "-":
        cur.advance()
    if cur.pos >= len(text) or text[cur.pos] not in _DIGITS:
        raise cur.error("invalid number")
    if text[cur.pos] == "0":
        cur.advance()
        if cur.pos < len(text) and text[cur.pos] in _DIGITS:
            raise cur.error("leading zeros are not allowed")
    else:
        while cur.pos < len(text) and text[cur.pos] in _DIGITS:
            cur.advance()
    if cur.pos < len(text) and text[cur.pos] == ".":
        is_float = True
        cur.advance()
        if cur.pos >= len(text) or text[cur.pos] not in _DIGITS:
            raise cur.error("digit expected after decimal point")
        while cur.pos < len(text) and text[cur.pos] in _DIGITS:
            cur.advance()
    if cur.pos < len(text) and text[cur.pos] in "eE":
        is_float = True
        cur.advance()
        if cur.pos < len(text) and text[cur.pos] in "+-":
            cur.advance()
        if cur.pos >= len(text) or text[cur.pos] not in _DIGITS:
            raise cur.error("digit expected in exponent")
        while cur.pos < len(text) and text[cur.pos] in _DIGITS:
            cur.advance()

    literal = text[start:cur.pos]
    return float(literal) if is_float else int(literal)


def tokenize(text: str) -> Iterator[Token]:
    """Yield the tokens of ``text``, ending with a single EOF token.

    >>> [t.type for t in tokenize('{"a": 1}')]
    ['{', 'string', ':', 'number', '}', 'eof']
    """
    cur = _Cursor(text)
    while True:
        while cur.pos < len(text) and text[cur.pos] in _WS:
            cur.advance()
        if cur.pos >= len(text):
            yield Token(TokenType.EOF, None, cur.line, cur.col)
            return
        c = text[cur.pos]
        line, col = cur.line, cur.col
        if c in _PUNCT:
            cur.advance()
            yield Token(_PUNCT[c], c, line, col)
        elif c == '"':
            value = _lex_string(cur)
            # Object keys (a string immediately followed by ``:``) recur
            # across every record of an NDJSON feed; deduplicating them
            # through the bounded key cache makes repeated field names
            # share storage (turning downstream key hashing into pointer
            # comparisons) without sys.intern's process-lifetime pinning.
            if cur.pos < len(text) and text[cur.pos] == ":":
                value = shared_key(value)
            yield Token(TokenType.STRING, value, line, col)
        elif c == "-" or c in _DIGITS:
            yield Token(TokenType.NUMBER, _lex_number(cur), line, col)
        elif c.isalpha():
            start = cur.pos
            while cur.pos < len(text) and text[cur.pos].isalpha():
                cur.advance()
            word = text[start:cur.pos]
            if word not in _KEYWORDS:
                raise JsonSyntaxError(f"invalid literal {word!r}", line, col)
            kind, value = _KEYWORDS[word]
            yield Token(kind, value, line, col)
        else:
            raise cur.error(f"unexpected character {c!r}")
