"""mmap-backed block scanner: zero-copy line batches for the bytes lane.

The text-mode split reader (:class:`repro.jsonio.splits.SplitLineReader`)
costs one ``read`` copy, one ``bytes`` object, one ``str`` and one
``strip`` per line before the typer ever sees a record.  The bytes-native
parse lane needs none of that: ``json.loads`` accepts raw UTF-8, so the
scanner's only real job is finding newline boundaries.  This module does
exactly that, and nothing else:

* the split's file is **memory-mapped** once; line boundaries are located
  with chunked ``mmap.find`` scans (C speed, no Python per-byte work);
* each line is handed out as a **zero-copy** ``memoryview`` slice of the
  map — no per-line ``bytes``, no per-line ``str``, no intermediate
  whole-split list;
* lines are grouped into **batches** sized for the vectorized typer
  (:class:`repro.inference.typestream.BytesBatchTyper`), which joins each
  batch and decodes it through the stdlib C scanner in one call.

Boundary semantics are *identical* to :class:`SplitLineReader` — same
first-byte ownership, same split-local 1-based physical numbering with
blank lines counted, same ``line_count`` / ``bytes_read`` accounting —
which the differential tests check offset by offset.  The fast mmap path
only runs when the scanned range is free of ``\\r``: with ``\\n`` as the
sole terminator, a single C ``find`` per line is exact.  Any carriage
return anywhere in the range (CRLF files, lone-CR files, a ``\\r``
straddling the split edge) routes the whole split through
:meth:`SplitLineReader.iter_raw`, whose ``bytes.splitlines`` carry logic
already handles every universal-newline case — slower, but provably the
same lines.  Ranges that mmap cannot serve (empty files, exotic
filesystems) take the same fallback.
"""

from __future__ import annotations

import hashlib
import mmap
from pathlib import Path
from typing import Iterator

from repro.jsonio.splits import FileSplit, SplitLineReader

__all__ = [
    "DEFAULT_BATCH_BYTES",
    "SplitBlockScanner",
    "digest_splits",
    "split_content_span",
]

#: Target payload of one yielded batch.  Large enough that the batched
#: decode amortises its per-call overhead over thousands of lines, small
#: enough that a batch's joined document (one copy of the batch's bytes)
#: stays cache-friendly and a fallback re-parse never re-reads much.
DEFAULT_BATCH_BYTES = 1 << 20


class SplitBlockScanner:
    """Iterate one split as ``(first_line_number, lines)`` batches.

    ``lines`` is a list of terminator-stripped raw line slices —
    ``memoryview`` on the mmap fast path, ``bytes`` on the universal-
    newline fallback — covering *every* physical line of the batch, blank
    lines included (empty slices), so the ``i``-th entry is physical line
    ``first_line_number + i`` of the split.  Numbering, ownership and the
    post-exhaustion :attr:`line_count` / :attr:`bytes_read` attributes
    match :class:`SplitLineReader` exactly.

    The yielded memoryviews borrow the scanner's map; they are valid for
    the lifetime of the scanner object (the map is closed by GC, never
    while exported slices are alive).
    """

    def __init__(
        self, split: FileSplit, batch_bytes: int = DEFAULT_BATCH_BYTES
    ) -> None:
        if batch_bytes < 1:
            raise ValueError(f"batch_bytes must be positive, got {batch_bytes}")
        self.split = split
        #: Physical lines owned by this split (valid after exhaustion).
        self.line_count = 0
        #: Bytes consumed from the file (valid after exhaustion).
        self.bytes_read = 0
        self._batch_bytes = batch_bytes

    def __iter__(self) -> "Iterator[tuple[int, list]]":
        split = self.split
        if split.length <= 0:
            return
        mm = None
        with open(split.path, "rb") as handle:
            try:
                # ACCESS_READ: the buffer is read-only, so its memoryview
                # slices are hashable — the dedup cache probes with them
                # directly against bytes keys, no copy.
                mm = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            except (ValueError, OSError):
                mm = None
        if mm is None:
            yield from self._iter_fallback()
            return
        size = len(mm)
        end = min(split.end, size)
        pos = self._align(mm, split.offset, size)
        if pos >= end:
            # The whole range sits inside one line owned by the previous
            # split: nothing to yield, only the skipped prefix consumed.
            self.bytes_read = pos - split.offset
            return
        # The split's consumed range ends after the last owned line's
        # terminator: [pos, end) plus — when the final line runs past the
        # split end — the overshoot up to and including the next "\n".
        if mm[end - 1] == 0x0A:
            limit = end
        else:
            nl = mm.find(b"\n", end)
            limit = size if nl == -1 else nl + 1
        if mm.find(b"\r", pos, limit) != -1:
            # Any carriage return in range: universal-newline territory.
            # Route through the splitlines-based reader, whose carry
            # logic is the reference for every \r/\r\n boundary case.
            yield from self._iter_fallback()
            return
        yield from self._iter_mmap(mm, pos, limit)
        self.bytes_read = limit - split.offset

    def _iter_mmap(
        self, mm: "mmap.mmap", pos: int, limit: int
    ) -> "Iterator[tuple[int, list]]":
        """\\n-only scan of ``[pos, limit)``: find, slice, batch."""
        view = memoryview(mm)
        find = mm.find
        batch_bytes = self._batch_bytes
        lines: list = []
        append = lines.append
        first = 1
        count = 0
        batch_start = pos
        while pos < limit:
            j = find(b"\n", pos, limit)
            if j == -1:
                append(view[pos:limit])  # final unterminated line
                pos = limit
            else:
                append(view[pos:j])
                pos = j + 1
            count += 1
            if pos - batch_start >= batch_bytes:
                yield first, lines
                lines = []
                append = lines.append
                first = count + 1
                batch_start = pos
        if lines:
            yield first, lines
        self.line_count = count

    def _iter_fallback(self) -> "Iterator[tuple[int, list]]":
        """Batch :meth:`SplitLineReader.iter_raw` (universal newlines)."""
        reader = SplitLineReader(self.split)
        batch_bytes = self._batch_bytes
        lines: list = []
        first = 1
        pending = 0
        for line_number, piece in reader.iter_raw():
            if not lines:
                first = line_number
            lines.append(piece)
            pending += len(piece) + 1
            if pending >= batch_bytes:
                yield first, lines
                lines = []
                pending = 0
        if lines:
            yield first, lines
        self.line_count = reader.line_count
        self.bytes_read = reader.bytes_read

    @staticmethod
    def _align(mm, offset: int, size: int) -> int:
        """First-byte ownership on the map: the mmap twin of
        :meth:`SplitLineReader._align_to_line_start`, same rules."""
        if offset == 0:
            return 0
        before = mm[offset - 1:offset]
        if before == b"\n":
            return offset
        if before == b"\r":
            if mm[offset:offset + 1] == b"\n":
                # The \n at `offset` is the tail of a \r\n terminator
                # consumed by the previous split; the line starts after.
                return offset + 1
            return offset  # lone \r: a complete terminator
        # Mid-line: the rest of this line belongs to the previous split.
        nl = mm.find(b"\n", offset)
        cr = mm.find(b"\r", offset)
        if cr != -1 and (nl == -1 or cr < nl):
            return cr + 2 if mm[cr + 1:cr + 2] == b"\n" else cr + 1
        if nl != -1:
            return nl + 1
        return size  # EOF: nothing left for this split


#: Hash granularity of :func:`digest_splits`: one ``update`` call per this
#: many bytes, so a multi-gigabyte split never materialises as one slice.
_DIGEST_CHUNK = 1 << 22


def split_content_span(buf, split: FileSplit) -> tuple[int, int]:
    """The byte span ``[start, stop)`` a split's summary depends on.

    A split summary is a pure function of more than the planned range
    ``[offset, offset + length)``: the byte at ``offset - 1`` decides the
    first-byte-ownership alignment, and a final line running past the
    split end drags in the overshoot up to and including its terminator.
    This returns exactly that closure — the same consumption the scanners
    perform — so ``sha256(buf[start:stop])`` is a sound content-address
    for the summary: any byte outside the span can change without
    affecting the split's output, and any byte inside it that changes
    changes the digest.

    ``buf`` is the whole file as any sliceable byte buffer (``mmap``,
    ``bytes``); ``stop - start`` equals the scanners' ``bytes_read`` plus
    the one-byte boundary probe (when ``offset > 0``).
    """
    size = len(buf)
    start = min(max(0, split.offset - 1), size)
    if split.length <= 0 or size == 0:
        return start, start
    end = min(split.end, size)
    if end <= 0:
        return start, start
    pos = SplitBlockScanner._align(buf, split.offset, size)
    if pos >= end:
        # The whole range sits inside one line owned by the previous
        # split; only the alignment scan's bytes matter.
        return start, max(start, pos)
    last = buf[end - 1]
    if last == 0x0A or last == 0x0D:
        # Range ends on a terminator.  A trailing lone "\r" is complete:
        # the reader emits its line without looking at the byte past the
        # end (a following "\n" is consumed by the next split's
        # alignment), so the span stops at the planned end either way.
        return start, end
    # Final line runs past the split end: the overshoot up to and
    # including the first terminator at/after `end` is ours — the same
    # scan-forward rule as the mid-line alignment case.
    nl = buf.find(b"\n", end)
    cr = buf.find(b"\r", end)
    if cr != -1 and (nl == -1 or cr < nl):
        stop = cr + 2 if buf[cr + 1:cr + 2] == b"\n" else cr + 1
    elif nl != -1:
        stop = nl + 1
    else:
        stop = size
    return start, stop


def digest_splits(path: "str | Path", splits: list[FileSplit]) -> list[str]:
    """Content digests for a split plan: one sha-256 hex string per split.

    One pass over one memory map (seek/read fallback when mmap is
    unavailable), hashing each split's :func:`split_content_span` in
    chunks.  The digest is the content half of the cross-run summary
    cache's key (:mod:`repro.store.summarycache`): equal digests mean the
    split's bytes — boundary probe and overshoot included — are
    identical, so its cached summary replays verbatim.  Hashing runs at
    memory bandwidth, without any of the line-scanning or typing work a
    recompute would pay.
    """
    if not splits:
        return []
    with open(str(path), "rb") as handle:
        try:
            buf = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):
            buf = handle.read()
    try:
        view = memoryview(buf)
        try:
            digests = []
            for split in splits:
                start, stop = split_content_span(buf, split)
                digest = hashlib.sha256()
                for piece in range(start, stop, _DIGEST_CHUNK):
                    digest.update(view[piece:min(piece + _DIGEST_CHUNK, stop)])
                digests.append(digest.hexdigest())
            return digests
        finally:
            view.release()
    finally:
        if isinstance(buf, mmap.mmap):
            buf.close()
