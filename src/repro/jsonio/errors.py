"""Errors raised by the JSON I/O layer."""

from __future__ import annotations

__all__ = ["JsonError", "JsonSyntaxError", "DuplicateKeyError"]


class JsonError(Exception):
    """Base class for all JSON I/O errors."""


class JsonSyntaxError(JsonError):
    """Malformed JSON text.

    Carries 1-based ``line`` and ``column`` of the offending character, so
    that errors inside multi-megabyte NDJSON files are actionable.
    """

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class DuplicateKeyError(JsonSyntaxError):
    """A JSON object repeats a key.

    The paper's data model (Section 4) only admits *well-formed* records,
    whose top-level keys are mutually different; unlike the standard library
    parser (which silently keeps the last occurrence), this parser rejects
    the document.
    """

    def __init__(self, key: str, line: int, column: int) -> None:
        super().__init__(f"duplicate object key {key!r}", line, column)
        self.key = key
