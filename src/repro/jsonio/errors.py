"""Errors raised by the JSON I/O layer."""

from __future__ import annotations

__all__ = [
    "JsonError",
    "JsonSyntaxError",
    "DuplicateKeyError",
    "ErrorRateExceeded",
]


class JsonError(Exception):
    """Base class for all JSON I/O errors."""


class JsonSyntaxError(JsonError):
    """Malformed JSON text.

    Carries 1-based ``line`` and ``column`` of the offending character —
    and, when known, the ``source`` (file path) — so that errors inside
    multi-megabyte NDJSON files are actionable.  For NDJSON, ``line`` is
    the *absolute* line of the file once the reader relocates the error,
    not the line within one record's text.
    """

    def __init__(
        self,
        message: str,
        line: int,
        column: int,
        source: str | None = None,
    ) -> None:
        where = f"line {line}, column {column}"
        if source is not None:
            where = f"{source}, {where}"
        super().__init__(f"{message} ({where})")
        self.message = message
        self.line = line
        self.column = column
        self.source = source

    def relocate(self, source: str | None, line: int) -> "JsonSyntaxError":
        """A copy of this error re-anchored to an absolute file position.

        Used by the NDJSON readers: the parser reports positions within
        one record's text; the reader knows which file line the record
        started on and rewrites the error accordingly.
        """
        return JsonSyntaxError(self.message, line, self.column, source)

    def __reduce__(self):
        # The default exception reduction replays ``args`` — which holds
        # the pre-formatted message, not the constructor signature — so
        # without this, the error dies with a TypeError while crossing a
        # process-pool boundary (e.g. a strict-mode parse failure on a
        # worker).  Reduce to the real constructor arguments instead.
        return (
            self.__class__,
            (self.message, self.line, self.column, self.source),
        )


class DuplicateKeyError(JsonSyntaxError):
    """A JSON object repeats a key.

    The paper's data model (Section 4) only admits *well-formed* records,
    whose top-level keys are mutually different; unlike the standard library
    parser (which silently keeps the last occurrence), this parser rejects
    the document.
    """

    def __init__(
        self,
        key: str,
        line: int,
        column: int,
        source: str | None = None,
    ) -> None:
        super().__init__(
            f"duplicate object key {key!r}", line, column, source
        )
        self.key = key

    def relocate(self, source: str | None, line: int) -> "DuplicateKeyError":
        """See :meth:`JsonSyntaxError.relocate`."""
        return DuplicateKeyError(self.key, line, self.column, source)

    def __reduce__(self):
        return (
            self.__class__,
            (self.key, self.line, self.column, self.source),
        )


class ErrorRateExceeded(JsonError):
    """Too many malformed records for a permissive run to be trusted.

    Raised when the fraction of quarantined records exceeds the job's
    ``max_error_rate`` threshold — the guard that keeps silent garbage
    from masquerading as a successful inference.
    """

    def __init__(self, skipped: int, total: int, max_error_rate: float) -> None:
        rate = skipped / total if total else 0.0
        super().__init__(
            f"{skipped} of {total} records malformed ({rate:.2%}), above "
            f"the max_error_rate threshold of {max_error_rate:.2%}"
        )
        self.skipped = skipped
        self.total = total
        self.rate = rate
        self.max_error_rate = max_error_rate

    def __reduce__(self):
        # Same pickling contract as JsonSyntaxError: reduce to the
        # constructor arguments, not the formatted message.
        return (
            self.__class__,
            (self.skipped, self.total, self.max_error_rate),
        )
