"""Unit and property tests for byte-range input splits (repro.jsonio.splits).

The correctness bar is *text-mode equivalence*: reading a file through any
:func:`plan_splits` plan must yield exactly the lines (and physical line
numbers) that :func:`repro.jsonio.ndjson.iter_numbered_lines` produces,
whatever mix of ``\\n`` / ``\\r\\n`` / lone ``\\r`` terminators, blank
lines, multibyte UTF-8 and boundary placements the file contains.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.jsonio.ndjson import BadRecord, iter_numbered_lines
from repro.jsonio.splits import (
    DEFAULT_MIN_SPLIT_BYTES,
    FileSplit,
    SplitLineReader,
    count_lines_before,
    iter_split_lines,
    plan_splits,
    rebase_bad_records,
)


def write_bytes(tmp_path, data: bytes):
    path = tmp_path / "data.ndjson"
    path.write_bytes(data)
    return path


def read_via_splits(path, num_splits: int, min_split_bytes: int = 1):
    """All (absolute_line_number, text) pairs via a split plan, plus the
    per-split readers for count assertions."""
    readers = []
    out = []
    base = 0
    for split in plan_splits(path, num_splits, min_split_bytes):
        reader = SplitLineReader(split)
        for local, text in reader:
            out.append((base + local, text))
        base += reader.line_count
        readers.append(reader)
    return out, readers


def reference_lines(path):
    """Text-mode ground truth: numbered, stripped, non-blank lines."""
    return list(iter_numbered_lines(path))


def physical_line_count(path):
    with open(path, "r", encoding="utf-8") as handle:
        return sum(1 for _ in handle)


class TestPlanSplits:
    def test_covers_file_exactly_and_disjointly(self, tmp_path):
        path = write_bytes(tmp_path, b"x" * 1000)
        splits = plan_splits(path, 7, min_split_bytes=1)
        assert len(splits) == 7
        assert splits[0].offset == 0
        assert splits[-1].end == 1000
        for left, right in zip(splits, splits[1:]):
            assert left.end == right.offset
        assert [s.index for s in splits] == list(range(7))

    def test_sizes_within_one_byte(self, tmp_path):
        path = write_bytes(tmp_path, b"x" * 1003)
        sizes = {s.length for s in plan_splits(path, 4, min_split_bytes=1)}
        assert max(sizes) - min(sizes) <= 1

    def test_empty_file_yields_empty_plan(self, tmp_path):
        path = write_bytes(tmp_path, b"")
        assert plan_splits(path, 4) == []

    def test_min_split_bytes_caps_split_count(self, tmp_path):
        path = write_bytes(tmp_path, b"x" * 100)
        assert len(plan_splits(path, 8, min_split_bytes=30)) == 3
        assert len(plan_splits(path, 8, min_split_bytes=1000)) == 1

    def test_default_min_split_is_one_mebibyte(self, tmp_path):
        path = write_bytes(tmp_path, b"x" * 4096)
        assert DEFAULT_MIN_SPLIT_BYTES == 1 << 20
        assert len(plan_splits(path, 16)) == 1

    def test_validation(self, tmp_path):
        path = write_bytes(tmp_path, b"x")
        with pytest.raises(ValueError):
            plan_splits(path, 0)
        with pytest.raises(ValueError):
            plan_splits(path, 2, min_split_bytes=0)

    @given(
        size=st.integers(min_value=1, max_value=5000),
        num=st.integers(min_value=1, max_value=40),
        floor=st.integers(min_value=1, max_value=200),
    )
    def test_plan_properties(self, tmp_path_factory, size, num, floor):
        path = tmp_path_factory.mktemp("plan") / "f"
        path.write_bytes(b"x" * size)
        splits = plan_splits(path, num, min_split_bytes=floor)
        assert 1 <= len(splits) <= num
        assert splits[0].offset == 0
        assert splits[-1].end == size
        assert sum(s.length for s in splits) == size
        for left, right in zip(splits, splits[1:]):
            assert left.end == right.offset
        if len(splits) > 1:
            assert all(s.length >= floor for s in splits[:-1])


class TestSplitLineReader:
    CASES = [
        b'{"a":1}\n{"b":2}\n',
        b'{"a":1}\r\n{"b":2}\r\n',
        b'{"a":1}\r{"b":2}\r',
        b'{"a":1}\n\n\n{"b":2}\n',
        b'{"a":1}\r\n\r\n{"b":2}',
        b'{"a":1}\n{"b":2}',  # no trailing newline
        '{"k":"ééé"}\n{"k":"日本語"}\n'.encode("utf-8"),
        b"\n\r\n\r",  # only blank lines
        b'{"a":1}',
        b"",
    ]

    @pytest.mark.parametrize("data", CASES)
    @pytest.mark.parametrize("num_splits", [1, 2, 3, 5, 16])
    def test_matches_text_mode_reference(self, tmp_path, data, num_splits):
        path = write_bytes(tmp_path, data)
        got, _ = read_via_splits(path, num_splits)
        assert got == reference_lines(path)

    @pytest.mark.parametrize("data", CASES)
    def test_every_boundary_position(self, tmp_path, data):
        """Two-split plans at *every* possible boundary byte: terminators
        and multibyte sequences straddling the edge must not lose,
        duplicate, or renumber a line."""
        path = write_bytes(tmp_path, data)
        expect = reference_lines(path)
        for cut in range(len(data) + 1):
            splits = [
                FileSplit(str(path), 0, cut, 0),
                FileSplit(str(path), cut, len(data) - cut, 1),
            ]
            got = []
            base = 0
            for split in splits:
                reader = SplitLineReader(split)
                got.extend((base + n, t) for n, t in reader)
                base += reader.line_count
            assert got == expect, f"boundary at byte {cut}"

    def test_line_counts_sum_to_physical_lines(self, tmp_path):
        data = b'{"a":1}\r\n\r\n{"b":2}\rx\n{"c":3}'
        path = write_bytes(tmp_path, data)
        _, readers = read_via_splits(path, 4)
        assert sum(r.line_count for r in readers) == physical_line_count(path)

    def test_bytes_read_covers_the_file(self, tmp_path):
        data = b'{"a":1}\n{"bbbb":2}\n{"c":3}\n'
        path = write_bytes(tmp_path, data)
        _, readers = read_via_splits(path, 3)
        # Boundary probes overlap, but collectively every byte is read.
        assert sum(r.bytes_read for r in readers) >= len(data)

    def test_empty_split_yields_nothing(self, tmp_path):
        path = write_bytes(tmp_path, b'{"a":1}\n')
        assert list(iter_split_lines(FileSplit(str(path), 3, 0, 0))) == []

    @given(
        lines=st.lists(
            st.text(
                alphabet=st.characters(
                    blacklist_categories=("Cs", "Cc"),
                    blacklist_characters="\r\n",
                ),
                max_size=12,
            ),
            max_size=20,
        ),
        terminators=st.lists(
            st.sampled_from(["\n", "\r\n", "\r"]), min_size=20, max_size=20
        ),
        trailing=st.booleans(),
        num_splits=st.integers(min_value=1, max_value=12),
    )
    def test_fuzz_matches_text_mode(
        self, tmp_path_factory, lines, terminators, trailing, num_splits
    ):
        parts = []
        for i, line in enumerate(lines):
            parts.append(line)
            if i < len(lines) - 1 or trailing:
                parts.append(terminators[i])
        data = "".join(parts).encode("utf-8")
        path = tmp_path_factory.mktemp("fuzz") / "f.ndjson"
        path.write_bytes(data)
        got, readers = read_via_splits(path, num_splits)
        assert got == reference_lines(path)
        assert sum(r.line_count for r in readers) == physical_line_count(path)


class TestCountLinesBefore:
    def test_matches_prefix_sum_at_every_offset(self, tmp_path):
        data = b'{"a":1}\r\n\r\n{"b":2}\rtail'
        path = write_bytes(tmp_path, data)
        for offset in range(len(data) + 1):
            reader = SplitLineReader(FileSplit(str(path), 0, offset, 0))
            for _ in reader:
                pass
            assert count_lines_before(path, offset) == reader.line_count

    def test_zero_offset(self, tmp_path):
        path = write_bytes(tmp_path, b"x\n")
        assert count_lines_before(path, 0) == 0


class TestRebaseBadRecords:
    BAD = BadRecord(
        "f.ndjson",
        3,
        "unexpected token 'eof' (f.ndjson, line 3, column 11)",
        '{"broken":',
    )

    def test_shifts_line_number_and_error_text(self):
        (out,) = rebase_bad_records([self.BAD], base=40)
        assert out.line_number == 43
        assert out.error == (
            "unexpected token 'eof' (f.ndjson, line 43, column 11)"
        )
        assert (out.path, out.text) == (self.BAD.path, self.BAD.text)

    def test_base_zero_is_identity(self):
        assert rebase_bad_records([self.BAD], base=0) == (self.BAD,)

    def test_mismatched_location_left_alone(self):
        # A message whose embedded line number is not the record's local
        # line (e.g. quoted record text) must not be rewritten.
        bad = BadRecord("f", 2, "weird (f, line 9, column 1)", "x")
        (out,) = rebase_bad_records([bad], base=10)
        assert out.line_number == 12
        assert out.error == "weird (f, line 9, column 1)"

    def test_error_without_location_suffix(self):
        bad = BadRecord("f", 1, "something else entirely", "x")
        (out,) = rebase_bad_records([bad], base=5)
        assert out.line_number == 6
        assert out.error == "something else entirely"
