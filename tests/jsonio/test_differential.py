"""Differential tests: our JSON parser against the standard library.

On any input, the from-scratch parser must agree with ``json.loads`` about
(a) the parsed value when both accept, and (b) acceptance itself — except
for the one *documented* divergence: duplicate object keys, which stdlib
silently resolves and we reject (the paper's well-formedness condition).
"""

import json as stdlib_json
import math

import pytest
from hypothesis import example, given
from hypothesis import strategies as st

from repro.jsonio.errors import DuplicateKeyError, JsonError
from repro.jsonio.parser import loads
from repro.jsonio.writer import dumps
from tests.conftest import json_values


def _has_duplicate_keys(text: str) -> bool:
    """True if stdlib parsing would merge duplicate keys somewhere."""
    seen_duplicate = False

    def hook(pairs):
        nonlocal seen_duplicate
        keys = [k for k, _ in pairs]
        if len(keys) != len(set(keys)):
            seen_duplicate = True
        return dict(pairs)

    try:
        stdlib_json.loads(text, object_pairs_hook=hook)
    except ValueError:
        return False
    return seen_duplicate


def _contains_non_finite(value) -> bool:
    if isinstance(value, float):
        return not math.isfinite(value)
    if isinstance(value, dict):
        return any(_contains_non_finite(v) for v in value.values())
    if isinstance(value, list):
        return any(_contains_non_finite(v) for v in value)
    return False


def _contains_surrogate(value) -> bool:
    """True if any decoded string carries a code point in U+D800-DFFF.

    Stdlib decodes lone surrogate ``\\u`` escapes permissively; our
    strict parser rejects them per RFC 8259 section 7 — the second
    documented acceptance divergence besides ``NaN``/``Infinity``.
    """
    if isinstance(value, str):
        return any("\ud800" <= c <= "\udfff" for c in value)
    if isinstance(value, dict):
        return any(
            _contains_surrogate(k) or _contains_surrogate(v)
            for k, v in value.items()
        )
    if isinstance(value, list):
        return any(_contains_surrogate(v) for v in value)
    return False


class TestAgreementOnValidInputs:
    @given(json_values())
    def test_same_value_as_stdlib(self, value):
        text = stdlib_json.dumps(value)
        assert loads(text) == stdlib_json.loads(text)

    @given(json_values())
    def test_stdlib_reads_our_output(self, value):
        assert stdlib_json.loads(dumps(value)) == value

    @given(st.text(max_size=30))
    def test_arbitrary_strings_round_trip(self, s):
        assert loads(dumps(s)) == s

    @given(st.integers(min_value=-(10 ** 30), max_value=10 ** 30))
    def test_huge_integers(self, n):
        assert loads(str(n)) == n

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_floats_agree(self, x):
        text = stdlib_json.dumps(x)
        got = loads(text)
        assert got == stdlib_json.loads(text) or (
            math.isclose(got, x, rel_tol=1e-15)
        )


class TestAgreementOnAcceptance:
    @given(st.text(max_size=25))
    @example('{"a":1,"a":2}')
    @example("[1,2,]")
    @example("'single'")
    @example("NaN")
    @example("Infinity")
    @example("01")
    @example("+1")
    @example('"\\x41"')
    @example('"\\ud800"')
    @example('"\\udc00"')
    @example('{"a": "\\uD800"}')
    @example('"\\ud800x"')
    @example('"\\ud83d\\ude00"')
    def test_acceptance_agrees_modulo_duplicates(self, text):
        try:
            ours = ("ok", loads(text))
        except DuplicateKeyError:
            ours = ("dup", None)
        except JsonError:
            ours = ("err", None)
        except RecursionError:
            return  # deeply nested pathological input; both sides bail

        try:
            theirs = ("ok", stdlib_json.loads(text))
        except ValueError:
            theirs = ("err", None)
        except RecursionError:
            return

        if ours[0] == "dup":
            # Documented divergence: stdlib accepts, we reject.
            assert theirs[0] == "ok"
            assert _has_duplicate_keys(text)
        elif ours[0] == "err" and theirs[0] == "ok":
            # The only stdlib leniencies we do not share: non-standard
            # NaN/Infinity constants and lone surrogate \u escapes.
            assert (_contains_non_finite(theirs[1])
                    or _contains_surrogate(theirs[1]))
        else:
            assert ours[0] == theirs[0]
            if ours[0] == "ok":
                assert ours[1] == theirs[1]

    def test_stdlib_extensions_rejected(self):
        """We are strict where stdlib is lenient by default."""
        for text in ["NaN", "Infinity", "-Infinity"]:
            stdlib_json.loads(text)  # stdlib accepts these extensions
            with pytest.raises(JsonError):
                loads(text)


class TestFastLanesMatchStrictTyping:
    """The map-phase fast lanes against the strict parse-then-type path.

    For every JSON value the fast typers must produce the *same interned
    type object* (pointer equality within one accumulator) that
    ``interner.intern(infer_type(loads(text)))`` yields, and must agree
    with the strict parser about acceptance at the same positions.
    """

    @given(json_values())
    def test_token_typer_pointer_equal(self, value):
        from repro.inference.infer import infer_type
        from repro.inference.kernel import PartitionAccumulator
        from repro.inference.typestream import type_from_tokens

        acc = PartitionAccumulator()
        text = dumps(value)
        fast = type_from_tokens(text, acc)
        strict = acc.interner.intern(infer_type(loads(text)))
        assert fast is strict

    @given(json_values())
    def test_hook_typer_pointer_equal(self, value):
        from repro.inference.infer import infer_type
        from repro.inference.kernel import PartitionAccumulator
        from repro.inference.typestream import (
            HookTyper,
            c_scanner_available,
        )

        if not c_scanner_available():  # pragma: no cover
            pytest.skip("stdlib C scanner unavailable")
        acc = PartitionAccumulator()
        typer = HookTyper(acc)
        text = dumps(value)
        fast = typer.type_document(text)
        strict = acc.interner.intern(infer_type(loads(text)))
        assert fast is strict

    @pytest.mark.parametrize("text", [
        '"\\ud800"',           # lone high surrogate
        '"\\udc00"',           # lone low surrogate
        '{"a": "\\uD800"}',    # uppercase hex, nested
        '"\\ud800x"',          # high surrogate not followed by \u
        '"\\ud83d\\ude00"',    # valid pair (deferred, then accepted)
    ])
    def test_hook_typer_never_answers_for_surrogate_escapes(self, text):
        """The C scanner tolerates lone surrogates; the typer must defer.

        Without the deferral the hooks lane would silently *accept*
        inputs the strict lane rejects, breaking the byte-identical
        contract (schema, error and quarantine output would differ
        between ``auto`` and ``strict``).
        """
        from repro.inference.kernel import PartitionAccumulator
        from repro.inference.typestream import (
            FastLaneMiss,
            HookTyper,
            c_scanner_available,
        )

        if not c_scanner_available():  # pragma: no cover
            pytest.skip("stdlib C scanner unavailable")
        typer = HookTyper(PartitionAccumulator())
        with pytest.raises(FastLaneMiss):
            typer.type_document(text)

    @given(st.text(max_size=25))
    @example('{"a":1,"a":2}')
    @example("[1,2,]")
    @example("NaN")
    @example('{"a": 1} {"b": 2}')
    @example("")
    @example('"\\ud800"')
    @example('"\\ud83d\\ude00"')
    def test_token_typer_acceptance_matches_strict(self, text):
        """Same verdict *and the same position* as the strict parser."""
        from repro.inference.typestream import type_from_tokens

        try:
            loads(text)
            strict = ("ok", None)
        except JsonError as exc:
            strict = (type(exc).__name__, (exc.line, exc.column))
        except RecursionError:
            return  # pathological nesting; both recursive descents bail

        try:
            type_from_tokens(text)
            fast = ("ok", None)
        except JsonError as exc:
            fast = (type(exc).__name__, (exc.line, exc.column))
        except RecursionError:
            return

        assert fast == strict
