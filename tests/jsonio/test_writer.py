"""Unit tests for the JSON serializer (repro.jsonio.writer)."""

import json as stdlib_json

import pytest
from hypothesis import given

from repro.core.errors import InvalidValueError
from repro.jsonio.parser import loads
from repro.jsonio.writer import dumps
from tests.conftest import json_values


class TestAtoms:
    @pytest.mark.parametrize("value,expected", [
        (None, "null"), (True, "true"), (False, "false"),
        (0, "0"), (-3, "-3"), (2.5, "2.5"), ("x", '"x"'), ("", '""'),
    ])
    def test_atoms(self, value, expected):
        assert dumps(value) == expected


class TestStrings:
    def test_escapes(self):
        assert dumps('a"b\\c') == '"a\\"b\\\\c"'
        assert dumps("a\nb\tc") == '"a\\nb\\tc"'

    def test_control_characters_escaped(self):
        assert dumps("\x01") == '"\\u0001"'

    def test_unicode_passthrough(self):
        assert dumps("héllo") == '"héllo"'


class TestContainers:
    def test_object(self):
        assert dumps({"a": 1, "b": [True, None]}) == '{"a":1,"b":[true,null]}'

    def test_empty_containers(self):
        assert dumps({}) == "{}"
        assert dumps([]) == "[]"

    def test_insertion_order_preserved(self):
        assert dumps({"b": 1, "a": 2}) == '{"b":1,"a":2}'


class TestErrors:
    @pytest.mark.parametrize("value", [
        float("nan"), float("inf"), {1: "x"}, {"a": object()}, (1, 2),
    ])
    def test_invalid_values_rejected(self, value):
        with pytest.raises(InvalidValueError):
            dumps(value)


class TestRoundTrip:
    @given(json_values())
    def test_loads_dumps_round_trip(self, value):
        assert loads(dumps(value)) == value

    @given(json_values())
    def test_agrees_with_stdlib_parser(self, value):
        """Our writer emits standard JSON the stdlib can read back."""
        assert stdlib_json.loads(dumps(value)) == value

    @given(json_values())
    def test_our_parser_reads_stdlib_output(self, value):
        assert loads(stdlib_json.dumps(value)) == value
