"""Unit tests for element-wise JSON streaming (repro.jsonio.stream)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.jsonio.errors import DuplicateKeyError, JsonSyntaxError
from repro.jsonio.stream import iter_json_array, iter_json_values
from repro.jsonio.writer import dumps
from tests.conftest import json_values


def write(tmp_path, text):
    path = tmp_path / "data.json"
    path.write_text(text, encoding="utf-8")
    return path


class TestIterJsonArray:
    def test_elements_in_order(self, tmp_path):
        path = write(tmp_path, '[1, "x", {"a": null}, [2]]')
        assert list(iter_json_array(path)) == [1, "x", {"a": None}, [2]]

    def test_empty_array(self, tmp_path):
        assert list(iter_json_array(write(tmp_path, "[]"))) == []

    def test_whitespace_and_newlines(self, tmp_path):
        path = write(tmp_path, "[\n  {\"a\": 1},\n  {\"a\": 2}\n]\n")
        assert list(iter_json_array(path)) == [{"a": 1}, {"a": 2}]

    def test_lazy_first_element_before_error(self, tmp_path):
        """Elements stream out before later malformed content is reached."""
        path = write(tmp_path, '[{"ok": 1}, {"broken": }]')
        stream = iter_json_array(path)
        assert next(stream) == {"ok": 1}
        with pytest.raises(JsonSyntaxError):
            next(stream)

    def test_non_array_top_level_rejected(self, tmp_path):
        with pytest.raises(JsonSyntaxError, match="not an array"):
            next(iter_json_array(write(tmp_path, '{"a": 1}')))

    def test_trailing_garbage_rejected(self, tmp_path):
        path = write(tmp_path, "[1] garbage")
        stream = iter_json_array(path)
        with pytest.raises(JsonSyntaxError):
            list(stream)

    def test_missing_comma_rejected(self, tmp_path):
        with pytest.raises(JsonSyntaxError):
            list(iter_json_array(write(tmp_path, "[1 2]")))

    def test_duplicate_keys_still_detected(self, tmp_path):
        path = write(tmp_path, '[{"a": 1, "a": 2}]')
        with pytest.raises(DuplicateKeyError):
            list(iter_json_array(path))

    @given(st.lists(json_values(8), max_size=6))
    def test_round_trip(self, values):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "arr.json"
            path.write_text(dumps(values), encoding="utf-8")
            assert list(iter_json_array(path)) == values


class TestIterJsonValues:
    def test_array_streams_elements(self, tmp_path):
        path = write(tmp_path, "[1, 2, 3]")
        assert list(iter_json_values(path)) == [1, 2, 3]

    def test_concatenated_documents(self, tmp_path):
        path = write(tmp_path, '{"a": 1}\n{"b": 2}\n42')
        assert list(iter_json_values(path)) == [{"a": 1}, {"b": 2}, 42]

    def test_single_document(self, tmp_path):
        assert list(iter_json_values(write(tmp_path, '{"a": 1}'))) \
            == [{"a": 1}]

    def test_empty_file(self, tmp_path):
        assert list(iter_json_values(write(tmp_path, " \n "))) == []

    def test_feeds_schema_inference(self, tmp_path):
        """The end-to-end reason this exists: infer from an array dump."""
        from repro.core.printer import print_type
        from repro.inference import infer_schema

        path = write(tmp_path, '[{"a": 1}, {"a": "x", "b": true}]')
        schema = infer_schema(iter_json_array(path))
        assert print_type(schema) == "{a: (Num + Str), b: Bool?}"
