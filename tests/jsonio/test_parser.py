"""Unit tests for the JSON parser (repro.jsonio.parser)."""

import pytest

from repro.jsonio.errors import DuplicateKeyError, JsonSyntaxError
from repro.jsonio.parser import loads


class TestAtoms:
    @pytest.mark.parametrize("text,expected", [
        ("null", None), ("true", True), ("false", False),
        ("42", 42), ("-2.5", -2.5), ('"x"', "x"),
    ])
    def test_top_level_atoms(self, text, expected):
        assert loads(text) == expected

    def test_leading_and_trailing_whitespace(self):
        assert loads("  1  ") == 1


class TestObjects:
    def test_empty(self):
        assert loads("{}") == {}

    def test_simple(self):
        assert loads('{"a": 1, "b": "x"}') == {"a": 1, "b": "x"}

    def test_nested(self):
        assert loads('{"a": {"b": {"c": null}}}') == {"a": {"b": {"c": None}}}

    def test_duplicate_key_rejected(self):
        """The paper's well-formedness condition on records (Section 4)."""
        with pytest.raises(DuplicateKeyError, match="'a'"):
            loads('{"a": 1, "a": 2}')

    def test_duplicate_key_in_nested_object(self):
        with pytest.raises(DuplicateKeyError):
            loads('{"x": {"a": 1, "a": 2}}')

    def test_same_key_in_sibling_objects_allowed(self):
        assert loads('{"x": {"a": 1}, "y": {"a": 2}}') == {
            "x": {"a": 1}, "y": {"a": 2},
        }

    def test_duplicate_key_position_reported(self):
        with pytest.raises(DuplicateKeyError) as exc_info:
            loads('{"a": 1,\n "a": 2}')
        assert exc_info.value.line == 2

    @pytest.mark.parametrize("text", [
        '{', '{"a"}', '{"a": }', '{"a": 1,}', '{1: 2}', '{"a" 1}',
        '{"a": 1 "b": 2}',
    ])
    def test_malformed_objects(self, text):
        with pytest.raises(JsonSyntaxError):
            loads(text)


class TestArrays:
    def test_empty(self):
        assert loads("[]") == []

    def test_simple(self):
        assert loads('[1, "x", null, true]') == [1, "x", None, True]

    def test_nested(self):
        assert loads("[[1], [[2]]]") == [[1], [[2]]]

    def test_mixed_content(self):
        assert loads('["abc", "cde", {"E": "fr", "F": 12}]') == [
            "abc", "cde", {"E": "fr", "F": 12},
        ]

    @pytest.mark.parametrize("text", ["[", "[1,", "[1 2]", "[1,]", "[,]"])
    def test_malformed_arrays(self, text):
        with pytest.raises(JsonSyntaxError):
            loads(text)


class TestTopLevel:
    def test_trailing_garbage_rejected(self):
        with pytest.raises(JsonSyntaxError):
            loads("1 2")
        with pytest.raises(JsonSyntaxError):
            loads("{} {}")

    def test_empty_input_rejected(self):
        with pytest.raises(JsonSyntaxError):
            loads("")

    def test_deeply_nested(self):
        depth = 200
        text = "[" * depth + "]" * depth
        value = loads(text)
        for _ in range(depth - 1):
            value = value[0]
        assert value == []
