"""Unit tests for the JSON tokenizer (repro.jsonio.tokenizer)."""

import pytest

from repro.jsonio.errors import JsonSyntaxError
from repro.jsonio.tokenizer import Token, TokenType, tokenize


def toks(text: str) -> list[Token]:
    return list(tokenize(text))


def values(text: str) -> list[object]:
    return [t.value for t in toks(text)[:-1]]  # drop EOF


class TestPunctuation:
    def test_all_punctuation(self):
        got = [t.type for t in toks('{}[]:,')]
        assert got == ["{", "}", "[", "]", ":", ",", "eof"]

    def test_eof_on_empty_input(self):
        assert [t.type for t in toks("")] == ["eof"]

    def test_whitespace_skipped(self):
        assert [t.type for t in toks(" \t\r\n { \n } ")] == ["{", "}", "eof"]


class TestKeywords:
    def test_true_false_null(self):
        assert values("true false null") == [True, False, None]

    def test_invalid_literal(self):
        with pytest.raises(JsonSyntaxError, match="tru"):
            toks("tru")

    def test_case_sensitive(self):
        with pytest.raises(JsonSyntaxError):
            toks("True")


class TestNumbers:
    @pytest.mark.parametrize("text,expected", [
        ("0", 0), ("7", 7), ("-3", -3), ("123456789", 123456789),
        ("0.5", 0.5), ("-0.25", -0.25), ("1e3", 1000.0), ("1E3", 1000.0),
        ("2.5e-2", 0.025), ("1e+2", 100.0), ("-0", 0),
    ])
    def test_valid_numbers(self, text, expected):
        got = values(text)
        assert got == [expected]

    def test_integers_stay_int(self):
        assert isinstance(values("42")[0], int)

    def test_decimals_become_float(self):
        assert isinstance(values("42.0")[0], float)
        assert isinstance(values("1e2")[0], float)

    @pytest.mark.parametrize("text", [
        "01", "00", "1.", ".5", "-", "1e", "1e+", "--1", "+1",
    ])
    def test_invalid_numbers(self, text):
        with pytest.raises(JsonSyntaxError):
            toks(text)


class TestStrings:
    def test_plain(self):
        assert values('"abc"') == ["abc"]

    def test_empty(self):
        assert values('""') == [""]

    @pytest.mark.parametrize("text,expected", [
        (r'"\""', '"'), (r'"\\"', "\\"), (r'"\/"', "/"),
        (r'"\b"', "\b"), (r'"\f"', "\f"), (r'"\n"', "\n"),
        (r'"\r"', "\r"), (r'"\t"', "\t"),
    ])
    def test_simple_escapes(self, text, expected):
        assert values(text) == [expected]

    def test_unicode_escape(self):
        assert values('"\\u00e9"') == ["é"]

    def test_surrogate_pair(self):
        assert values('"\\ud83d\\ude00"') == ["😀"]

    def test_unpaired_high_surrogate(self):
        with pytest.raises(JsonSyntaxError, match="surrogate"):
            toks(r'"\ud83d"')

    def test_unpaired_low_surrogate(self):
        with pytest.raises(JsonSyntaxError, match="surrogate"):
            toks(r'"\ude00"')

    def test_high_surrogate_followed_by_non_escape(self):
        with pytest.raises(JsonSyntaxError, match="surrogate"):
            toks(r'"\ud83dxy"')

    def test_invalid_escape(self):
        with pytest.raises(JsonSyntaxError, match="escape"):
            toks(r'"\q"')

    def test_truncated_unicode_escape(self):
        with pytest.raises(JsonSyntaxError):
            toks(r'"\u00g9"')

    def test_unterminated(self):
        with pytest.raises(JsonSyntaxError, match="unterminated"):
            toks('"abc')

    def test_raw_control_character_rejected(self):
        with pytest.raises(JsonSyntaxError, match="control"):
            toks('"a\nb"')

    def test_non_ascii_passthrough(self):
        assert values('"héllo 世界"') == ["héllo 世界"]


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = toks('{\n  "a": 1\n}')
        string_token = next(t for t in tokens if t.type == TokenType.STRING)
        assert (string_token.line, string_token.column) == (2, 3)

    def test_error_position(self):
        with pytest.raises(JsonSyntaxError) as exc_info:
            toks('{\n  @')
        assert exc_info.value.line == 2
        assert exc_info.value.column == 3

    def test_unexpected_character(self):
        with pytest.raises(JsonSyntaxError, match="unexpected"):
            toks("#")
