"""Unit tests for NDJSON streaming I/O (repro.jsonio.ndjson)."""

import pytest

from repro.jsonio.errors import JsonError, JsonSyntaxError
from repro.jsonio.ndjson import (
    BadRecord,
    count_records,
    file_size_bytes,
    iter_lines,
    iter_numbered_lines,
    read_ndjson,
    read_ndjson_quarantined,
    write_bad_records,
    write_ndjson,
)

RECORDS = [{"a": 1}, {"a": "x", "b": [True, None]}, {}]


class TestWriteRead:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "data.ndjson"
        count = write_ndjson(path, RECORDS)
        assert count == 3
        assert list(read_ndjson(path)) == RECORDS

    def test_one_record_per_line(self, tmp_path):
        path = tmp_path / "data.ndjson"
        write_ndjson(path, RECORDS)
        assert len(path.read_text().strip().split("\n")) == 3

    def test_empty_collection(self, tmp_path):
        path = tmp_path / "empty.ndjson"
        assert write_ndjson(path, []) == 0
        assert list(read_ndjson(path)) == []

    def test_reader_is_lazy(self, tmp_path):
        path = tmp_path / "data.ndjson"
        write_ndjson(path, RECORDS)
        reader = read_ndjson(path)
        assert next(reader) == RECORDS[0]


class TestBlankLinesAndErrors:
    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.ndjson"
        path.write_text('{"a":1}\n\n   \n{"a":2}\n')
        assert list(read_ndjson(path)) == [{"a": 1}, {"a": 2}]
        assert count_records(path) == 2

    def test_invalid_line_raises_with_file_line_and_path(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        path.write_text('{"a":1}\nnot json\n')
        with pytest.raises(JsonError, match=r"bad\.ndjson, line 2"):
            list(read_ndjson(path))

    def test_syntax_error_on_line_3_reports_absolute_line(self, tmp_path):
        """Regression: the error must carry the absolute file line number
        (not the line within the record) and the source path."""
        path = tmp_path / "multi.ndjson"
        path.write_text('{"a":1}\n{"b":2}\n{"c":\n{"d":4}\n')
        with pytest.raises(JsonSyntaxError) as excinfo:
            list(read_ndjson(path))
        assert excinfo.value.line == 3
        assert str(path) in str(excinfo.value)
        assert "line 3" in str(excinfo.value)

    def test_error_line_counts_blank_lines(self, tmp_path):
        path = tmp_path / "gaps.ndjson"
        path.write_text('{"a":1}\n\n\n\nnot json\n')
        with pytest.raises(JsonSyntaxError) as excinfo:
            list(read_ndjson(path))
        assert excinfo.value.line == 5

    def test_skip_invalid_drops_bad_lines(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        path.write_text('{"a":1}\nnot json\n{"a":2}\n')
        assert list(read_ndjson(path, skip_invalid=True)) == [
            {"a": 1}, {"a": 2},
        ]

    def test_duplicate_key_also_caught(self, tmp_path):
        path = tmp_path / "dup.ndjson"
        path.write_text('{"a":1,"a":2}\n')
        with pytest.raises(JsonError):
            list(read_ndjson(path))
        assert list(read_ndjson(path, skip_invalid=True)) == []


class TestHelpers:
    def test_iter_lines_strips(self, tmp_path):
        path = tmp_path / "x.txt"
        path.write_text("  a  \n\nb\n")
        assert list(iter_lines(path)) == ["a", "b"]

    def test_file_size(self, tmp_path):
        path = tmp_path / "x.txt"
        path.write_bytes(b"12345")
        assert file_size_bytes(path) == 5


class TestNumberedLines:
    def test_absolute_numbers_skip_blanks(self, tmp_path):
        path = tmp_path / "x.ndjson"
        path.write_text('{"a":1}\n\n  \n{"a":2}\n')
        assert list(iter_numbered_lines(path)) == [
            (1, '{"a":1}'), (4, '{"a":2}'),
        ]


class TestQuarantine:
    def test_bad_lines_quarantined_with_positions(self, tmp_path):
        path = tmp_path / "dirty.ndjson"
        path.write_text('{"a":1}\nnot json\n{"a":2}\n{"k":1,"k":2}\n')
        bad: list[BadRecord] = []
        good = list(read_ndjson_quarantined(path, bad))
        assert good == [{"a": 1}, {"a": 2}]
        assert [b.line_number for b in bad] == [2, 4]
        assert bad[0].text == "not json"
        assert "duplicate object key" in bad[1].error
        assert all(b.path == str(path) for b in bad)

    def test_sidecar_round_trip(self, tmp_path):
        path = tmp_path / "dirty.ndjson"
        path.write_text('{"a":1}\n[1,\n')
        bad: list[BadRecord] = []
        list(read_ndjson_quarantined(path, bad))
        sidecar = tmp_path / "bad.ndjson"
        assert write_bad_records(sidecar, bad) == 1
        rows = list(read_ndjson(sidecar))
        assert rows[0]["line"] == 2
        assert rows[0]["text"] == "[1,"
        assert "error" in rows[0] and rows[0]["path"] == str(path)
