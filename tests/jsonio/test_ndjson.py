"""Unit tests for NDJSON streaming I/O (repro.jsonio.ndjson)."""

import pytest

from repro.jsonio.errors import JsonError
from repro.jsonio.ndjson import (
    count_records,
    file_size_bytes,
    iter_lines,
    read_ndjson,
    write_ndjson,
)

RECORDS = [{"a": 1}, {"a": "x", "b": [True, None]}, {}]


class TestWriteRead:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "data.ndjson"
        count = write_ndjson(path, RECORDS)
        assert count == 3
        assert list(read_ndjson(path)) == RECORDS

    def test_one_record_per_line(self, tmp_path):
        path = tmp_path / "data.ndjson"
        write_ndjson(path, RECORDS)
        assert len(path.read_text().strip().split("\n")) == 3

    def test_empty_collection(self, tmp_path):
        path = tmp_path / "empty.ndjson"
        assert write_ndjson(path, []) == 0
        assert list(read_ndjson(path)) == []

    def test_reader_is_lazy(self, tmp_path):
        path = tmp_path / "data.ndjson"
        write_ndjson(path, RECORDS)
        reader = read_ndjson(path)
        assert next(reader) == RECORDS[0]


class TestBlankLinesAndErrors:
    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.ndjson"
        path.write_text('{"a":1}\n\n   \n{"a":2}\n')
        assert list(read_ndjson(path)) == [{"a": 1}, {"a": 2}]
        assert count_records(path) == 2

    def test_invalid_line_raises_with_record_number(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        path.write_text('{"a":1}\nnot json\n')
        with pytest.raises(JsonError, match="record 2"):
            list(read_ndjson(path))

    def test_skip_invalid_drops_bad_lines(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        path.write_text('{"a":1}\nnot json\n{"a":2}\n')
        assert list(read_ndjson(path, skip_invalid=True)) == [
            {"a": 1}, {"a": 2},
        ]

    def test_duplicate_key_also_caught(self, tmp_path):
        path = tmp_path / "dup.ndjson"
        path.write_text('{"a":1,"a":2}\n')
        with pytest.raises(JsonError):
            list(read_ndjson(path))
        assert list(read_ndjson(path, skip_invalid=True)) == []


class TestHelpers:
    def test_iter_lines_strips(self, tmp_path):
        path = tmp_path / "x.txt"
        path.write_text("  a  \n\nb\n")
        assert list(iter_lines(path)) == ["a", "b"]

    def test_file_size(self, tmp_path):
        path = tmp_path / "x.txt"
        path.write_bytes(b"12345")
        assert file_size_bytes(path) == 5
