"""Block scanner vs the split line reader: same lines, offset by offset.

:class:`repro.jsonio.blockscan.SplitBlockScanner` is the bytes lane's
ingestion primitive; its contract is that for *any* byte-range split it
yields exactly the lines :meth:`SplitLineReader.iter_raw` would — same
split-local numbering (blanks counted), same first-byte ownership at the
split edges, same ``line_count`` / ``bytes_read`` accounting — only
grouped into batches.  These tests sweep every (offset, length) pair of
adversarial corpora so every boundary case (CRLF, lone CR, blank lines,
multibyte straddles, unterminated tails) crosses a split edge at least
once.
"""

from __future__ import annotations

import pytest

from repro.jsonio.blockscan import SplitBlockScanner
from repro.jsonio.splits import FileSplit, SplitLineReader, plan_splits

#: Newline-free corpora stitched together with every terminator below.
PIECES = [
    b'{"a": 1}',
    b"",
    b'{"caf\xc3\xa9": "\xf0\x9f\x98\x80"}',  # multibyte UTF-8
    b"   ",
    b'{"b": [1, 2]}',
    b"",
    b'{"tail": true}',
]


def _corpus(terminator: bytes, final_terminator: bool) -> bytes:
    data = terminator.join(PIECES)
    return data + terminator if final_terminator else data


def _scan(split: FileSplit, batch_bytes: int):
    scanner = SplitBlockScanner(split, batch_bytes=batch_bytes)
    lines = []
    for first, batch in scanner:
        for i, piece in enumerate(batch):
            lines.append((first + i, bytes(piece)))
    return scanner, lines


@pytest.mark.parametrize("terminator", [b"\n", b"\r\n", b"\r"])
@pytest.mark.parametrize("final_terminator", [True, False])
@pytest.mark.parametrize("batch_bytes", [1, 7, 1 << 20])
def test_matches_reader_at_every_offset(
    tmp_path, terminator, final_terminator, batch_bytes
):
    path = tmp_path / "data.ndjson"
    data = _corpus(terminator, final_terminator)
    path.write_bytes(data)
    size = len(data)
    for offset in range(size):
        for length in (1, 3, size // 2, size - offset):
            if length <= 0 or offset + length > size:
                continue
            split = FileSplit(str(path), offset, length)
            reader = SplitLineReader(split)
            expected = list(reader.iter_raw())
            scanner, got = _scan(split, batch_bytes)
            assert got == expected, (offset, length)
            assert scanner.line_count == reader.line_count
            assert scanner.bytes_read == reader.bytes_read


@pytest.mark.parametrize("terminator", [b"\n", b"\r\n", b"\r"])
def test_planned_splits_cover_file_exactly_once(tmp_path, terminator):
    path = tmp_path / "data.ndjson"
    data = _corpus(terminator, True) * 20
    path.write_bytes(data)
    whole = list(SplitLineReader(FileSplit(str(path), 0, len(data))).iter_raw())
    for num in (1, 2, 3, 7):
        splits = plan_splits(str(path), num, min_split_bytes=1)
        got = []
        total_read = 0
        for split in splits:
            scanner, lines = _scan(split, batch_bytes=16)
            got.extend(piece for _, piece in lines)
            total_read += scanner.bytes_read
        assert got == [piece for _, piece in whole]
        assert total_read >= len(data)


def test_fast_path_yields_zero_copy_memoryviews(tmp_path):
    path = tmp_path / "lf.ndjson"
    path.write_bytes(b'{"a": 1}\n\n{"b": 2}\n')
    split = FileSplit(str(path), 0, 19)
    (first, batch), = list(SplitBlockScanner(split))
    assert first == 1
    assert all(isinstance(piece, memoryview) for piece in batch)
    assert [bytes(piece) for piece in batch] == [b'{"a": 1}', b"", b'{"b": 2}']
    # Readonly mmap slices hash like their bytes — the dedup cache's probe.
    assert hash(batch[0]) == hash(b'{"a": 1}')


def test_carriage_return_routes_through_fallback(tmp_path):
    path = tmp_path / "crlf.ndjson"
    path.write_bytes(b'{"a": 1}\r\n{"b": 2}\r\n')
    split = FileSplit(str(path), 0, 20)
    batches = list(SplitBlockScanner(split))
    pieces = [piece for _, batch in batches for piece in batch]
    assert all(isinstance(piece, bytes) for piece in pieces)
    assert pieces == [b'{"a": 1}', b'{"b": 2}']


def test_batch_numbering_is_contiguous(tmp_path):
    path = tmp_path / "many.ndjson"
    path.write_bytes(b"".join(b'{"i": %d}\n' % i for i in range(50)))
    split = FileSplit(str(path), 0, path.stat().st_size)
    scanner = SplitBlockScanner(split, batch_bytes=32)
    expected_first = 1
    for first, batch in scanner:
        assert first == expected_first
        expected_first += len(batch)
    assert scanner.line_count == 50


def test_rejects_nonpositive_batch_bytes(tmp_path):
    path = tmp_path / "x.ndjson"
    path.write_bytes(b"{}\n")
    with pytest.raises(ValueError, match="batch_bytes"):
        SplitBlockScanner(FileSplit(str(path), 0, 3), batch_bytes=0)


def test_empty_split_yields_nothing(tmp_path):
    path = tmp_path / "x.ndjson"
    path.write_bytes(b'{"a": 1}\n{"b": 2}\n')
    # A range strictly inside the first line: owned by the previous
    # split, so nothing to yield and only the skipped prefix consumed.
    split = FileSplit(str(path), 2, 3)
    scanner = SplitBlockScanner(split)
    assert list(scanner) == []
    reader = SplitLineReader(split)
    assert list(reader.iter_raw()) == []
    assert scanner.bytes_read == reader.bytes_read


class TestContentSpan:
    """``split_content_span`` must be the exact dependency closure.

    The cross-run summary cache keys a split by the hash of this span, so
    two properties carry all the correctness weight: the span covers
    every byte the scanners consume (otherwise a stale summary could
    replay after a relevant byte changed), and nothing more than the
    boundary probe (otherwise irrelevant churn would evict good
    entries).
    """

    @pytest.mark.parametrize("terminator", [b"\n", b"\r\n", b"\r"])
    @pytest.mark.parametrize("final_terminator", [True, False])
    def test_span_matches_consumption_at_every_offset(
        self, tmp_path, terminator, final_terminator
    ):
        from repro.jsonio.blockscan import split_content_span

        path = tmp_path / "data.ndjson"
        data = _corpus(terminator, final_terminator)
        path.write_bytes(data)
        size = len(data)
        for offset in range(size):
            for length in (1, 3, size // 2, size - offset):
                if length <= 0 or offset + length > size:
                    continue
                split = FileSplit(str(path), offset, length)
                reader = SplitLineReader(split)
                list(reader.iter_raw())
                start, stop = split_content_span(data, split)
                # Exactly the consumed range plus the boundary probe.
                assert start == max(0, offset - 1), (offset, length)
                assert stop == offset + reader.bytes_read, (offset, length)

    @pytest.mark.parametrize("terminator", [b"\n", b"\r\n", b"\r"])
    def test_digest_splits_keys_match_span_hashes(self, tmp_path, terminator):
        import hashlib

        from repro.jsonio.blockscan import digest_splits, split_content_span

        path = tmp_path / "data.ndjson"
        data = _corpus(terminator, True) * 10
        path.write_bytes(data)
        splits = plan_splits(str(path), 4, min_split_bytes=1)
        digests = digest_splits(str(path), splits)
        assert len(digests) == len(splits)
        for split, digest in zip(splits, digests):
            start, stop = split_content_span(data, split)
            assert digest == hashlib.sha256(data[start:stop]).hexdigest()

    def test_digest_changes_only_for_spanned_bytes(self, tmp_path):
        from repro.jsonio.blockscan import digest_splits

        path = tmp_path / "data.ndjson"
        lines = b"".join(b'{"i": %04d}\n' % i for i in range(64))
        path.write_bytes(lines)
        splits = plan_splits(str(path), 4, min_split_bytes=1, stable=True)
        assert len(splits) == 4
        before = digest_splits(str(path), splits)
        # Flip one byte strictly inside split 2 (away from both edges).
        mutated = bytearray(lines)
        target = splits[2].offset + splits[2].length // 2
        mutated[target] = ord("9") if mutated[target] != ord("9") else ord("8")
        path.write_bytes(bytes(mutated))
        after = digest_splits(str(path), splits)
        changed = [i for i in range(4) if before[i] != after[i]]
        assert changed == [2]

    def test_stable_planning_keeps_prefix_boundaries_on_append(
        self, tmp_path
    ):
        path = tmp_path / "data.ndjson"
        lines = b"".join(b'{"i": %04d}\n' % i for i in range(600))
        path.write_bytes(lines)
        before = plan_splits(str(path), 4, min_split_bytes=1024, stable=True)
        path.write_bytes(lines + b'{"i": 9999}\n' * 6)
        after = plan_splits(str(path), 4, min_split_bytes=1024, stable=True)
        # Every fully-covered prefix split keeps its exact boundaries
        # (only the tail split grows), so its cache digest survives.
        for a, b in zip(before[:-1], after):
            assert (a.offset, a.length) == (b.offset, b.length)
