"""The bounded object-key cache that replaced ``sys.intern``.

``sys.intern`` is process-global and, on CPython >= 3.12, immortalizes
its strings — so NDJSON whose objects use high-cardinality keys (UUID-
or id-keyed maps) would grow a long-lived worker process without bound.
:class:`KeyCache` must keep the sharing benefit for repeated keys while
staying bounded, and a missed share must never change results.
"""

import pytest

from repro.jsonio.keycache import DEFAULT_CAP, KeyCache, shared_key
from repro.jsonio.parser import loads
from repro.jsonio.tokenizer import TokenType, tokenize


def _fresh(s: str) -> str:
    """An equal-but-distinct string object (defeats literal interning)."""
    return "".join(s)


class TestKeyCache:
    def test_shares_repeated_keys(self):
        cache = KeyCache()
        first = _fresh("user_id")
        assert cache.share(first) is first
        assert cache.share(_fresh("user_id")) is first

    def test_bounded_with_clear_on_full(self):
        cache = KeyCache(cap=4)
        for i in range(100):
            cache.share(f"key-{i}")
        assert len(cache) <= 4

    def test_survives_clearing_and_recovers_sharing(self):
        cache = KeyCache(cap=2)
        hot = _fresh("hot")
        cache.share(hot)
        # Overflow evicts everything, including the hot key ...
        cache.share("a")
        cache.share("b")
        # ... but its next occurrence re-seeds the cache and shares again.
        second = _fresh("hot")
        assert cache.share(second) is second
        assert cache.share(_fresh("hot")) is second

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError, match="cap must be positive"):
            KeyCache(cap=0)


class TestSharingInTokenizerAndParser:
    def test_tokenizer_shares_object_keys(self):
        a = [t for t in tokenize('{"name": 1}') if t.type == TokenType.STRING]
        b = [t for t in tokenize('{"name": 2}') if t.type == TokenType.STRING]
        assert a[0].value is b[0].value

    def test_parser_shares_keys_with_whitespace_before_colon(self):
        # The tokenizer's colon lookahead misses these; the parser's own
        # share covers them.
        one = loads('{"key" : 1}')
        two = loads('{"key" : 2}')
        assert next(iter(one)) is next(iter(two))

    def test_string_values_are_not_cached(self):
        # Only keys recur structurally; values stay untouched.
        tokens = [t for t in tokenize('["payload"]')
                  if t.type == TokenType.STRING]
        assert tokens[0].value == "payload"

    def test_module_shared_key_is_key_cache_share(self):
        assert shared_key.__self__.__class__ is KeyCache

    def test_high_cardinality_keys_do_not_pin_memory(self):
        # A flood of distinct keys (the sys.intern failure mode) leaves
        # the process-wide cache no larger than its cap.
        for i in range(DEFAULT_CAP + 100):
            loads('{"k%d": 1}' % i)
        assert len(shared_key.__self__) <= DEFAULT_CAP
