"""Stress tests on the adversarial mixed-content dataset (repro.datasets.mixed).

These are the torture cases of the paper's Section 2 motivation: heavily
mixed arrays, kind conflicts at the same field, empty arrays.  Everything
the core guarantees promise must survive them.
"""

from repro.core.normal_form import is_normal
from repro.core.printer import print_type
from repro.core.semantics import matches
from repro.core.subtyping import is_subtype
from repro.core.type_parser import parse_type
from repro.core.types import StarArrayType, UnionType
from repro.core.values import validate_value
from repro.datasets import DATASET_NAMES
from repro.datasets.mixed import generate_list
from repro.inference import (
    infer_schema,
    infer_schema_labelled,
    infer_type,
    run_inference,
    simplify,
)

N = 400
VALUES = generate_list(N)


class TestGeneratorBasics:
    def test_not_in_the_paper_registry(self):
        assert "mixed" not in DATASET_NAMES

    def test_deterministic(self):
        assert generate_list(30) == generate_list(30)

    def test_values_valid(self):
        for value in VALUES:
            validate_value(value)

    def test_actually_mixes_content(self):
        def mixed(arr):
            kinds = {type(x).__name__ for x in arr}
            return len(kinds - {"list"}) > 1

        assert any(mixed(v["items"]) for v in VALUES if v["items"])

    def test_kind_conflicts_present(self):
        payload_types = {type(v["payload"]).__name__ for v in VALUES}
        assert payload_types == {"str", "list"}
        meta_types = {type(v["meta"]).__name__ for v in VALUES}
        assert meta_types == {"dict", "list"}


class TestCoreGuaranteesUnderStress:
    def test_schema_admits_every_record(self):
        schema = infer_schema(VALUES)
        assert all(matches(v, schema) for v in VALUES)

    def test_schema_is_normal(self):
        assert is_normal(infer_schema(VALUES))

    def test_schema_round_trips_through_syntax(self):
        schema = infer_schema(VALUES)
        assert parse_type(print_type(schema)) == schema

    def test_conflicting_fields_become_unions(self):
        schema = infer_schema(VALUES)
        payload = schema.field("payload").type
        assert isinstance(payload, UnionType)
        kinds = {type(m).__name__ for m in payload.members}
        assert "StarArrayType" in kinds or "ArrayType" in kinds

    def test_items_collapse_to_star(self):
        schema = infer_schema(VALUES)
        items = schema.field("items").type
        assert isinstance(items, StarArrayType)

    def test_dedupe_matches_sequential(self):
        deduped = run_inference(VALUES, dedupe=True).schema
        raw = run_inference(VALUES, dedupe=False).schema
        assert deduped == raw

    def test_partition_invariance(self):
        from repro.inference import infer_partitioned

        thirds = [VALUES[i::3] for i in range(3)]
        assert infer_partitioned(thirds).schema == infer_schema(VALUES)

    def test_simplify_widens(self):
        schema = infer_schema(VALUES)
        assert is_subtype(schema, simplify(schema))

    def test_labelled_fusion_refines(self):
        assert is_subtype(infer_schema_labelled(VALUES), infer_schema(VALUES))

    def test_order_insensitive_arrays_share_types(self):
        """Two arrays with the same content in different orders fuse to
        the same star type — the succinctness-over-position trade."""
        from repro.inference.fusion import collapse

        forward = infer_type(["a", 1, {"E": True}])
        backward = infer_type([{"E": True}, 1, "a"])
        assert collapse(forward) == collapse(backward)
