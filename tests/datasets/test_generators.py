"""Tests for the synthetic dataset generators (repro.datasets).

Each generator must (a) produce valid, deterministic JSON records and
(b) reproduce the structural signature the paper attributes to its dataset
(Section 6.1) — those signatures are what Tables 2-5 actually measure.
"""

import pytest

from repro.core.values import record_depth, validate_value
from repro.datasets import (
    DATASET_NAMES,
    SCALES,
    dataset_generator,
    generate,
    generate_list,
    write_dataset,
)
from repro.datasets.twitter import DELETE_FRACTION
from repro.inference import infer_type, run_inference
from repro.jsonio.ndjson import count_records, read_ndjson

N = 300


@pytest.fixture(scope="module")
def samples():
    """300 records of each dataset, generated once per test run."""
    return {name: generate_list(name, N) for name in DATASET_NAMES}


class TestRegistry:
    def test_all_four_paper_datasets_present(self):
        assert set(DATASET_NAMES) == {"github", "twitter", "wikidata", "nytimes"}

    def test_paper_scales(self):
        assert SCALES == {
            "1K": 1_000, "10K": 10_000, "100K": 100_000, "1M": 1_000_000,
        }

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError, match="github"):
            dataset_generator("nope")


class TestDeterminism:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_same_seed_same_records(self, name):
        assert generate_list(name, 20) == generate_list(name, 20)

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_different_seed_different_records(self, name):
        assert generate_list(name, 20, seed=0) != generate_list(name, 20, seed=1)

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_prefix_stability(self, name):
        """A 1K sub-dataset is a prefix of the 10K one (the paper's
        sub-sampling protocol made reproducible)."""
        assert generate_list(name, 10) == generate_list(name, 30)[:10]


class TestValidity:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_records_are_valid_json_values(self, name, samples):
        for record in samples[name]:
            validate_value(record)

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_records_are_objects(self, name, samples):
        assert all(isinstance(r, dict) for r in samples[name])


class TestGitHubSignature:
    """Homogeneous nested records, no arrays, depth <= 4 (Section 6.1)."""

    def test_no_arrays_at_all(self, samples):
        def has_array(value):
            if isinstance(value, list):
                return True
            if isinstance(value, dict):
                return any(has_array(v) for v in value.values())
            return False

        assert not any(has_array(r) for r in samples["github"])

    def test_depth_at_most_four(self, samples):
        assert max(record_depth(r) for r in samples["github"]) == 4

    def test_top_level_schema_constant(self, samples):
        keys = {tuple(sorted(r)) for r in samples["github"]}
        assert len(keys) == 1

    def test_type_sizes_homogeneous(self, samples):
        sizes = {infer_type(r).size for r in samples["github"]}
        assert max(sizes) - min(sizes) < 60  # narrow band, like the paper's 147

    def test_fewest_distinct_types(self, samples):
        distinct = {
            name: run_inference(vals).distinct_type_count
            for name, vals in samples.items()
        }
        assert distinct["github"] == min(distinct.values())


class TestTwitterSignature:
    """Tweets plus tiny deletes, arrays of records, depth <= 3 (Section 6.1)."""

    def test_contains_deletes_and_tweets(self, samples):
        deletes = [r for r in samples["twitter"] if "delete" in r]
        tweets = [r for r in samples["twitter"] if "delete" not in r]
        assert deletes and tweets
        # "A tiny fraction of these records corresponds to ... delete".
        assert len(deletes) / len(samples["twitter"]) < 2.5 * DELETE_FRACTION

    def test_deletes_are_smallest_types(self, samples):
        sizes = [infer_type(r).size for r in samples["twitter"]]
        delete = next(r for r in samples["twitter"] if "delete" in r)
        assert infer_type(delete).size == min(sizes) < 15

    def test_five_top_level_shapes(self, samples):
        shapes = {tuple(sorted(r)) for r in samples["twitter"]}
        assert len(shapes) == 5

    def test_arrays_of_records_present(self, samples):
        tweet = next(r for r in samples["twitter"]
                     if "delete" not in r and r["entities"]["hashtags"])
        assert isinstance(tweet["entities"]["hashtags"][0], dict)

    def test_record_depth_at_most_three(self, samples):
        assert max(record_depth(r) for r in samples["twitter"]) == 3


class TestWikidataSignature:
    """Ids-as-keys pathology, depth 6 (Section 6.1)."""

    def test_property_ids_used_as_keys(self, samples):
        claims = samples["wikidata"][0]["claims"]
        assert all(k.startswith("P") for k in claims)

    def test_language_codes_used_as_keys(self, samples):
        labels = samples["wikidata"][0]["labels"]
        assert all(labels[k]["language"] == k for k in labels)

    def test_nearly_every_record_has_a_distinct_type(self, samples):
        run = run_inference(samples["wikidata"])
        assert run.distinct_type_count > 0.95 * N

    def test_most_distinct_types_of_all_datasets(self, samples):
        distinct = {
            name: run_inference(vals).distinct_type_count
            for name, vals in samples.items()
        }
        assert distinct["wikidata"] == max(distinct.values())

    def test_record_depth_six(self, samples):
        assert max(record_depth(r) for r in samples["wikidata"]) == 6

    def test_worst_compaction_ratio(self, samples):
        """Fusion compacts Wikidata worst (Table 4 vs Tables 2/3/5)."""
        def ratio(vals):
            run = run_inference(vals)
            sizes = [infer_type(v).size for v in vals]
            return run.schema.size / (sum(sizes) / len(sizes))

        ratios = {name: ratio(vals) for name, vals in samples.items()}
        assert ratios["wikidata"] == max(ratios.values())
        assert ratios["wikidata"] > 10

    def test_fused_size_still_below_sum_of_inputs(self, samples):
        """"...the size of the fused types is smaller than the sum of the
        input types" — the paper's consolation for Wikidata."""
        run = run_inference(samples["wikidata"])
        total = sum(infer_type(v).size for v in samples["wikidata"])
        assert run.schema.size < total


class TestNYTimesSignature:
    """Fixed first level, deep lower-level variation (Section 6.1)."""

    def test_top_level_keys_fixed(self, samples):
        keys = {tuple(sorted(r)) for r in samples["nytimes"]}
        assert len(keys) == 1

    def test_headline_variants(self, samples):
        """The paper: main/content_kicker/kicker vs main/print_headline."""
        headline_shapes = {
            tuple(sorted(r["headline"])) for r in samples["nytimes"]
        }
        assert any("content_kicker" in shape for shape in headline_shapes)
        assert any("print_headline" in shape for shape in headline_shapes)

    def test_num_str_conflict_on_word_count(self, samples):
        kinds = {type(r["word_count"]) for r in samples["nytimes"]}
        assert kinds == {int, str}

    def test_record_depth_seven(self, samples):
        assert max(record_depth(r) for r in samples["nytimes"]) == 7

    def test_best_compaction_ratio(self, samples):
        """Table 5: NYTimes results are "even better than the rest"."""
        def ratio(vals):
            run = run_inference(vals)
            sizes = [infer_type(v).size for v in vals]
            return run.schema.size / (sum(sizes) / len(sizes))

        ratios = {name: ratio(vals) for name, vals in samples.items()}
        assert ratios["nytimes"] == min(ratios.values())


class TestPaperRatioBounds:
    def test_github_ratio_within_paper_bound(self, samples):
        """Table 2: fused/avg "not bigger than 1.4" for GitHub."""
        run = run_inference(samples["github"])
        sizes = [infer_type(v).size for v in samples["github"]]
        assert run.schema.size / (sum(sizes) / len(sizes)) <= 1.4

    def test_twitter_ratio_within_paper_bound(self, samples):
        """Table 3: fused/avg "bounded by 4" for Twitter."""
        run = run_inference(samples["twitter"])
        sizes = [infer_type(v).size for v in samples["twitter"]]
        assert run.schema.size / (sum(sizes) / len(sizes)) <= 4


class TestWriteDataset:
    def test_write_and_read_back(self, tmp_path):
        path = tmp_path / "github.ndjson"
        count = write_dataset("github", 25, path)
        assert count == 25
        assert count_records(path) == 25
        assert list(read_ndjson(path)) == generate_list("github", 25)

    def test_generate_is_a_stream(self):
        stream = generate("twitter", 5)
        first = next(stream)
        assert isinstance(first, dict)
