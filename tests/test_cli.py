"""End-to-end tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main
from repro.datasets import write_dataset
from repro.jsonio.parser import loads
from repro.jsonio.ndjson import write_ndjson


@pytest.fixture()
def sample_file(tmp_path):
    path = tmp_path / "sample.ndjson"
    write_ndjson(path, [
        {"a": 1, "b": {"c": "x"}},
        {"a": "y", "b": {"c": "z", "d": True}},
    ])
    return str(path)


class TestInfer:
    def test_prints_schema(self, sample_file, capsys):
        assert main(["infer", sample_file]) == 0
        out = capsys.readouterr().out.strip()
        assert out == "{a: (Num + Str), b: {c: Str, d: Bool?}}"

    def test_pretty(self, sample_file, capsys):
        assert main(["infer", sample_file, "--pretty"]) == 0
        out = capsys.readouterr().out
        assert "\n" in out.strip()

    def test_json_schema_output(self, sample_file, capsys):
        assert main(["infer", sample_file, "--json-schema"]) == 0
        doc = loads(capsys.readouterr().out.strip())
        assert doc["type"] == "object"
        assert sorted(doc["required"]) == ["a", "b"]

    def test_skip_invalid(self, tmp_path, capsys):
        path = tmp_path / "bad.ndjson"
        path.write_text('{"a": 1}\nnot json\n')
        assert main(["infer", str(path), "--skip-invalid"]) == 0
        assert capsys.readouterr().out.strip() == "{a: Num}"

    def test_parallel_matches_sequential(self, sample_file, capsys):
        assert main(["infer", sample_file]) == 0
        sequential = capsys.readouterr().out
        assert main(["infer", sample_file, "--parallel", "3"]) == 0
        assert capsys.readouterr().out == sequential

    def test_parse_lanes_agree(self, sample_file, capsys):
        outputs = set()
        for lane in ("auto", "fast", "bytes", "strict"):
            assert main(["infer", sample_file, "--parse-lane", lane]) == 0
            outputs.add(capsys.readouterr().out)
        assert len(outputs) == 1

    def test_bytes_lane_timings_report_dedup(self, tmp_path, capsys):
        path = tmp_path / "dups.ndjson"
        path.write_text('{"a": 1}\n' * 200)
        assert main(["infer", str(path), "--parse-lane", "bytes",
                     "--parallel", "1", "--timings"]) == 0
        err = capsys.readouterr().err
        assert "line dedup:" in err
        assert "hit rate" in err
        assert "never decoded" in err

    def test_unknown_parse_lane_rejected(self, sample_file):
        with pytest.raises(SystemExit):
            main(["infer", sample_file, "--parse-lane", "warp"])

    def test_timings_report_on_stderr(self, sample_file, capsys):
        assert main(["infer", sample_file, "--timings"]) == 0
        err = capsys.readouterr().err
        assert "lane]" in err
        assert "fuse" in err
        assert "records/s" in err
        assert "reduce" in err

    def test_timings_report_strict_lane(self, sample_file, capsys):
        assert main(["infer", sample_file, "--timings",
                     "--parse-lane", "strict"]) == 0
        err = capsys.readouterr().err
        assert "[strict lane]" in err
        assert "· type" in err


@pytest.fixture()
def dirty_file(tmp_path):
    path = tmp_path / "dirty.ndjson"
    path.write_text('{"a": 1}\nnot json\n{"a": 2}\n{"a": 3,\n{"a": 4}\n')
    return str(path)


class TestInferPermissive:
    def test_strict_mode_fails_on_first_bad_line(self, dirty_file):
        from repro.jsonio.errors import JsonSyntaxError

        with pytest.raises(JsonSyntaxError, match="line 2"):
            main(["infer", dirty_file])

    def test_permissive_reports_skip_summary(self, dirty_file, capsys):
        assert main(["infer", dirty_file, "--permissive"]) == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == "{a: Num}"
        assert "2 records skipped (40.0%)" in captured.err

    def test_bad_records_sidecar(self, dirty_file, tmp_path, capsys):
        sidecar = tmp_path / "quarantine.ndjson"
        assert main(["infer", dirty_file, "--permissive",
                     "--bad-records", str(sidecar)]) == 0
        capsys.readouterr()
        rows = [loads(line) for line in sidecar.read_text().splitlines()]
        assert [r["line"] for r in rows] == [2, 4]
        assert rows[0]["text"] == "not json"

    def test_max_error_rate_aborts_with_exit_1(self, dirty_file, capsys):
        assert main(["infer", dirty_file, "--permissive",
                     "--max-error-rate", "0.1"]) == 1
        captured = capsys.readouterr()
        assert "above the max_error_rate threshold" in captured.err

    def test_max_error_rate_tolerant_threshold_passes(self, dirty_file,
                                                      capsys):
        assert main(["infer", dirty_file, "--permissive",
                     "--max-error-rate", "0.5"]) == 0
        assert capsys.readouterr().out.strip() == "{a: Num}"

    def test_permissive_parallel_matches_inline(self, dirty_file, capsys):
        assert main(["infer", dirty_file, "--permissive"]) == 0
        inline = capsys.readouterr()
        assert main(["infer", dirty_file, "--permissive",
                     "--parallel", "2", "--max-retries", "2"]) == 0
        parallel = capsys.readouterr()
        assert parallel.out == inline.out
        assert "2 records skipped" in parallel.err


class TestStats:
    def test_stats_table(self, sample_file, capsys):
        assert main(["stats", sample_file]) == 0
        out = capsys.readouterr().out
        assert "# types" in out
        assert "records: 2" in out
        assert "map phase" in out


class TestGenerate:
    def test_generate_writes_file(self, tmp_path, capsys):
        out_path = tmp_path / "g.ndjson"
        assert main(["generate", "github", "5", str(out_path)]) == 0
        assert "wrote 5" in capsys.readouterr().out
        assert out_path.exists()

    def test_generated_file_inferrable(self, tmp_path, capsys):
        out_path = tmp_path / "t.ndjson"
        main(["generate", "twitter", "10", str(out_path)])
        capsys.readouterr()
        assert main(["infer", str(out_path)]) == 0
        assert capsys.readouterr().out.strip()

    def test_seed_changes_output(self, tmp_path, capsys):
        a, b = tmp_path / "a.ndjson", tmp_path / "b.ndjson"
        main(["generate", "nytimes", "3", str(a), "--seed", "1"])
        main(["generate", "nytimes", "3", str(b), "--seed", "2"])
        assert a.read_text() != b.read_text()


class TestPaths:
    def test_lists_paths_with_optionality(self, sample_file, capsys):
        assert main(["paths", sample_file]) == 0
        out = capsys.readouterr().out
        assert "mandatory  $.a" in out
        assert "optional   $.b.d" in out


class TestCheckPath:
    def test_mandatory_path(self, sample_file, capsys):
        assert main(["check-path", sample_file, "b.c"]) == 0
        out = capsys.readouterr().out
        assert "in every record" in out
        assert "Str" in out

    def test_optional_path(self, sample_file, capsys):
        assert main(["check-path", sample_file, "b.d"]) == 0
        assert "optional" in capsys.readouterr().out

    def test_absent_path_exits_nonzero(self, sample_file, capsys):
        assert main(["check-path", sample_file, "zzz"]) == 1
        assert "not present" in capsys.readouterr().out


class TestDiff:
    def test_identical_files(self, sample_file, capsys):
        assert main(["diff", sample_file, sample_file]) == 0
        assert "identical" in capsys.readouterr().out

    def test_reports_changes(self, tmp_path, capsys):
        old = tmp_path / "old.ndjson"
        new = tmp_path / "new.ndjson"
        write_ndjson(old, [{"a": 1, "b": "x"}])
        write_ndjson(new, [{"a": "s", "c": True}])
        assert main(["diff", str(old), str(new)]) == 0
        out = capsys.readouterr().out
        assert "[type-changed] $.a" in out
        assert "[removed] $.b" in out
        assert "[added] $.c" in out


class TestProject:
    def test_prunes_records(self, sample_file, capsys):
        assert main(["project", sample_file, "b.c"]) == 0
        lines = capsys.readouterr().out.strip().split("\n")
        assert loads(lines[0]) == {"b": {"c": "x"}}
        assert loads(lines[1]) == {"b": {"c": "z"}}

    def test_unknown_path_fails(self, sample_file, capsys):
        assert main(["project", sample_file, "nope"]) == 1
        assert "nope" in capsys.readouterr().err


class TestValidate:
    def test_conforming_file(self, sample_file, capsys):
        schema = "{a: Num + Str, b: {c: Str, d: Bool?}}"
        assert main(["validate", sample_file, "--schema", schema]) == 0
        assert "all 2 records conform" in capsys.readouterr().out

    def test_violations_reported_with_paths(self, sample_file, capsys):
        assert main(["validate", sample_file, "--schema", "{a: Num}"]) == 1
        out = capsys.readouterr().out
        assert "record 1" in out
        assert "$.b" in out
        assert "2/2 records violate" in out

    def test_schema_file_variant(self, sample_file, tmp_path, capsys):
        schema_path = tmp_path / "schema.txt"
        schema_path.write_text("{a: Num + Str, b: {c: Str, d: Bool?}}")
        code = main(["validate", sample_file, "--schema-file", str(schema_path)])
        assert code == 0

    def test_max_reports_limits_output(self, tmp_path, capsys):
        path = tmp_path / "many.ndjson"
        write_ndjson(path, [{"x": i} for i in range(10)])
        assert main(["validate", str(path), "--schema", "{y: Num}",
                     "--max-reports", "2"]) == 1
        out = capsys.readouterr().out
        assert out.count("record ") == 2
        assert "10/10 records violate" in out

    def test_schema_required(self, sample_file):
        with pytest.raises(SystemExit):
            main(["validate", sample_file])


class TestReport:
    def test_markdown_report(self, sample_file, capsys):
        assert main(["report", sample_file, "--name", "demo"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Schema audit: demo")
        assert "## Fused schema" in out
        assert "## Paths" in out

    def test_default_name_is_filename(self, sample_file, capsys):
        assert main(["report", sample_file]) == 0
        assert sample_file in capsys.readouterr().out.split("\n")[0]


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_arguments_rejected(self):
        with pytest.raises(SystemExit):
            main(["infer"])


class TestCheckpointCli:
    def test_infer_writes_checkpoint(self, sample_file, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        assert main(["infer", sample_file, "--checkpoint", str(ckpt)]) == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == (
            "{a: (Num + Str), b: {c: Str, d: Bool?}}"
        )
        assert "checkpoint: 2 records" in captured.err
        assert (ckpt / "MANIFEST.json").is_file()

    def test_update_chain_equals_full_inference(self, tmp_path, capsys):
        first = tmp_path / "first.ndjson"
        second = tmp_path / "second.ndjson"
        both = tmp_path / "both.ndjson"
        write_ndjson(first, [{"a": 1}, {"a": 2}])
        write_ndjson(second, [{"a": "x", "b": None}])
        write_ndjson(both, [{"a": 1}, {"a": 2}, {"a": "x", "b": None}])
        ckpt = tmp_path / "ckpt"
        assert main(["infer", str(first), "--checkpoint", str(ckpt)]) == 0
        capsys.readouterr()
        assert main(["infer", str(second), "--checkpoint", str(ckpt),
                     "--update"]) == 0
        updated = capsys.readouterr()
        assert main(["infer", str(both)]) == 0
        full = capsys.readouterr()
        assert updated.out == full.out
        assert "2 reused from the previous checkpoint" in updated.err

    def test_update_cold_starts_without_existing_checkpoint(
        self, sample_file, tmp_path, capsys
    ):
        ckpt = tmp_path / "fresh"
        assert main(["infer", sample_file, "--checkpoint", str(ckpt),
                     "--update"]) == 0
        captured = capsys.readouterr()
        assert "reused" not in captured.err
        assert (ckpt / "MANIFEST.json").is_file()

    def test_update_without_checkpoint_dir_is_an_error(
        self, sample_file, capsys
    ):
        assert main(["infer", sample_file, "--update"]) == 2
        assert "--update requires --checkpoint" in capsys.readouterr().err


class TestMerge:
    def _checkpoint(self, tmp_path, name, records):
        source = tmp_path / f"{name}.ndjson"
        write_ndjson(source, records)
        ckpt = tmp_path / name
        assert main(["infer", str(source), "--checkpoint", str(ckpt)]) == 0
        return ckpt

    def test_merge_two_checkpoints(self, tmp_path, capsys):
        a = self._checkpoint(tmp_path, "a", [{"x": 1}])
        b = self._checkpoint(tmp_path, "b", [{"x": "s", "y": True}])
        capsys.readouterr()
        out_dir = tmp_path / "union"
        assert main(["merge", str(a), str(b), "-o", str(out_dir)]) == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == "{x: (Num + Str), y: Bool?}"
        assert "merged 2 checkpoints (2 records" in captured.err
        assert (out_dir / "MANIFEST.json").is_file()

    def test_merge_parallel_matches_serial(self, tmp_path, capsys):
        paths = [
            self._checkpoint(tmp_path, f"s{i}", [{"k": i}, {"k": str(i)}])
            for i in range(4)
        ]
        capsys.readouterr()
        args = [str(p) for p in paths]
        assert main(["merge", *args, "-o", str(tmp_path / "serial")]) == 0
        serial = capsys.readouterr().out
        assert main(["merge", *args, "-o", str(tmp_path / "par"),
                     "--parallel", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_merge_missing_checkpoint_fails(self, tmp_path, capsys):
        a = self._checkpoint(tmp_path, "a", [{"x": 1}])
        capsys.readouterr()
        assert main(["merge", str(a), str(tmp_path / "nope"),
                     "-o", str(tmp_path / "out")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_merge_pretty(self, tmp_path, capsys):
        a = self._checkpoint(tmp_path, "a", [{"x": 1, "y": {"z": "s"}}])
        capsys.readouterr()
        assert main(["merge", str(a), "-o", str(tmp_path / "out"),
                     "--pretty"]) == 0
        assert "\n" in capsys.readouterr().out.strip()


class TestJournalCli:
    def test_journaled_run_commits(self, sample_file, tmp_path, capsys):
        journal = tmp_path / "run.journal"
        assert main(["infer", sample_file, "--journal", str(journal)]) == 0
        schema = capsys.readouterr().out
        from repro.store.journal import read_journal

        assert read_journal(journal).committed
        # The journal must not change the inferred schema.
        assert main(["infer", sample_file]) == 0
        assert capsys.readouterr().out == schema

    def test_existing_journal_requires_resume(
        self, sample_file, tmp_path, capsys
    ):
        journal = tmp_path / "run.journal"
        assert main(["infer", sample_file, "--journal", str(journal)]) == 0
        capsys.readouterr()
        assert main(["infer", sample_file, "--journal", str(journal)]) == 1
        assert "--resume" in capsys.readouterr().err

    def test_resume_completes_committed_run(
        self, sample_file, tmp_path, capsys
    ):
        journal = tmp_path / "run.journal"
        assert main(["infer", sample_file, "--journal", str(journal)]) == 0
        first = capsys.readouterr().out
        assert main(["infer", sample_file, "--journal", str(journal),
                     "--resume"]) == 0
        assert capsys.readouterr().out == first

    def test_resume_requires_journal(self, sample_file, capsys):
        assert main(["infer", sample_file, "--resume"]) == 2
        assert "--journal" in capsys.readouterr().err

    def test_mismatched_resume_fails(self, sample_file, tmp_path, capsys):
        journal = tmp_path / "run.journal"
        assert main(["infer", sample_file, "--journal", str(journal)]) == 0
        capsys.readouterr()
        assert main(["infer", sample_file, "--journal", str(journal),
                     "--resume", "--permissive"]) == 1
        assert "permissive" in capsys.readouterr().err


class TestFsckCli:
    def test_ok_checkpoint_and_journal(self, sample_file, tmp_path, capsys):
        journal = tmp_path / "run.journal"
        ckpt = tmp_path / "ckpt"
        assert main(["infer", sample_file, "--journal", str(journal),
                     "--checkpoint", str(ckpt)]) == 0
        capsys.readouterr()
        assert main(["fsck", str(ckpt), str(journal)]) == 0
        out = capsys.readouterr().out
        assert "checkpoint" in out and "journal" in out
        assert out.count(" ok ") >= 2 or out.count("ok") >= 2

    def test_json_reports(self, sample_file, tmp_path, capsys):
        import json as _json

        journal = tmp_path / "run.journal"
        assert main(["infer", sample_file, "--journal", str(journal)]) == 0
        capsys.readouterr()
        assert main(["fsck", str(journal), "--json"]) == 0
        report = _json.loads(capsys.readouterr().out)
        assert report["status"] == "ok"
        assert report["committed"] is True

    def test_missing_path_exits_nonzero(self, tmp_path, capsys):
        assert main(["fsck", str(tmp_path / "nothing")]) == 1
        assert "not-found" in capsys.readouterr().out

    def test_corrupt_journal_reported(self, sample_file, tmp_path, capsys):
        journal = tmp_path / "run.journal"
        assert main(["infer", sample_file, "--journal", str(journal)]) == 0
        data = bytearray(journal.read_bytes())
        data[len(data) // 3] ^= 0xFF
        journal.write_bytes(bytes(data))
        capsys.readouterr()
        assert main(["fsck", str(journal)]) == 1
        assert "corrupt" in capsys.readouterr().out

    def test_summary_cache_directory(self, sample_file, tmp_path, capsys):
        cache = tmp_path / "sumcache"
        assert main(
            ["infer", sample_file, "--summary-cache", str(cache)]
        ) == 0
        capsys.readouterr()
        assert main(["fsck", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "summary-cache" in out and "ok" in out

    def test_summary_cache_json_and_corruption(
        self, sample_file, tmp_path, capsys
    ):
        import json as _json

        cache = tmp_path / "sumcache"
        assert main(
            ["infer", sample_file, "--summary-cache", str(cache)]
        ) == 0
        capsys.readouterr()
        assert main(["fsck", str(cache), "--json"]) == 0
        report = _json.loads(capsys.readouterr().out)
        assert report["kind"] == "summary-cache"
        assert report["status"] == "ok"
        assert report["entries"] >= 1

        entry = next((cache / "objects").glob("*/*.sum"))
        entry.write_bytes(entry.read_bytes()[:10])
        assert main(["fsck", str(cache)]) == 1
        assert "corrupt" in capsys.readouterr().out


class TestVersion:
    def test_version_flag_prints_package_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as info:
            main(["--version"])
        assert info.value.code == 0
        out = capsys.readouterr().out.strip()
        assert out == f"json-schema-infer {repro.__version__}"

    def test_version_single_sourced_from_pyproject(self):
        import re
        from pathlib import Path

        import repro

        pyproject = Path(repro.__file__).parents[2] / "pyproject.toml"
        match = re.search(
            r'^version\s*=\s*"([^"]+)"', pyproject.read_text(), re.MULTILINE
        )
        assert match is not None
        assert repro.__version__ == match.group(1)


class TestStatisticsCommand:
    def test_infer_stats_does_not_change_schema(self, sample_file, capsys):
        assert main(["infer", sample_file]) == 0
        plain = capsys.readouterr().out
        for mode in ("basic", "sketches"):
            assert main(["infer", sample_file, "--stats", mode]) == 0
            assert capsys.readouterr().out == plain

    def test_statistics_from_file(self, sample_file, capsys):
        assert main(["statistics", sample_file]) == 0
        out = capsys.readouterr().out
        assert "# Statistics:" in out
        assert "mode sketches" in out
        assert "$.a" in out
        assert "distinct" in out

    def test_statistics_basic_mode(self, sample_file, capsys):
        assert main(["statistics", sample_file, "--stats", "basic"]) == 0
        assert "mode basic" in capsys.readouterr().out

    def test_statistics_from_checkpoint(self, sample_file, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        assert main(["infer", sample_file, "--stats", "sketches",
                     "--checkpoint", str(ckpt)]) == 0
        capsys.readouterr()
        assert main(["statistics", str(ckpt)]) == 0
        out = capsys.readouterr().out
        assert "mode sketches" in out
        assert "$.b.c" in out

    def test_statistics_rejects_stats_free_checkpoint(
            self, sample_file, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        assert main(["infer", sample_file, "--checkpoint", str(ckpt)]) == 0
        capsys.readouterr()
        assert main(["statistics", str(ckpt)]) == 1
        assert "carries no statistics" in capsys.readouterr().err

    def test_update_preserves_statistics(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        first = tmp_path / "one.ndjson"
        write_ndjson(first, [{"n": 1}, {"n": 2}])
        second = tmp_path / "two.ndjson"
        write_ndjson(second, [{"n": 3, "s": "x"}])
        assert main(["infer", str(first), "--stats", "basic",
                     "--checkpoint", str(ckpt)]) == 0
        assert main(["infer", str(second), "--stats", "basic",
                     "--checkpoint", str(ckpt), "--update"]) == 0
        capsys.readouterr()
        from repro.store.checkpoint import load_checkpoint

        bundle = load_checkpoint(ckpt).summary.stats
        assert bundle is not None
        assert bundle.record_count == 3
