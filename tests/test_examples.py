"""Smoke tests: every example script must run to completion.

Examples are user-facing documentation; a broken example is a broken
deliverable.  Each runs in a subprocess exactly as a user would run it.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_cleanly(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_has_module_docstring_with_run_line(script):
    source = script.read_text()
    assert source.lstrip().startswith('"""'), f"{script.name} lacks a docstring"
    assert f"examples/{script.name}" in source, (
        f"{script.name}'s docstring should show how to run it"
    )
