"""Crash-matrix: kill the run at every durability boundary, resume, and
demand a byte-identical schema.

Each case launches a real subprocess with ``REPRO_CRASH_POINT`` set, so
the "crash" is a genuine ``os._exit`` mid-run — no cooperative cleanup,
no atexit, exactly what a power cut or OOM kill leaves behind.  The
resumed run must then produce the same printed schema and record count
as an uninterrupted run, on both backends and both split modes (fusion
commutativity/associativity, Theorems 5.4-5.5, is what makes the replay
exact).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.engine.faults import CRASH_EXIT_CODE, CRASH_POINT_ENV
from repro.store.checkpoint import load_checkpoint
from repro.store.journal import read_journal

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Driver the subprocesses run.  Prints "<schema> <record_count>" on
#: success; any crash point fires mid-run via REPRO_CRASH_POINT.
DRIVER = """
import json, sys
from repro.engine.context import Context
from repro.inference.pipeline import infer_ndjson_file
from repro.core.printer import print_type

cfg = json.loads(sys.argv[1])
kwargs = dict(
    num_partitions=4,
    split_mode=cfg["mode"],
    min_split_bytes=2048,
    batch_size=1,
    journal_path=cfg["journal"],
    resume=cfg["resume"],
    checkpoint_to=cfg.get("checkpoint"),
)
if cfg["backend"] == "none":
    run = infer_ndjson_file(cfg["file"], **kwargs)
else:
    with Context(parallelism=2, backend=cfg["backend"]) as ctx:
        run = infer_ndjson_file(cfg["file"], context=ctx, **kwargs)
print(print_type(run.schema), run.record_count)
"""


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    path = tmp_path_factory.mktemp("resume") / "data.ndjson"
    with open(path, "w", encoding="utf-8") as handle:
        for i in range(600):
            record = {
                "id": i,
                "tags": [str(i), i] if i % 3 else [i],
                "meta": {"even": i % 2 == 0},
            }
            if i % 5 == 0:
                record["extra"] = {"depth": [{"x": i}]}
            handle.write(json.dumps(record) + "\n")
    return path


def run_driver(dataset, journal, mode="bytes", backend="thread",
               resume=False, checkpoint=None, crash_point=None):
    cfg = {
        "file": str(dataset),
        "journal": str(journal),
        "mode": mode,
        "backend": backend,
        "resume": resume,
    }
    if checkpoint is not None:
        cfg["checkpoint"] = str(checkpoint)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [REPO_SRC, env.get("PYTHONPATH")])
    )
    if crash_point is not None:
        env[CRASH_POINT_ENV] = crash_point
    else:
        env.pop(CRASH_POINT_ENV, None)
    # Capture through files, not pipes: a crash-killed driver can leave
    # orphaned pool workers holding inherited pipe FDs, which would make
    # pipe-based capture block long after the driver is gone.
    with tempfile.TemporaryFile("w+") as out, \
            tempfile.TemporaryFile("w+") as err:
        proc = subprocess.run(
            [sys.executable, "-c", DRIVER, json.dumps(cfg)],
            env=env, stdout=out, stderr=err, timeout=120,
        )
        out.seek(0)
        err.seek(0)
        return SimpleNamespace(
            returncode=proc.returncode,
            stdout=out.read(),
            stderr=err.read(),
        )


@pytest.fixture(scope="module")
def expected(dataset, tmp_path_factory):
    """The uninterrupted run's output, the identity every resume must hit."""
    journal = tmp_path_factory.mktemp("expected") / "run.journal"
    proc = run_driver(dataset, journal)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def crash_then_resume(dataset, tmp_path, crash_point, mode="bytes",
                      backend="thread", checkpoint=None):
    journal = tmp_path / "run.journal"
    crashed = run_driver(dataset, journal, mode=mode, backend=backend,
                         checkpoint=checkpoint, crash_point=crash_point)
    assert crashed.returncode == CRASH_EXIT_CODE, (
        f"crash point {crash_point!r} never fired:\n{crashed.stderr}"
    )
    resumed = run_driver(dataset, journal, mode=mode, backend=backend,
                         checkpoint=checkpoint, resume=True)
    assert resumed.returncode == 0, resumed.stderr
    return resumed.stdout


#: Every journal-boundary crash point, in execution order.
JOURNAL_POINTS = [
    "journal.create.post",
    "journal.append.torn:1",
    "journal.append.post:1",
    "journal.append.torn:3",
    "journal.append.post:4",
    "journal.commit.pre",
    "journal.commit.torn",
    "journal.commit.post",
]


class TestCrashMatrixJournal:
    @pytest.mark.parametrize("crash_point", JOURNAL_POINTS)
    def test_resume_is_identical(self, dataset, tmp_path, expected,
                                 crash_point):
        assert crash_then_resume(
            dataset, tmp_path, crash_point
        ) == expected

    def test_partial_progress_is_durable(self, dataset, tmp_path):
        journal = tmp_path / "run.journal"
        crashed = run_driver(dataset, journal,
                             crash_point="journal.append.post:2")
        assert crashed.returncode == CRASH_EXIT_CODE
        state = read_journal(journal)
        assert len(state.completed) == 2
        assert not state.committed

    def test_torn_crash_leaves_torn_tail(self, dataset, tmp_path):
        journal = tmp_path / "run.journal"
        crashed = run_driver(dataset, journal,
                             crash_point="journal.append.torn:2")
        assert crashed.returncode == CRASH_EXIT_CODE
        state = read_journal(journal)
        assert state.torn and state.torn_bytes > 0
        assert len(state.completed) == 1


class TestCrashMatrixBackendsAndModes:
    """One representative mid-run crash, across the full config grid."""

    @pytest.mark.parametrize("backend,mode", [
        ("thread", "bytes"),
        ("thread", "lines"),
        ("process", "bytes"),
        ("process", "lines"),
        ("none", "bytes"),
        ("none", "lines"),  # sequential streaming: a single journal task
    ])
    def test_resume_is_identical(self, dataset, tmp_path, expected,
                                 backend, mode):
        crash_point = (
            # The sequential lines run journals exactly one task, after
            # which only the commit boundary remains.
            "journal.commit.pre" if backend == "none" and mode == "lines"
            else "journal.append.post:1"
        )
        assert crash_then_resume(
            dataset, tmp_path, crash_point, mode=mode, backend=backend
        ) == expected


class TestCrashMatrixCheckpoint:
    """Crashes inside the checkpoint save, with and without a previous
    checkpoint on disk (the latter exercises the retire-and-replace
    window, ``checkpoint.mid_swap``)."""

    @pytest.mark.parametrize("crash_point", [
        "checkpoint.pre_swap",
        "checkpoint.post_swap",
    ])
    def test_fresh_checkpoint_crash(self, dataset, tmp_path, expected,
                                    crash_point):
        ckpt = tmp_path / "ckpt"
        out = crash_then_resume(
            dataset, tmp_path, crash_point, checkpoint=ckpt
        )
        assert out == expected
        loaded = load_checkpoint(ckpt)
        assert loaded.record_count == 600

    @pytest.mark.parametrize("crash_point", [
        "checkpoint.pre_swap",
        "checkpoint.mid_swap",
        "checkpoint.post_swap",
    ])
    def test_overwrite_checkpoint_crash(self, dataset, tmp_path, expected,
                                        crash_point):
        ckpt = tmp_path / "ckpt"
        # Seed a previous checkpoint so the save takes the replace path.
        seed = run_driver(dataset, tmp_path / "seed.journal",
                          checkpoint=ckpt)
        assert seed.returncode == 0, seed.stderr
        out = crash_then_resume(
            dataset, tmp_path, crash_point, checkpoint=ckpt
        )
        assert out == expected
        loaded = load_checkpoint(ckpt)
        assert loaded.record_count == 600

    def test_mid_swap_crash_is_reported_by_fsck(self, dataset, tmp_path):
        from repro.store.checkpoint import fsck_checkpoint

        ckpt = tmp_path / "ckpt"
        seed = run_driver(dataset, tmp_path / "seed.journal",
                          checkpoint=ckpt)
        assert seed.returncode == 0, seed.stderr
        crashed = run_driver(dataset, tmp_path / "run.journal",
                             checkpoint=ckpt,
                             crash_point="checkpoint.mid_swap")
        assert crashed.returncode == CRASH_EXIT_CODE
        # The window leaves no target but both complete versions aside;
        # fsck sees the absence and the debris rather than a mixed state.
        report = fsck_checkpoint(ckpt)
        assert report["status"] == "not-found"
        assert report["orphans"]
