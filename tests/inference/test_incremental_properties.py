"""Property harness for incremental schema maintenance.

The claims under test are the ones that make merge-on-update sound:

* **Partition-order invariance** — accumulating the same batches in any
  order yields the same schema and distinct set (Theorem 5.4).
* **Batch-split invariance** — inferring a corpus whole equals inferring
  any split of it and merging the partial summaries (Theorem 5.5); this
  is exactly what licenses both tree reduction and incremental updates.
* **Checkpoint round-trip identity** — persisting a summary and loading
  it back is invisible to fusion: ``fuse(load(save(S)), T) == fuse(S, T)``.
* **Byte-determinism** — the same data checkpoints to the same bytes,
  whatever partition order or backend produced the summary.
* **Batch-vs-update equivalence at the file level** — one full
  ``infer_ndjson_file`` run, a split-then-merge run, and a chain of
  ``--update`` style runs all print the identical schema, on both
  scheduler backends.
"""

import os
import tempfile

from hypothesis import given
from hypothesis import strategies as st
import pytest

from repro.core.printer import print_type
from repro.inference.kernel import (
    PartitionAccumulator,
    accumulate_partition,
    merge_summary_group,
    merge_summaries_full,
)
from repro.inference.pipeline import SchemaInferencer, infer_ndjson_file
from repro.store.checkpoint import (
    DISTINCT_FILE,
    MANIFEST_FILE,
    SCHEMA_FILE,
    load_checkpoint,
    save_checkpoint,
)
from tests.conftest import (
    json_records,
    make_corpus,
    record_batches,
    write_corpus,
)


def _accumulate_batches(batches):
    acc = PartitionAccumulator()
    for batch in batches:
        acc.add_many(batch)
    return acc.summary()


class TestPartitionOrderInvariance:
    @given(record_batches, st.randoms(use_true_random=False))
    def test_any_batch_order_same_summary(self, batches, rng):
        forward = _accumulate_batches(batches)
        shuffled = list(batches)
        rng.shuffle(shuffled)
        permuted = _accumulate_batches(shuffled)
        assert forward.schema == permuted.schema
        assert forward.record_count == permuted.record_count
        assert set(forward.distinct_types) == set(permuted.distinct_types)

    @given(record_batches)
    def test_summary_merge_commutes(self, batches):
        summaries = [accumulate_partition(b) for b in batches]
        forward = merge_summary_group(summaries)
        backward = merge_summary_group(summaries[::-1])
        assert forward.schema == backward.schema
        assert forward.record_count == backward.record_count
        assert set(forward.distinct_types) == set(backward.distinct_types)


class TestBatchSplitInvariance:
    @given(
        st.lists(json_records, max_size=20),
        st.integers(min_value=0, max_value=20),
    )
    def test_split_then_merge_equals_whole(self, records, cut):
        cut = min(cut, len(records))
        whole = accumulate_partition(records)
        left = accumulate_partition(records[:cut])
        right = accumulate_partition(records[cut:])
        merged = merge_summary_group([left, right])
        assert merged.schema == whole.schema
        assert merged.record_count == whole.record_count
        assert set(merged.distinct_types) == set(whole.distinct_types)

    @given(record_batches)
    def test_any_grouping_of_merges_agrees(self, batches):
        summaries = [accumulate_partition(b) for b in batches]
        left_fold = merge_summaries_full(summaries)
        pairwise = summaries
        while len(pairwise) > 1:
            pairwise = [
                merge_summary_group(pairwise[i:i + 2])
                for i in range(0, len(pairwise), 2)
            ]
        tree = pairwise[0]
        assert tree.schema == left_fold.schema
        assert tree.record_count == left_fold.record_count

    @given(record_batches)
    def test_accumulator_adoption_equals_merge(self, batches):
        """add_summary (the update path's interning adoption) is exact."""
        summaries = [accumulate_partition(b) for b in batches]
        acc = PartitionAccumulator()
        for s in summaries:
            acc.add_summary(s)
        merged = merge_summary_group(summaries)
        adopted = acc.summary()
        assert adopted.schema == merged.schema
        assert adopted.record_count == merged.record_count
        assert set(adopted.distinct_types) == set(merged.distinct_types)


class TestCheckpointRoundTripIdentity:
    @given(
        st.lists(json_records, max_size=12),
        st.lists(json_records, max_size=12),
    )
    def test_fuse_after_round_trip_is_invisible(self, first, second):
        s = accumulate_partition(first)
        t = accumulate_partition(second)
        with tempfile.TemporaryDirectory() as d:
            save_checkpoint(d, s)
            reloaded = load_checkpoint(d).summary
        direct = merge_summary_group([s, t])
        via_disk = merge_summary_group([reloaded, t])
        assert via_disk.schema == direct.schema
        assert via_disk.record_count == direct.record_count
        assert set(via_disk.distinct_types) == set(direct.distinct_types)

    @given(st.lists(json_records, max_size=12))
    def test_double_round_trip_is_fixpoint(self, records):
        summary = accumulate_partition(records)
        with tempfile.TemporaryDirectory() as d:
            save_checkpoint(os.path.join(d, "a"), summary)
            once = load_checkpoint(os.path.join(d, "a")).summary
            save_checkpoint(os.path.join(d, "b"), once)
            twice = load_checkpoint(os.path.join(d, "b")).summary
        assert once.schema == twice.schema
        assert once.distinct_types == twice.distinct_types


class TestByteDeterminism:
    @given(record_batches, st.randoms(use_true_random=False))
    def test_partition_order_never_reaches_disk(self, batches, rng):
        forward = _accumulate_batches(batches)
        shuffled = list(batches)
        rng.shuffle(shuffled)
        permuted = _accumulate_batches(shuffled)
        with tempfile.TemporaryDirectory() as d:
            save_checkpoint(os.path.join(d, "a"), forward)
            save_checkpoint(os.path.join(d, "b"), permuted)
            for name in (MANIFEST_FILE, SCHEMA_FILE, DISTINCT_FILE):
                a = open(os.path.join(d, "a", name), "rb").read()
                b = open(os.path.join(d, "b", name), "rb").read()
                assert a == b, f"{name} depends on partition order"


@pytest.mark.parametrize("backend", ["thread", "process"])
class TestFileLevelEquivalence:
    """Full vs merged-batches vs update-chain, through the real pipeline."""

    CORPUS = make_corpus(120, seed=3)
    SPLITS = (0, 40, 80, 120)

    def _write_batches(self, tmp_path):
        paths = []
        for i, (lo, hi) in enumerate(zip(self.SPLITS, self.SPLITS[1:])):
            p = tmp_path / f"batch{i}.ndjson"
            write_corpus(p, self.CORPUS[lo:hi])
            paths.append(p)
        full = tmp_path / "full.ndjson"
        write_corpus(full, self.CORPUS)
        return full, paths

    def test_update_chain_matches_full_run(self, tmp_path, backend):
        from repro.engine.context import Context

        full, batches = self._write_batches(tmp_path)
        ckpt = tmp_path / "ckpt"
        with Context(parallelism=3, backend=backend) as ctx:
            reference = infer_ndjson_file(full, context=ctx)
            for i, batch in enumerate(batches):
                run = infer_ndjson_file(
                    batch,
                    context=ctx,
                    update_from=ckpt if i else None,
                    checkpoint_to=ckpt,
                )
        assert print_type(run.schema) == print_type(reference.schema)
        assert run.record_count == reference.record_count
        assert run.distinct_type_count == reference.distinct_type_count
        assert run.checkpoint_record_count == len(self.CORPUS) - (
            self.SPLITS[-1] - self.SPLITS[-2]
        )

    def test_inferencer_checkpoint_resume(self, tmp_path, backend):
        del backend  # the streaming inferencer is single-threaded
        ckpt = tmp_path / "ckpt"
        first = SchemaInferencer()
        first.add_many(self.CORPUS[:60])
        first.save_checkpoint(ckpt)
        resumed = SchemaInferencer.from_checkpoint(ckpt)
        resumed.add_many(self.CORPUS[60:])
        whole = SchemaInferencer()
        whole.add_many(self.CORPUS)
        assert resumed.schema == whole.schema
        assert resumed.record_count == whole.record_count
