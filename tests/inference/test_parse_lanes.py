"""Two-lane map phase: fast lanes must be indistinguishable from strict.

The contract under test (ISSUE 3): for any input, every resolved lane —
``strict``, ``tokens`` (pure-Python token walker), ``hooks`` (C scanner
with type-building hooks) — produces the same schema, the same record and
distinct-type counts, the same quarantine entries with absolute file line
numbers, and the same error diagnostics (message, source, line, column).
The fast lanes may only ever *defer* to strict, never diverge from it.
"""

from __future__ import annotations

import pytest

from repro.core.printer import print_type
from repro.engine import Context
from repro.inference.kernel import (
    PhaseTimings,
    accumulate_ndjson_partition,
    merge_phase_timings,
)
from repro.inference.pipeline import infer_ndjson_file
from repro.inference.typestream import (
    FastLaneMiss,
    HookTyper,
    TokenTyper,
    c_scanner_available,
    make_typer,
    resolve_lane,
    type_from_tokens,
)
from repro.jsonio.errors import DuplicateKeyError, JsonError, JsonSyntaxError

ALL_LANES = ["strict", "tokens", "hooks", "fast", "auto"]
RESOLVED = ["strict", "tokens", "hooks"]


def _numbered(lines):
    return list(enumerate(lines, start=1))


GOOD_LINES = [
    '{"a": 1, "b": "x"}',
    '{"a": 2.5, "b": "y", "c": [1, 2, 3]}',
    '{"a": null, "d": {"nested": [true, false, {"deep": []}]}}',
    '[]',
    '[{"k": "v"}, 17, "s"]',
    '"bare string"',
    'true',
    'null',
    '-12e3',
    '{}',
    '{"a": 1, "b": "x"}',
    # A validly *paired* surrogate escape (an emoji): the hooks lane
    # defers it to strict (conservative surrogate pre-check), which
    # accepts — same Str type from every lane.
    '{"emoji": "\\ud83d\\ude00"}',
]


class TestLaneEquivalence:
    def test_all_lanes_same_summary(self):
        results = {}
        for lane in ALL_LANES:
            s = accumulate_ndjson_partition(_numbered(GOOD_LINES),
                                            parse_lane=lane)
            results[lane] = (print_type(s.schema), s.record_count,
                            s.distinct_type_count, s.skipped)
        assert len(set(results.values())) == 1

    @pytest.mark.parametrize("lane", ALL_LANES)
    def test_pipeline_lanes_agree_with_strict(self, lane, tmp_path):
        path = tmp_path / "data.ndjson"
        path.write_text("\n".join(GOOD_LINES) + "\n", encoding="utf-8")
        strict = infer_ndjson_file(path, parse_lane="strict")
        run = infer_ndjson_file(path, parse_lane=lane)
        assert run.schema == strict.schema
        assert run.record_count == strict.record_count
        assert run.distinct_type_count == strict.distinct_type_count

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_fast_lane_matches_sequential_strict(
        self, backend, tmp_path
    ):
        path = tmp_path / "data.ndjson"
        path.write_text("\n".join(GOOD_LINES * 5) + "\n", encoding="utf-8")
        strict = infer_ndjson_file(path, parse_lane="strict")
        with Context(parallelism=2, backend=backend) as ctx:
            run = infer_ndjson_file(path, context=ctx, num_partitions=4,
                                    parse_lane="fast")
        assert run.schema == strict.schema
        assert run.record_count == strict.record_count
        assert run.distinct_type_count == strict.distinct_type_count

    @pytest.mark.parametrize("lane", RESOLVED[1:])
    def test_interned_pointer_equality_within_partition(self, lane):
        if lane == "hooks" and not c_scanner_available():
            pytest.skip("stdlib C scanner unavailable")
        from repro.inference.kernel import PartitionAccumulator
        from repro.inference.infer import infer_type
        from repro.jsonio.parser import loads

        acc = PartitionAccumulator()
        typer = make_typer(lane, acc)
        deferred = 0
        for line in GOOD_LINES:
            try:
                fast = typer.type_document(line)
            except FastLaneMiss:
                # The lane declines (hooks defers surrogate escapes);
                # the kernel's strict fallback covers such lines, which
                # the accumulate-level equivalence tests exercise.
                deferred += 1
                continue
            strict = acc.interner.intern(infer_type(loads(line)))
            assert fast is strict
        assert deferred <= 1  # only the paired-surrogate line may defer


class TestPermissiveQuarantine:
    # A mid-file poison record plus blank lines: absolute physical line
    # numbers (blank lines counted) must survive both lanes identically.
    TEXT = (
        '{"a": 1}\n'
        "\n"
        '{"a": 2, "b": "x"}\n'
        '{"broken": \n'
        "\n"
        '{"a": 3, "a": 4}\n'
        "nope\n"
        '{"a": 5}\n'
    )

    def test_bad_records_identical_across_lanes(self, tmp_path):
        path = tmp_path / "poison.ndjson"
        path.write_text(self.TEXT, encoding="utf-8")
        runs = {
            lane: infer_ndjson_file(path, parse_lane=lane, permissive=True)
            for lane in ALL_LANES
        }
        strict = runs["strict"]
        assert strict.skipped_count == 3
        assert [b.line_number for b in strict.bad_records] == [4, 6, 7]
        for lane, run in runs.items():
            assert run.bad_records == strict.bad_records, lane
            assert run.schema == strict.schema, lane
            assert run.record_count == strict.record_count == 3

    def test_duplicate_key_quarantine_position(self, tmp_path):
        path = tmp_path / "poison.ndjson"
        path.write_text(self.TEXT, encoding="utf-8")
        for lane in ALL_LANES:
            run = infer_ndjson_file(path, parse_lane=lane, permissive=True)
            dup = run.bad_records[1]
            assert dup.line_number == 6
            assert "duplicate object key 'a'" in dup.error
            assert "line 6" in dup.error

    def test_lone_surrogate_quarantined_identically(self, tmp_path):
        # Without the hooks lane's surrogate deferral the stdlib scanner
        # accepts {"a": "\ud800"} and the record is *counted*; strict
        # quarantines it.  All lanes must quarantine identically.
        path = tmp_path / "surrogate.ndjson"
        path.write_text(
            '{"a": 1}\n{"a": "\\ud800"}\n{"a": 2}\n', encoding="utf-8"
        )
        strict = infer_ndjson_file(path, parse_lane="strict",
                                   permissive=True)
        assert strict.record_count == 2
        assert strict.skipped_count == 1
        assert strict.bad_records[0].line_number == 2
        assert "unpaired high surrogate" in strict.bad_records[0].error
        for lane in ALL_LANES:
            run = infer_ndjson_file(path, parse_lane=lane, permissive=True)
            assert run.bad_records == strict.bad_records, lane
            assert run.record_count == strict.record_count, lane
            assert run.schema == strict.schema, lane

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_quarantine_identical(self, backend, tmp_path):
        path = tmp_path / "poison.ndjson"
        path.write_text(self.TEXT, encoding="utf-8")
        strict = infer_ndjson_file(path, parse_lane="strict",
                                   permissive=True)
        with Context(parallelism=2, backend=backend) as ctx:
            run = infer_ndjson_file(path, context=ctx, num_partitions=3,
                                    parse_lane="fast", permissive=True)
        assert run.bad_records == strict.bad_records
        assert run.schema == strict.schema


class TestStrictErrorIdentity:
    CASES = [
        '{"broken": ',
        '{"a": 1, "a": 2}',
        "nope",
        "[1, 2,]",
        '{"a": 1} trailing',
        "",
        # Lone/unpaired surrogate escapes: the stdlib C scanner accepts
        # them, the strict grammar rejects them — the hooks lane must
        # defer so every lane reports strict's diagnostic.
        '{"a": "\\ud800"}',
        '"\\udc00"',
        '"\\ud800x"',
    ]

    @pytest.mark.parametrize("bad", CASES)
    @pytest.mark.parametrize("lane", ALL_LANES)
    def test_same_diagnostic_as_strict(self, lane, bad):
        try:
            accumulate_ndjson_partition([(7, bad)], source="feed.ndjson",
                                        parse_lane="strict")
        except JsonError as exc:
            expected = (type(exc), str(exc), exc.line, exc.column,
                        exc.source)
        else:
            pytest.fail("strict lane accepted a bad record")
        with pytest.raises(JsonError) as info:
            accumulate_ndjson_partition([(7, bad)], source="feed.ndjson",
                                        parse_lane=lane)
        got = (type(info.value), str(info.value), info.value.line,
               info.value.column, info.value.source)
        assert got == expected

    def test_duplicate_key_error_type_and_position(self):
        for lane in ALL_LANES:
            with pytest.raises(DuplicateKeyError) as info:
                accumulate_ndjson_partition(
                    [(3, '{"k": 1, "k": 2}')], source="f.ndjson",
                    parse_lane=lane,
                )
            assert info.value.line == 3
            assert info.value.column == 10
            assert info.value.source == "f.ndjson"


class TestTypers:
    def test_token_typer_rejects_duplicate_keys_at_key_token(self):
        with pytest.raises(DuplicateKeyError) as info:
            type_from_tokens('{"k": 1, "k": 2}')
        assert (info.value.line, info.value.column) == (1, 10)

    def test_token_typer_rejects_trailing_garbage(self):
        with pytest.raises(JsonSyntaxError):
            type_from_tokens('{"a": 1} {"b": 2}')

    def test_hook_typer_misses_on_nonstandard_constants(self):
        if not c_scanner_available():
            pytest.skip("stdlib C scanner unavailable")
        from repro.inference.kernel import PartitionAccumulator

        typer = HookTyper(PartitionAccumulator())
        for text in ["NaN", "Infinity", "-Infinity", '{"a": NaN}']:
            with pytest.raises(FastLaneMiss):
                typer.type_document(text)

    def test_hook_typer_misses_on_duplicate_keys(self):
        if not c_scanner_available():
            pytest.skip("stdlib C scanner unavailable")
        from repro.inference.kernel import PartitionAccumulator

        typer = HookTyper(PartitionAccumulator())
        with pytest.raises(FastLaneMiss):
            typer.type_document('{"k": 1, "k": 2}')

    def test_hook_typer_defers_surrogate_escapes(self):
        # The stdlib scanner would silently accept the lone ones; the
        # typer must never answer for any surrogate-escape-bearing
        # record (paired ones included — strict arbitrates them all).
        if not c_scanner_available():
            pytest.skip("stdlib C scanner unavailable")
        from repro.inference.kernel import PartitionAccumulator

        typer = HookTyper(PartitionAccumulator())
        for text in [
            '"\\ud800"',           # lone high
            '"\\udc00"',           # lone low
            '{"a": "\\uD800"}',    # uppercase hex, nested
            '"\\ud83d\\ude00"',    # valid pair (conservative deferral)
        ]:
            with pytest.raises(FastLaneMiss, match="surrogate"):
                typer.type_document(text)

    def test_hook_typer_accepts_non_surrogate_escapes(self):
        if not c_scanner_available():
            pytest.skip("stdlib C scanner unavailable")
        from repro.core.printer import print_type as pt
        from repro.inference.kernel import PartitionAccumulator

        typer = HookTyper(PartitionAccumulator())
        # \u escapes outside U+D800-DFFF (including Ø and control
        # escapes) must stay on the fast path.
        assert pt(typer.type_document('{"a": "\\u00d8\\u0041\\n"}')) == \
            "{a: Str}"

    def test_type_from_tokens_doc_example(self):
        assert print_type(type_from_tokens('{"a": [1, "x"]}')) == \
            "{a: [Num, Str]}"


class TestLaneResolution:
    def test_strict_stays_strict(self):
        assert resolve_lane("strict") == "strict"

    def test_fast_and_auto_pick_an_implementation(self):
        expected = "hooks" if c_scanner_available() else "tokens"
        assert resolve_lane("fast") == expected
        assert resolve_lane("auto") == expected

    def test_resolved_names_pass_through(self):
        assert resolve_lane("hooks") == "hooks"
        assert resolve_lane("tokens") == "tokens"

    def test_unknown_lane_rejected(self):
        with pytest.raises(ValueError, match="unknown parse_lane"):
            resolve_lane("warp")
        with pytest.raises(ValueError, match="unknown parse_lane"):
            accumulate_ndjson_partition([(1, "{}")], parse_lane="warp")

    def test_make_typer_rejects_strict(self):
        from repro.inference.kernel import PartitionAccumulator

        with pytest.raises(ValueError, match="no fast-lane typer"):
            make_typer("strict", PartitionAccumulator())


class TestPhaseTimings:
    def test_timings_off_by_default(self, tmp_path):
        # The per-record clock reads are a pure tax when nobody looks at
        # the numbers, so collection is opt-in (--timings on the CLI).
        s = accumulate_ndjson_partition(_numbered(GOOD_LINES))
        assert s.timings is None
        path = tmp_path / "data.ndjson"
        path.write_text("\n".join(GOOD_LINES) + "\n", encoding="utf-8")
        run = infer_ndjson_file(path)
        assert run.phase_timings is None

    def test_partition_summary_carries_timings(self):
        for lane in RESOLVED:
            s = accumulate_ndjson_partition(_numbered(GOOD_LINES),
                                            parse_lane=lane,
                                            collect_timings=True)
            assert s.timings is not None
            assert s.timings.lane == lane
            assert s.timings.records == s.record_count
            assert s.timings.parse_s >= 0.0
            assert s.timings.map_s > 0.0
            assert s.timings.records_per_s > 0.0
            if lane != "strict":
                # Fast lanes type during parsing; no separate type stage.
                assert s.timings.type_s == 0.0

    def test_run_carries_merged_timings(self, tmp_path):
        path = tmp_path / "data.ndjson"
        path.write_text("\n".join(GOOD_LINES) + "\n", encoding="utf-8")
        run = infer_ndjson_file(path, parse_lane="strict",
                                collect_timings=True)
        assert run.phase_timings is not None
        assert run.phase_timings.lane == "strict"
        assert run.phase_timings.records == run.record_count
        with Context(parallelism=2) as ctx:
            par = infer_ndjson_file(path, context=ctx, num_partitions=4,
                                    parse_lane="fast", collect_timings=True)
        assert par.phase_timings is not None
        assert par.phase_timings.lane in ("hooks", "tokens")
        assert par.phase_timings.records == par.record_count

    def test_merge_sums_and_tracks_lane(self):
        a = PhaseTimings("hooks", 1.0, 0.0, 0.5, 10)
        b = PhaseTimings("hooks", 2.0, 0.0, 0.5, 20)
        merged = merge_phase_timings([a, b, None])
        assert merged == PhaseTimings("hooks", 3.0, 0.0, 1.0, 30)
        mixed = merge_phase_timings([a, PhaseTimings("strict", 1, 1, 1, 5)])
        assert mixed.lane == "mixed"
        assert merge_phase_timings([]) is None
        assert merge_phase_timings([None]) is None

    def test_describe_formats(self):
        strict = PhaseTimings("strict", 1.0, 0.5, 0.5, 10000)
        assert strict.describe() == (
            "[strict lane] parse 1.000s · type 0.500s · fuse 0.500s"
            " · 5,000 records/s"
        )
        fast = PhaseTimings("hooks", 1.5, 0.0, 0.5, 10000)
        assert fast.describe() == (
            "[hooks lane] parse+type 1.500s · fuse 0.500s"
            " · 5,000 records/s"
        )

    def test_untimed_throughput_is_zero(self):
        assert PhaseTimings().records_per_s == 0.0
