"""Differential tests: byte-range ingestion must be observationally
identical to line-oriented ingestion.

``split_mode="lines"`` (the driver reads the file and ships line text) is
the reference; ``split_mode="bytes"`` (workers read their own byte ranges)
must produce the same schema, the same record and skip counts, and
byte-identical quarantine records — absolute line numbers and error
strings included — on both scheduler backends.
"""

import pickle

import pytest

from repro.core.printer import print_type
from repro.engine import Context
from repro.inference.kernel import (
    TREE_MERGE_THRESHOLD,
    accumulate_ndjson_split,
)
from repro.inference.pipeline import (
    SPLIT_MODES,
    infer_ndjson_file,
    resolve_split_mode,
)
from repro.jsonio.errors import (
    DuplicateKeyError,
    ErrorRateExceeded,
    JsonSyntaxError,
)
from repro.jsonio.splits import FileSplit


def messy_file(tmp_path, n=300, terminator="\r\n", trailing=False):
    """An NDJSON file exercising every ingestion hazard at once: CRLF
    terminators, blank lines, malformed records, multibyte UTF-8, and
    (optionally) a missing trailing newline."""
    rows = []
    for i in range(n):
        if i % 41 == 11:
            rows.append('{"broken": ')
        elif i % 29 == 5:
            rows.append("")
        elif i % 3 == 0:
            rows.append('{"a": %d, "tag": "xé日"}' % i)
        else:
            rows.append('{"a": %d, "b": [1, 2.5], "c": {"d": true}}' % i)
    text = terminator.join(rows) + (terminator if trailing else "")
    path = tmp_path / "messy.ndjson"
    path.write_bytes(text.encode("utf-8"))
    return str(path)


def observables(run):
    return (
        print_type(run.schema),
        run.record_count,
        run.skipped_count,
        [(b.line_number, b.error, b.text) for b in run.bad_records],
    )


class TestPermissiveEquivalence:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("trailing", [True, False])
    def test_bytes_equals_lines(self, tmp_path, backend, trailing):
        path = messy_file(tmp_path, trailing=trailing)
        ref = infer_ndjson_file(path, permissive=True, split_mode="lines")
        with Context(parallelism=4, backend=backend) as ctx:
            run = infer_ndjson_file(
                path,
                context=ctx,
                num_partitions=7,
                permissive=True,
                split_mode="bytes",
                min_split_bytes=1,
            )
        assert observables(run) == observables(ref)

    def test_sequential_bytes_equals_lines(self, tmp_path):
        path = messy_file(tmp_path, terminator="\n")
        ref = infer_ndjson_file(path, permissive=True, split_mode="lines")
        run = infer_ndjson_file(path, permissive=True, split_mode="bytes")
        assert observables(run) == observables(ref)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_malformed_record_straddling_every_early_boundary(
        self, tmp_path, backend
    ):
        # Small file, many partitions: malformed records land at split
        # edges, where numbering and ownership bugs would live.
        rows = ['{"a": 1}', '{"bad', "", '{"a": 2}', "{", '{"a": 3}']
        path = tmp_path / "edges.ndjson"
        path.write_bytes("\r\n".join(rows).encode("utf-8"))
        ref = infer_ndjson_file(
            str(path), permissive=True, split_mode="lines"
        )
        with Context(parallelism=4, backend=backend) as ctx:
            run = infer_ndjson_file(
                str(path),
                context=ctx,
                num_partitions=12,
                permissive=True,
                split_mode="bytes",
                min_split_bytes=1,
            )
        assert observables(run) == observables(ref)


class TestStrictEquivalence:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_error_carries_absolute_line_number(self, tmp_path, backend):
        path = messy_file(tmp_path)
        with pytest.raises(JsonSyntaxError) as ref:
            infer_ndjson_file(path, split_mode="lines")
        with Context(parallelism=4, backend=backend) as ctx:
            with pytest.raises(JsonSyntaxError) as got:
                infer_ndjson_file(
                    path,
                    context=ctx,
                    num_partitions=6,
                    split_mode="bytes",
                    min_split_bytes=1,
                )
        # Different splits may surface *different* malformed records
        # first (partitions fail independently), but whichever surfaced
        # must be reported at its true absolute position.
        assert got.value.source == ref.value.source
        bad_lines = {
            b.line_number
            for b in infer_ndjson_file(
                path, permissive=True, split_mode="lines"
            ).bad_records
        }
        assert got.value.line in bad_lines
        assert f"line {got.value.line}," in str(got.value)


class TestZeroCopyShipping:
    def test_bytes_mode_ships_only_descriptors(self, tmp_path):
        path = messy_file(tmp_path, n=2000)
        file_size = len(open(path, "rb").read())
        with Context(parallelism=4, backend="process") as ctx:
            infer_ndjson_file(
                path,
                context=ctx,
                num_partitions=8,
                permissive=True,
                split_mode="bytes",
                min_split_bytes=1,
            )
            stats = ctx.scheduler.stats
        # Descriptors are a few hundred bytes however large the file;
        # the data itself is read worker-side.
        assert 0 < stats.input_bytes_shipped < file_size / 10
        assert stats.input_bytes_read >= file_size

    def test_lines_mode_ships_the_data(self, tmp_path):
        path = messy_file(tmp_path, n=2000)
        file_size = len(open(path, "rb").read())
        with Context(parallelism=4, backend="thread") as ctx:
            infer_ndjson_file(
                path,
                context=ctx,
                num_partitions=8,
                permissive=True,
                split_mode="lines",
            )
            assert ctx.scheduler.stats.input_bytes_shipped > file_size / 2


class TestTreeMerge:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_many_partitions_trigger_scheduler_reduce(
        self, tmp_path, backend
    ):
        path = messy_file(tmp_path, n=600, terminator="\n")
        ref = infer_ndjson_file(path, permissive=True, split_mode="lines")
        with Context(parallelism=4, backend=backend) as ctx:
            run = infer_ndjson_file(
                path,
                context=ctx,
                num_partitions=TREE_MERGE_THRESHOLD * 3,
                permissive=True,
                split_mode="bytes",
                min_split_bytes=1,
            )
        assert observables(run) == observables(ref)
        assert run.distinct_type_count == ref.distinct_type_count


class TestSplitTask:
    def test_accumulate_ndjson_split_reports_counts(self, tmp_path):
        path = tmp_path / "f.ndjson"
        data = b'{"a":1}\n\n{"b":2}\n'
        path.write_bytes(data)
        summary = accumulate_ndjson_split(
            FileSplit(str(path), 0, len(data), 0)
        )
        assert summary.record_count == 2
        assert summary.line_count == 3
        assert summary.bytes_read == len(data)

    def test_strict_error_in_later_split_is_absolute(self, tmp_path):
        path = tmp_path / "f.ndjson"
        data = b'{"a":1}\n{"a":2}\n{"a":3}\nnot json\n'
        path.write_bytes(data)
        offset = data.index(b"not json")
        split = FileSplit(str(path), offset, len(data) - offset, 1)
        with pytest.raises(JsonSyntaxError) as excinfo:
            accumulate_ndjson_split(split)
        assert excinfo.value.line == 4
        assert excinfo.value.source == str(path)


class TestResolveSplitMode:
    def test_modes(self):
        assert SPLIT_MODES == ("auto", "bytes", "lines")
        assert resolve_split_mode("auto", context=None) == "lines"
        assert resolve_split_mode("auto", context=object()) == "bytes"
        assert resolve_split_mode("lines", context=object()) == "lines"
        assert resolve_split_mode("bytes", context=None) == "bytes"
        with pytest.raises(ValueError):
            resolve_split_mode("chunks", context=None)


class TestErrorPickling:
    """Workers raise these across process-pool boundaries; the default
    exception reduction replays the formatted message into the
    constructor and dies with a TypeError."""

    def test_json_syntax_error(self):
        err = JsonSyntaxError("bad token", 7, 3, "f.ndjson")
        clone = pickle.loads(pickle.dumps(err))
        assert str(clone) == str(err)
        assert (clone.line, clone.column, clone.source) == (7, 3, "f.ndjson")

    def test_duplicate_key_error(self):
        err = DuplicateKeyError("k", 2, 5, "f.ndjson")
        clone = pickle.loads(pickle.dumps(err))
        assert str(clone) == str(err)
        assert clone.key == "k"

    def test_error_rate_exceeded(self):
        err = ErrorRateExceeded(3, 10, 0.1)
        clone = pickle.loads(pickle.dumps(err))
        assert str(clone) == str(err)
        assert (clone.skipped, clone.total) == (3, 10)
