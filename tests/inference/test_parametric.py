"""Tests for parametric (equivalence-based) fusion (repro.inference.parametric)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.printer import print_type
from repro.core.semantics import matches
from repro.core.subtyping import is_subtype
from repro.core.type_parser import parse_type as p
from repro.core.types import EMPTY, RecordType
from repro.datasets import generate_list
from repro.inference import infer_schema, infer_type
from repro.inference.parametric import (
    ParametricFuser,
    fuse_labelled,
    infer_schema_labelled,
    label_equivalence,
)
from tests.conftest import json_records, json_values, normal_types

L = ParametricFuser(label_equivalence)
K = ParametricFuser(None)


class TestKindEquivalenceIsThePaper:
    """With no equivalence parameter the fuser is the EDBT algorithm."""

    @given(json_values(), json_values())
    def test_k_fuse_equals_paper_fuse(self, v1, v2):
        from repro.inference.fusion import fuse

        t1, t2 = infer_type(v1), infer_type(v2)
        assert K.fuse(t1, t2) == fuse(t1, t2)

    @given(st.lists(json_records, max_size=8))
    def test_k_schema_equals_paper_schema(self, records):
        assert K.infer_schema(records) == infer_schema(records)


class TestLabelEquivalence:
    def test_different_key_sets_stay_separate(self):
        schema = infer_schema_labelled([{"a": 1}, {"b": "x"}])
        assert print_type(schema) == "{a: Num} + {b: Str}"

    def test_same_key_sets_merge(self):
        schema = infer_schema_labelled([{"a": 1}, {"a": "x"}])
        assert print_type(schema) == "{a: (Num + Str)}"

    def test_no_spurious_optionality_at_top_level(self):
        """The precision win: L-fusion never invents optional fields for
        records that were merged (their key sets coincide)."""
        schema = infer_schema_labelled([
            {"a": 1, "b": 2}, {"a": "x", "b": None}, {"c": True},
        ])
        for member in schema.addends():
            assert isinstance(member, RecordType)
            assert all(not f.optional for f in member.fields)

    def test_nested_records_also_split(self):
        schema = infer_schema_labelled([
            {"outer": {"a": 1}}, {"outer": {"b": 2}},
        ])
        inner = schema.field("outer").type
        assert len(inner.addends()) == 2

    def test_twitter_shapes_stay_separate(self):
        values = generate_list("twitter", 300)
        schema = infer_schema_labelled(values)
        key_sets = {m.keys() for m in schema.addends()}
        assert len(key_sets) == 5  # delete + four tweet flavours

    def test_l_schema_is_larger_but_below_k(self):
        values = generate_list("twitter", 300)
        l_schema = infer_schema_labelled(values)
        k_schema = infer_schema(values)
        assert l_schema.size > k_schema.size

    def test_l_schema_refines_k_schema(self):
        """Every value of the L-schema is a value of the K-schema."""
        values = generate_list("twitter", 120)
        l_schema = infer_schema_labelled(values)
        k_schema = infer_schema(values)
        assert is_subtype(l_schema, k_schema)

    def test_empty_collection(self):
        assert infer_schema_labelled([]) == EMPTY

    def test_arrays_still_fuse_by_kind(self):
        schema = infer_schema_labelled([{"xs": [1]}, {"xs": ["a"]}])
        assert print_type(schema) == "{xs: [(Num + Str)*]}"


class TestAlgebraicProperties:
    """Commutativity/associativity carry over to L-fusion."""

    @given(json_values(), json_values())
    def test_commutative(self, v1, v2):
        t1, t2 = infer_type(v1), infer_type(v2)
        assert fuse_labelled(t1, t2) == fuse_labelled(t2, t1)

    @given(json_values(), json_values(), json_values())
    def test_associative(self, v1, v2, v3):
        t1, t2, t3 = (infer_type(v) for v in (v1, v2, v3))
        assert fuse_labelled(fuse_labelled(t1, t2), t3) \
            == fuse_labelled(t1, fuse_labelled(t2, t3))

    @given(normal_types(), normal_types())
    def test_commutative_on_arbitrary_normal_types(self, t1, t2):
        assert fuse_labelled(t1, t2) == fuse_labelled(t2, t1)

    @given(normal_types(), normal_types(), normal_types())
    def test_associative_on_arbitrary_normal_types(self, t1, t2, t3):
        assert fuse_labelled(fuse_labelled(t1, t2), t3) \
            == fuse_labelled(t1, fuse_labelled(t2, t3))

    @given(normal_types())
    def test_empty_is_neutral(self, t):
        assert fuse_labelled(t, EMPTY) == t
        assert fuse_labelled(EMPTY, t) == t


class TestCorrectness:
    @given(json_values(), json_values())
    def test_membership_preserved(self, v1, v2):
        schema = fuse_labelled(infer_type(v1), infer_type(v2))
        assert matches(v1, schema)
        assert matches(v2, schema)

    @given(st.lists(json_records, max_size=6))
    def test_schema_admits_every_record(self, records):
        schema = infer_schema_labelled(records)
        assert all(matches(r, schema) for r in records)

    @given(st.lists(json_records, max_size=6))
    def test_l_schema_below_k_schema(self, records):
        assert is_subtype(
            infer_schema_labelled(records), infer_schema(records)
        )


class TestPrecisionGain:
    def test_l_fusion_improves_record_precision(self):
        """The headline trade: keeping shapes separate restores the field
        correlations K-fusion throws away."""
        from random import Random

        from repro.core.generator import generate_value

        values = [{"kind": "a", "payload": 1} if i % 2 else
                  {"kind": "b", "note": "x", "extra": True}
                  for i in range(40)]
        distinct = list(dict.fromkeys(infer_type(v) for v in values))

        def sampled_precision(schema):
            hits = 0
            for seed in range(100):
                sample = generate_value(schema, Random(seed))
                hits += any(matches(sample, t) for t in distinct)
            return hits / 100

        k_precision = sampled_precision(infer_schema(values))
        l_precision = sampled_precision(infer_schema_labelled(values))
        assert l_precision == 1.0
        assert k_precision < l_precision
