"""The compact summary wire format (kernel encode/decode round trip).

Contracts pinned here:

* **Round trip** — ``decode_summary(encode_summary(s)) == s`` for
  summaries over arbitrary JSON values and arbitrary normal-form types,
  quarantine records and timings included.
* **Canonical adoption** — decoding *into* an accumulator builds the
  types canonical in its interner: decoding twice yields
  pointer-identical nodes, and adoption through ``add_summary`` gives
  the same merged result as adopting the un-encoded summary.
* **Task equivalence** — every partition task returns bit-identical
  results with ``wire=True``, so the scheduler seam can flip freely.
* **Versioning** — payloads with a foreign version tag or mangled bytes
  are rejected with ``ValueError``, never misdecoded.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.inference.kernel import (
    WIRE_FORMAT_VERSION,
    PartitionAccumulator,
    accumulate_ndjson_partition,
    accumulate_ndjson_split,
    accumulate_partition,
    decode_summary,
    decode_summary_light,
    encode_summary,
    type_digest,
)
from repro.jsonio.splits import plan_splits
from tests.conftest import json_values, make_corpus, normal_types, write_corpus

json_value_lists = st.lists(json_values(10), max_size=30)


class TestRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(values=json_value_lists)
    def test_value_summaries_round_trip(self, values):
        summary = accumulate_partition(values)
        payload = encode_summary(summary)
        assert isinstance(payload, bytes)
        assert decode_summary(payload) == summary

    @settings(max_examples=50, deadline=None)
    @given(types=st.lists(normal_types(10), min_size=1, max_size=10))
    def test_type_summaries_round_trip(self, types):
        acc = PartitionAccumulator()
        for t in types:
            acc.add_type(t)
        summary = acc.summary()
        assert decode_summary(encode_summary(summary)) == summary

    def test_quarantine_and_telemetry_ride_along(self, tmp_path):
        path = tmp_path / "dirty.ndjson"
        path.write_text('{"a": 1}\nnope\n{"a": "x"}\n')
        payload = accumulate_ndjson_partition(
            [(1, '{"a": 1}'), (2, "nope"), (3, '{"a": "x"}')],
            source=str(path), permissive=True, collect_timings=True,
            warm_generation=1, wire=True,
        )
        summary = decode_summary(payload)
        assert summary.record_count == 2
        assert [b.line_number for b in summary.skipped] == [2]
        assert summary.timings is not None
        assert summary.worker
        assert summary.warm_reused is False


class TestCanonicalAdoption:
    @settings(max_examples=25, deadline=None)
    @given(values=json_value_lists)
    def test_decode_with_accumulator_equal(self, values):
        summary = accumulate_partition(values)
        payload = encode_summary(summary)
        acc = PartitionAccumulator()
        assert decode_summary(payload, acc) == summary

    def test_decoded_nodes_are_pointer_canonical(self):
        summary = accumulate_partition(make_corpus(500, seed=3))
        payload = encode_summary(summary)
        acc = PartitionAccumulator()
        first = decode_summary(payload, acc)
        second = decode_summary(payload, acc)
        assert first.schema is second.schema
        assert all(
            a is b
            for a, b in zip(first.distinct_types, second.distinct_types)
        )

    def test_adoption_matches_plain_add_summary(self):
        summary = accumulate_partition(make_corpus(400, seed=9))
        via_wire = PartitionAccumulator()
        via_wire.add_summary(
            decode_summary(encode_summary(summary), via_wire)
        )
        plain = PartitionAccumulator()
        plain.add_summary(summary)
        assert via_wire.schema == plain.schema
        assert via_wire.record_count == plain.record_count
        assert via_wire.distinct_type_count == plain.distinct_type_count


class TestTaskEquivalence:
    def test_split_task_wire_equivalence(self, tmp_path):
        path = tmp_path / "corpus.ndjson"
        write_corpus(path, make_corpus(600, seed=21))
        for split in plan_splits(path, 4, min_split_bytes=1):
            wired = decode_summary(
                accumulate_ndjson_split(split, wire=True)
            )
            assert wired == accumulate_ndjson_split(split)

    def test_partition_task_wire_equivalence(self, tmp_path):
        lines = [
            (i + 1, line)
            for i, line in enumerate(
                '{"id": %d, "v": [%d]}' % (i, i) for i in range(200)
            )
        ]
        wired = decode_summary(
            accumulate_ndjson_partition(list(lines), wire=True)
        )
        assert wired == accumulate_ndjson_partition(list(lines))


class TestVersioning:
    def test_foreign_version_rejected(self):
        summary = accumulate_partition([{"a": 1}])
        payload = pickle.loads(encode_summary(summary))
        bumped = (WIRE_FORMAT_VERSION + 1,) + payload[1:]
        with pytest.raises(ValueError, match="version"):
            decode_summary(pickle.dumps(bumped))

    def test_garbage_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            decode_summary(pickle.dumps(("not", "a", "summary")))

    def test_unknown_op_tag_rejected(self):
        summary = accumulate_partition([{"a": 1}])
        (version, keys, ops, *rest) = pickle.loads(encode_summary(summary))
        mangled = (version, keys, [99] + list(ops[1:]), *rest)
        with pytest.raises(ValueError):
            decode_summary(pickle.dumps(mangled))


class TestLightDecode:
    """The light decode must be an exact, cheaper view of the full one:
    same plain data and schema, and one :func:`type_digest` per distinct
    type — with digest equality coinciding with structural type equality,
    so a digest-set union counts distincts exactly."""

    @settings(max_examples=50, deadline=None)
    @given(values=json_value_lists)
    def test_matches_full_decode_on_values(self, values):
        summary = accumulate_partition(values)
        payload = encode_summary(summary)
        light, digests = decode_summary_light(payload)
        full = decode_summary(payload)
        assert light.schema == full.schema
        assert light.record_count == full.record_count
        assert light.skipped == full.skipped
        assert light.line_count == full.line_count
        assert light.distinct_types == ()
        assert len(digests) == len(full.distinct_types)
        memo = {}
        assert set(digests) == {
            type_digest(t, memo) for t in full.distinct_types
        }

    @settings(max_examples=50, deadline=None)
    @given(types=st.lists(normal_types(10), min_size=1, max_size=10))
    def test_matches_full_decode_on_arbitrary_types(self, types):
        acc = PartitionAccumulator()
        for t in types:
            acc.add_type(t)
        payload = encode_summary(acc.summary())
        light, digests = decode_summary_light(payload)
        full = decode_summary(payload)
        assert light.schema == full.schema
        memo = {}
        assert set(digests) == {
            type_digest(t, memo) for t in full.distinct_types
        }
        # Digest-set size IS the structural distinct count.
        assert len(set(digests)) == len(set(full.distinct_types))

    @settings(max_examples=60, deadline=None)
    @given(a=normal_types(8), b=normal_types(8))
    def test_digest_equality_is_type_equality(self, a, b):
        # Independently built (non-interned) trees: digests must agree
        # exactly when the types compare equal.
        assert (type_digest(a) == type_digest(b)) == (a == b)

    def test_light_rejects_garbage_and_foreign_versions(self):
        with pytest.raises(ValueError, match="malformed"):
            decode_summary_light(pickle.dumps(("not", "a", "summary")))
        payload = pickle.loads(
            encode_summary(accumulate_partition([{"a": 1}]))
        )
        bumped = (WIRE_FORMAT_VERSION + 1,) + payload[1:]
        with pytest.raises(ValueError, match="version"):
            decode_summary_light(pickle.dumps(bumped))
