"""Unit tests for value typing — the Map phase (repro.inference.infer)."""

import pytest
from hypothesis import given

from repro.core.errors import InvalidValueError
from repro.core.normal_form import is_normal
from repro.core.semantics import matches
from repro.core.type_parser import parse_type as p
from repro.core.types import (
    ArrayType,
    BOOL,
    NULL,
    NUM,
    RecordType,
    STR,
    StarArrayType,
    UnionType,
)
from repro.inference.infer import infer_type
from tests.conftest import json_values


class TestAtomRules:
    """The terminal rules of Fig. 4."""

    def test_null(self):
        assert infer_type(None) == NULL

    def test_booleans(self):
        assert infer_type(True) == BOOL
        assert infer_type(False) == BOOL

    def test_numbers(self):
        assert infer_type(0) == NUM
        assert infer_type(-3) == NUM
        assert infer_type(2.5) == NUM

    def test_bool_is_not_num(self):
        """bool subclasses int in Python; the rule order must shield it."""
        assert infer_type(True) == BOOL != NUM

    def test_strings(self):
        assert infer_type("") == STR
        assert infer_type("abc") == STR


class TestRecordRule:
    def test_empty_record(self):
        assert infer_type({}) == p("{}")

    def test_fields_all_mandatory(self):
        t = infer_type({"a": 1, "b": "x"})
        assert all(not f.optional for f in t.fields)

    def test_nested(self):
        assert infer_type({"a": {"b": None}}) == p("{a: {b: Null}}")

    def test_key_order_irrelevant(self):
        assert infer_type({"a": 1, "b": 2}) == infer_type({"b": 2, "a": 1})

    def test_non_string_key_rejected(self):
        with pytest.raises(InvalidValueError):
            infer_type({1: "x"})


class TestArrayRule:
    def test_empty_array(self):
        assert infer_type([]) == ArrayType(())

    def test_elements_in_order(self):
        assert infer_type([1, "x", None]) == p("[Num, Str, Null]")

    def test_mixed_content(self):
        """The Section 2 example: two strings then a record."""
        value = ["abc", "cde", {"E": "fr", "F": 12}]
        assert infer_type(value) == p("[Str, Str, {E: Str, F: Num}]")

    def test_repeated_types_not_collapsed(self):
        """Initial inference is isomorphic: no star types yet (Section 5.1)."""
        t = infer_type([1, 2, 3])
        assert t == p("[Num, Num, Num]")
        assert not isinstance(t, StarArrayType)


class TestInvalidInputs:
    @pytest.mark.parametrize("value", [(1, 2), {1, 2}, b"x", object()])
    def test_non_json_rejected(self, value):
        with pytest.raises(InvalidValueError):
            infer_type(value)

    @pytest.mark.parametrize("wrap", [
        lambda inner: [inner],
        lambda inner: {"k": inner},
    ])
    def test_deep_nesting_raises_invalid_value(self, wrap):
        """Regression: a value nested beyond the recursion limit used to
        escape as a bare RecursionError from mid-descent; it must surface
        as a clear InvalidValueError instead."""
        import sys

        value = None
        for _ in range(sys.getrecursionlimit() * 2):
            value = wrap(value)
        with pytest.raises(InvalidValueError, match="nested too deeply"):
            infer_type(value)

    def test_reasonable_nesting_still_types(self):
        value = None
        for _ in range(50):
            value = [value]
        infer_type(value)  # must not raise


class TestFigure1StyleRecord:
    def test_realistic_record(self):
        value = {
            "name": "ada",
            "age": 36,
            "verified": True,
            "tags": ["x", "y"],
            "address": {"city": "london", "zip": None},
        }
        expected = p(
            "{address: {city: Str, zip: Null}, age: Num, name: Str,"
            " tags: [Str, Str], verified: Bool}"
        )
        assert infer_type(value) == expected


class TestSoundnessLemma:
    """Lemma 5.1: V |- T implies V in [[T]]."""

    @given(json_values())
    def test_inferred_type_admits_value(self, value):
        assert matches(value, infer_type(value))

    @given(json_values())
    def test_inferred_type_is_normal(self, value):
        assert is_normal(infer_type(value))

    @given(json_values())
    def test_no_unions_optionals_or_stars_inferred(self, value):
        """Section 5.1: the Map phase never uses the full expressivity."""
        def check(t):
            assert not isinstance(t, (UnionType, StarArrayType))
            if isinstance(t, RecordType):
                assert all(not f.optional for f in t.fields)
            for child in t.children():
                check(child)

        check(infer_type(value))

    @given(json_values())
    def test_deterministic(self, value):
        assert infer_type(value) == infer_type(value)
