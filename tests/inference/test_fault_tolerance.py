"""End-to-end fault tolerance of the inference pipelines.

Two contracts pinned here:

* **Fault transparency** — a run with K injected transient faults
  (K < max_retries per task) produces a schema *identical* to the
  fault-free run, on both scheduler backends.  Recomputation safety is the
  paper's associativity/commutativity of fusion (Section 5): re-running a
  partition cannot change the fused result.
* **Quarantine exactness** — permissive ingestion of a dirty file reports
  the exact number and location of skipped records, spills them to the
  sidecar verbatim, and strict mode still fails fast; the
  ``max_error_rate`` threshold aborts runs that are mostly garbage.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.printer import print_type
from repro.engine import Context, FaultPlan, RetryPolicy
from repro.engine.faults import Fault
from repro.engine.scheduler import BACKENDS
from repro.inference.pipeline import infer_ndjson_file, run_inference
from repro.jsonio.errors import ErrorRateExceeded, JsonSyntaxError
from repro.jsonio.ndjson import read_ndjson
from tests.conftest import json_values

#: Nonzero in the CI fault-injection job (see .github/workflows/ci.yml).
SEED = int(os.environ.get("REPRO_FAULT_SEED", "7"))

FAST_RETRY = RetryPolicy(max_retries=3, base_delay_s=0.001,
                         max_delay_s=0.01)

json_value_lists = st.lists(json_values(8), max_size=20)


class TestFaultTransparency:
    """Injected faults must never change the inferred schema."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=10, deadline=None)
    @given(values=json_value_lists, seed_offset=st.integers(0, 3))
    def test_schema_identical_under_transient_faults(
        self, backend, values, seed_offset
    ):
        baseline = run_inference(values).schema
        # K faults per task with K (= max_attempt + 1 = 2) < max_retries.
        plan = FaultPlan.random_plan(
            SEED + seed_offset, num_partitions=4, rate=0.5, max_attempt=1
        )
        with Context(parallelism=2, backend=backend,
                     retry_policy=FAST_RETRY, fault_plan=plan) as ctx:
            faulty = run_inference(values, context=ctx, num_partitions=4)
        assert faulty.schema == baseline
        assert print_type(faulty.schema) == print_type(baseline)
        assert faulty.record_count == len(values)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_schema_identical_under_worker_kills(self, backend):
        values = [{"a": i, "b": [i, str(i)]} for i in range(200)]
        baseline = run_inference(values).schema
        plan = FaultPlan((
            Fault(0, 0, kind="kill"),
            Fault(2, 0, kind="fail"),
            Fault(3, 1, kind="kill"),
        ))
        with Context(parallelism=2, backend=backend,
                     retry_policy=FAST_RETRY, fault_plan=plan) as ctx:
            faulty = run_inference(values, context=ctx, num_partitions=4)
        with Context(parallelism=2, backend=backend,
                     retry_policy=FAST_RETRY) as clean_ctx:
            clean = run_inference(values, context=clean_ctx, num_partitions=4)
        assert faulty.schema == baseline == clean.schema
        assert faulty.record_count == 200
        assert faulty.distinct_type_count == clean.distinct_type_count

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_permissive_file_run_identical_under_faults(
        self, backend, tmp_path
    ):
        path = tmp_path / "dirty.ndjson"
        lines = []
        for i in range(300):
            lines.append('{"a": %d}' % i if i % 50 else "oops")
        path.write_text("\n".join(lines) + "\n")
        baseline = infer_ndjson_file(path, permissive=True)
        plan = FaultPlan.transient_failures([0, 1, 2, 3])
        with Context(parallelism=2, backend=backend,
                     retry_policy=FAST_RETRY, fault_plan=plan) as ctx:
            faulty = infer_ndjson_file(path, context=ctx, num_partitions=4,
                                       permissive=True)
        assert faulty.schema == baseline.schema
        assert faulty.skipped_count == baseline.skipped_count == 6
        assert [b.line_number for b in faulty.bad_records] == \
            [b.line_number for b in baseline.bad_records]


def _write_dirty(path, total, bad_every):
    """Write ``total`` lines, every ``bad_every``-th one malformed;
    returns (bad_count, bad_line_numbers)."""
    bad_lines = []
    with open(path, "w", encoding="utf-8") as handle:
        for i in range(1, total + 1):
            if i % bad_every == 0:
                handle.write('{"id": %d, "broken":\n' % i)
                bad_lines.append(i)
            else:
                handle.write('{"id": %d, "tags": ["t%d"]}\n' % (i, i % 3))
    return len(bad_lines), bad_lines


class TestQuarantine:
    def test_100k_records_with_1_percent_malformed(self, tmp_path):
        """The acceptance scenario: 100k records, 1% malformed, permissive
        mode completes and reports the exact skip count; strict mode
        raises on the first bad line."""
        path = tmp_path / "big.ndjson"
        bad_count, bad_lines = _write_dirty(path, 100_000, bad_every=100)
        assert bad_count == 1000

        run = infer_ndjson_file(path, permissive=True)
        assert run.record_count == 99_000
        assert run.skipped_count == 1000
        assert run.skip_rate == pytest.approx(0.01)
        assert run.skip_summary() == "1000 records skipped (1.0%)"
        assert [b.line_number for b in run.bad_records] == bad_lines

        with pytest.raises(JsonSyntaxError) as excinfo:
            infer_ndjson_file(path)
        assert excinfo.value.line == bad_lines[0]
        assert str(path) in str(excinfo.value)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_parallel_quarantine_pins_counts_and_sidecar(
        self, backend, tmp_path
    ):
        path = tmp_path / "feed.ndjson"
        bad_count, bad_lines = _write_dirty(path, 400, bad_every=80)
        sidecar = tmp_path / "bad.ndjson"
        with Context(parallelism=2, backend=backend,
                     retry_policy=FAST_RETRY) as ctx:
            run = infer_ndjson_file(
                path, context=ctx, num_partitions=4, permissive=True,
                bad_records_path=sidecar,
            )
        assert run.record_count == 400 - bad_count
        assert run.skipped_count == bad_count
        assert sum(run.skipped_per_partition.values()) == bad_count

        rows = list(read_ndjson(sidecar))
        assert [r["line"] for r in rows] == bad_lines
        assert all(r["path"] == str(path) for r in rows)
        assert all(r["text"].startswith('{"id"') for r in rows)
        assert all("line" in r["error"] for r in rows)

    def test_max_error_rate_aborts(self, tmp_path):
        path = tmp_path / "garbage.ndjson"
        _write_dirty(path, 100, bad_every=4)  # 25% malformed
        with pytest.raises(ErrorRateExceeded) as excinfo:
            infer_ndjson_file(path, permissive=True, max_error_rate=0.01)
        assert excinfo.value.skipped == 25
        assert excinfo.value.total == 100
        assert excinfo.value.rate == pytest.approx(0.25)

    def test_max_error_rate_tolerates_below_threshold(self, tmp_path):
        path = tmp_path / "mostly-clean.ndjson"
        _write_dirty(path, 100, bad_every=100)  # 1% malformed
        run = infer_ndjson_file(path, permissive=True, max_error_rate=0.05)
        assert run.skipped_count == 1

    def test_sidecar_written_even_when_rate_aborts(self, tmp_path):
        path = tmp_path / "garbage.ndjson"
        _write_dirty(path, 40, bad_every=2)
        sidecar = tmp_path / "bad.ndjson"
        with pytest.raises(ErrorRateExceeded):
            infer_ndjson_file(path, permissive=True, max_error_rate=0.1,
                              bad_records_path=sidecar)
        assert len(list(read_ndjson(sidecar))) == 20

    def test_strict_mode_on_engine_also_raises(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        path.write_text('{"a":1}\n{"a":2}\nnope\n')
        with Context(parallelism=2, retry_policy=FAST_RETRY) as ctx:
            with pytest.raises(JsonSyntaxError, match="line 3"):
                infer_ndjson_file(path, context=ctx, num_partitions=2)


class TestSequentialStreaming:
    """The context-less file path streams the iterator straight through."""

    def test_empty_file_sequential(self, tmp_path):
        path = tmp_path / "empty.ndjson"
        path.write_text("")
        run = infer_ndjson_file(path)
        assert run.record_count == 0
        assert run.skipped_count == 0
        assert print_type(run.schema) == "(empty)"

    def test_sequential_path_does_not_materialise_lines(
        self, tmp_path, monkeypatch
    ):
        # Guard against regressing to `list(iter_numbered_lines(...))` in
        # the sequential path: the pipeline must hand the generator to the
        # accumulator as-is, never a materialised list.
        import repro.inference.pipeline as pipeline_mod

        path = tmp_path / "rows.ndjson"
        path.write_text('{"a": 1}\n{"a": 2}\n')
        seen = {}
        original = pipeline_mod.accumulate_ndjson_partition

        def spy(numbered_lines, **kwargs):
            seen["type"] = type(numbered_lines)
            return original(numbered_lines, **kwargs)

        monkeypatch.setattr(
            pipeline_mod, "accumulate_ndjson_partition", spy
        )
        run = infer_ndjson_file(path)
        assert run.record_count == 2
        assert seen["type"] not in (list, tuple)
