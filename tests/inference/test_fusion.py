"""Unit tests for type fusion — the Reduce phase (repro.inference.fusion).

Covers every line of Fig. 6, the auxiliary functions of Fig. 5, and all the
worked examples of Section 2.
"""

import pytest

from repro.core.errors import NormalizationError
from repro.core.kinds import Kind
from repro.core.type_parser import parse_type as p
from repro.core.types import (
    ArrayType,
    EMPTY,
    NUM,
    STR,
    StarArrayType,
    UnionType,
    make_star,
)
from repro.inference.fusion import (
    collapse,
    f_match,
    f_unmatch,
    fuse,
    fuse_all,
    k_match,
    k_unmatch,
    lfuse,
    simplify,
)
from repro.inference.infer import infer_type


class TestKMatchUnmatch:
    """Fig. 5: kind matching over union addends."""

    def test_match_pairs_by_kind(self):
        pairs = k_match(p("Num + Str"), p("Str + {a: Num}"))
        assert pairs == [(STR, STR)]

    def test_unmatch_collects_both_sides(self):
        rest = k_unmatch(p("Num + Str"), p("Str + {a: Num}"))
        assert NUM in rest
        assert p("{a: Num}") in rest
        assert STR not in rest

    def test_empty_type_has_no_addends(self):
        assert k_match(EMPTY, p("Num")) == []
        assert k_unmatch(EMPTY, p("Num")) == [NUM]

    def test_array_and_star_match_as_same_kind(self):
        pairs = k_match(p("[Num]"), p("[Str*]"))
        assert len(pairs) == 1

    def test_non_normal_input_rejected(self):
        bad = UnionType([p("{a: Num}"), p("{b: Num}")])
        with pytest.raises(NormalizationError):
            k_match(bad, NUM)


class TestFMatchUnmatch:
    """Fig. 5: key matching over record fields."""

    def test_matching_keys(self):
        r1, r2 = p("{a: Num, b: Str}"), p("{b: Bool, c: Str}")
        pairs = f_match(r1, r2)
        assert [(f1.name, f2.name) for f1, f2 in pairs] == [("b", "b")]

    def test_unmatched_fields(self):
        r1, r2 = p("{a: Num, b: Str}"), p("{b: Bool, c: Str}")
        assert sorted(f.name for f in f_unmatch(r1, r2)) == ["a", "c"]


class TestLFuseBasic:
    """Fig. 6 line 2."""

    def test_identical_basic(self):
        assert lfuse(NUM, NUM) == NUM
        assert lfuse(STR, STR) == STR

    def test_different_kinds_rejected(self):
        with pytest.raises(ValueError):
            lfuse(NUM, STR)
        with pytest.raises(ValueError):
            lfuse(NUM, p("{a: Num}"))


class TestLFuseRecords:
    """Fig. 6 line 3."""

    def test_paper_example_t12(self):
        """Section 2: {A: Str, B: Num} + {B: Bool, C: Str}."""
        t12 = lfuse(p("{A: Str, B: Num}"), p("{B: Bool, C: Str}"))
        assert t12 == p("{A: Str?, B: Bool + Num, C: Str?}")

    def test_paper_example_t123(self):
        """Section 2 continued: fusing T12 with {A: Null, B: Num}."""
        t12 = p("{A: Str?, B: Num + Bool, C: Str?}")
        t123 = lfuse(t12, p("{A: Null, B: Num}"))
        assert t123 == p("{A: (Null + Str)?, B: Bool + Num, C: Str?}")

    def test_optionality_prevails(self):
        """min(?, 1) = ? — optional wins on matched fields."""
        out = lfuse(p("{a: Num?}"), p("{a: Num}"))
        assert out.field("a").optional

    def test_mandatory_stays_when_both_mandatory(self):
        out = lfuse(p("{a: Num}"), p("{a: Num}"))
        assert not out.field("a").optional

    def test_unmatched_fields_become_optional(self):
        out = lfuse(p("{a: Num}"), p("{b: Str}"))
        assert out.field("a").optional and out.field("b").optional

    def test_empty_records(self):
        assert lfuse(p("{}"), p("{}")) == p("{}")

    def test_nested_record_example(self):
        """Section 2: fusing {l: Bool + Str + {A: Num}} with
        {l: {A: Num + Str, B: (Num)?}} style nested unions."""
        t1 = p("{l: Bool + Str + {A: Num}}")
        t2 = p("{l: {A: Str, B: Num}}")
        out = lfuse(t1, t2)
        assert out == p("{l: Bool + Str + {A: Num + Str, B: Num?}}")


class TestLFuseArrays:
    """Fig. 6 lines 4-7: all four positional/star combinations."""

    def test_two_positional(self):
        assert lfuse(p("[Num]"), p("[Str]")) == p("[(Num + Str)*]")

    def test_identical_positional_still_starred(self):
        """Fusing equal positional arrays yields the star form (line 4)."""
        assert lfuse(p("[Num]"), p("[Num]")) == p("[Num*]")

    def test_star_and_positional(self):
        assert lfuse(p("[Num*]"), p("[Str]")) == p("[(Num + Str)*]")

    def test_positional_and_star(self):
        assert lfuse(p("[Str]"), p("[Num*]")) == p("[(Num + Str)*]")

    def test_two_stars(self):
        assert lfuse(p("[Num*]"), p("[Num*]")) == p("[Num*]")
        assert lfuse(p("[Num*]"), p("[Str*]")) == p("[(Num + Str)*]")

    def test_empty_arrays(self):
        assert lfuse(p("[]"), p("[]")) == make_star(EMPTY)
        assert lfuse(p("[]"), p("[Num]")) == p("[Num*]")
        assert lfuse(make_star(EMPTY), p("[Num]")) == p("[Num*]")

    def test_record_elements_fused(self):
        out = lfuse(p("[{a: Num}]"), p("[{b: Str}]"))
        assert out == p("[{a: Num?, b: Str?}*]")


class TestCollapse:
    """Fig. 6 lines 8-9 and the Section 2/5.2 examples."""

    def test_empty(self):
        assert collapse(ArrayType(())) == EMPTY

    def test_single(self):
        assert collapse(p("[Num]")) == NUM

    def test_repeated_atoms(self):
        assert collapse(p("[Num, Num, Num]")) == NUM

    def test_mixed_atoms(self):
        assert collapse(p("[Num, Bool, Num]")) == p("Bool + Num")

    def test_paper_section52_example(self):
        """collapse([Num, Bool, Num, {l1,l2}, {l1,l2,l3}]) from Section 5.2."""
        t = p(
            "[Num, Bool, Num, {l1: Num, l2: Str},"
            " {l1: Num, l2: Bool, l3: Str}]"
        )
        got = collapse(t)
        assert got == p("Bool + Num + {l1: Num, l2: Bool + Str, l3: Str?}")

    def test_mixed_content_example(self):
        """Section 2: ["abc", "cde", {E, F}] simplifies position-insensitively."""
        t1 = infer_type(["abc", "cde", {"E": "fr", "F": 12}])
        t2 = infer_type([{"E": "fr", "F": 12}, "abc", "cde"])
        expected = p("Str + {E: Str, F: Num}")
        assert collapse(t1) == expected
        assert collapse(t2) == expected

    def test_nested_arrays_collapse_recursively_on_fusion(self):
        got = collapse(p("[[Num], [Str]]"))
        assert got == p("[(Num + Str)*]")


class TestFuse:
    """Fig. 6 line 1: the top-level operator."""

    def test_different_kinds_union(self):
        assert fuse(NUM, STR) == p("Num + Str")

    def test_same_kind_lfused(self):
        assert fuse(p("{a: Num}"), p("{b: Num}")) == p("{a: Num?, b: Num?}")

    def test_empty_is_neutral(self):
        t = p("{a: Num + Str}")
        assert fuse(t, EMPTY) == t
        assert fuse(EMPTY, t) == t
        assert fuse(EMPTY, EMPTY) == EMPTY

    def test_union_inputs_matched_by_kind(self):
        out = fuse(p("Num + {a: Str}"), p("Str + {b: Bool}"))
        assert out == p("Num + Str + {a: Str?, b: Bool?}")

    def test_six_kind_union_saturates(self):
        t1 = p("Null + Bool + Num + Str + {a: Num} + [Str*]")
        t2 = p("Null + Bool + Num + Str + {b: Num} + [Num*]")
        out = fuse(t1, t2)
        assert len(out.addends()) == 6

    def test_fuse_identical_record_is_identity(self):
        t = p("{a: Num, b: [Str*]}")
        assert fuse(t, t) == t

    def test_fuse_identical_positional_arrays_not_identity(self):
        """The fast path must not skip array simplification."""
        t = p("{a: [Num]}")
        assert fuse(t, t) == p("{a: [Num*]}")


class TestFuseAll:
    def test_empty_collection(self):
        assert fuse_all([]) == EMPTY

    def test_singleton(self):
        assert fuse_all([NUM]) == NUM

    def test_many(self):
        out = fuse_all([p("{a: Num}"), p("{b: Str}"), p("{a: Bool}")])
        assert out == p("{a: (Bool + Num)?, b: Str?}")


class TestSimplify:
    def test_atoms_unchanged(self):
        assert simplify(NUM) == NUM
        assert simplify(EMPTY) == EMPTY

    def test_positional_becomes_star(self):
        assert simplify(p("[Num, Str]")) == p("[(Num + Str)*]")

    def test_recurses_into_records(self):
        assert simplify(p("{a: [Num, Num]}")) == p("{a: [Num*]}")

    def test_recurses_into_star_bodies(self):
        assert simplify(p("[[Num]*]")) == p("[[Num*]*]")

    def test_recurses_into_unions(self):
        assert simplify(p("Num + [Str, Str]")) == p("Num + [Str*]")

    def test_result_has_no_positional_arrays(self):
        t = p("{a: [Num, [Str], {b: [Bool, Null]}]}")
        assert not simplify(t).has_positional_array
