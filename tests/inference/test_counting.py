"""Unit tests for the statistics enrichment (repro.inference.counting)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.kinds import Kind
from repro.inference.counting import (
    FieldPresence,
    StatisticsCollector,
    presence_report,
)
from repro.inference.pipeline import infer_schema
from tests.conftest import json_records

RECORDS = [
    {"a": 1, "b": "x"},
    {"a": "y"},
    {"a": None, "b": "z", "c": {"d": [1, 2]}},
]


class TestStatisticsCollector:
    def test_record_count(self):
        stats = StatisticsCollector()
        stats.observe_many(RECORDS)
        assert stats.record_count == 3

    def test_path_counts(self):
        stats = StatisticsCollector()
        stats.observe_many(RECORDS)
        assert stats.path_counts["$"] == 3
        assert stats.path_counts["$.a"] == 3
        assert stats.path_counts["$.b"] == 2
        assert stats.path_counts["$.c.d"] == 1
        assert stats.path_counts["$.c.d[*]"] == 2  # two array items

    def test_kind_counts(self):
        stats = StatisticsCollector()
        stats.observe_many(RECORDS)
        assert stats.kind_counts[("$.a", Kind.NUM)] == 1
        assert stats.kind_counts[("$.a", Kind.STR)] == 1
        assert stats.kind_counts[("$.a", Kind.NULL)] == 1

    def test_presence_ratio(self):
        stats = StatisticsCollector()
        stats.observe_many(RECORDS)
        assert stats.presence_ratio("$.b") == pytest.approx(2 / 3)
        assert stats.presence_ratio("$.missing") == 0.0

    def test_presence_ratio_empty_collector(self):
        assert StatisticsCollector().presence_ratio("$.a") == 0.0

    def test_non_json_value_rejected(self):
        with pytest.raises(TypeError):
            StatisticsCollector().observe(object())

    def test_merge_adds_counts(self):
        left, right = StatisticsCollector(), StatisticsCollector()
        left.observe(RECORDS[0])
        right.observe_many(RECORDS[1:])
        merged = left.merge(right)
        assert merged.record_count == 3
        assert merged.path_counts["$.a"] == 3

    def test_merge_leaves_inputs_unchanged(self):
        left, right = StatisticsCollector(), StatisticsCollector()
        left.observe(RECORDS[0])
        right.observe(RECORDS[1])
        left.merge(right)
        assert left.record_count == 1

    @given(st.lists(json_records, max_size=6), st.integers(0, 6))
    def test_merge_equals_single_pass(self, records, cut):
        cut = min(cut, len(records))
        left, right = StatisticsCollector(), StatisticsCollector()
        left.observe_many(records[:cut])
        right.observe_many(records[cut:])
        single = StatisticsCollector()
        single.observe_many(records)
        merged = left.merge(right)
        assert merged.path_counts == single.path_counts
        assert merged.kind_counts == single.kind_counts


class TestArrayLengthStats:
    def observe_all(self, values):
        stats = StatisticsCollector()
        stats.observe_many(values)
        return stats

    def test_lengths_tracked_per_path(self):
        stats = self.observe_all([
            {"xs": [1, 2, 3]}, {"xs": []}, {"xs": [4]},
        ])
        lengths = stats.array_lengths["$.xs"]
        assert lengths.count == 3
        assert lengths.min_length == 0
        assert lengths.max_length == 3
        assert lengths.total_elements == 4

    def test_mean_length(self):
        stats = self.observe_all([{"xs": [1, 2]}, {"xs": [3, 4, 5, 6]}])
        assert stats.array_lengths["$.xs"].mean_length == 3.0

    def test_nested_array_paths(self):
        stats = self.observe_all([{"m": [[1], [2, 3]]}])
        assert stats.array_lengths["$.m"].count == 1
        assert stats.array_lengths["$.m[*]"].count == 2
        assert stats.array_lengths["$.m[*]"].max_length == 2

    def test_no_arrays_no_stats(self):
        stats = self.observe_all([{"a": 1}])
        assert stats.array_lengths == {}

    def test_merge_combines_length_stats(self):
        left = self.observe_all([{"xs": [1]}])
        right = self.observe_all([{"xs": [1, 2, 3]}, {"ys": []}])
        merged = left.merge(right)
        assert merged.array_lengths["$.xs"].count == 2
        assert merged.array_lengths["$.xs"].max_length == 3
        assert merged.array_lengths["$.ys"].count == 1

    def test_merge_with_empty_side(self):
        left = StatisticsCollector()
        right = self.observe_all([{"xs": [1, 2]}])
        merged = left.merge(right)
        assert merged.array_lengths["$.xs"].count == 1
        assert merged.array_lengths["$.xs"].min_length == 2

    def test_empty_stats_mean_is_zero(self):
        from repro.inference.counting import ArrayLengthStats

        assert ArrayLengthStats().mean_length == 0.0


class TestPresenceReport:
    def make(self):
        stats = StatisticsCollector()
        stats.observe_many(RECORDS)
        return presence_report(infer_schema(RECORDS), stats)

    def test_mandatory_field_has_ratio_one(self):
        report = {e.path: e for e in self.make()}
        assert report["$.a"].ratio == 1.0
        assert not report["$.a"].optional

    def test_optional_field_ratio_below_one(self):
        report = {e.path: e for e in self.make()}
        entry = report["$.b"]
        assert entry.optional
        assert entry.ratio == pytest.approx(2 / 3)

    def test_nested_fields_relative_to_parent(self):
        report = {e.path: e for e in self.make()}
        # c occurs once; within that one record, d always occurs.
        assert report["$.c.d"].ratio == 1.0

    def test_ratio_with_no_parent_occurrences(self):
        entry = FieldPresence(path="$.x", optional=True,
                              occurrences=0, parent_occurrences=0)
        assert entry.ratio == 0.0

    @given(st.lists(json_records, min_size=1, max_size=6))
    def test_report_consistent_with_schema_optionality(self, records):
        """A field the schema calls mandatory is present in every record
        in which its parent is a record."""
        stats = StatisticsCollector()
        stats.observe_many(records)
        for entry in presence_report(infer_schema(records), stats):
            if not entry.optional:
                assert entry.occurrences == entry.parent_occurrences
