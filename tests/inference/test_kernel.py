"""Tests for the streaming partition kernel (repro.inference.kernel).

The kernel's contract is *exactness*: for any input, its schema, record
count and distinct-type count must equal (plain ``==``) the naive
``fuse_all(infer_type(v) for v in values)`` path.  The property tests here
fuzz that contract on arbitrary JSON, and the backend tests check that the
thread and process pools agree with the local path bit for bit.
"""

from __future__ import annotations

import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidValueError
from repro.core.interning import TypeInterner
from repro.core.types import EMPTY
from repro.datasets import generate_list
from repro.datasets.base import DATASET_NAMES
from repro.engine import Context
from repro.inference.fusion import fuse, fuse_all
from repro.inference.infer import infer_type
from repro.inference.kernel import (
    FusionMemo,
    PartitionAccumulator,
    accumulate_partition,
    merge_summaries,
)
from repro.inference.pipeline import run_inference
from tests.conftest import json_values, normal_types

json_value_lists = st.lists(json_values(12), max_size=25)


def naive(values):
    """The reference pipeline: materialise, fuse, count, dedupe."""
    types = [infer_type(v) for v in values]
    return fuse_all(types), len(types), len(set(types))


class TestAccumulatorMatchesNaive:
    @given(json_value_lists)
    def test_schema_count_distinct(self, values):
        acc = PartitionAccumulator()
        acc.add_many(values)
        schema, count, distinct = naive(values)
        assert acc.schema == schema
        assert acc.record_count == count
        assert acc.distinct_type_count == distinct

    @given(json_value_lists, st.integers(min_value=1, max_value=4))
    def test_partitioned_merge_matches_naive(self, values, num_partitions):
        """Splitting arbitrarily and merging summaries changes nothing —
        the practical face of associativity (Theorem 5.5)."""
        parts = [values[i::num_partitions] for i in range(num_partitions)]
        summaries = [accumulate_partition(p) for p in parts]
        schema, count, distinct = merge_summaries(summaries)
        want_schema, want_count, want_distinct = naive(values)
        assert schema == want_schema
        assert count == want_count
        assert distinct == want_distinct

    def test_empty_accumulator(self):
        acc = PartitionAccumulator()
        assert acc.schema == EMPTY
        assert acc.record_count == 0
        assert acc.distinct_type_count == 0
        summary = acc.summary()
        assert summary.schema == EMPTY
        assert summary.distinct_types == ()

    def test_add_type_fuses_without_distinct(self):
        acc = PartitionAccumulator()
        acc.add({"a": 1})
        other = PartitionAccumulator()
        other.add({"b": "x"})
        acc.add_type(other.schema, records=other.record_count)
        assert acc.record_count == 2
        assert acc.distinct_type_count == 1  # only the directly-seen value
        assert acc.schema == fuse(infer_type({"a": 1}), infer_type({"b": "x"}))

    def test_distinct_types_first_seen_order(self):
        acc = PartitionAccumulator()
        acc.add_many([1, "a", 1, None, "b"])
        assert acc.distinct_types() == (
            infer_type(1), infer_type("a"), infer_type(None),
        )


class TestFusionMemo:
    @given(normal_types(), normal_types())
    def test_matches_reference_fuse(self, a, b):
        interner = TypeInterner()
        memo = FusionMemo(interner)
        assert memo.fuse(interner.intern(a), interner.intern(b)) == fuse(a, b)

    def test_repeat_fusions_hit_the_cache(self):
        # Alternating shapes: the running schema stabilises after one of
        # each, then every further record repeats the same (schema, type)
        # pair.  (Fully homogeneous data never reaches the memo at all —
        # the `a is b` identity fast path answers first.)
        acc = PartitionAccumulator()
        acc.add_many(
            {"a": 1} if i % 2 else {"b": "x"} for i in range(50)
        )
        assert acc.memo.hit_rate > 0.5
        assert len(acc.memo) >= 1

    def test_positional_arrays_not_identity_fused(self):
        """fuse is not idempotent on positional arrays ([Num, Num] with
        itself gives [Num*]); the pointer fast path must not swallow it."""
        interner = TypeInterner()
        memo = FusionMemo(interner)
        arr = interner.intern(infer_type([1, 2]))
        assert memo.fuse(arr, arr) == fuse(arr, arr) != arr


class TestBackendsAgree:
    @pytest.fixture(scope="class")
    def process_ctx(self):
        with Context(parallelism=2, backend="process") as ctx:
            yield ctx

    @pytest.fixture(scope="class")
    def thread_ctx(self):
        with Context(parallelism=2, backend="thread") as ctx:
            yield ctx

    @settings(max_examples=15)
    @given(values=json_value_lists)
    def test_thread_process_local_identical(
        self, values, thread_ctx, process_ctx
    ):
        local = run_inference(values)
        threaded = run_inference(values, context=thread_ctx, num_partitions=2)
        processed = run_inference(values, context=process_ctx,
                                  num_partitions=2)
        for run in (threaded, processed):
            assert run.schema == local.schema
            assert run.record_count == local.record_count
            assert run.distinct_type_count == local.distinct_type_count


class TestKernelMatchesLegacyOnDatasets:
    """Acceptance: bit-identical InferenceRun results on all four
    synthetic datasets, kernel vs. the legacy quad-pass path."""

    @pytest.mark.parametrize("name", sorted(DATASET_NAMES))
    def test_bit_identical(self, name):
        values = generate_list(name, 120)
        with Context(parallelism=2) as ctx:
            legacy = run_inference(values, context=ctx, num_partitions=2,
                                   kernel=False)
            streaming = run_inference(values, context=ctx, num_partitions=2,
                                      kernel=True)
        assert streaming.schema == legacy.schema
        assert streaming.record_count == legacy.record_count == 120
        assert streaming.distinct_type_count == legacy.distinct_type_count


class TestInvalidValues:
    def test_non_json_value(self):
        acc = PartitionAccumulator()
        with pytest.raises(InvalidValueError, match="not a JSON value"):
            acc.add({1, 2})

    def test_non_string_key(self):
        acc = PartitionAccumulator()
        with pytest.raises(InvalidValueError, match="non-string record key"):
            acc.add({1: "x"})

    def test_failed_add_leaves_counts_untouched(self):
        acc = PartitionAccumulator()
        acc.add({"a": 1})
        with pytest.raises(InvalidValueError):
            acc.add(object())
        assert acc.record_count == 1
        assert acc.distinct_type_count == 1

    def test_deep_nesting_raises_invalid_value(self):
        value = None
        for _ in range(sys.getrecursionlimit() * 2):
            value = [value]
        acc = PartitionAccumulator()
        with pytest.raises(InvalidValueError, match="nested too deeply"):
            acc.add(value)

    def test_subclasses_of_builtins(self):
        import collections

        class MyList(list):
            pass

        acc = PartitionAccumulator()
        acc.add(collections.OrderedDict(a=MyList([True, 1])))
        assert acc.schema == infer_type({"a": [True, 1]})
