"""Cache transparency: a warm summary cache must change *nothing* but time.

Property under test (the tentpole's correctness bar): mutate exactly one
split between two runs and the warm re-run must (a) replay every other
split from the cache — exactly ``n_splits - 1`` hits, one miss — and
(b) produce observables byte-identical to a fresh uncached run over the
mutated file: printed schema, record/skip counts, and quarantine records
with absolute line numbers.  Holds across both scheduler backends and
both split modes.

Corruption must degrade to recomputation, never to wrong results: a
truncated or bit-flipped entry is a miss, and the recomputed run is
byte-identical to uncached.
"""

import pytest

from repro.core.printer import print_type
from repro.engine import Context
from repro.inference.pipeline import infer_ndjson_file
from repro.jsonio.blockscan import split_content_span
from repro.jsonio.splits import plan_splits

MIN_SPLIT = 1 << 10
N_PARTS = 8


def corpus(tmp_path, n=600):
    """Fixed-width NDJSON (every line 23 bytes): mutations can change
    content without moving any byte offset, so split boundaries — and
    therefore cache keys of untouched splits — stay put."""
    rows = []
    for i in range(n):
        if i % 37 == 9:
            rows.append(b'{"s": "%06d", "n": !}' % i)  # malformed, same width
        else:
            rows.append(b'{"s": "%06d", "n": %d}' % (i, i % 10))
    assert len({len(r) for r in rows}) == 1
    path = tmp_path / "cache_corpus.ndjson"
    path.write_bytes(b"\n".join(rows) + b"\n")
    return str(path)


def observables(run):
    return (
        print_type(run.schema),
        run.record_count,
        run.distinct_type_count,
        run.skipped_count,
        [(b.line_number, b.error, b.text) for b in run.bad_records],
    )


def mutate_one_split(path, k):
    """Flip one byte that exactly one split's dependency span covers.

    Toggles the width-stable ``"n"`` field of a line strictly inside
    split ``k``'s exclusive region (outside the boundary overlap with
    its neighbours) between a digit and ``!`` — flipping a record
    between good and quarantined without moving a single offset.
    """
    data = bytearray(open(path, "rb").read())
    splits = plan_splits(path, N_PARTS, min_split_bytes=MIN_SPLIT, stable=True)
    spans = [split_content_span(bytes(data), s) for s in splits]
    lo, hi = spans[k]
    if k > 0:
        lo = max(lo, spans[k - 1][1])
    if k + 1 < len(spans):
        hi = min(hi, spans[k + 1][0])
    start = data.index(b"\n", lo) + 1
    end = data.index(b"\n", start)
    assert lo < start and end < hi, "no full line inside the exclusive region"
    flip = end - 2  # the "n" field's value byte, two before the newline
    data[flip] = ord("!") if chr(data[flip]).isdigit() else ord("7")
    with open(path, "wb") as handle:
        handle.write(data)
    return len(splits)


def cached_run(path, backend, split_mode, cache_dir, **kwargs):
    with Context(parallelism=4, backend=backend) as ctx:
        run = infer_ndjson_file(
            path,
            context=ctx,
            num_partitions=N_PARTS,
            permissive=True,
            split_mode=split_mode,
            min_split_bytes=MIN_SPLIT,
            summary_cache=cache_dir,
            **kwargs,
        )
        stats = ctx.scheduler.stats
        counters = (stats.cache_hits, stats.cache_misses, stats.cache_stores)
    return run, counters


def uncached_run(path, split_mode):
    with Context(parallelism=4, backend="thread") as ctx:
        return infer_ndjson_file(
            path,
            context=ctx,
            num_partitions=N_PARTS,
            permissive=True,
            split_mode=split_mode,
            min_split_bytes=MIN_SPLIT,
        )


class TestSingleSplitMutation:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("split_mode", ["bytes", "lines"])
    def test_one_miss_rest_hits_and_identical_output(
        self, tmp_path, backend, split_mode
    ):
        path = corpus(tmp_path)
        cache_dir = tmp_path / "cache"

        _, (hits, cold_misses, stores) = cached_run(
            path, backend, split_mode, cache_dir
        )
        # Every partition misses and is stored, plus one run-level
        # (whole-plan) entry for future identical-content replays.
        assert hits == 0 and stores == cold_misses + 1 and cold_misses > 1

        n_splits = mutate_one_split(path, k=len(
            plan_splits(path, N_PARTS, min_split_bytes=MIN_SPLIT, stable=True)
        ) // 2)
        if split_mode == "bytes":
            assert cold_misses == n_splits

        warm, (hits, misses, stores) = cached_run(
            path, backend, split_mode, cache_dir
        )
        assert misses == 1 and stores == 2  # the split + the new run entry
        assert hits == cold_misses - 1
        assert observables(warm) == observables(uncached_run(path, split_mode))

    def test_every_split_index(self, tmp_path):
        # Walk the mutation across every split, warming as we go: each
        # round must miss exactly the split mutated since the last run.
        path = corpus(tmp_path)
        cache_dir = tmp_path / "cache"
        _, (_, total, _) = cached_run(path, "thread", "bytes", cache_dir)
        n_splits = len(
            plan_splits(path, N_PARTS, min_split_bytes=MIN_SPLIT, stable=True)
        )
        assert total == n_splits
        for k in range(n_splits):
            mutate_one_split(path, k)
            warm, (hits, misses, _) = cached_run(
                path, "thread", "bytes", cache_dir
            )
            assert (hits, misses) == (n_splits - 1, 1), f"split {k}"
            assert observables(warm) == observables(
                uncached_run(path, "bytes")
            )

    def test_unchanged_rerun_is_all_hits(self, tmp_path):
        path = corpus(tmp_path)
        cache_dir = tmp_path / "cache"
        cold, (_, total, _) = cached_run(path, "thread", "bytes", cache_dir)
        warm, (hits, misses, stores) = cached_run(
            path, "thread", "bytes", cache_dir
        )
        assert (hits, misses, stores) == (total, 0, 0)
        assert observables(warm) == observables(cold)


class TestCorruptionFallback:
    def _partition_entries(self, cache_dir):
        return sorted(
            entry
            for entry in (cache_dir / "objects").glob("*/*.sum")
            if not entry.name.endswith("-run.sum")
        )

    def _run_entries(self, cache_dir):
        return sorted((cache_dir / "objects").glob("*/*-run.sum"))

    def test_bit_flipped_entry_recomputes(self, tmp_path):
        path = corpus(tmp_path)
        cache_dir = tmp_path / "cache"
        cold, (_, total, _) = cached_run(path, "thread", "bytes", cache_dir)
        # Flip a bit in one partition entry and in the run-level entry:
        # both must classify as misses, and the per-partition fallback
        # must recompute exactly the broken split.
        for victim in (
            self._partition_entries(cache_dir)[total // 2],
            self._run_entries(cache_dir)[0],
        ):
            blob = bytearray(victim.read_bytes())
            blob[-5] ^= 0x10
            victim.write_bytes(bytes(blob))

        warm, (hits, misses, stores) = cached_run(
            path, "thread", "bytes", cache_dir
        )
        assert (hits, misses, stores) == (total - 1, 1, 2)
        assert observables(warm) == observables(cold)

    def test_truncated_entry_recomputes(self, tmp_path):
        path = corpus(tmp_path)
        cache_dir = tmp_path / "cache"
        cold, (_, total, _) = cached_run(path, "thread", "bytes", cache_dir)
        self._run_entries(cache_dir)[0].unlink()
        victim = self._partition_entries(cache_dir)[0]
        victim.write_bytes(victim.read_bytes()[:20])

        warm, (hits, misses, _) = cached_run(
            path, "thread", "bytes", cache_dir
        )
        assert (hits, misses) == (total - 1, 1)
        assert observables(warm) == observables(cold)

    def test_corrupt_run_entry_falls_back_to_partition_hits(self, tmp_path):
        path = corpus(tmp_path)
        cache_dir = tmp_path / "cache"
        cold, (_, total, _) = cached_run(path, "thread", "bytes", cache_dir)
        run_entry = self._run_entries(cache_dir)[0]
        run_entry.write_bytes(b"garbage")

        warm, (hits, misses, stores) = cached_run(
            path, "thread", "bytes", cache_dir
        )
        # All partitions replay; the run entry is re-stored for next time.
        assert (hits, misses, stores) == (total, 0, 1)
        assert observables(warm) == observables(cold)

    def test_all_entries_garbage_recomputes_everything(self, tmp_path):
        path = corpus(tmp_path)
        cache_dir = tmp_path / "cache"
        cold, (_, total, _) = cached_run(path, "thread", "bytes", cache_dir)
        for entry in (cache_dir / "objects").glob("*/*.sum"):
            entry.write_bytes(b"not a cache entry")

        warm, (hits, misses, _) = cached_run(
            path, "thread", "bytes", cache_dir
        )
        assert (hits, misses) == (0, total)
        assert observables(warm) == observables(cold)


class TestCacheModes:
    def test_off_never_touches_disk(self, tmp_path):
        path = corpus(tmp_path)
        cache_dir = tmp_path / "cache"
        run, (hits, misses, stores) = cached_run(
            path, "thread", "bytes", cache_dir, cache_mode="off"
        )
        assert (hits, misses, stores) == (0, 0, 0)
        assert not cache_dir.exists()
        assert observables(run) == observables(uncached_run(path, "bytes"))

    def test_read_mode_never_writes(self, tmp_path):
        path = corpus(tmp_path)
        cache_dir = tmp_path / "cache"
        run, (hits, misses, stores) = cached_run(
            path, "thread", "bytes", cache_dir, cache_mode="read"
        )
        assert stores == 0 and hits == 0 and misses > 0
        assert not cache_dir.exists()
        assert observables(run) == observables(uncached_run(path, "bytes"))

    def test_read_mode_consumes_a_warm_cache(self, tmp_path):
        path = corpus(tmp_path)
        cache_dir = tmp_path / "cache"
        cold, (_, total, _) = cached_run(path, "thread", "bytes", cache_dir)
        warm, (hits, misses, stores) = cached_run(
            path, "thread", "bytes", cache_dir, cache_mode="read"
        )
        assert (hits, misses, stores) == (total, 0, 0)
        assert observables(warm) == observables(cold)

    def test_invalid_mode_rejected(self, tmp_path):
        path = corpus(tmp_path)
        with pytest.raises(ValueError, match="cache_mode"):
            infer_ndjson_file(
                path, summary_cache=tmp_path / "c", cache_mode="bogus"
            )
