"""Property-based tests for the fusion theorems (Section 5.2).

These are the machine-checked counterparts of the paper's three theorems:

* Theorem 5.2 (correctness): ``fuse(T1, T2)`` is a supertype of both inputs
  — checked both with the syntactic subtype checker and semantically
  (membership preservation).
* Theorem 5.4 (commutativity): ``fuse(T1, T2) == fuse(T2, T1)``.
* Theorem 5.5 (associativity): grouping does not matter — the property
  that makes distributed/tree reduction and incremental fusion safe.

Plus the normality invariant ("all of our algorithms ... only generate
normal types") and idempotence on star-only types.
"""

from hypothesis import given

from repro.core.normal_form import is_normal
from repro.core.semantics import matches
from repro.core.subtyping import is_subtype
from repro.core.types import EMPTY
from hypothesis import strategies as st

from repro.inference.fusion import (
    collapse,
    fuse,
    fuse_all,
    fuse_multiset,
    lfuse,
    simplify,
)
from repro.inference.infer import infer_type
from tests.conftest import json_values, non_union_types, normal_types


class TestCorrectnessTheorem52:
    @given(normal_types(), normal_types())
    def test_fuse_yields_supertype_syntactically(self, t1, t2):
        t3 = fuse(t1, t2)
        assert is_subtype(t1, t3)
        assert is_subtype(t2, t3)

    @given(json_values(), json_values())
    def test_membership_preserved_through_fusion(self, v1, v2):
        """Semantic correctness on the actual pipeline: a value matching
        its own inferred type still matches the fused schema."""
        t1, t2 = infer_type(v1), infer_type(v2)
        fused = fuse(t1, t2)
        assert matches(v1, fused)
        assert matches(v2, fused)

    @given(non_union_types, non_union_types)
    def test_lfuse_yields_supertype_for_same_kind(self, t, u):
        if t.kind == u.kind:
            t3 = lfuse(t, u)
            assert is_subtype(t, t3)
            assert is_subtype(u, t3)


class TestCommutativityTheorem54:
    @given(normal_types(), normal_types())
    def test_fuse_commutes(self, t1, t2):
        assert fuse(t1, t2) == fuse(t2, t1)

    @given(non_union_types, non_union_types)
    def test_lfuse_commutes_for_same_kind(self, t, u):
        if t.kind == u.kind:
            assert lfuse(t, u) == lfuse(u, t)


class TestAssociativityTheorem55:
    @given(normal_types(), normal_types(), normal_types())
    def test_fuse_associates(self, t1, t2, t3):
        assert fuse(fuse(t1, t2), t3) == fuse(t1, fuse(t2, t3))

    @given(json_values(), json_values(), json_values())
    def test_associativity_on_inferred_types(self, v1, v2, v3):
        t1, t2, t3 = infer_type(v1), infer_type(v2), infer_type(v3)
        assert fuse(fuse(t1, t2), t3) == fuse(t1, fuse(t2, t3))

    @given(non_union_types, non_union_types, non_union_types)
    def test_lfuse_associates_for_same_kind(self, t, u, v):
        if t.kind == u.kind == v.kind:
            assert lfuse(lfuse(t, u), v) == lfuse(t, lfuse(u, v))


class TestInvariants:
    @given(normal_types(), normal_types())
    def test_fusion_preserves_normality(self, t1, t2):
        assert is_normal(fuse(t1, t2))

    @given(normal_types())
    def test_empty_is_neutral(self, t):
        assert fuse(t, EMPTY) == t
        assert fuse(EMPTY, t) == t

    @given(normal_types())
    def test_idempotent_without_positional_arrays(self, t):
        if not t.has_positional_array:
            assert fuse(t, t) == t

    @given(normal_types())
    def test_double_fusion_is_fixpoint(self, t):
        """fuse(t, t) may simplify arrays once, but is then a fixpoint."""
        once = fuse(t, t)
        assert fuse(once, once) == once

    @given(normal_types(), normal_types())
    def test_fused_size_bounded_by_inputs(self, t1, t2):
        """Fusion never blows the type up: |fuse| <= |t1| + |t2| + 1."""
        assert fuse(t1, t2).size <= t1.size + t2.size + 1


class TestCollapseProperties:
    @given(json_values())
    def test_collapse_of_inferred_array_admits_elements(self, value):
        if isinstance(value, list):
            body = collapse(infer_type(value))
            assert all(matches(v, body) for v in value)

    @given(normal_types())
    def test_simplify_widens(self, t):
        assert is_subtype(t, simplify(t))

    @given(json_values())
    def test_simplified_schema_still_admits_value(self, value):
        assert matches(value, simplify(infer_type(value)))


class TestAbsorption:
    """The law fuse_multiset relies on: self-fusion saturates."""

    @given(normal_types())
    def test_self_absorption(self, t):
        s = fuse(t, t)
        assert fuse(s, t) == s
        assert fuse(t, s) == s

    @given(st.lists(normal_types(), max_size=6))
    def test_fuse_multiset_equals_sequential(self, types):
        """Deduplicated fusion is exact, not an approximation."""
        assert fuse_multiset(types) == fuse_all(types)

    @given(normal_types(), st.integers(min_value=1, max_value=5))
    def test_duplicate_count_beyond_two_is_irrelevant(self, t, n):
        assert fuse_all([t] * (n + 1)) == fuse_all([t, t])


class TestMemoizedFusionMetamorphic:
    """Metamorphic laws through the kernel's pooled fast path.

    The optimized path (interning + pointer-keyed memoized fusion) must
    be *observationally identical* to the plain recursive ``fuse``: for
    any relation that holds of the reference implementation, the same
    relation must hold when every operand first travels through a
    :class:`~repro.core.interning.TypeInterner` and the fusion runs in a
    :class:`~repro.inference.kernel.FusionMemo`.
    """

    @staticmethod
    def _memo():
        from repro.core.interning import TypeInterner
        from repro.inference.kernel import FusionMemo

        interner = TypeInterner()
        return interner, FusionMemo(interner)

    @given(normal_types(), normal_types())
    def test_memo_fuse_equals_plain_fuse(self, t1, t2):
        interner, memo = self._memo()
        assert memo.fuse(interner.intern(t1), interner.intern(t2)) == fuse(
            t1, t2
        )

    @given(normal_types())
    def test_interning_is_identity_and_idempotent(self, t):
        interner, _ = self._memo()
        canonical = interner.intern(t)
        assert canonical == t
        assert interner.intern(canonical) is canonical
        # A structurally equal copy resolves to the same pooled object.
        assert interner.intern(t) is canonical

    @given(normal_types(), normal_types())
    def test_memo_commutes(self, t1, t2):
        interner, memo = self._memo()
        a, b = interner.intern(t1), interner.intern(t2)
        assert memo.fuse(a, b) == memo.fuse(b, a)

    @given(normal_types(), normal_types(), normal_types())
    def test_memo_associates(self, t1, t2, t3):
        interner, memo = self._memo()
        a, b, c = (interner.intern(t) for t in (t1, t2, t3))
        assert memo.fuse(memo.fuse(a, b), c) == memo.fuse(a, memo.fuse(b, c))

    @given(normal_types(), normal_types())
    def test_memo_result_is_canonical_and_cached(self, t1, t2):
        interner, memo = self._memo()
        a, b = interner.intern(t1), interner.intern(t2)
        first = memo.fuse(a, b)
        assert interner.intern(first) is first
        # Repeating the same pooled operands must hit the cache exactly.
        assert memo.fuse(a, b) is first

    @given(st.lists(json_values(), min_size=1, max_size=8))
    def test_memo_fold_equals_fuse_all(self, values):
        from repro.core.types import EMPTY

        interner, memo = self._memo()
        schema = EMPTY
        for v in values:
            schema = memo.fuse(schema, interner.intern(infer_type(v)))
        assert schema == fuse_all([infer_type(v) for v in values])

    @given(normal_types(), normal_types())
    def test_separate_memos_agree(self, t1, t2):
        """Pooling is per-partition state; results must not depend on it."""
        i1, m1 = self._memo()
        i2, m2 = self._memo()
        assert m1.fuse(i1.intern(t1), i1.intern(t2)) == m2.fuse(
            i2.intern(t1), i2.intern(t2)
        )


class TestFuseAllProperties:
    @given(json_values(), json_values(), json_values())
    def test_any_order_same_schema(self, a, b, c):
        types = [infer_type(v) for v in (a, b, c)]
        forward = fuse_all(types)
        backward = fuse_all(types[::-1])
        rotated = fuse_all(types[1:] + types[:1])
        assert forward == backward == rotated

    @given(json_values(), json_values())
    def test_schema_admits_every_input(self, a, b):
        schema = fuse_all([infer_type(a), infer_type(b)])
        assert matches(a, schema) and matches(b, schema)
