"""Unit and accuracy tests for the statistics primitives.

The merge *laws* live in ``test_stats_laws.py``; this module pins the
individual statistics down: HyperLogLog estimation error against known
cardinalities, the Bloom filter's no-false-negative guarantee and
bounded false-positive rate, wire round-trip exactness for both
sketches, value canonicalization, and the bundle's byte codec.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.inference.kernel import accumulate_partition
from repro.inference.statistics import (
    BLOOM_BITS,
    BLOOM_HASHES,
    HLL_PRECISION,
    STATS_MODES,
    BloomFilter,
    HyperLogLog,
    StatsBundle,
    _canonical_bound,
    _hash64,
    _value_key,
    create_stats_bundle,
    resolve_stats_mode,
    stats_if_complete,
)
from tests.conftest import json_records, json_values

value_lists = st.lists(st.one_of(json_records, json_values(8)), max_size=10)


# ---------------------------------------------------------------------------
# HyperLogLog accuracy


class TestHyperLogLogAccuracy:
    """p=12 gives a typical relative error of ~1.6%; the tests assert a
    5% bound with deterministic (seed-free — the hash is keyed-nothing
    blake2b) inputs, so failures mean a real estimator regression."""

    @pytest.mark.parametrize("cardinality", [10_000, 100_000])
    def test_relative_error_under_five_percent(self, cardinality):
        hll = HyperLogLog()
        for i in range(cardinality):
            hll.update(f"value-{i}")
        estimate = hll.estimate()
        assert abs(estimate - cardinality) / cardinality < 0.05

    def test_small_range_linear_counting_is_near_exact(self):
        # Below ~2.5m the estimator switches to linear counting, which
        # is essentially exact at tiny cardinalities.
        hll = HyperLogLog()
        for i in range(100):
            hll.update(i)
        assert abs(hll.estimate() - 100) / 100 < 0.03

    def test_duplicates_do_not_inflate(self):
        hll = HyperLogLog()
        for _ in range(50):
            for i in range(1_000):
                hll.update(f"dup-{i}")
        assert abs(hll.estimate() - 1_000) / 1_000 < 0.05

    def test_merge_estimates_the_union(self):
        a, b = HyperLogLog(), HyperLogLog()
        for i in range(20_000):
            a.update(f"k{i}")
        for i in range(10_000, 30_000):  # 10k overlap, 30k union
            b.update(f"k{i}")
        union = a.merge(b).estimate()
        assert abs(union - 30_000) / 30_000 < 0.05

    def test_empty_estimate_is_zero(self):
        assert HyperLogLog().estimate() == 0.0

    def test_mixed_type_values_count_distinctly(self):
        # 1 and 1.0 are the same JSON number; True and "1" are not.
        hll = HyperLogLog()
        for value in (1, 1.0, True, "1", None):
            hll.update(value)
        assert round(hll.estimate()) == 4


class TestBundleEstimates:
    """Accuracy through the real accumulation path, not just the sketch."""

    def test_path_distinct_estimate(self):
        records = [{"id": i, "flag": i % 2 == 0} for i in range(10_000)]
        summary = accumulate_partition(records, stats_mode="sketches")
        bundle = summary.stats
        ids = bundle.paths["$.id"].values.hll.estimate()
        assert abs(ids - 10_000) / 10_000 < 0.05
        flags = bundle.paths["$.flag"].values.hll.estimate()
        assert round(flags) == 2

    def test_basic_mode_carries_no_sketches(self):
        summary = accumulate_partition([{"a": 1}], stats_mode="basic")
        assert all(p.values is None for p in summary.stats.paths.values())


# ---------------------------------------------------------------------------
# Bloom filter guarantees


class TestBloomFilter:
    def test_zero_false_negatives(self):
        bloom = BloomFilter()
        inserted = [f"member-{i}" for i in range(1_000)]
        for value in inserted:
            bloom.update(value)
        assert all(bloom.might_contain(v) for v in inserted)

    def test_false_positive_rate_bounded(self):
        # 500 insertions into 8192 bits / 4 hashes: theoretical FP rate
        # (1 - e^(-kn/m))^k ≈ 0.2%.  Assert an order of magnitude of
        # slack (2%) so the test pins the geometry, not hash luck.
        bloom = BloomFilter()
        for i in range(500):
            bloom.update(f"present-{i}")
        trials = 5_000
        false_positives = sum(
            bloom.might_contain(f"absent-{i}") for i in range(trials)
        )
        assert false_positives / trials < 0.02

    def test_merge_has_no_false_negatives_either(self):
        a, b = BloomFilter(), BloomFilter()
        for i in range(0, 400):
            a.update(i)
        for i in range(300, 700):
            b.update(i)
        merged = a.merge(b)
        assert all(merged.might_contain(i) for i in range(700))

    def test_geometry_mismatch_rejected(self):
        with pytest.raises(ValueError, match="geometry"):
            BloomFilter(m_bits=BLOOM_BITS).merge(BloomFilter(m_bits=BLOOM_BITS * 2))
        with pytest.raises(ValueError, match="geometry"):
            BloomFilter(k=BLOOM_HASHES).merge(BloomFilter(k=BLOOM_HASHES + 1))

    def test_empty_filter_contains_nothing(self):
        bloom = BloomFilter()
        assert not any(bloom.might_contain(f"x{i}") for i in range(100))


class TestHLLPrecisionMismatch:
    def test_merge_rejected(self):
        with pytest.raises(ValueError, match="precision"):
            HyperLogLog(p=HLL_PRECISION).merge(HyperLogLog(p=HLL_PRECISION + 1))


# ---------------------------------------------------------------------------
# Wire round-trips (sketch level)


json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)


class TestSketchWire:
    @given(values=st.lists(json_scalars, max_size=50))
    @settings(max_examples=50)
    def test_hll_round_trip_is_exact(self, values):
        hll = HyperLogLog()
        for value in values:
            hll.update(value)
        back = HyperLogLog.from_wire(hll.to_wire())
        assert back == hll
        assert back.estimate() == hll.estimate()

    @given(values=st.lists(json_scalars, max_size=50))
    @settings(max_examples=50)
    def test_bloom_round_trip_is_exact(self, values):
        bloom = BloomFilter()
        for value in values:
            bloom.update(value)
        back = BloomFilter.from_wire(bloom.to_wire())
        assert back == bloom
        assert all(back.might_contain(v) for v in values)

    def test_hll_bad_register_block_rejected(self):
        with pytest.raises(ValueError, match="register"):
            HyperLogLog.from_wire((HLL_PRECISION, b"\x00" * 3))

    def test_bloom_bad_bit_block_rejected(self):
        with pytest.raises(ValueError, match="bit block"):
            BloomFilter.from_wire((BLOOM_BITS, BLOOM_HASHES, b"\x00" * 3))


# ---------------------------------------------------------------------------
# Value canonicalization


class TestValueKey:
    def test_int_float_collapse(self):
        # JSON has one number type: 1 and 1.0 must sketch identically.
        assert _value_key(1) == _value_key(1.0)
        assert _value_key(-7) == _value_key(-7.0)
        assert _value_key(0) == _value_key(-0.0)

    def test_bool_is_not_number(self):
        assert _value_key(True) != _value_key(1)
        assert _value_key(False) != _value_key(0)

    def test_string_is_not_number(self):
        assert _value_key("1") != _value_key(1)

    def test_huge_floats_stay_distinct_from_nearby_ints(self):
        # 2**53 + 1 is not representable as a float; the float rounds to
        # 2**53 and must not collide with the exact int 2**53 + 1.
        assert _value_key(float(2**53)) == _value_key(2**53)
        assert _value_key(2**53 + 1) != _value_key(float(2**53 + 1))

    @given(a=json_scalars, b=json_scalars)
    @settings(max_examples=100)
    def test_keys_deterministic_and_type_tagged(self, a, b):
        assert _value_key(a) == _value_key(a)
        if type(a) is type(b) and a != b:
            assert _value_key(a) != _value_key(b)

    def test_hash64_is_stable(self):
        # Pinned value: estimates must not drift across releases, so the
        # underlying hash cannot change silently.
        assert _hash64(b"s" + "x".encode()) == _hash64(_value_key("x"))
        assert 0 <= _hash64(b"anything") < 2**64


class TestCanonicalBound:
    def test_nan_drops_to_none(self):
        assert _canonical_bound(float("nan")) is None

    def test_negative_zero_normalizes(self):
        out = _canonical_bound(-0.0)
        assert out == 0.0 and math.copysign(1.0, out) == 1.0

    def test_integral_values_pass_through_exact(self):
        assert _canonical_bound(7) == 7
        assert _canonical_bound(2**70) == 2**70


# ---------------------------------------------------------------------------
# Bundle byte codec and helpers


class TestBundleBytes:
    @given(values=value_lists, mode=st.sampled_from(["basic", "sketches"]))
    @settings(max_examples=30)
    def test_round_trip_and_determinism(self, values, mode):
        summary = accumulate_partition(list(values), stats_mode=mode)
        bundle = summary.stats
        payload = bundle.to_bytes()
        assert StatsBundle.from_bytes(payload) == bundle
        # Byte-determinism: re-encoding (directly or via a round trip)
        # yields identical bytes — the checkpoint digest depends on it.
        assert StatsBundle.from_bytes(payload).to_bytes() == payload

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            StatsBundle.from_bytes(b"not json")
        with pytest.raises(ValueError):
            StatsBundle.from_bytes(b"{}")


class TestModeHelpers:
    def test_resolve_accepts_known_modes(self):
        for mode in STATS_MODES:
            assert resolve_stats_mode(mode) == mode

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError, match="stats"):
            resolve_stats_mode("everything")

    def test_stats_if_complete_drops_partial_coverage(self):
        bundle = create_stats_bundle("basic")
        bundle.observe({"a": 1}, type_size=3)
        assert stats_if_complete(bundle, 1) is bundle
        assert stats_if_complete(bundle, 2) is None
        assert stats_if_complete(None, 0) is None
