"""The bytes lane must be indistinguishable from strict — adversarially.

ISSUE 8's contract: ``parse_lane="bytes"`` (mmap block scan, batched
zero-decode typing, duplicate-line type cache) may only ever be *faster*
than the other lanes, never different.  These tests drive the lane
through the encodings and poisons most likely to expose a divergence —
multibyte characters straddling scan-chunk boundaries, lone surrogate
escapes, BOMs, non-ASCII whitespace, huge integers, non-standard
constants, duplicate keys, malformed records — and assert the schema
(sha-256 of its printed form), the record counts and every quarantine
entry (line numbers included) are identical to a strict run, across both
split modes and both backends.  The duplicate-line cache gets its own
soundness checks: bounded growth, insert-only-after-success, and
generation-tagged invalidation alongside the warm worker state.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.core.printer import print_type
from repro.core.types import NUM, STR
from repro.engine import Context
from repro.inference.kernel import (
    PartitionAccumulator,
    accumulate_ndjson_partition,
    accumulate_ndjson_split,
    decode_summary,
    encode_summary,
    merge_summary_group,
    warm_state_for,
)
from repro.inference.pipeline import infer_ndjson_file
from repro.inference.typestream import (
    BytesBatchTyper,
    FastLaneMiss,
    LineTypeCache,
    resolve_lane,
)
from repro.jsonio.splits import FileSplit, plan_splits
from repro.store.journal import JournalMismatchError

# Each corpus is raw file bytes: the adversarial cases live at the byte
# level (BOMs, encodings, terminators), below what text fixtures can say.
CORPORA = {
    "plain": b'{"a": 1}\n{"b": [1, "x", true, null]}\n{"a": 1}\n',
    "multibyte": (
        '{"caf\u00e9": "\U0001F600"}\n{"\u4e2d\u6587": "\u00e9"}\n' * 40
    ).encode("utf-8"),
    "lone_surrogate": b'{"s": "\\ud800"}\n{"a": 1}\n{"s": "\\ud800"}\n',
    "paired_surrogate": b'{"emoji": "\\ud83d\\ude00"}\n{"a": 1}\n',
    "bom_leading": b'\xef\xbb\xbf{"a": 1}\n{"b": 2}\n',
    "bom_midline": b'{"a": 1}\n\xef\xbb\xbf{"b": 2}\n',
    "poison": (
        b'{"a": 1}\n{broken\n{"dup": 1, "dup": 2}\n'
        b'{"a": 1}\nInfinity\nNaN\n[1, 2,]\n'
    ),
    "whitespace": (
        b'  {"padded": 1}  \n\n   \n\t\n{"a": 1}\n'
        b'\xc2\xa0\n'            # NBSP-only line: Unicode blank, not ASCII
        b'\x1c{"a": 1}\n'        # information separator: str.strip() eats it
    ),
    "crlf": b'{"a": 1}\r\n{"b": 2}\r\n{broken\r\n{"a": 1}\r\n',
    "lone_cr": b'{"a": 1}\r{"b": 2}\r',
    "unterminated": b'{"a": 1}\n{"b": 2}',
    "record_smuggle": b'{"a": 1}, {"b": 2}\n{"a": 1}\n',
    "empty": b"",
    "blank_only": b"\n\n\n",
}


def _signature(run):
    schema_sha = hashlib.sha256(print_type(run.schema).encode()).hexdigest()
    return (
        schema_sha,
        run.record_count,
        run.distinct_type_count,
        tuple(
            (b.path, b.line_number, b.error, b.text)
            for b in run.bad_records
        ),
    )


def _infer(path, lane, split_mode, backend=None, parallelism=None):
    ctx = None
    try:
        if backend is not None:
            ctx = Context(parallelism=parallelism or 2, backend=backend)
        return infer_ndjson_file(
            path, context=ctx, permissive=True, parse_lane=lane,
            split_mode=split_mode,
            num_partitions=3 if ctx is not None else None,
        )
    finally:
        if ctx is not None:
            ctx.stop()


class TestDifferentialEquivalence:
    @pytest.mark.parametrize("name", sorted(CORPORA))
    @pytest.mark.parametrize("split_mode", ["lines", "bytes"])
    def test_bytes_lane_matches_strict(self, tmp_path, name, split_mode):
        path = tmp_path / f"{name}.ndjson"
        path.write_bytes(CORPORA[name])
        strict = _infer(str(path), "strict", split_mode)
        fast = _infer(str(path), "bytes", split_mode)
        assert _signature(fast) == _signature(strict), name

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_poison_matches_sequential_strict(
        self, tmp_path, backend
    ):
        path = tmp_path / "poison.ndjson"
        path.write_bytes(CORPORA["poison"] * 30)
        strict = _infer(str(path), "strict", "bytes")
        for split_mode in ("lines", "bytes"):
            fast = _infer(str(path), "bytes", split_mode, backend=backend)
            assert _signature(fast) == _signature(strict), split_mode

    def test_multibyte_straddling_batch_boundaries(self, tmp_path):
        # Tiny scanner batches force multibyte sequences and record
        # boundaries across batch seams; the joined-batch decode must
        # still be byte-exact.
        path = tmp_path / "mb.ndjson"
        path.write_bytes(CORPORA["multibyte"])
        size = path.stat().st_size
        acc = PartitionAccumulator()
        typer = BytesBatchTyper(acc)
        from repro.jsonio.blockscan import SplitBlockScanner

        observed = 0
        for _, batch in SplitBlockScanner(
            FileSplit(str(path), 0, size), batch_bytes=13
        ):
            for t in typer.type_lines(batch):
                if t is not None:
                    acc.observe(t)
                    observed += 1
        strict = _infer(str(path), "strict", "bytes")
        assert observed == strict.record_count
        assert print_type(acc.schema) == print_type(strict.schema)

    def test_huge_int_matches_the_fast_lane(self, tmp_path):
        # CPython's int-conversion digit limit splits the lanes on
        # >4300-digit integers: the strict tokenizer calls ``int()`` and
        # raises a bare ValueError, while the hook lanes never
        # materialise the number at all (``parse_int`` maps the literal
        # straight to Num) — a divergence that predates this lane.  The
        # bytes lane must side with the established fast lane: its
        # batched decode hits the same ValueError, funnels it through
        # FastLaneMiss, and the per-line hook fallback accepts.
        path = tmp_path / "bigint.ndjson"
        path.write_bytes(
            ("{\"n\": " + "9" * 5000 + "}\n").encode() + b'{"a": 1}\n'
        )
        for split_mode in ("lines", "bytes"):
            fast = _infer(str(path), "fast", split_mode)
            byte = _infer(str(path), "bytes", split_mode)
            assert _signature(byte) == _signature(fast)
            with pytest.raises(ValueError):
                _infer(str(path), "strict", split_mode)

    def test_strict_mode_error_identical(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        path.write_bytes(b'{"a": 1}\n' * 100 + b"{broken\n")
        errors = {}
        for lane in ("strict", "bytes"):
            for split_mode in ("lines", "bytes"):
                with pytest.raises(Exception) as info:
                    infer_ndjson_file(
                        str(path), parse_lane=lane, split_mode=split_mode
                    )
                errors[(lane, split_mode)] = str(info.value)
        assert len(set(errors.values())) == 1, errors


class TestLineTypeCache:
    def test_probe_insert_and_counters(self, tmp_path):
        path = tmp_path / "dups.ndjson"
        path.write_bytes(b'{"a": 1}\n{"b": "x"}\n' * 500)
        size = path.stat().st_size
        cold = accumulate_ndjson_split(
            FileSplit(str(path), 0, size), permissive=True,
            parse_lane="bytes", warm_generation=101,
        )
        warm = accumulate_ndjson_split(
            FileSplit(str(path), 0, size), permissive=True,
            parse_lane="bytes", warm_generation=101,
        )
        assert cold.dedup_hits == 0 and cold.dedup_misses == 1000
        assert warm.dedup_hits == 1000 and warm.dedup_misses == 0
        assert warm.dedup_bytes_avoided == size - 1000  # terminators
        assert (cold.schema, cold.record_count) == (
            warm.schema, warm.record_count
        )
        assert len(warm_state_for(101).line_cache) == 2

    def test_generation_invalidation_drops_cache(self, tmp_path):
        path = tmp_path / "x.ndjson"
        path.write_bytes(b'{"a": 1}\n' * 10)
        size = path.stat().st_size
        accumulate_ndjson_split(
            FileSplit(str(path), 0, size), parse_lane="bytes",
            warm_generation=201,
        )
        assert len(warm_state_for(201).line_cache) == 1
        fresh = accumulate_ndjson_split(
            FileSplit(str(path), 0, size), parse_lane="bytes",
            warm_generation=202,
        )
        assert fresh.dedup_hits == 0 and fresh.dedup_misses == 10

    def test_bounded_clear_on_full(self):
        cache = LineTypeCache(cap_entries=3)
        for i in range(10):
            cache.insert(b"line%d" % i, NUM)
        assert len(cache) <= 3
        cache = LineTypeCache(cap_bytes=10)
        cache.insert(b"aaaaaaaaaa", NUM)  # exactly at the byte cap
        cache.insert(b"b", STR)           # full: clears, then holds b
        assert len(cache) == 1 and cache.data[b"b"] is STR

    def test_rejects_nonpositive_caps(self):
        with pytest.raises(ValueError):
            LineTypeCache(cap_entries=0)
        with pytest.raises(ValueError):
            LineTypeCache(cap_bytes=0)

    def test_failed_batch_commits_nothing(self):
        acc = PartitionAccumulator()
        cache = LineTypeCache()
        typer = BytesBatchTyper(acc, line_cache=cache)
        with pytest.raises(FastLaneMiss):
            typer.type_lines([b'{"good": 1}', b"{broken"])
        assert len(cache) == 0
        assert typer.hits == 0 and typer.misses == 0


class TestWireFormatV2:
    def test_roundtrip_preserves_dedup_counters(self, tmp_path):
        path = tmp_path / "x.ndjson"
        path.write_bytes(b'{"a": 1}\n' * 5)
        summary = accumulate_ndjson_split(
            FileSplit(str(path), 0, path.stat().st_size),
            parse_lane="bytes", warm_generation=301,
        )
        assert summary.dedup_misses == 5
        decoded = decode_summary(encode_summary(summary))
        assert decoded == summary
        assert decoded.dedup_hits == summary.dedup_hits
        assert decoded.dedup_misses == summary.dedup_misses
        assert decoded.dedup_bytes_avoided == summary.dedup_bytes_avoided

    def test_merge_sums_dedup_counters(self, tmp_path):
        path = tmp_path / "x.ndjson"
        path.write_bytes(b'{"a": 1}\n' * 8)
        size = path.stat().st_size
        parts = [
            accumulate_ndjson_split(
                split, parse_lane="bytes", warm_generation=302
            )
            for split in plan_splits(str(path), 2, min_split_bytes=1)
        ]
        merged = merge_summary_group(parts)
        assert merged.dedup_hits == sum(p.dedup_hits for p in parts)
        assert merged.dedup_misses == sum(p.dedup_misses for p in parts)
        assert merged.dedup_bytes_avoided == sum(
            p.dedup_bytes_avoided for p in parts
        )


class TestJournalAndResume:
    def test_resume_replays_to_identical_schema(self, tmp_path):
        path = tmp_path / "data.ndjson"
        path.write_bytes(b'{"a": 1}\n{"b": [true, null]}\n' * 200)
        journal = tmp_path / "run.journal"
        first = infer_ndjson_file(
            str(path), parse_lane="bytes", split_mode="bytes",
            journal_path=str(journal),
        )
        resumed = infer_ndjson_file(
            str(path), parse_lane="bytes", split_mode="bytes",
            journal_path=str(journal), resume=True,
        )
        assert print_type(resumed.schema) == print_type(first.schema)
        assert resumed.record_count == first.record_count

    def test_journal_binds_parse_lane(self, tmp_path):
        path = tmp_path / "data.ndjson"
        path.write_bytes(b'{"a": 1}\n' * 50)
        journal = tmp_path / "run.journal"
        infer_ndjson_file(
            str(path), parse_lane="bytes", split_mode="bytes",
            journal_path=str(journal),
        )
        with pytest.raises(JournalMismatchError):
            infer_ndjson_file(
                str(path), parse_lane="fast", split_mode="bytes",
                journal_path=str(journal), resume=True,
            )


class TestLaneResolution:
    def test_bytes_is_opt_in(self):
        assert resolve_lane("bytes") == "bytes"
        assert resolve_lane("auto") != "bytes"
        assert resolve_lane("fast") != "bytes"

    def test_smuggled_batch_separators_rejected(self):
        # A line that is two JSON documents joined by a comma would decode
        # to extra array elements in the joined batch; the count check
        # must hand the batch to per-line arbitration, never accept it.
        acc = PartitionAccumulator()
        typer = BytesBatchTyper(acc)
        with pytest.raises(FastLaneMiss):
            typer.type_lines([b'{"a": 1}, {"b": 2}'])
        with pytest.raises(FastLaneMiss):
            typer.type_lines([b"1, 2, 3"])

    def test_dedup_telemetry_reaches_scheduler_stats(self, tmp_path):
        path = tmp_path / "x.ndjson"
        path.write_bytes(b'{"a": 1}\n' * 100)
        ctx = Context(parallelism=1, backend="thread")
        try:
            infer_ndjson_file(
                str(path), context=ctx, parse_lane="bytes",
                split_mode="bytes",
            )
            infer_ndjson_file(
                str(path), context=ctx, parse_lane="bytes",
                split_mode="bytes",
            )
            stats = ctx.scheduler.stats
            assert stats.dedup_line_hits >= 100
            assert stats.dedup_line_misses >= 1
            assert stats.dedup_bytes_avoided > 0
        finally:
            ctx.stop()
