"""Batched task dispatch (worker-local folds before the driver merge).

Contracts pinned here:

* **Grouping invariance** — any ``batch_size``, over any split mode and
  backend, produces the same schema, counts and distinct set as the
  unbatched and sequential runs (fusion associativity, Theorem 5.5).
* **Quarantine exactness** — absolute 1-based line numbers of skipped
  records survive batching: batch tasks re-base split-local numbers
  intra-batch, the driver re-bases across tasks, and the composition is
  the identity the sequential run computes directly.
* **Strict-mode diagnostics** — the first malformed line fails a
  batched strict run with the same absolute line number as sequential.
* **Auto policy** — batching only engages when partitions far
  outnumber workers, so small jobs keep one task per partition.
"""

from __future__ import annotations

import pytest

from repro.engine import Context
from repro.engine.scheduler import BACKENDS
from repro.inference.kernel import (
    accumulate_ndjson_partition_batch,
    accumulate_ndjson_split_batch,
)
from repro.inference.pipeline import _plan_batches, infer_ndjson_file
from repro.jsonio.errors import JsonSyntaxError
from repro.jsonio.splits import plan_splits
from tests.conftest import make_corpus, write_corpus


@pytest.fixture(scope="module")
def dirty_file(tmp_path_factory):
    """A corpus with malformed lines at known absolute positions."""
    path = tmp_path_factory.mktemp("batched") / "dirty.ndjson"
    records = make_corpus(900, seed=13)
    lines = []
    bad = []
    for i, record in enumerate(records, start=1):
        if i % 97 == 0:
            lines.append('{"id": %d, "broken":' % i)
            bad.append(i)
        else:
            from repro.jsonio.writer import dumps

            lines.append(dumps(record))
    path.write_text("\n".join(lines) + "\n")
    return path, bad


class TestGroupingInvariance:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("split_mode", ["bytes", "lines"])
    @pytest.mark.parametrize("batch_size", [None, 1, 2, 5, 100])
    def test_identical_across_batch_sizes(
        self, backend, split_mode, batch_size, dirty_file
    ):
        path, bad = dirty_file
        reference = infer_ndjson_file(path, permissive=True)
        assert [b.line_number for b in reference.bad_records] == bad
        with Context(parallelism=2, backend=backend) as ctx:
            run = infer_ndjson_file(
                path, context=ctx, num_partitions=12, permissive=True,
                split_mode=split_mode, min_split_bytes=1,
                batch_size=batch_size,
            )
        assert run.schema == reference.schema
        assert run.record_count == reference.record_count
        assert run.distinct_type_count == reference.distinct_type_count
        assert [b.line_number for b in run.bad_records] == bad

    def test_clean_corpus_batched_vs_unbatched(self, tmp_path):
        path = tmp_path / "clean.ndjson"
        write_corpus(path, make_corpus(700, seed=29))
        with Context(parallelism=2) as ctx:
            batched = infer_ndjson_file(
                path, context=ctx, num_partitions=16, batch_size=4,
                split_mode="bytes", min_split_bytes=1,
            )
            unbatched = infer_ndjson_file(
                path, context=ctx, num_partitions=16, batch_size=1,
                split_mode="bytes", min_split_bytes=1,
            )
        assert batched.schema == unbatched.schema
        assert batched.record_count == unbatched.record_count == 700
        assert (batched.distinct_type_count
                == unbatched.distinct_type_count)


class TestStrictDiagnostics:
    @pytest.mark.parametrize("split_mode", ["bytes", "lines"])
    def test_first_error_line_matches_sequential(
        self, split_mode, dirty_file
    ):
        path, bad = dirty_file
        with pytest.raises(JsonSyntaxError) as sequential:
            infer_ndjson_file(path)
        with Context(parallelism=2) as ctx:
            with pytest.raises(JsonSyntaxError) as batched:
                infer_ndjson_file(
                    path, context=ctx, num_partitions=12,
                    split_mode=split_mode, min_split_bytes=1, batch_size=3,
                )
        assert sequential.value.line == bad[0]
        # Parallel strict runs surface *a* malformed line with its exact
        # absolute position; which of the bad lines wins the race is
        # scheduling-dependent.
        assert batched.value.line in bad


class TestBatchTasks:
    def test_split_batch_equals_per_split(self, tmp_path):
        from repro.inference.kernel import (
            accumulate_ndjson_split,
            merge_summary_group,
        )
        from repro.jsonio.splits import rebase_bad_records

        path = tmp_path / "dirty.ndjson"
        lines = ['{"v": %d}' % i for i in range(1, 121)]
        lines[39] = "oops"
        lines[89] = "[un"
        path.write_text("\n".join(lines) + "\n")
        splits = plan_splits(path, 6, min_split_bytes=1)
        batched = accumulate_ndjson_split_batch(splits, permissive=True)
        partials = []
        base = 0
        for split in splits:
            summary = accumulate_ndjson_split(split, permissive=True)
            if summary.skipped:
                from dataclasses import replace

                summary = replace(
                    summary,
                    skipped=rebase_bad_records(summary.skipped, base),
                )
            base += summary.line_count
            partials.append(summary)
        assert batched == merge_summary_group(partials)
        assert [b.line_number for b in batched.skipped] == [40, 90]

    def test_partition_batch_keeps_absolute_lines(self):
        parts = [
            [(1, '{"a": 1}'), (2, "bad")],
            [(3, '{"a": 2}'), (4, '{"a": "x"}')],
        ]
        summary = accumulate_ndjson_partition_batch(
            parts, permissive=True
        )
        assert summary.record_count == 3
        assert [b.line_number for b in summary.skipped] == [2]


class TestAutoPolicy:
    def test_small_jobs_stay_unbatched(self):
        assert _plan_batches(list(range(4)), parallelism=2,
                             batch_size=None) is None
        assert _plan_batches(list(range(8)), parallelism=4,
                             batch_size=None) is None

    def test_many_partitions_fold(self):
        batches = _plan_batches(list(range(40)), parallelism=2,
                                batch_size=None)
        assert batches is not None
        assert sum(len(b) for b in batches) == 40
        # Roughly two tasks per worker remain.
        assert len(batches) <= 2 * 2 + 1

    def test_explicit_sizes(self):
        assert _plan_batches(list(range(10)), 2, batch_size=1) is None
        batches = _plan_batches(list(range(10)), 2, batch_size=4)
        assert [len(b) for b in batches] == [4, 4, 2]
        assert [b for batch in batches for b in batch] == list(range(10))
