"""Unit and property tests for the inference pipelines (repro.inference.pipeline)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.semantics import matches
from repro.core.type_parser import parse_type as p
from repro.core.types import EMPTY
from repro.engine.context import Context
from repro.inference.pipeline import (
    SchemaInferencer,
    infer_partitioned,
    infer_schema,
    run_inference,
)
from tests.conftest import json_records

RECORDS = [
    {"a": 1},
    {"a": "x", "b": True},
    {"a": None, "c": [1, 2]},
    {"a": 1},
]

EXPECTED = p("{a: Null + Num + Str, b: Bool?, c: [Num, Num]?}")


class TestInferSchemaLocal:
    def test_known_collection(self):
        assert infer_schema(RECORDS) == EXPECTED

    def test_empty_collection(self):
        assert infer_schema([]) == EMPTY

    def test_single_value(self):
        assert infer_schema([{"a": 1}]) == p("{a: Num}")

    def test_accepts_any_iterable(self):
        assert infer_schema(iter(RECORDS)) == EXPECTED

    @given(st.lists(json_records, max_size=8))
    def test_schema_admits_every_record(self, records):
        schema = infer_schema(records)
        assert all(matches(r, schema) for r in records)


class TestInferSchemaDistributed:
    def test_matches_local_result(self):
        with Context(parallelism=4) as ctx:
            distributed = infer_schema(RECORDS, context=ctx, num_partitions=3)
        assert distributed == infer_schema(RECORDS)

    def test_more_partitions_than_records(self):
        with Context(parallelism=2) as ctx:
            got = infer_schema(RECORDS, context=ctx, num_partitions=16)
        assert got == infer_schema(RECORDS)

    def test_empty_collection(self):
        with Context(parallelism=2) as ctx:
            assert infer_schema([], context=ctx) == EMPTY

    @given(st.lists(json_records, max_size=10))
    def test_distributed_equals_local(self, records):
        """The associativity theorem at work: partitioned tree reduction
        produces exactly the sequential schema."""
        with Context(parallelism=3) as ctx:
            distributed = infer_schema(records, context=ctx, num_partitions=4)
        assert distributed == infer_schema(records)


class TestRunInference:
    def test_counts(self):
        run = run_inference(RECORDS)
        assert run.record_count == 4
        assert run.distinct_type_count == 3  # {"a":1} repeats
        assert run.schema == EXPECTED

    def test_timings_populated(self):
        run = run_inference(RECORDS)
        assert run.map_seconds >= 0
        assert run.reduce_seconds >= 0
        assert run.total_seconds == run.map_seconds + run.reduce_seconds

    def test_empty(self):
        run = run_inference([])
        assert run.record_count == 0
        assert run.distinct_type_count == 0
        assert run.schema == EMPTY

    def test_engine_backed_matches_local(self):
        with Context(parallelism=2) as ctx:
            engine_run = run_inference(RECORDS, context=ctx, num_partitions=2)
        local_run = run_inference(RECORDS)
        assert engine_run.schema == local_run.schema
        assert engine_run.record_count == local_run.record_count
        assert engine_run.distinct_type_count == local_run.distinct_type_count

    def test_dedupe_off_still_sound(self):
        run = run_inference(RECORDS, dedupe=False)
        assert all(matches(r, run.schema) for r in RECORDS)

    def test_engine_dedupe_off_matches_local(self):
        with Context(parallelism=2) as ctx:
            engine_raw = run_inference(
                RECORDS, context=ctx, num_partitions=3, dedupe=False
            )
        assert engine_raw.schema == run_inference(RECORDS, dedupe=False).schema

    def test_dedupe_is_exact_on_duplicate_positional_arrays(self):
        """fuse_multiset self-fuses duplicated types, so deduplication is
        an exact optimisation even for positional arrays."""
        records = [{"a": [1]}, {"a": [1]}]
        deduped = run_inference(records, dedupe=True).schema
        raw = run_inference(records, dedupe=False).schema
        assert deduped == raw == p("{a: [Num*]}")


class TestSchemaInferencer:
    def test_incremental_equals_batch(self):
        inf = SchemaInferencer()
        inf.add_many(RECORDS)
        assert inf.schema == infer_schema(RECORDS)
        assert inf.record_count == 4

    def test_empty_inferencer(self):
        inf = SchemaInferencer()
        assert inf.schema == EMPTY
        assert inf.record_count == 0

    def test_add_type(self):
        inf = SchemaInferencer()
        inf.add_type(p("{a: Num}"), records=10)
        inf.add_type(p("{b: Str}"), records=5)
        assert inf.schema == p("{a: Num?, b: Str?}")
        assert inf.record_count == 15

    def test_merge(self):
        left, right = SchemaInferencer(), SchemaInferencer()
        left.add_many(RECORDS[:2])
        right.add_many(RECORDS[2:])
        merged = left.merge(right)
        assert merged.schema == infer_schema(RECORDS)
        assert merged.record_count == 4

    def test_merge_leaves_inputs_unchanged(self):
        left, right = SchemaInferencer(), SchemaInferencer()
        left.add({"a": 1})
        right.add({"b": 2})
        before = left.schema
        left.merge(right)
        assert left.schema == before

    def test_or_operator(self):
        left, right = SchemaInferencer(), SchemaInferencer()
        left.add({"a": 1})
        right.add({"b": "x"})
        assert (left | right).schema == p("{a: Num?, b: Str?}")

    @given(st.lists(json_records, max_size=8), st.integers(0, 8))
    def test_split_then_merge_equals_batch(self, records, cut):
        """Incremental maintenance correctness, per the introduction."""
        cut = min(cut, len(records))
        left, right = SchemaInferencer(), SchemaInferencer()
        left.add_many(records[:cut])
        right.add_many(records[cut:])
        assert left.merge(right).schema == infer_schema(records)


class TestInferPartitioned:
    def test_partitioned_equals_global(self):
        """The Table 8 strategy is exact, thanks to associativity."""
        partitions = [RECORDS[:2], RECORDS[2:]]
        run = infer_partitioned(partitions)
        assert run.schema == infer_schema(RECORDS)
        assert run.record_count == 4

    def test_per_partition_reports(self):
        run = infer_partitioned([RECORDS[:2], RECORDS[2:], []])
        assert [r.record_count for r in run.partitions] == [2, 2, 0]
        assert all(r.seconds >= 0 for r in run.partitions)
        assert run.final_fuse_seconds >= 0

    def test_empty_partition_list(self):
        run = infer_partitioned([])
        assert run.schema == EMPTY
        assert run.record_count == 0

    @given(st.lists(st.lists(json_records, max_size=4), max_size=4))
    def test_any_partitioning_same_schema(self, partitions):
        flat = [r for part in partitions for r in part]
        assert infer_partitioned(partitions).schema == infer_schema(flat)
